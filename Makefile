# Convenience targets for the repro repository.

PYTHON ?= python3

.PHONY: install test bench reports validate methodology clean

install:
	$(PYTHON) -m pip install -e . --no-build-isolation || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m repro perf -o BENCH_core.json
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

reports:
	$(PYTHON) -m repro run all -o reports/

validate:
	$(PYTHON) -m repro validate

methodology:
	$(PYTHON) -m repro methodology

clean:
	rm -rf reports/ .pytest_cache src/repro.egg-info
	find . -name __pycache__ -type d -exec rm -rf {} +

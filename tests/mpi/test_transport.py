"""Tests for the MPI transport model's path selection."""

import pytest

from repro.config import SimEnvironment
from repro.errors import MpiError
from repro.hardware.node import HardwareNode
from repro.hip.runtime import HipRuntime
from repro.mpi.comm import MpiWorld
from repro.mpi.p2p import TransportModel
from repro.units import GiB, KiB, MiB, to_gbps


@pytest.fixture
def transport():
    node = HardwareNode()
    return TransportModel(node, SimEnvironment()), HipRuntime(node)


class TestPlanning:
    def test_device_device_sdma_plan(self, transport):
        model, hip = transport
        src = hip.malloc(1 * MiB, device=0)
        dst = hip.malloc(1 * MiB, device=2)
        channels, cap = model.plan(src, dst, 1 * MiB)
        assert ("sdma", 0, "out") in channels
        assert to_gbps(cap) == pytest.approx(37.75)

    def test_device_device_blit_plan(self):
        node = HardwareNode()
        model = TransportModel(node, SimEnvironment(sdma_enabled=False))
        hip = HipRuntime(node)
        src = hip.malloc(1 * MiB, device=0)
        dst = hip.malloc(1 * MiB, device=1)
        channels, cap = model.plan(src, dst, 1 * MiB)
        assert all(c[0] != "sdma" for c in channels)
        # 0.87 × 0.88 × 200 GB/s.
        assert to_gbps(cap) == pytest.approx(0.87 * 176, rel=0.01)

    def test_host_to_device_plan(self, transport):
        model, hip = transport
        src = hip.host_malloc(1 * MiB, device=0)
        dst = hip.malloc(1 * MiB, device=3)
        channels, cap = model.plan(src, dst, 1 * MiB)
        assert ("sdma", 3, "in") in channels
        assert to_gbps(cap) == pytest.approx(28.3, rel=0.01)

    def test_device_to_host_plan(self, transport):
        model, hip = transport
        src = hip.malloc(1 * MiB, device=5)
        dst = hip.host_malloc(1 * MiB, device=0)
        channels, cap = model.plan(src, dst, 1 * MiB)
        assert ("sdma", 5, "out") in channels

    def test_host_host_plan(self, transport):
        model, hip = transport
        src = hip.host_malloc(1 * MiB, device=0)
        dst = hip.host_malloc(1 * MiB, device=6)
        channels, cap = model.plan(src, dst, 1 * MiB)
        assert ("socket",) in channels
        assert to_gbps(cap) == pytest.approx(12.0)

    def test_same_device_plan(self, transport):
        model, hip = transport
        src = hip.malloc(1 * MiB, device=4)
        dst = hip.malloc(1 * MiB, device=4)
        channels, cap = model.plan(src, dst, 1 * MiB)
        assert channels == [("hbm", 4)]

    def test_gpu_support_required_for_mixed(self):
        node = HardwareNode()
        model = TransportModel(node, SimEnvironment(mpich_gpu_support=False))
        hip = HipRuntime(node)
        src = hip.host_malloc(1 * MiB, device=0)
        dst = hip.malloc(1 * MiB, device=1)
        with pytest.raises(MpiError):
            model.plan(src, dst, 1 * MiB)

    def test_rendezvous_threshold(self, transport):
        model, _hip = transport
        assert model.rendezvous_handshake_latency(8 * KiB) == 0.0
        assert model.rendezvous_handshake_latency(8 * KiB + 1) > 0.0


class TestMixedEndToEnd:
    def test_host_to_device_message(self):
        """A rank sending from host memory into a peer's device buffer."""
        world = MpiWorld(rank_gcds=[0, 1])
        size = 256 * MiB

        def main(ctx):
            if ctx.rank == 0:
                buf = ctx.hip.host_malloc(size)
                yield from ctx.barrier()
                t0 = ctx.now
                yield from ctx.send(buf, 1)
            else:
                buf = ctx.hip.malloc(size)
                yield from ctx.barrier()
                t0 = ctx.now
                yield from ctx.recv(buf, 0)
            return size / (ctx.now - t0)

        rate = world.run(main)[1]
        # Staged over the CPU link at the SDMA H2D rate.
        assert to_gbps(rate) == pytest.approx(28.3, rel=0.05)

    def test_host_to_host_message(self):
        world = MpiWorld(rank_gcds=[0, 4])
        size = 64 * MiB

        def main(ctx):
            buf = ctx.hip.host_malloc(size)
            yield from ctx.barrier()
            t0 = ctx.now
            if ctx.rank == 0:
                yield from ctx.send(buf, 1)
            else:
                yield from ctx.recv(buf, 0)
            return size / (ctx.now - t0)

        rate = world.run(main)[1]
        assert to_gbps(rate) == pytest.approx(12.0, rel=0.05)

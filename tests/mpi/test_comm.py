"""Tests for the MPI world: matching, p2p semantics, barriers."""

import pytest

from repro.config import SimEnvironment
from repro.errors import MpiError
from repro.mpi.comm import MpiWorld
from repro.units import GiB, KiB, MiB, to_gbps


class TestWorldSetup:
    def test_default_world_is_eight_ranks(self):
        world = MpiWorld()
        assert world.size == 8
        assert world.rank_gcds == tuple(range(8))

    def test_each_rank_bound_to_its_gcd(self):
        world = MpiWorld(rank_gcds=[3, 5])

        def main(ctx):
            return ctx.hip.physical_device()
            yield  # pragma: no cover

        assert world.run(main) == [3, 5]

    def test_empty_world_rejected(self):
        with pytest.raises(MpiError):
            MpiWorld(rank_gcds=[])

    def test_context_bounds(self):
        world = MpiWorld(rank_gcds=[0, 1])
        with pytest.raises(MpiError):
            world.context(2)


class TestPointToPoint:
    def test_send_recv_roundtrip(self):
        world = MpiWorld(rank_gcds=[0, 1])

        def main(ctx):
            buf = ctx.hip.malloc(1 * MiB)
            if ctx.rank == 0:
                yield from ctx.send(buf, 1, tag=7)
            else:
                yield from ctx.recv(buf, 0, tag=7)
            return ctx.now

        times = world.run(main)
        assert times[0] > 0 and times[1] > 0

    def test_recv_posted_first(self):
        world = MpiWorld(rank_gcds=[0, 1])

        def main(ctx):
            buf = ctx.hip.malloc(64 * KiB)
            if ctx.rank == 1:
                request = ctx.irecv(buf, 0)
                yield from ctx.barrier()  # sender arrives later
                yield from request.wait()
            else:
                yield from ctx.barrier()
                yield from ctx.send(buf, 1)
            return True

        assert world.run(main) == [True, True]

    def test_message_truncation_detected(self):
        world = MpiWorld(rank_gcds=[0, 1])

        def main(ctx):
            if ctx.rank == 0:
                big = ctx.hip.malloc(2 * MiB)
                yield from ctx.send(big, 1)
            else:
                small = ctx.hip.malloc(1 * MiB)
                yield from ctx.recv(small, 0)

        with pytest.raises(MpiError, match="truncation"):
            world.run(main)

    def test_invalid_rank(self):
        world = MpiWorld(rank_gcds=[0, 1])

        def main(ctx):
            buf = ctx.hip.malloc(64)
            yield from ctx.send(buf, 5)

        with pytest.raises(MpiError):
            world.run(main)

    def test_tag_separation(self):
        """Messages with different tags match their own receivers."""
        world = MpiWorld(rank_gcds=[0, 1])

        def main(ctx):
            a = ctx.hip.malloc(64 * KiB)
            b = ctx.hip.malloc(128 * KiB)
            if ctx.rank == 0:
                ra = ctx.isend(a, 1, tag=1, nbytes=64 * KiB)
                rb = ctx.isend(b, 1, tag=2, nbytes=128 * KiB)
                yield from ra.wait()
                yield from rb.wait()
                return None
            # Post in reverse tag order: matching must be by tag.
            rb = ctx.irecv(b, 0, tag=2)
            ra = ctx.irecv(a, 0, tag=1)
            got_b = yield from _wait_value(rb)
            got_a = yield from _wait_value(ra)
            return (got_a, got_b)

        results = world.run(main)
        assert results[1] == (64 * KiB, 128 * KiB)

    def test_connection_serialization(self):
        """A window of Isends cannot exceed the single-copy rate."""
        world = MpiWorld(
            env=SimEnvironment(sdma_enabled=True), rank_gcds=[0, 1]
        )
        size = 256 * MiB

        def main(ctx):
            buf = ctx.hip.malloc(size)
            yield from ctx.barrier()
            t0 = ctx.now
            if ctx.rank == 0:
                requests = [ctx.isend(buf, 1, tag=i) for i in range(4)]
                for request in requests:
                    yield from request.wait()
            else:
                requests = [ctx.irecv(buf, 0, tag=i) for i in range(4)]
                for request in requests:
                    yield from request.wait()
            return 4 * size / (ctx.now - t0)

        rate = world.run(main)[0]
        # SDMA-capped quad-link copy: 50 GB/s — not 4 × 50.
        assert to_gbps(rate) == pytest.approx(50.0, rel=0.05)

    def test_sendrecv_concurrent(self):
        world = MpiWorld(rank_gcds=[0, 1])
        size = 256 * MiB

        def main(ctx):
            a = ctx.hip.malloc(size)
            b = ctx.hip.malloc(size)
            yield from ctx.barrier()
            t0 = ctx.now
            partner = 1 - ctx.rank
            yield from ctx.sendrecv(a, partner, b, partner)
            return ctx.now - t0

        elapsed = max(world.run(main))
        single = size / 50e9
        # Opposite directions overlap: much closer to 1× than 2×.
        assert elapsed < 1.3 * single


def _wait_value(request):
    yield from request.wait()
    return request.event.value


class TestBarrier:
    def test_barrier_synchronizes(self):
        world = MpiWorld(rank_gcds=[0, 1, 2])

        def main(ctx):
            yield ctx.engine.timeout(float(ctx.rank))  # skewed arrivals
            yield from ctx.barrier()
            return ctx.now

        times = world.run(main)
        assert max(times) == min(times)
        assert min(times) > 2.0  # nobody leaves before the last arrival

    def test_barrier_reusable(self):
        world = MpiWorld(rank_gcds=[0, 1])

        def main(ctx):
            for _ in range(3):
                yield from ctx.barrier()
            return True

        assert world.run(main) == [True, True]


class TestGpuAwareness:
    def test_device_buffers_require_gpu_support(self):
        env = SimEnvironment(mpich_gpu_support=False)
        world = MpiWorld(env=env, rank_gcds=[0, 1])

        def main(ctx):
            buf = ctx.hip.malloc(1 * MiB)
            if ctx.rank == 0:
                yield from ctx.send(buf, 1)
            else:
                yield from ctx.recv(buf, 0)

        with pytest.raises(MpiError, match="MPICH_GPU_SUPPORT"):
            world.run(main)

    def test_host_buffers_work_without_gpu_support(self):
        env = SimEnvironment(mpich_gpu_support=False)
        world = MpiWorld(env=env, rank_gcds=[0, 1])

        def main(ctx):
            buf = ctx.hip.host_malloc(1 * MiB)
            if ctx.rank == 0:
                yield from ctx.send(buf, 1)
            else:
                yield from ctx.recv(buf, 0)
            return True

        assert world.run(main) == [True, True]

    def test_ipc_mapping_amortizes(self):
        """First message pays the map cost; repeats only the lookup."""
        world = MpiWorld(rank_gcds=[0, 1])
        size = 64 * KiB

        def main(ctx):
            buf = ctx.hip.malloc(size)
            durations = []
            for i in range(3):
                yield from ctx.barrier()
                t0 = ctx.now
                if ctx.rank == 0:
                    yield from ctx.send(buf, 1, tag=i)
                else:
                    yield from ctx.recv(buf, 0, tag=i)
                durations.append(ctx.now - t0)
            return durations

        durations = world.run(main)[0]
        assert durations[0] > durations[1]
        assert durations[1] == pytest.approx(durations[2], rel=0.01)

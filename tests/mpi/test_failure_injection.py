"""Failure-injection tests for the MPI layer.

Distributed code fails in structured ways — unmatched messages,
deadlocks, mismatched collectives.  The simulator must *detect* these
rather than hang, because benchmark harness bugs would otherwise look
like performance anomalies.
"""

import pytest

from repro.errors import MpiError
from repro.mpi.collectives import allreduce, broadcast
from repro.mpi.comm import MpiWorld
from repro.units import KiB, MiB


class TestDeadlockDetection:
    def test_recv_without_send(self):
        world = MpiWorld(rank_gcds=[0, 1])

        def main(ctx):
            buf = ctx.hip.malloc(1 * KiB)
            if ctx.rank == 1:
                yield from ctx.recv(buf, 0)  # rank 0 never sends
            return True

        with pytest.raises(MpiError, match="deadlock"):
            world.run(main)

    def test_mismatched_tags_deadlock(self):
        world = MpiWorld(rank_gcds=[0, 1])

        def main(ctx):
            buf = ctx.hip.malloc(1 * KiB)
            if ctx.rank == 0:
                yield from ctx.send(buf, 1, tag=1)
            else:
                yield from ctx.recv(buf, 0, tag=2)

        with pytest.raises(MpiError, match="deadlock"):
            world.run(main)

    def test_partial_collective_participation(self):
        """One rank skipping a collective deadlocks the communicator."""
        world = MpiWorld(rank_gcds=[0, 1, 2, 3])

        def main(ctx):
            send = ctx.hip.malloc(64 * KiB)
            recv = ctx.hip.malloc(64 * KiB)
            if ctx.rank != 3:  # rank 3 never joins
                yield from allreduce(ctx, send, recv, 64 * KiB)
            return True

        with pytest.raises(MpiError, match="deadlock"):
            world.run(main)

    def test_blocking_self_send_deadlocks(self):
        """A blocking rendezvous send to self with no posted recv."""
        world = MpiWorld(rank_gcds=[0, 1])

        def main(ctx):
            buf = ctx.hip.malloc(1 * MiB)  # above the eager threshold
            if ctx.rank == 0:
                yield from ctx.send(buf, 0)
            return True

        with pytest.raises(MpiError, match="deadlock"):
            world.run(main)


class TestErrorPropagation:
    def test_rank_exception_surfaces(self):
        world = MpiWorld(rank_gcds=[0, 1])

        def main(ctx):
            if ctx.rank == 1:
                raise RuntimeError("rank 1 exploded")
            yield ctx.engine.timeout(1e-6)
            return True

        with pytest.raises(RuntimeError, match="rank 1 exploded"):
            world.run(main)

    def test_root_mismatch_is_a_hang_not_corruption(self):
        """Ranks disagreeing on the broadcast root deadlock cleanly."""
        world = MpiWorld(rank_gcds=[0, 1, 2, 3])

        def main(ctx):
            buf = ctx.hip.malloc(64 * KiB)
            root = 0 if ctx.rank < 2 else 1
            yield from broadcast(ctx, buf, 64 * KiB, root=root)

        with pytest.raises(MpiError, match="deadlock"):
            world.run(main)


class TestResourceDiscipline:
    def test_many_iterations_do_not_leak_device_memory(self):
        world = MpiWorld(rank_gcds=[0, 1])

        def main(ctx):
            send = ctx.hip.malloc(1 * MiB)
            recv = ctx.hip.malloc(1 * MiB)
            baseline = ctx.hip.node.gcd(ctx.gcd).hbm.allocated_bytes
            for _ in range(5):
                yield from allreduce(ctx, send, recv, 1 * MiB)
            return ctx.hip.node.gcd(ctx.gcd).hbm.allocated_bytes == baseline

        assert all(world.run(main))

    def test_ipc_cache_grows_once_per_buffer_peer(self):
        world = MpiWorld(rank_gcds=[0, 1])

        def main(ctx):
            buf = ctx.hip.malloc(64 * KiB)
            for i in range(4):
                if ctx.rank == 0:
                    yield from ctx.send(buf, 1, tag=i)
                else:
                    yield from ctx.recv(buf, 0, tag=i)
            return True

        world.run(main)
        sender_cache = world._ipc_caches[0]
        assert sender_cache.map_events == 1
        assert sender_cache.lookup_events == 4

"""Tests for the MPI_Alltoall extension."""

import pytest

from repro.errors import MpiError
from repro.mpi.collectives import alltoall
from repro.mpi.comm import MpiWorld
from repro.units import KiB, MiB


def run_alltoall(num_ranks, nbytes=512 * KiB):
    world = MpiWorld(rank_gcds=list(range(num_ranks)))

    def main(ctx):
        send = ctx.hip.malloc(nbytes)
        recv = ctx.hip.malloc(nbytes)
        t0 = ctx.now
        yield from alltoall(ctx, send, recv, nbytes)
        return ctx.now - t0

    return world.run(main)


class TestAlltoall:
    @pytest.mark.parametrize("n", range(2, 9))
    def test_completes_at_every_size(self, n):
        durations = run_alltoall(n)
        assert len(durations) == n
        assert all(d > 0 for d in durations)

    def test_single_rank_noop(self):
        world = MpiWorld(rank_gcds=[0])

        def main(ctx):
            buf = ctx.hip.malloc(1 * KiB)
            yield from alltoall(ctx, buf, buf, 1 * KiB)
            return ctx.now

        assert world.run(main) == [0.0]

    def test_traffic_scales_sublinearly(self):
        """Each rank moves (n-1)/n × nbytes: going 2→8 ranks multiplies
        per-rank traffic by 1.75, not 4 — but adds steps and link
        contention; growth stays well below step-count growth."""
        two = max(run_alltoall(2, nbytes=4 * MiB))
        eight = max(run_alltoall(8, nbytes=4 * MiB))
        assert two < eight < 7 * two

    def test_undersized_buffers_rejected(self):
        world = MpiWorld(rank_gcds=[0, 1])

        def main(ctx):
            send = ctx.hip.malloc(1 * KiB)
            recv = ctx.hip.malloc(1 * KiB)
            yield from alltoall(ctx, send, recv, 2 * KiB)

        with pytest.raises(MpiError):
            world.run(main)

    def test_via_osu_harness(self):
        """The OSU-style latency harness accepts the extension."""
        from repro.bench_suites.osu import osu_collective_latency

        latency = osu_collective_latency("alltoall", 4, message_bytes=256 * KiB)
        assert latency > 0

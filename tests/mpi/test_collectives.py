"""Tests for the MPI collective algorithms.

Correctness here means *communication-structure* correctness: the
algorithms run to completion for every communicator size 2–8 and root,
move the right amount of data, and show the algorithmically expected
scaling (logarithmic rounds for trees, (n-1)/n traffic for ring and
pairwise).  Latency *values* are covered by the integration tests.
"""

import pytest

from repro.mpi.collectives import (
    COLLECTIVES,
    allgather,
    allreduce,
    broadcast,
    reduce,
    reduce_scatter,
)
from repro.mpi.comm import MpiWorld
from repro.units import KiB, MiB

SIZES = list(range(2, 9))


def run_collective(name, num_ranks, nbytes=256 * KiB, root=0):
    world = MpiWorld(rank_gcds=list(range(num_ranks)))
    fn = COLLECTIVES[name]

    def main(ctx):
        send = ctx.hip.malloc(nbytes)
        recv = ctx.hip.malloc(nbytes)
        t0 = ctx.now
        if name == "broadcast":
            yield from fn(ctx, send, nbytes, root)
        elif name == "reduce":
            yield from fn(ctx, send, recv, nbytes, root)
        else:
            yield from fn(ctx, send, recv, nbytes)
        return ctx.now - t0

    return world.run(main)


class TestCompletion:
    @pytest.mark.parametrize("name", sorted(COLLECTIVES))
    @pytest.mark.parametrize("num_ranks", SIZES)
    def test_all_sizes_complete(self, name, num_ranks):
        durations = run_collective(name, num_ranks)
        assert len(durations) == num_ranks
        assert all(d >= 0 for d in durations)

    @pytest.mark.parametrize("name", ["broadcast", "reduce"])
    @pytest.mark.parametrize("root", [0, 3, 7])
    def test_nonzero_roots(self, name, root):
        durations = run_collective(name, 8, root=root)
        assert all(d >= 0 for d in durations)

    def test_single_rank_is_noop(self):
        world = MpiWorld(rank_gcds=[0])

        def main(ctx):
            buf = ctx.hip.malloc(1 * KiB)
            yield from broadcast(ctx, buf, 1 * KiB)
            yield from allreduce(ctx, buf, buf, 1 * KiB)
            return ctx.now

        assert world.run(main) == [0.0]


class TestAlgorithmShape:
    def test_broadcast_rounds_are_logarithmic(self):
        """Tree depth grows with log2(n): 8 ranks ≈ 3× the 2-rank time
        (plus contention), not 7×."""
        two = max(run_collective("broadcast", 2, nbytes=4 * MiB))
        eight = max(run_collective("broadcast", 8, nbytes=4 * MiB))
        assert eight < 5.0 * two

    def test_allgather_traffic_scales_with_n_minus_1_over_n(self):
        """Ring allgather total time ∝ (n-1)/n × message: 8 ranks is
        far cheaper than 8× the 2-rank chunk time."""
        nbytes = 8 * MiB
        two = max(run_collective("allgather", 2, nbytes=nbytes))
        eight = max(run_collective("allgather", 8, nbytes=nbytes))
        # (7/8)/(1/2) = 1.75× the data, plus per-step overheads.
        assert eight < 3.0 * two

    def test_allreduce_power_of_two_beats_fallback(self):
        """Recursive doubling (n=8) beats reduce+broadcast (n=7) even
        with one more rank — the non-power-of-two penalty of Fig. 11."""
        seven = max(run_collective("allreduce", 7, nbytes=1 * MiB))
        eight = max(run_collective("allreduce", 8, nbytes=1 * MiB))
        assert eight < seven

    def test_reduce_scatter_chunks_shrink_with_ranks(self):
        nbytes = 8 * MiB
        four = max(run_collective("reduce_scatter", 4, nbytes=nbytes))
        eight = max(run_collective("reduce_scatter", 8, nbytes=nbytes))
        # More steps but smaller chunks: sub-linear growth.
        assert eight < 2.0 * four


class TestValidation:
    def test_bad_root(self):
        world = MpiWorld(rank_gcds=[0, 1])

        def main(ctx):
            buf = ctx.hip.malloc(1 * KiB)
            yield from broadcast(ctx, buf, 1 * KiB, root=5)

        from repro.errors import MpiError

        with pytest.raises(MpiError):
            world.run(main)

    def test_reduce_scatter_recv_too_small(self):
        world = MpiWorld(rank_gcds=[0, 1])

        def main(ctx):
            send = ctx.hip.malloc(1 * MiB)
            recv = ctx.hip.malloc(1 * KiB)  # chunk is 512 KiB
            yield from reduce_scatter(ctx, send, recv, 1 * MiB)

        from repro.errors import MpiError

        with pytest.raises(MpiError):
            world.run(main)

    def test_scratch_buffers_are_freed(self):
        world = MpiWorld(rank_gcds=[0, 1, 2, 3])

        def main(ctx):
            send = ctx.hip.malloc(1 * MiB)
            recv = ctx.hip.malloc(1 * MiB)
            before = ctx.hip.node.gcd(ctx.gcd).hbm.allocated_bytes
            yield from allreduce(ctx, send, recv, 1 * MiB)
            after = ctx.hip.node.gcd(ctx.gcd).hbm.allocated_bytes
            return before == after

        assert all(world.run(main))

"""Multi-tenant ResultCache hammer: threads + processes on one store.

``repro serve`` promotes the cache to a shared result store — many
job threads (and sweep worker processes) hit one directory with mixed
``store``/``load``/``clear`` traffic.  These tests pin the properties
that make that safe:

- a reader never observes a torn entry (atomic tempfile +
  ``os.replace`` publication);
- ``load`` answers either a clean miss or the *complete* value, even
  racing ``clear``;
- stale ``.tmp-*`` files from killed writers are invisible to
  ``entries()`` and swept by ``clear()``.
"""

import multiprocessing
import os
import pickle
import threading

import pytest

from repro.runner import ResultCache

KEYS = [f"{i:02x}{'ab' * 31}" for i in range(16)]  # 16 two-char shards


def _value_for(key: str) -> dict:
    # Big enough that a torn read cannot masquerade as a valid pickle.
    return {"key": key, "payload": [key] * 2000}


def _hammer_store_load(directory: str, seed: int) -> int:
    """One process's worth of mixed traffic; returns observed errors."""
    cache = ResultCache(directory, version="1")
    for round_no in range(20):
        key = KEYS[(seed + round_no) % len(KEYS)]
        cache.store(key, _value_for(key))
        hit, value = cache.load(key)
        if hit and value != _value_for(key):
            raise AssertionError(f"torn read for {key}")
        if (seed + round_no) % 7 == 0:
            cache.clear()
    return cache.stats.errors


class TestThreadHammer:
    def test_store_load_clear_race_is_clean(self, tmp_path):
        cache_dir = str(tmp_path)
        failures = []
        barrier = threading.Barrier(8)

        def worker(seed):
            try:
                barrier.wait(timeout=60)
                _hammer_store_load(cache_dir, seed)
            except BaseException as exc:  # noqa: BLE001 - surfaced below
                failures.append(exc)

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        if failures:
            raise failures[0]
        # Every surviving committed entry is complete and loadable.
        survivor = ResultCache(cache_dir, version="1")
        for path in survivor.entries():
            key = path.stem
            hit, value = survivor.load(key)
            assert hit and value == _value_for(key)
        assert survivor.stats.errors == 0

    def test_concurrent_same_key_store_keeps_one_full_copy(self, tmp_path):
        """N writers racing on ONE key must leave exactly one complete
        entry (last ``os.replace`` wins) and no droppings."""
        cache_dir = str(tmp_path)
        key = KEYS[0]
        barrier = threading.Barrier(12)

        def writer(tag):
            cache = ResultCache(cache_dir, version="1")
            barrier.wait(timeout=60)
            for _ in range(25):
                cache.store(key, _value_for(key))

        threads = [
            threading.Thread(target=writer, args=(i,)) for i in range(12)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        cache = ResultCache(cache_dir, version="1")
        assert cache.entry_count() == 1
        hit, value = cache.load(key)
        assert hit and value == _value_for(key)
        # No abandoned temporaries: every mkstemp was replaced/unlinked.
        shard = (tmp_path / "objects" / key[:2])
        assert not list(shard.glob(".tmp-*"))


class TestProcessHammer:
    def test_cross_process_traffic(self, tmp_path):
        """Separate processes (real serve workers / sweep pools) share
        the store without corruption."""
        try:
            ctx = multiprocessing.get_context("fork")
            with ctx.Pool(4) as pool:
                errors = pool.starmap(
                    _hammer_store_load, [(str(tmp_path), i) for i in range(4)]
                )
        except (OSError, NotImplementedError):
            pytest.skip("no multiprocessing in this sandbox")
        assert errors == [0, 0, 0, 0]
        survivor = ResultCache(tmp_path, version="1")
        for path in survivor.entries():
            hit, value = survivor.load(path.stem)
            assert hit and value == _value_for(path.stem)


class TestStaleTemporaries:
    def test_tmp_files_hidden_from_entries_and_swept_by_clear(self, tmp_path):
        from repro.runner.cache import STALE_TMP_SECONDS

        cache = ResultCache(tmp_path, version="1")
        cache.store(KEYS[0], _value_for(KEYS[0]))
        shard = tmp_path / "objects" / KEYS[0][:2]
        # Simulate a writer killed between mkstemp and os.replace, long
        # ago (backdated past the stale threshold)...
        stale = shard / ".tmp-dead12.pkl"
        stale.write_bytes(b"\x80\x05 truncated garbage")
        long_ago = os.path.getmtime(stale) - STALE_TMP_SECONDS - 60
        os.utime(stale, (long_ago, long_ago))
        # ...and one that is in-flight right now.
        fresh = shard / ".tmp-live34.pkl"
        fresh.write_bytes(b"\x80\x05 in flight")
        assert cache.entry_count() == 1  # temps are not entries
        assert [p.name for p in cache.entries()] == [f"{KEYS[0]}.pkl"]
        removed = cache.clear()
        assert removed == 1  # temps are swept but not counted
        assert not stale.exists()  # dead writer's droppings gone
        assert fresh.exists()  # live writer's temp untouched
        assert cache.entry_count() == 0

    def test_store_racing_clear_never_raises(self, tmp_path):
        """Regression: clear() swept a temp belonging to an in-flight
        store, whose os.replace then crashed with FileNotFoundError."""
        cache = ResultCache(tmp_path, version="1")
        key = KEYS[3]
        real_replace = os.replace

        def sweep_then_replace(src, dst):
            # A concurrent clear() wins the race and deletes the temp.
            os.unlink(src)
            return real_replace(src, dst)

        cache.store(key, _value_for(key))  # healthy path first
        try:
            os.replace = sweep_then_replace
            cache.store(key, _value_for(key))  # must not raise
        finally:
            os.replace = real_replace
        assert cache.stats.errors == 1
        assert cache.stats.stores == 1  # the lost store is not counted
        hit, value = cache.load(key)  # first copy still intact
        assert hit and value == _value_for(key)

    def test_torn_entry_is_dropped_as_miss(self, tmp_path):
        cache = ResultCache(tmp_path, version="1")
        cache.store(KEYS[1], _value_for(KEYS[1]))
        path = tmp_path / "objects" / KEYS[1][:2] / f"{KEYS[1]}.pkl"
        blob = path.read_bytes()
        path.write_bytes(blob[: len(blob) // 2])  # truncate mid-pickle
        hit, value = cache.load(KEYS[1])
        assert not hit and value is None
        assert cache.stats.errors == 1
        assert not path.exists()  # corrupt entry deleted, not retried

    def test_atomic_publication_never_exposes_partial(self, tmp_path):
        """A reader polling while a writer stores sees miss → full
        value, never a partial pickle (pins the os.replace path)."""
        cache_dir = str(tmp_path)
        key = KEYS[2]
        stop = threading.Event()
        bad = []

        def reader():
            cache = ResultCache(cache_dir, version="1")
            while not stop.is_set():
                hit, value = cache.load(key)
                if hit and value != _value_for(key):
                    bad.append(value)
            if cache.stats.errors:
                bad.append(f"{cache.stats.errors} corrupt reads")

        poller = threading.Thread(target=reader)
        poller.start()
        writer = ResultCache(cache_dir, version="1")
        for _ in range(200):
            writer.store(key, _value_for(key))
        stop.set()
        poller.join()
        assert not bad

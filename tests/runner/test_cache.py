"""ResultCache storage semantics: round-trips, corruption, clearing."""

from repro.runner import CacheStats, ResultCache, SimPoint
from repro.units import MiB


def _point(size=1 * MiB):
    return SimPoint.make(
        "fig03",
        "h2d/pinned",
        "repro.bench_suites.comm_scope:measure_h2d",
        interface="pinned_memcpy",
        size=size,
    )


class TestResultCache:
    def test_round_trip(self, tmp_path):
        cache = ResultCache(tmp_path, version="1")
        key = cache.key_for(_point())
        assert key is not None
        hit, _ = cache.load(key)
        assert not hit
        cache.store(key, 123.5)
        hit, value = cache.load(key)
        assert hit and value == 123.5
        assert cache.stats.as_dict() == {
            "hits": 1,
            "misses": 1,
            "stores": 1,
            "uncacheable": 0,
            "errors": 0,
        }

    def test_version_isolates_entries(self, tmp_path):
        old = ResultCache(tmp_path, version="1")
        new = ResultCache(tmp_path, version="2")
        key_old = old.key_for(_point())
        key_new = new.key_for(_point())
        assert key_old != key_new
        old.store(key_old, 1.0)
        hit, _ = new.load(key_new)
        assert not hit

    def test_corrupt_entry_is_dropped_and_recomputed(self, tmp_path):
        cache = ResultCache(tmp_path, version="1")
        key = cache.key_for(_point())
        cache.store(key, 1.0)
        path = cache._path(key)
        path.write_bytes(b"not a pickle")
        hit, _ = cache.load(key)
        assert not hit
        assert cache.stats.errors == 1
        assert not path.exists()

    def test_entries_and_clear(self, tmp_path):
        cache = ResultCache(tmp_path, version="1")
        for size in (1 * MiB, 2 * MiB, 4 * MiB):
            cache.store(cache.key_for(_point(size)), float(size))
        assert cache.entry_count() == 3
        assert cache.total_bytes() > 0
        assert "entries: 3" in cache.describe()
        assert cache.clear() == 3
        assert cache.entry_count() == 0

    def test_inflight_temp_files_are_not_entries(self, tmp_path):
        """Regression: ``.tmp-*.pkl`` left by a killed writer matched the
        ``*/*.pkl`` glob (pathlib globs match dotfiles) and were counted,
        sized and "cleared" as if they were committed entries."""
        cache = ResultCache(tmp_path, version="1")
        cache.store(cache.key_for(_point()), 1.0)
        bucket = next(cache.entries()).parent
        stale = bucket / ".tmp-abandoned.pkl"
        stale.write_bytes(b"partial write")
        assert cache.entry_count() == 1
        assert all(not p.name.startswith(".") for p in cache.entries())
        committed = cache._path(cache.key_for(_point())).stat().st_size
        assert cache.total_bytes() == committed

    def test_clear_sweeps_stale_temp_files_uncounted(self, tmp_path):
        import os

        from repro.runner.cache import STALE_TMP_SECONDS

        cache = ResultCache(tmp_path, version="1")
        cache.store(cache.key_for(_point()), 1.0)
        bucket = next(cache.entries()).parent
        stale = bucket / ".tmp-abandoned.pkl"
        stale.write_bytes(b"x")
        # Only temps older than the stale threshold are swept — a fresh
        # one may belong to an in-flight writer (see
        # test_cache_concurrency).
        old = os.path.getmtime(stale) - STALE_TMP_SECONDS - 60
        os.utime(stale, (old, old))
        assert cache.clear() == 1  # temp sweep not counted as an entry
        assert not stale.exists()

    def test_total_bytes_tolerates_concurrent_clear(self, tmp_path):
        """Regression: a file deleted between the directory listing and
        ``stat`` (a concurrent ``clear``) raised FileNotFoundError."""
        cache = ResultCache(tmp_path, version="1")
        for size in (1 * MiB, 2 * MiB):
            cache.store(cache.key_for(_point(size)), float(size))
        surviving = list(cache.entries())[0]
        real_entries = ResultCache.entries

        def entries_then_clear(self):
            paths = list(real_entries(self))
            for path in paths:
                if path != surviving:
                    path.unlink()  # simulate another runner clearing
            return iter(paths)

        ResultCache.entries = entries_then_clear
        try:
            assert cache.total_bytes() == surviving.stat().st_size
        finally:
            ResultCache.entries = real_entries

    def test_clear_tolerates_concurrent_clear(self, tmp_path):
        cache = ResultCache(tmp_path, version="1")
        cache.store(cache.key_for(_point()), 1.0)
        victim = next(cache.entries())
        real_entries = ResultCache.entries

        def entries_then_clear(self):
            paths = list(real_entries(self))
            for path in paths:
                path.unlink()
            return iter(paths)

        ResultCache.entries = entries_then_clear
        try:
            assert cache.clear() == 0  # already gone: skipped, not raised
        finally:
            ResultCache.entries = real_entries
        assert not victim.exists()

    def test_env_var_sets_default_dir(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "env-cache"))
        cache = ResultCache()
        assert cache.directory == tmp_path / "env-cache"

    def test_stats_dataclass_defaults(self):
        stats = CacheStats()
        assert stats.as_dict() == {
            "hits": 0,
            "misses": 0,
            "stores": 0,
            "uncacheable": 0,
            "errors": 0,
        }

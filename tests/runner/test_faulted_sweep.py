"""Fault-sensitivity sweeps: cache keying, determinism, and the
BaseException discipline of the result cache."""

import pickle

import pytest

from repro.faults import FaultScenario, LinkDegrade
from repro.runner import ResultCache, SimPoint, SweepRunner
from repro.units import MiB

DEGRADE = FaultScenario(
    events=(LinkDegrade(link="gcd1-gcd3:single", factor=0.5, at=0.0),),
    name="degrade",
)


def _points(sizes=(16 * MiB, 32 * MiB)):
    return [
        SimPoint.make(
            "fig06",
            f"bw/1->3/{size}",
            "repro.bench_suites.p2p_matrix:measure_pair_bandwidth",
            src_gcd=1,
            dst_gcd=3,
            size=size,
        )
        for size in sizes
    ]


class TestFaultedExecution:
    def test_scenario_reaches_internally_built_sessions(self, topology):
        """measure_pair_bandwidth builds its own Session; the runner's
        ambient scenario must still reach it.  With the 1-3 link halved
        the link itself becomes the binding constraint, so measured
        bandwidth drops to (just under) the degraded capacity."""
        points = _points()
        healthy = SweepRunner(use_cache=False).run_points(points)
        faulted = SweepRunner(use_cache=False, faults=DEGRADE).run_points(
            points
        )
        from repro.faults.injector import resolve_link

        degraded_capacity = (
            0.5 * resolve_link(topology, "gcd1-gcd3:single").capacity_per_direction
        )
        for before, after in zip(healthy, faulted):
            assert after < 0.75 * before
            assert after <= degraded_capacity * (1 + 1e-6)
            assert after > 0.9 * degraded_capacity

    def test_faulted_parallel_matches_serial(self):
        points = _points()
        serial = SweepRunner(1, use_cache=False, faults=DEGRADE).run_points(
            points
        )
        parallel = SweepRunner(4, use_cache=False, faults=DEGRADE).run_points(
            points
        )
        assert parallel == serial

    def test_runner_leaves_no_ambient_scenario_behind(self):
        from repro.faults.context import active

        SweepRunner(use_cache=False, faults=DEGRADE).run_points(_points())
        assert active() is None


class TestFaultedCacheKeys:
    def _key(self, runner, cache, point):
        return cache.key_for(runner._keyed_point(point))

    def test_faulted_and_healthy_runs_never_collide(self, tmp_path):
        cache = ResultCache(tmp_path, version="1")
        point = _points()[0]
        healthy = SweepRunner(cache=cache)
        faulted = SweepRunner(cache=cache, faults=DEGRADE)
        assert self._key(healthy, cache, point) != self._key(
            faulted, cache, point
        )

    def test_scenario_name_does_not_affect_the_key(self, tmp_path):
        cache = ResultCache(tmp_path, version="1")
        point = _points()[0]
        renamed = FaultScenario(events=DEGRADE.events, name="other-name")
        a = SweepRunner(cache=cache, faults=DEGRADE)
        b = SweepRunner(cache=cache, faults=renamed)
        assert self._key(a, cache, point) == self._key(b, cache, point)

    def test_empty_scenario_is_equivalent_to_healthy(self, tmp_path):
        cache = ResultCache(tmp_path, version="1")
        point = _points()[0]
        healthy = SweepRunner(cache=cache)
        empty = SweepRunner(cache=cache, faults=FaultScenario())
        assert empty.faults is None
        assert self._key(healthy, cache, point) == self._key(
            empty, cache, point
        )

    def test_warm_faulted_run_hits_its_own_entries(self, tmp_path):
        cache = ResultCache(tmp_path, version="1")
        points = _points()
        cold = SweepRunner(cache=cache, faults=DEGRADE)
        first = cold.run_points(points)
        warm = SweepRunner(cache=cache, faults=DEGRADE)
        assert warm.run_points(points) == first
        assert warm.stats.cache_hits == len(points)
        # A healthy runner on the same cache must not see those entries.
        healthy = SweepRunner(cache=cache)
        healthy.run_points(points)
        assert healthy.stats.cache_hits == 0


class TestCacheExceptionDiscipline:
    def test_corrupt_entry_recomputes_instead_of_raising(self, tmp_path):
        cache = ResultCache(tmp_path, version="1")
        cache.store("ab" * 32, 42)
        path = cache._path("ab" * 32)
        path.write_bytes(b"not a pickle")
        hit, value = cache.load("ab" * 32)
        assert (hit, value) == (False, None)
        assert cache.stats.errors == 1
        assert not path.exists()  # corrupt entry dropped

    def test_keyboard_interrupt_propagates(self, tmp_path, monkeypatch):
        """Regression: a bare ``except Exception`` here used to swallow
        Ctrl-C mid-load and miscount it as cache corruption."""
        cache = ResultCache(tmp_path, version="1")
        cache.store("cd" * 32, 42)

        def interrupted(*_args, **_kwargs):
            raise KeyboardInterrupt

        monkeypatch.setattr(pickle, "load", interrupted)
        with pytest.raises(KeyboardInterrupt):
            cache.load("cd" * 32)
        assert cache.stats.errors == 0

    def test_system_exit_propagates(self, tmp_path, monkeypatch):
        cache = ResultCache(tmp_path, version="1")
        cache.store("ef" * 32, 42)

        def exiting(*_args, **_kwargs):
            raise SystemExit(1)

        monkeypatch.setattr(pickle, "load", exiting)
        with pytest.raises(SystemExit):
            cache.load("ef" * 32)

"""SweepRunner mechanics: job resolution, caching, fallback, ordering."""

import multiprocessing
import os

import pytest

from repro.runner import ResultCache, SimPoint, SweepRunner, resolve_jobs
from repro.runner.runner import available_cpus
from repro.units import MiB


def _grid(sizes=(1 * MiB, 2 * MiB, 4 * MiB)):
    return [
        SimPoint.make(
            "fig03",
            f"h2d/pinned/{size}",
            "repro.bench_suites.comm_scope:measure_h2d",
            interface="pinned_memcpy",
            size=size,
        )
        for size in sizes
    ]


class TestResolveJobs:
    def test_defaults_and_auto(self):
        assert resolve_jobs(None) == 1
        assert resolve_jobs(3) == 3
        assert resolve_jobs("2") == 2
        cores = available_cpus()
        assert resolve_jobs(0) == cores
        assert resolve_jobs("auto") == cores

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            resolve_jobs(-1)

    def test_auto_respects_affinity_mask(self, monkeypatch):
        """Regression: ``auto`` used ``os.cpu_count()``, which reports
        the machine, not the cgroup/affinity mask — a container pinned
        to 2 of 64 cores got 64 workers."""
        monkeypatch.setattr(os, "sched_getaffinity", lambda pid: {0, 3}, raising=False)
        assert available_cpus() == 2
        assert resolve_jobs("auto") == 2
        assert resolve_jobs(0) == 2

    def test_falls_back_to_cpu_count_without_affinity(self, monkeypatch):
        monkeypatch.delattr(os, "sched_getaffinity", raising=False)
        assert available_cpus() == (os.cpu_count() or 1)

    def test_empty_affinity_mask_falls_back(self, monkeypatch):
        monkeypatch.setattr(os, "sched_getaffinity", lambda pid: set(), raising=False)
        assert available_cpus() == (os.cpu_count() or 1)


class TestRunPoints:
    def test_outputs_in_point_order(self):
        points = _grid()
        runner = SweepRunner(use_cache=False)
        assert runner.run_points(points) == [p.execute() for p in points]
        assert runner.stats.points == 3
        assert runner.stats.executed == 3
        assert runner.stats.cache_hits == 0

    def test_second_run_is_all_hits(self, tmp_path):
        points = _grid()
        runner = SweepRunner(cache=ResultCache(tmp_path, version="1"))
        cold = runner.run_points(points)
        warm = runner.run_points(points)
        assert warm == cold
        assert runner.stats.executed == 3
        assert runner.stats.cache_hits == 3
        assert "3 hit(s)" in runner.stats.describe()

    def test_no_cache_runner_never_touches_disk(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        runner = SweepRunner(use_cache=False)
        runner.run_points(_grid())
        assert runner.cache is None
        assert not (tmp_path / "objects").exists()

    def test_parallel_matches_serial(self, tmp_path):
        points = _grid()
        serial = SweepRunner(1, use_cache=False).run_points(points)
        parallel = SweepRunner(4, use_cache=False).run_points(points)
        assert parallel == serial

    def test_pool_failure_falls_back_to_serial(self, monkeypatch):
        runner = SweepRunner(4, use_cache=False)
        monkeypatch.setattr(
            SweepRunner,
            "_execute_parallel",
            lambda self, points, trampoline: (_ for _ in ()).throw(
                OSError("no pool")
            ),
        )
        points = _grid()
        assert runner.run_points(points) == [p.execute() for p in points]
        assert runner.stats.parallel_fallbacks == 1


def _die_in_worker(point):
    """Trampoline that kills pool workers but works in the parent.

    ``os._exit`` from inside a worker is what an OOM kill or a native
    segfault looks like to the executor: the pool turns into a
    ``BrokenProcessPool``.  Run serially (in the parent) it behaves.
    """
    if multiprocessing.parent_process() is not None:
        os._exit(13)
    return point.execute()


def _die_everywhere(point):
    if multiprocessing.parent_process() is not None:
        os._exit(13)
    raise RuntimeError("serial retry is broken too")


class TestPoolCrashFallback:
    def test_worker_crash_finishes_serially(self):
        """Regression: a worker dying mid-sweep surfaced a raw
        ``BrokenProcessPool`` to the caller even though the remaining
        points were perfectly runnable."""
        runner = SweepRunner(2, use_cache=False)
        points = _grid()
        results = runner._execute_parallel(points, _die_in_worker)
        assert results == [p.execute() for p in points]
        assert runner.stats.pool_crashes == 1

    def test_serial_failure_after_crash_propagates(self):
        runner = SweepRunner(2, use_cache=False)
        with pytest.raises(RuntimeError, match="serial retry"):
            runner._execute_parallel(_grid(), _die_everywhere)
        assert runner.stats.pool_crashes == 1

    def test_healthy_pool_counts_no_crashes(self, tmp_path):
        runner = SweepRunner(2, use_cache=False)
        points = _grid()
        assert runner.run_points(points) == [p.execute() for p in points]
        assert runner.stats.pool_crashes == 0


class TestPerRunCacheStats:
    def test_fresh_runner_on_shared_cache_reports_own_hits(self, tmp_path):
        """Regression: RunnerStats copied the cache's *lifetime* totals,
        so a second runner sharing a warmed cache reported the first
        runner's misses as its own."""
        cache = ResultCache(tmp_path, version="1")
        points = _grid()
        SweepRunner(cache=cache).run_points(points)  # warm it up
        warm = SweepRunner(cache=cache)
        warm.run_points(points)
        assert warm.stats.cache_hits == 3
        assert warm.stats.cache_misses == 0  # not the warming run's 3
        assert "3 hit(s) / 0 miss(es)" in warm.stats.describe()

    def test_repeated_runs_accumulate_deltas(self, tmp_path):
        runner = SweepRunner(cache=ResultCache(tmp_path, version="1"))
        points = _grid()
        runner.run_points(points)
        runner.run_points(points)
        assert runner.stats.cache_misses == 3
        assert runner.stats.cache_hits == 3
        assert runner.stats.points == 6


class TestCaptureMetrics:
    def test_runner_merges_per_point_snapshots(self):
        runner = SweepRunner(use_cache=False, capture_metrics=True)
        outputs = runner.run_points(_grid())
        plain = SweepRunner(use_cache=False).run_points(_grid())
        assert outputs == plain  # observation never changes results
        metrics = runner.stats.metrics
        assert metrics is not None
        assert metrics["counters"]["network/flows_started"] >= 3
        assert any(
            usage["bytes"] > 0 for usage in metrics["channels"].values()
        )

    def test_disabled_by_default(self):
        runner = SweepRunner(use_cache=False)
        runner.run_points(_grid())
        assert runner.stats.metrics is None
        assert "metrics" not in runner.stats.as_dict()


class TestExperimentAPI:
    def test_run_experiment_matches_legacy(self):
        from repro import figures

        legacy = figures.run("fig04")
        runner = SweepRunner(use_cache=False)
        assert runner.run_experiment("fig04").canonical() == legacy.canonical()

    def test_run_many_dedups_and_preserves_order(self):
        runner = SweepRunner(use_cache=False)
        results = runner.run_many(["fig04", "fig02", "fig04"])
        assert list(results) == ["fig04", "fig02"]
        from repro import figures

        for eid, result in results.items():
            assert result.canonical() == figures.run(eid).canonical()
            assert result.wall_seconds > 0

"""CLI surface of the runner: --jobs/--no-cache/--cache-stats, repro cache."""

import pytest

from repro.cli import main


@pytest.fixture
def cache_dir(tmp_path, monkeypatch):
    directory = tmp_path / "cache"
    monkeypatch.setenv("REPRO_CACHE_DIR", str(directory))
    return directory


class TestRunCommand:
    def test_unknown_artifact_exits_2_with_id_listing(self, capsys):
        assert main(["run", "fig99"]) == 2
        err = capsys.readouterr().err
        assert "unknown artifact(s): fig99" in err
        assert "valid ids:" in err
        assert "fig03" in err and "'all'" in err

    def test_run_writes_reports_and_cache_stats(self, cache_dir, tmp_path, capsys):
        out_dir = tmp_path / "reports"
        code = main(
            ["run", "fig04", "-o", str(out_dir), "--cache-stats"]
        )
        assert code == 0
        assert (out_dir / "fig04.txt").is_file()
        assert "sweep-runner:" in capsys.readouterr().out
        assert (cache_dir / "objects").is_dir()

    def test_warm_run_hits_cache(self, cache_dir, capsys):
        assert main(["run", "fig04", "--cache-stats"]) == 0
        cold = capsys.readouterr().out
        assert main(["run", "fig04", "--jobs", "2", "--cache-stats"]) == 0
        warm = capsys.readouterr().out
        assert "0 executed" in warm.splitlines()[-1]
        # Reports themselves are identical cold vs warm.
        assert warm.splitlines()[:-1][:5] == cold.splitlines()[:5]

    def test_no_cache_flag_disables_caching(self, cache_dir, capsys):
        assert main(["run", "fig04", "--no-cache", "--cache-stats"]) == 0
        assert "0 hit(s)" in capsys.readouterr().out
        assert not (cache_dir / "objects").exists()


class TestCacheCommand:
    def test_show_then_clear(self, cache_dir, capsys):
        assert main(["run", "fig04"]) == 0
        capsys.readouterr()
        assert main(["cache"]) == 0
        shown = capsys.readouterr().out
        assert "entries: 3" in shown
        assert str(cache_dir) in shown
        assert main(["cache", "clear"]) == 0
        assert "removed 3" in capsys.readouterr().out
        assert main(["cache", "show"]) == 0
        assert "entries: 0" in capsys.readouterr().out


class TestValidateAndMethodology:
    def test_validate_accepts_runner_flags(self, cache_dir, capsys):
        assert main(["validate", "--jobs", "2", "--cache-stats"]) == 0
        out = capsys.readouterr().out
        assert "checks passed" in out
        assert "sweep-runner:" in out

    def test_validate_json_to_stdout(self, cache_dir, capsys):
        import json

        assert main(["validate", "--json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["passed"] is True
        assert document["failed"] == 0
        assert document["total"] == len(document["checks"])
        check = document["checks"][0]
        assert set(check) == {
            "check_id",
            "passed",
            "observed",
            "expected",
            "unit",
            "detail",
        }

    def test_validate_json_to_file(self, cache_dir, tmp_path, capsys):
        import json

        out_path = tmp_path / "validation.json"
        assert main(["validate", "--json", str(out_path)]) == 0
        assert "wrote" in capsys.readouterr().out
        document = json.loads(out_path.read_text())
        assert document["passed"] is True
        assert "scenario" in document

    def test_validate_json_exit_nonzero_on_fail(self, cache_dir, capsys, monkeypatch):
        # Force a failing battery: every tolerance check reports out
        # of bounds, so the CLI must exit non-zero and say so in JSON.
        import json

        from repro.core import validation

        monkeypatch.setattr(
            validation, "_within", lambda *args, **kwargs: False
        )
        code = main(["validate", "--json"])
        document = json.loads(capsys.readouterr().out)
        assert code == 1
        assert document["passed"] is False
        assert document["failed"] == document["total"]


class TestReportCommand:
    def test_unknown_artifact_exits_2(self, capsys):
        assert main(["report", "fig99"]) == 2
        err = capsys.readouterr().err
        assert "unknown artifact" in err
        assert "valid ids:" in err

    def test_writes_html_and_json(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        code = main(
            [
                "report",
                "fig05",
                "-o",
                "out.html",
                "--json",
                "out.json",
                "--no-validate",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "wrote out.html" in out
        assert "wrote out.json" in out
        assert "critical path" in out
        html_doc = (tmp_path / "out.html").read_text()
        assert html_doc.startswith("<!DOCTYPE html>")
        import json

        document = json.loads((tmp_path / "out.json").read_text())
        assert document["artifact"] == "fig05"
        assert document["validation"] is None

    def test_default_output_name(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert main(["report", "fig05", "--no-validate"]) == 0
        assert "wrote report_fig05.html" in capsys.readouterr().out
        assert (tmp_path / "report_fig05.html").is_file()


class TestExplainCommand:
    def test_unknown_artifact_exits_2(self, capsys):
        assert main(["explain", "fig99"]) == 2
        assert "unknown artifact" in capsys.readouterr().err

    def test_explains_critical_path(self, capsys):
        assert main(["explain", "fig05", "--top", "3"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("fig05:")
        assert "critical path" in out

    def test_accepts_module_alias(self, capsys):
        assert main(["explain", "fig05_scaling"]) == 0
        assert capsys.readouterr().out.startswith("fig05:")

    def test_unknown_span_id_exits_2(self, capsys):
        assert main(["explain", "fig05", "--span", "999999"]) == 2
        assert "no span with id" in capsys.readouterr().err


class TestMetricsFlag:
    def test_run_metrics_prints_channel_table(self, cache_dir, capsys):
        assert main(["run", "fig04", "--no-cache", "--metrics"]) == 0
        out = capsys.readouterr().out
        assert "counters:" in out
        assert "channels by bytes moved" in out
        assert "network/flows_started" in out

    def test_all_cached_run_explains_empty_metrics(self, cache_dir, capsys):
        assert main(["run", "fig04"]) == 0
        capsys.readouterr()
        assert main(["run", "fig04", "--metrics"]) == 0
        out = capsys.readouterr().out
        assert "no metrics captured" in out
        assert "--no-cache" in out


class TestTraceCommand:
    def test_exports_valid_chrome_trace(self, tmp_path, capsys):
        import json

        from repro.obs import validate_chrome_trace

        out_path = tmp_path / "trace.json"
        assert main(["trace", "fig04", "--out", str(out_path), "--check"]) == 0
        out = capsys.readouterr().out
        assert "slice(s)" in out and "schema check passed" in out
        payload = json.loads(out_path.read_text())
        assert validate_chrome_trace(payload) == []
        assert payload["otherData"]["experiment"] == "fig04"

    def test_unknown_artifact_exits_2(self, tmp_path, capsys):
        code = main(["trace", "fig99", "--out", str(tmp_path / "t.json")])
        assert code == 2
        assert "unknown artifact" in capsys.readouterr().err

    def test_trace_capacity_bounds_retention(self, tmp_path, capsys):
        out_path = tmp_path / "trace.json"
        assert main(
            [
                "trace",
                "fig04",
                "--out",
                str(out_path),
                "--trace-capacity",
                "2",
            ]
        ) == 0
        import json

        payload = json.loads(out_path.read_text())
        point_slices = [
            e
            for e in payload["traceEvents"]
            if e["ph"] == "X" and e.get("cat") == "point"
        ]
        assert point_slices
        # Each point keeps at most ``capacity`` real records...
        real = [
            e
            for e in payload["traceEvents"]
            if e["ph"] == "X" and e.get("cat") != "point"
        ]
        assert len(real) <= 2 * len(point_slices)
        # ...and at least one busy point reports evictions.
        assert any(
            slice_["args"]["trace_dropped"] > 0 for slice_ in point_slices
        )


@pytest.fixture
def fig09_telemetry(tmp_path):
    from repro.twin import synthesize_telemetry

    path = tmp_path / "fig09.jsonl"
    synthesize_telemetry("fig09").dump(path)
    return path


@pytest.fixture
def drifted_telemetry(tmp_path):
    from repro.twin import synthesize_telemetry

    path = tmp_path / "fig09_drifted.jsonl"
    synthesize_telemetry(
        "fig09", perturb={"kernel_xgmi_bidir_efficiency": 0.85}
    ).dump(path)
    return path


class TestShadowCommand:
    def test_zero_drift_replay_exits_0(self, fig09_telemetry, capsys):
        assert main(["shadow", "--telemetry", str(fig09_telemetry)]) == 0
        out = capsys.readouterr().out
        assert "Shadow replay" in out
        assert "no drift above" in out

    def test_alerts_exit_1(self, drifted_telemetry, capsys):
        assert main(["shadow", "--telemetry", str(drifted_telemetry)]) == 1
        assert "alert(s) above" in capsys.readouterr().out

    def test_json_payload(self, fig09_telemetry, tmp_path, capsys):
        import json

        out = tmp_path / "shadow.json"
        code = main(
            [
                "shadow",
                "--telemetry",
                str(fig09_telemetry),
                "--window",
                "0.1",
                "--json",
                str(out),
            ]
        )
        assert code == 0
        payload = json.loads(out.read_text())
        assert payload["schema"] == "repro-shadow/1"
        assert payload["overall"]["max_abs_drift"] == 0.0

    def test_requires_telemetry(self, capsys):
        assert main(["shadow"]) == 2
        assert "requires --telemetry" in capsys.readouterr().err

    def test_rejects_bad_telemetry_file(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"schema": "repro-telemetry/9"}\n')
        assert main(["shadow", "--telemetry", str(bad)]) == 2
        assert "cannot load telemetry" in capsys.readouterr().err

    def test_alert_threshold_flag(self, drifted_telemetry, capsys):
        code = main(
            [
                "shadow",
                "--telemetry",
                str(drifted_telemetry),
                "--alert-threshold",
                "0.9",
            ]
        )
        assert code == 0


class TestCalibrateCommand:
    def test_fit_writes_profile_with_provenance(
        self, drifted_telemetry, tmp_path, capsys
    ):
        from repro.core.calibration import DEFAULT_CALIBRATION, load_profile

        out = tmp_path / "profile.json"
        code = main(
            [
                "calibrate",
                "--telemetry",
                str(drifted_telemetry),
                "--fields",
                "kernel_xgmi_bidir_efficiency",
                "--out",
                str(out),
            ]
        )
        assert code == 0
        assert "residual RMS" in capsys.readouterr().out
        profile, provenance = load_profile(out)
        truth = DEFAULT_CALIBRATION.kernel_xgmi_bidir_efficiency * 0.85
        assert abs(profile.kernel_xgmi_bidir_efficiency - truth) / truth < 0.01
        assert provenance["source"] == "fitted-from-telemetry"

    def test_fitted_profile_feeds_shadow(
        self, drifted_telemetry, tmp_path, capsys
    ):
        out = tmp_path / "profile.json"
        assert (
            main(
                [
                    "calibrate",
                    "--telemetry",
                    str(drifted_telemetry),
                    "--fields",
                    "kernel_xgmi_bidir_efficiency",
                    "--out",
                    str(out),
                ]
            )
            == 0
        )
        capsys.readouterr()
        code = main(
            [
                "shadow",
                "--telemetry",
                str(drifted_telemetry),
                "--calibration",
                str(out),
            ]
        )
        assert code == 0
        assert "no drift above" in capsys.readouterr().out

    def test_requires_telemetry(self, capsys):
        assert main(["calibrate"]) == 2
        assert "requires --telemetry" in capsys.readouterr().err

    def test_rejects_unknown_field(self, fig09_telemetry, capsys):
        code = main(
            [
                "calibrate",
                "--telemetry",
                str(fig09_telemetry),
                "--fields",
                "warp_speed",
            ]
        )
        assert code == 2
        assert "not fittable" in capsys.readouterr().err


class TestSigpipeHandling:
    """``repro ... | head`` must not die with a BrokenPipeError traceback."""

    class _ClosedPipe:
        """A stdout whose reader has gone away: every write EPIPEs."""

        def write(self, text):
            raise BrokenPipeError(32, "Broken pipe")

        def flush(self):
            raise BrokenPipeError(32, "Broken pipe")

    def test_broken_pipe_exits_141(self, monkeypatch):
        import sys as _sys

        from repro.cli import SIGPIPE_EXIT

        monkeypatch.setattr(_sys, "stdout", self._ClosedPipe())
        assert main(["list"]) == SIGPIPE_EXIT == 141

    def test_broken_pipe_on_json_emit_exits_141(self, cache_dir, monkeypatch):
        import sys as _sys

        from repro.cli import SIGPIPE_EXIT

        monkeypatch.setattr(_sys, "stdout", self._ClosedPipe())
        assert main(["run", "fig04", "--json", "-"]) == SIGPIPE_EXIT

    def test_real_pipe_closed_reader(self, tmp_path):
        """End-to-end: reader closes first, CLI exits 141 quietly."""
        import os as _os
        import subprocess
        import sys as _sys

        env = {**_os.environ, "PYTHONPATH": "src", "REPRO_CACHE_DIR": str(tmp_path)}
        proc = subprocess.Popen(
            [_sys.executable, "-m", "repro.cli", "run", "fig01", "--json", "-"],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            env=env,
        )
        proc.stdout.close()  # reader hangs up before the CLI writes
        _, err = proc.communicate(timeout=120)
        assert proc.returncode == 141, err.decode()
        assert b"Traceback" not in err
        assert b"BrokenPipeError" not in err

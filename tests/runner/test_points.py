"""SimPoint construction, callable resolution, and execution."""

import pickle

import pytest

from repro.errors import BenchmarkError
from repro.runner import SimPoint, resolve_callable
from repro.units import MiB


class TestResolveCallable:
    def test_resolves_module_and_attribute(self):
        fn = resolve_callable("repro.bench_suites.comm_scope:measure_h2d")
        from repro.bench_suites.comm_scope import measure_h2d

        assert fn is measure_h2d

    def test_rejects_missing_separator(self):
        with pytest.raises(BenchmarkError):
            resolve_callable("repro.bench_suites.comm_scope.measure_h2d")

    def test_rejects_unknown_attribute(self):
        with pytest.raises(BenchmarkError):
            resolve_callable("repro.bench_suites.comm_scope:nope")


class TestSimPoint:
    def test_make_sorts_params_and_drops_none(self):
        point = SimPoint.make(
            "fig03",
            "h2d/pinned/1",
            "repro.bench_suites.comm_scope:measure_h2d",
            size=1 * MiB,
            interface="pinned_memcpy",
            topology=None,
            calibration=None,
        )
        assert point.params == (("interface", "pinned_memcpy"), ("size", 1 * MiB))
        assert point.kwargs == {"interface": "pinned_memcpy", "size": 1 * MiB}

    def test_execute_runs_the_measurement(self):
        point = SimPoint.make(
            "fig03",
            "h2d/pinned/4MiB",
            "repro.bench_suites.comm_scope:measure_h2d",
            interface="pinned_memcpy",
            size=4 * MiB,
        )
        from repro.bench_suites.comm_scope import measure_h2d

        assert point.execute() == measure_h2d("pinned_memcpy", 4 * MiB)

    def test_points_are_picklable(self):
        point = SimPoint.make(
            "fig03",
            "h2d/pinned/1",
            "repro.bench_suites.comm_scope:measure_h2d",
            interface="pinned_memcpy",
            size=1 * MiB,
        )
        clone = pickle.loads(pickle.dumps(point))
        assert clone == point
        assert clone.execute() == point.execute()

    def test_none_kwarg_matches_function_default(self):
        explicit = SimPoint.make(
            "fig03",
            "a",
            "repro.bench_suites.comm_scope:measure_h2d",
            interface="pinned_memcpy",
            size=1 * MiB,
        )
        with_none = SimPoint.make(
            "fig03",
            "b",
            "repro.bench_suites.comm_scope:measure_h2d",
            interface="pinned_memcpy",
            size=1 * MiB,
            topology=None,
        )
        assert explicit.params == with_none.params

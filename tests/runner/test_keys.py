"""Cache-key canonicalization: stability, sharing, and invalidation."""

import pytest

from repro.config import SimEnvironment
from repro.core.calibration import DEFAULT_CALIBRATION
from repro.runner import SimPoint, UncacheableValueError, canonical_token, point_key
from repro.topology.presets import frontier_node, single_gpu_node
from repro.units import MiB


def _point(**kwargs):
    return SimPoint.make(
        "fig03",
        "h2d/x",
        "repro.bench_suites.comm_scope:measure_h2d",
        **kwargs,
    )


class TestCanonicalToken:
    def test_primitives_pass_through(self):
        assert canonical_token(None) is None
        assert canonical_token(True) is True
        assert canonical_token(7) == 7
        assert canonical_token("x") == "x"

    def test_floats_hash_by_bit_pattern(self):
        assert canonical_token(0.1) == ["float", (0.1).hex()]
        assert canonical_token(0.1) != canonical_token(0.1 + 1e-18 + 1e-16)

    def test_sequences_and_maps(self):
        assert canonical_token((1, 2)) == canonical_token([1, 2])
        assert canonical_token({"b": 1, "a": 2}) == canonical_token(
            {"a": 2, "b": 1}
        )

    def test_topology_by_fingerprint_not_name(self):
        a = frontier_node()
        b = frontier_node()
        assert canonical_token(a) == canonical_token(b)
        assert canonical_token(a) != canonical_token(single_gpu_node())

    def test_environment_dataclass(self):
        assert canonical_token(SimEnvironment()) == canonical_token(
            SimEnvironment()
        )
        assert canonical_token(SimEnvironment()) != canonical_token(
            SimEnvironment(sdma_enabled=False)
        )

    def test_unknown_objects_are_uncacheable(self):
        with pytest.raises(UncacheableValueError):
            canonical_token(object())


class TestPointKey:
    def test_stable_across_equal_points(self):
        a = _point(interface="pinned_memcpy", size=1 * MiB)
        b = _point(size=1 * MiB, interface="pinned_memcpy")
        assert point_key(a, version="1") == point_key(b, version="1")

    def test_excludes_experiment_id_and_label(self):
        a = SimPoint.make(
            "fig02", "x", "repro.bench_suites.comm_scope:measure_h2d",
            interface="pinned_memcpy", size=1 * MiB,
        )
        b = SimPoint.make(
            "fig03", "y", "repro.bench_suites.comm_scope:measure_h2d",
            interface="pinned_memcpy", size=1 * MiB,
        )
        assert point_key(a, version="1") == point_key(b, version="1")

    def test_version_and_params_invalidate(self):
        point = _point(interface="pinned_memcpy", size=1 * MiB)
        assert point_key(point, version="1") != point_key(point, version="2")
        other = _point(interface="pinned_memcpy", size=2 * MiB)
        assert point_key(point, version="1") != point_key(other, version="1")

    def test_calibration_change_invalidates(self):
        base = _point(
            interface="pinned_memcpy",
            size=1 * MiB,
            calibration=DEFAULT_CALIBRATION,
        )
        perturbed = _point(
            interface="pinned_memcpy",
            size=1 * MiB,
            calibration=DEFAULT_CALIBRATION.with_(
                sdma_engine_throughput=(
                    DEFAULT_CALIBRATION.sdma_engine_throughput * 1.01
                )
            ),
        )
        assert point_key(base, version="1") != point_key(perturbed, version="1")

"""Differential guarantees: parallel ≡ serial ≡ legacy, cache correctness.

These are the tests that turn "the runner should not change results"
from a hope into an invariant: every artifact id is produced three ways
(legacy in-process loop, ``SweepRunner(jobs=1)``, ``SweepRunner(jobs=4)``)
and compared via :meth:`ExperimentResult.canonical`, which excludes
wall-clock noise but nothing else.
"""

import pytest

from repro import figures
from repro.core.calibration import DEFAULT_CALIBRATION
from repro.core.validation import validate_node
from repro.runner import ResultCache, SimPoint, SweepRunner
from repro.units import MiB

ALL_IDS = figures.all_ids()


class TestParallelEqualsSerial:
    @pytest.mark.parametrize("experiment_id", ALL_IDS)
    def test_every_artifact_is_jobs_invariant(self, experiment_id):
        legacy = figures.run(experiment_id).canonical()
        serial = SweepRunner(1, use_cache=False).run_experiment(experiment_id)
        parallel = SweepRunner(4, use_cache=False).run_experiment(experiment_id)
        assert serial.canonical() == legacy
        assert parallel.canonical() == legacy

    def test_validate_node_is_runner_invariant(self):
        baseline = validate_node()
        serial = validate_node(runner=SweepRunner(1, use_cache=False))
        parallel = validate_node(runner=SweepRunner(4, use_cache=False))
        assert serial.results == baseline.results
        assert parallel.results == baseline.results


class TestCacheRoundTrip:
    def test_second_run_is_all_hits_and_identical(self, tmp_path):
        cold_runner = SweepRunner(cache=ResultCache(tmp_path, version="1"))
        cold = cold_runner.run_many(["fig02", "fig04"])
        assert cold_runner.stats.cache_hits == 0
        assert cold_runner.stats.executed == cold_runner.stats.points

        warm_runner = SweepRunner(cache=ResultCache(tmp_path, version="1"))
        warm = warm_runner.run_many(["fig02", "fig04"])
        assert warm_runner.stats.executed == 0
        assert warm_runner.stats.cache_hits == warm_runner.stats.points
        for eid in cold:
            assert warm[eid].canonical() == cold[eid].canonical()

    def test_cross_artifact_point_sharing(self, tmp_path):
        """fig02's peak probe reuses fig03's sweep entries (same fn+params)."""
        cache = ResultCache(tmp_path, version="1")
        SweepRunner(cache=cache).run_experiment("fig03")
        fig02_points = figures.sweep_points("fig02")
        fig03_keys = {
            cache.key_for(p) for p in figures.sweep_points("fig03")
        }
        shared = [
            p for p in fig02_points if cache.key_for(p) in fig03_keys
        ]
        assert shared, "fig02 should share h2d points with fig03"

    def test_calibration_perturbation_invalidates_only_affected_points(
        self, tmp_path
    ):
        def grid(calibration):
            return [
                SimPoint.make(
                    "fig03",
                    "h2d/pinned/calibrated",
                    "repro.bench_suites.comm_scope:measure_h2d",
                    interface="pinned_memcpy",
                    size=1 * MiB,
                    calibration=calibration,
                ),
                SimPoint.make(
                    "fig03",
                    "h2d/pinned/default",
                    "repro.bench_suites.comm_scope:measure_h2d",
                    interface="pinned_memcpy",
                    size=4 * MiB,
                ),
            ]

        runner = SweepRunner(cache=ResultCache(tmp_path, version="1"))
        runner.run_points(grid(DEFAULT_CALIBRATION))

        perturbed = DEFAULT_CALIBRATION.with_(
            sdma_engine_throughput=(
                DEFAULT_CALIBRATION.sdma_engine_throughput * 1.01
            )
        )
        rerun = SweepRunner(cache=ResultCache(tmp_path, version="1"))
        rerun.run_points(grid(perturbed))
        # The calibrated point misses (new key); the untouched point hits.
        assert rerun.stats.executed == 1
        assert rerun.stats.cache_hits == 1

"""Tests for the collective-algorithm zoo (repro.rccl.algorithms)."""

import pytest

from repro.errors import RcclError
from repro.rccl import (
    RCCL_ALGORITHMS,
    active_algorithm,
    check_algorithm,
    install_algorithm,
    select_algorithm,
    xgmi_islands,
)
from repro.session import Session
from repro.topology.presets import (
    dense_hive_node,
    frontier_node,
    mi250x_cluster,
)


class TestRegistry:
    def test_known_names(self):
        assert RCCL_ALGORITHMS == (
            "ring",
            "tree",
            "double_binary_tree",
            "hierarchical_ring",
        )

    @pytest.mark.parametrize("name", RCCL_ALGORITHMS + ("auto",))
    def test_check_accepts(self, name):
        assert check_algorithm(name) == name

    def test_check_rejects_unknown(self):
        with pytest.raises(RcclError, match="unknown collective algorithm"):
            check_algorithm("butterfly")


class TestAmbientContext:
    def test_install_and_restore(self):
        assert active_algorithm() is None
        with install_algorithm("tree"):
            assert active_algorithm() == "tree"
            with install_algorithm(None):
                assert active_algorithm() is None
            assert active_algorithm() == "tree"
        assert active_algorithm() is None

    def test_install_validates(self):
        with pytest.raises(RcclError):
            with install_algorithm("nope"):
                pass

    def test_communicator_adopts_ambient(self):
        with install_algorithm("double_binary_tree"):
            comm = Session().rccl_communicator()
        assert comm.algorithm == "double_binary_tree"

    def test_explicit_beats_ambient(self):
        with install_algorithm("tree"):
            comm = Session().rccl_communicator(algorithm="ring")
        assert comm.algorithm == "ring"

    def test_default_is_the_paper_ring(self):
        assert Session().rccl_communicator().algorithm == "ring"


class TestIslands:
    def test_single_node_is_one_island(self):
        assert xgmi_islands(frontier_node(), range(8)) == [list(range(8))]

    def test_cluster_islands_follow_nodes(self):
        cluster = mi250x_cluster(2)
        islands = xgmi_islands(cluster, range(16))
        assert islands == [list(range(8)), list(range(8, 16))]

    def test_member_subset(self):
        cluster = mi250x_cluster(2)
        assert xgmi_islands(cluster, [3, 9, 1, 12]) == [[1, 3], [9, 12]]


class TestSelection:
    def test_full_node_picks_ring(self):
        assert select_algorithm(frontier_node(), range(8)) == "ring"

    def test_small_groups_pick_tree(self):
        topology = frontier_node()
        assert select_algorithm(topology, [0, 1]) == "tree"
        assert select_algorithm(topology, [0, 1, 2, 3]) == "tree"

    def test_cluster_picks_hierarchical(self):
        cluster = mi250x_cluster(2)
        assert select_algorithm(cluster, range(16)) == "hierarchical_ring"

    def test_sparse_census_picks_double_binary_tree(self):
        # GCDs {0,1,2,3,4,6}: GCD1's only in-set xGMI peers are 0 and 3
        # ... actually build a 5+ member set where some member has < 2
        # direct peers: {0, 1, 4, 5, 7} — 0-1 quad, 4-5 quad, 5-7 single,
        # 1-5 single; member 0 has only peer 1 among the set.
        assert (
            select_algorithm(frontier_node(), [0, 1, 4, 5, 7])
            == "double_binary_tree"
        )

    def test_dense_mesh_picks_ring(self):
        assert select_algorithm(dense_hive_node(4), range(8)) == "ring"

    def test_degenerate_singleton(self):
        assert select_algorithm(frontier_node(), [3]) == "ring"


class TestDispatch:
    @pytest.mark.parametrize(
        "algorithm", ["ring", "tree", "double_binary_tree"]
    )
    def test_node_allreduce_completes(self, algorithm):
        session = Session()
        comm = session.rccl_communicator(algorithm=algorithm)
        session.run(comm.allreduce(1 << 20))
        assert session.now > 0

    def test_algorithms_are_distinguishable(self):
        times = {}
        for algorithm in ("ring", "tree", "double_binary_tree"):
            session = Session()
            comm = session.rccl_communicator(algorithm=algorithm)
            session.run(comm.allreduce(1 << 20))
            times[algorithm] = session.now
        assert len(set(times.values())) == 3

    def test_auto_on_cluster_runs_hierarchical(self):
        session = Session("mi250x-cluster-2")
        comm = session.rccl_communicator(algorithm="auto")
        assert comm.algorithm == "hierarchical_ring"
        session.run(comm.allreduce(1 << 20))
        assert session.now > 0

    def test_hierarchical_beats_flat_ring_on_cluster(self):
        def latency(algorithm):
            session = Session("mi250x-cluster-2")
            comm = session.rccl_communicator(algorithm=algorithm)
            session.run(comm.allreduce(1 << 20))
            return session.now

        assert latency("hierarchical_ring") < latency("ring")

    def test_hierarchical_on_single_island_matches_ring(self):
        def latency(algorithm):
            session = Session()
            comm = session.rccl_communicator(algorithm=algorithm)
            session.run(comm.allreduce(1 << 20))
            return session.now

        assert latency("hierarchical_ring") == latency("ring")

    def test_tree_broadcast_dispatch(self):
        session = Session()
        comm = session.rccl_communicator(algorithm="tree")
        session.run(comm.broadcast(1 << 20, root=0))
        assert session.now > 0

    def test_session_algorithm_kwarg(self):
        session = Session(rccl_algorithm="tree")
        assert session.rccl_communicator().algorithm == "tree"

    def test_session_rejects_unknown_algorithm(self):
        with pytest.raises(RcclError):
            Session(rccl_algorithm="butterfly")


XGMI_TIERS = frozenset({"single", "dual", "quad"})


class TestByteMovement:
    """Differential tests: the algorithms move bytes over the right links."""

    def _channel_bytes(self, topology_spec, algorithm, nbytes=1 << 20):
        from repro.obs.capture import capture

        with capture(trace=False) as ctx:
            session = Session(topology_spec)
            comm = session.rccl_communicator(algorithm=algorithm)
            session.run(comm.allreduce(nbytes))
        return ctx.metrics.snapshot().get("channels", {})

    @staticmethod
    def _bytes_on(channels, tiers):
        # Channel metric names flatten link-channel ids to
        # "link/<lo>-<hi>:<tier>/<dir>"; select by the tier token.
        total = 0.0
        for name, stats in channels.items():
            if not name.startswith("link/"):
                continue
            link_name = name.split("/")[1]
            tier = link_name.rpartition(":")[2]
            if tier in tiers:
                total += stats.get("bytes", 0)
        return total

    def test_ring_on_node_stays_on_xgmi(self):
        channels = self._channel_bytes("mi250x", "ring")
        assert self._bytes_on(channels, {"nic"}) == 0
        assert self._bytes_on(channels, XGMI_TIERS) > 0

    def test_hierarchical_confines_nic_traffic_to_leader_phase(self):
        flat = self._channel_bytes("mi250x-cluster-2", "ring")
        hier = self._channel_bytes("mi250x-cluster-2", "hierarchical_ring")
        # Both must cross the NIC rails (the only inter-node path)...
        assert self._bytes_on(flat, {"nic"}) > 0
        assert self._bytes_on(hier, {"nic"}) > 0
        # ...but the hierarchical pattern only sends the leader-ring
        # chunks over them, far less than the flat 16-member ring whose
        # inter-node segments each carry full S/16 chunks every step.
        assert self._bytes_on(hier, {"nic"}) < self._bytes_on(flat, {"nic"})

    def test_tree_stays_on_xgmi(self):
        channels = self._channel_bytes("mi250x", "tree")
        assert self._bytes_on(channels, {"nic"}) == 0
        assert self._bytes_on(channels, XGMI_TIERS) > 0

    def test_double_binary_tree_differs_from_single_tree(self):
        # Both halves' trees are active each stage, and the two trees
        # overlap on different links; total xGMI bytes must differ from
        # the single tree's (same message, different edge multiset).
        single = self._channel_bytes("mi250x", "tree")
        double = self._channel_bytes("mi250x", "double_binary_tree")
        assert self._bytes_on(single, XGMI_TIERS) != self._bytes_on(
            double, XGMI_TIERS
        )

"""Property tests for ring construction over arbitrary GCD subsets."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rccl.ring import build_greedy_ring, build_optimal_ring
from repro.topology.presets import frontier_node

TOPOLOGY = frontier_node()

subsets = st.sets(st.integers(0, 7), min_size=2, max_size=8).map(sorted)


@settings(max_examples=60, deadline=None)
@given(subsets)
def test_greedy_ring_invariants(members):
    ring = build_greedy_ring(TOPOLOGY, members)
    # Covers exactly the members, once each.
    assert sorted(ring.order) == members
    assert len(ring.segments) == len(members)
    # Segments chain into a single cycle.
    current = ring.order[0]
    seen = []
    for _ in range(len(members)):
        seen.append(current)
        current = ring.next_member(current)
    assert current == ring.order[0]
    assert sorted(seen) == members
    # Every segment's route connects its endpoints.
    for segment in ring.segments:
        assert segment.route.source.index == segment.src
        assert segment.route.destination.index == segment.dst
        # Relay flag consistent with direct-link availability.
        direct = TOPOLOGY.peer_tier(segment.src, segment.dst) is not None
        assert segment.is_relayed == (not direct)
    # Bottleneck is never below a single xGMI link.
    assert ring.bottleneck_capacity >= 50e9


@settings(max_examples=30, deadline=None)
@given(subsets)
def test_optimal_ring_dominates_greedy(members):
    if len(members) > 7:
        members = members[:7]  # keep the factorial search quick
        if len(members) < 2:
            return
    greedy = build_greedy_ring(TOPOLOGY, members)
    optimal = build_optimal_ring(TOPOLOGY, members)
    assert sorted(optimal.order) == sorted(members)
    assert optimal.num_relayed <= greedy.num_relayed


@settings(max_examples=30, deadline=None)
@given(subsets)
def test_ring_construction_deterministic(members):
    first = build_greedy_ring(TOPOLOGY, members)
    second = build_greedy_ring(TOPOLOGY, list(members))
    assert first.order == second.order

"""Tests for RCCL collectives and the communicator."""

import pytest

from repro.errors import RcclError
from repro.hardware.node import HardwareNode
from repro.rccl.collectives import RCCL_COLLECTIVES
from repro.rccl.communicator import RcclCommunicator
from repro.rccl.ring import build_optimal_ring
from repro.units import MiB, to_us


def latency(name, gcds, nbytes=1 * MiB, ring_builder=None):
    node = HardwareNode()
    kwargs = {}
    if ring_builder is not None:
        kwargs["ring_builder"] = ring_builder
    comm = RcclCommunicator(node, gcds, **kwargs)
    fn = RCCL_COLLECTIVES[name]

    def run():
        t0 = node.now
        yield from fn(comm, nbytes)
        return node.now - t0

    return node.engine.run_process(run())


class TestCommunicator:
    def test_default_communicator_spans_node(self):
        comm = RcclCommunicator()
        assert comm.size == 8
        assert comm.ring is not None

    def test_single_gcd_has_no_ring(self):
        comm = RcclCommunicator(gcds=[0])
        assert comm.ring is None
        assert "single" in comm.describe()

    def test_describe_reports_ring(self):
        comm = RcclCommunicator(gcds=list(range(7)))
        text = comm.describe()
        assert "relayed" in text and "7 GCDs" in text

    def test_segment_rate_tiers(self):
        comm = RcclCommunicator(gcds=[0, 1])
        segment = comm.ring.segments[0]
        # quad link, kernel unidirectional: 0.88 × 200.
        assert comm.segment_rate(segment) == pytest.approx(176e9)

    def test_relayed_segment_rate_reduced(self):
        comm = RcclCommunicator(gcds=list(range(7)))
        relayed = [s for s in comm.ring.segments if s.is_relayed][0]
        direct_rate = comm.calibration.kernel_remote_cap(
            comm.node.bottleneck_tier(relayed.route), bidirectional=False
        )
        assert comm.segment_rate(relayed) == pytest.approx(
            0.7 * direct_rate
        )


class TestCollectiveExecution:
    @pytest.mark.parametrize("name", sorted(RCCL_COLLECTIVES))
    @pytest.mark.parametrize("n", range(2, 9))
    def test_all_complete(self, name, n):
        assert latency(name, list(range(n))) > 0

    @pytest.mark.parametrize("name", sorted(RCCL_COLLECTIVES))
    def test_single_member_is_noop(self, name):
        node = HardwareNode()
        comm = RcclCommunicator(node, [0])
        node.engine.run_process(RCCL_COLLECTIVES[name](comm, 1 * MiB))
        assert node.now == 0.0

    def test_invalid_size(self):
        node = HardwareNode()
        comm = RcclCommunicator(node, [0, 1])
        with pytest.raises(RcclError):
            node.engine.run_process(RCCL_COLLECTIVES["allreduce"](comm, 0))

    def test_invalid_root(self):
        node = HardwareNode()
        comm = RcclCommunicator(node, [0, 1])
        with pytest.raises(RcclError):
            node.engine.run_process(comm.broadcast(1 * MiB, root=5))


class TestPaperShapes:
    def test_two_thread_single_pass_near_bound(self):
        """§VI: two-thread collectives close to the 17.4 µs bound."""
        rs = to_us(latency("reduce_scatter", [0, 1]))
        ag = to_us(latency("allgather", [0, 1]))
        assert 17.4 <= min(rs, ag) <= 21.0

    def test_allreduce_is_two_passes(self):
        rs = latency("reduce_scatter", [0, 1, 2, 3])
        ar = latency("allreduce", [0, 1, 2, 3])
        assert 1.7 * rs < ar < 2.3 * rs

    @pytest.mark.parametrize("name", ["reduce", "broadcast", "allreduce"])
    def test_seven_to_eight_drop(self, name):
        """Fig. 12: latency drops from 7 to 8 threads."""
        seven = latency(name, list(range(7)))
        eight = latency(name, list(range(8)))
        assert eight < seven

    def test_latency_grows_two_to_seven(self):
        for name in ("allreduce", "allgather"):
            two = latency(name, [0, 1])
            four = latency(name, list(range(4)))
            seven = latency(name, list(range(7)))
            assert two < four < seven

    def test_optimal_ring_removes_the_seven_rank_penalty(self):
        greedy = latency("allreduce", list(range(7)))
        optimal = latency(
            "allreduce", list(range(7)), ring_builder=build_optimal_ring
        )
        assert optimal < greedy

    def test_broadcast_ll_protocol_slower_than_allgather(self):
        """Broadcast moves the full message at LL efficiency; at 8
        ranks it is far slower than the chunked single-pass ops."""
        bcast = latency("broadcast", list(range(8)))
        ag = latency("allgather", list(range(8)))
        assert bcast > 2.0 * ag

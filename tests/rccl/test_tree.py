"""Tests for the RCCL tree-algorithm extension."""

import pytest

from repro.errors import RcclError
from repro.hardware.node import HardwareNode
from repro.rccl.communicator import RcclCommunicator
from repro.rccl.tree import (
    build_binary_tree,
    tree_allreduce,
    tree_depth,
    tree_edge_count,
)
from repro.units import KiB, MiB


def tree_latency(gcds, nbytes):
    node = HardwareNode()
    comm = RcclCommunicator(node, gcds)

    def run():
        t0 = node.now
        yield from tree_allreduce(comm, nbytes)
        return node.now - t0

    return node.engine.run_process(run())


def ring_latency(gcds, nbytes):
    node = HardwareNode()
    comm = RcclCommunicator(node, gcds)

    def run():
        t0 = node.now
        yield from comm.allreduce(nbytes)
        return node.now - t0

    return node.engine.run_process(run())


class TestTreeStructure:
    def test_heap_layout(self):
        nodes = build_binary_tree([0, 1, 2, 3, 4])
        assert nodes[0].parent is None
        assert nodes[0].children == (1, 2)
        assert nodes[1].children == (3, 4)
        assert nodes[3].parent == 1 and nodes[3].children == ()

    def test_depth(self):
        assert tree_depth(build_binary_tree([0])) == 0
        assert tree_depth(build_binary_tree([0, 1])) == 1
        assert tree_depth(build_binary_tree(list(range(8)))) == 3

    def test_edge_count(self):
        assert tree_edge_count(8) == 7
        with pytest.raises(RcclError):
            tree_edge_count(0)

    def test_empty_rejected(self):
        with pytest.raises(RcclError):
            build_binary_tree([])


class TestTreeAllreduce:
    @pytest.mark.parametrize("n", range(2, 9))
    def test_completes(self, n):
        assert tree_latency(list(range(n)), 1 * MiB) > 0

    def test_single_member_noop(self):
        node = HardwareNode()
        comm = RcclCommunicator(node, [0])
        node.engine.run_process(tree_allreduce(comm, 1 * MiB))
        assert node.now == 0.0

    def test_invalid_size(self):
        node = HardwareNode()
        comm = RcclCommunicator(node, [0, 1])
        with pytest.raises(RcclError):
            node.engine.run_process(tree_allreduce(comm, 0))

    def test_tree_latency_is_sublinear(self):
        """Small-message tree latency grows with depth (~log n), far
        below the 4x a linear-in-n algorithm would show from 2→8."""
        small = 32 * KiB
        two = tree_latency([0, 1], small)
        eight = tree_latency(list(range(8)), small)
        assert eight < 3.3 * two

    def test_ring_tree_crossover(self):
        """Tree wins small messages; ring wins bandwidth-bound sizes."""
        gcds = list(range(8))
        assert tree_latency(gcds, 32 * KiB) < ring_latency(gcds, 32 * KiB)
        assert ring_latency(gcds, 16 * MiB) < tree_latency(gcds, 16 * MiB)

"""Functional payload tests for RCCL collectives."""

import numpy as np
import pytest

from repro.errors import RcclError
from repro.hardware.node import HardwareNode
from repro.hip.runtime import HipRuntime
from repro.rccl.collectives import allreduce, broadcast
from repro.rccl.communicator import RcclCommunicator
from repro.units import KiB


def make_comm(n):
    node = HardwareNode()
    hip = HipRuntime(node)
    comm = RcclCommunicator(node, list(range(n)))
    return node, hip, comm


class TestAllreducePayloads:
    @pytest.mark.parametrize("n", [2, 5, 8])
    def test_sum_across_gcds(self, n):
        node, hip, comm = make_comm(n)
        size = 1 * KiB
        sendbufs = {}
        recvbufs = {}
        for gcd in comm.gcds:
            send = hip.malloc(size, device=gcd)
            send.ensure_data()[:] = gcd + 1
            sendbufs[gcd] = send
            recv = hip.malloc(size, device=gcd)
            recv.ensure_data()
            recvbufs[gcd] = recv
        node.engine.run_process(allreduce(comm, size, sendbufs, recvbufs))
        expected = sum(g + 1 for g in comm.gcds)
        for recv in recvbufs.values():
            assert (recv.data == expected).all()

    def test_simulation_only_when_no_payloads(self):
        node, hip, comm = make_comm(4)
        size = 1 * KiB
        sendbufs = {g: hip.malloc(size, device=g) for g in comm.gcds}
        recvbufs = {g: hip.malloc(size, device=g) for g in comm.gcds}
        node.engine.run_process(allreduce(comm, size, sendbufs, recvbufs))
        assert all(not b.has_data for b in recvbufs.values())

    def test_missing_buffer_rejected(self):
        node, hip, comm = make_comm(4)
        size = 1 * KiB
        sendbufs = {g: hip.malloc(size, device=g) for g in comm.gcds[:-1]}
        recvbufs = {g: hip.malloc(size, device=g) for g in comm.gcds}
        with pytest.raises(RcclError, match="missing"):
            node.engine.run_process(allreduce(comm, size, sendbufs, recvbufs))

    def test_undersized_buffer_rejected(self):
        node, hip, comm = make_comm(2)
        sendbufs = {g: hip.malloc(512, device=g) for g in comm.gcds}
        recvbufs = {g: hip.malloc(512, device=g) for g in comm.gcds}
        with pytest.raises(RcclError, match="smaller"):
            node.engine.run_process(allreduce(comm, 1024, sendbufs, recvbufs))

    def test_timing_unchanged_by_payloads(self):
        """Functional mode must not perturb the calibrated latencies."""
        size = 1 * KiB
        node1, hip1, comm1 = make_comm(8)
        node1.engine.run_process(allreduce(comm1, size))
        plain = node1.now

        node2, hip2, comm2 = make_comm(8)
        sendbufs = {}
        recvbufs = {}
        for gcd in comm2.gcds:
            send = hip2.malloc(size, device=gcd)
            send.ensure_data()
            sendbufs[gcd] = send
            recv = hip2.malloc(size, device=gcd)
            recvbufs[gcd] = recv
        node2.engine.run_process(allreduce(comm2, size, sendbufs, recvbufs))
        assert node2.now == plain


class TestBroadcastPayloads:
    @pytest.mark.parametrize("root", [0, 6])
    def test_root_content_delivered(self, root):
        node, hip, comm = make_comm(8)
        size = 2 * KiB
        buffers = {}
        for gcd in comm.gcds:
            buffer = hip.malloc(size, device=gcd)
            buffer.ensure_data()[:] = 50 + gcd
            buffers[gcd] = buffer
        node.engine.run_process(broadcast(comm, size, root, buffers))
        for gcd, buffer in buffers.items():
            assert (buffer.data == 50 + root).all(), gcd

    def test_rccl_matches_mpi_result(self):
        """Cross-library functional agreement on the same inputs."""
        from repro.mpi.collectives import allreduce as mpi_allreduce
        from repro.mpi.comm import MpiWorld

        size = 256
        values = [3, 11, 7, 20]

        # MPI result.
        world = MpiWorld(rank_gcds=[0, 1, 2, 3])

        def main(ctx):
            send = ctx.hip.malloc(size)
            recv = ctx.hip.malloc(size)
            send.ensure_data()[:] = values[ctx.rank]
            recv.ensure_data()
            yield from mpi_allreduce(ctx, send, recv, size)
            return int(recv.data[0])

        mpi_results = world.run(main)

        # RCCL result.
        node, hip, comm = make_comm(4)
        sendbufs = {}
        recvbufs = {}
        for index, gcd in enumerate(comm.gcds):
            send = hip.malloc(size, device=gcd)
            send.ensure_data()[:] = values[index]
            sendbufs[gcd] = send
            recv = hip.malloc(size, device=gcd)
            recv.ensure_data()
            recvbufs[gcd] = recv
        node.engine.run_process(allreduce(comm, size, sendbufs, recvbufs))
        rccl_results = [int(recvbufs[g].data[0]) for g in comm.gcds]

        assert mpi_results == rccl_results == [41, 41, 41, 41]

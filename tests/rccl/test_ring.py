"""Tests for RCCL ring construction."""

import pytest

from repro.errors import RcclError
from repro.rccl.ring import Ring, build_greedy_ring, build_optimal_ring


class TestGreedyRing:
    def test_two_members(self, topology):
        ring = build_greedy_ring(topology, [0, 1])
        assert ring.order == (0, 1)
        assert ring.num_relayed == 0
        assert ring.bottleneck_capacity == 200e9

    def test_full_node_ring_is_all_direct(self, topology):
        # The greedy search finds the perfect 8-GCD ring — the
        # "more balanced communication pattern when all eight GPUs are
        # used" of §VI.
        ring = build_greedy_ring(topology, list(range(8)))
        assert ring.num_relayed == 0
        assert ring.size == 8
        assert ring.bottleneck_capacity == 50e9

    def test_seven_members_have_a_relay(self, topology):
        # ... while 7 GCDs leave one relayed segment — the Fig. 12
        # 7→8 drop mechanism.
        ring = build_greedy_ring(topology, list(range(7)))
        assert ring.num_relayed == 1

    @pytest.mark.parametrize("n,expected_relays", [(2, 0), (3, 1), (4, 0), (5, 1), (6, 1), (7, 1), (8, 0)])
    def test_relay_counts_per_subset(self, topology, n, expected_relays):
        ring = build_greedy_ring(topology, list(range(n)))
        assert ring.num_relayed == expected_relays

    def test_ring_is_a_cycle(self, topology):
        for n in range(2, 9):
            ring = build_greedy_ring(topology, list(range(n)))
            visited = [ring.order[0]]
            current = ring.order[0]
            for _ in range(n - 1):
                current = ring.next_member(current)
                visited.append(current)
            assert sorted(visited) == list(range(n))
            assert ring.next_member(current) == ring.order[0]

    def test_members_arbitrary_subset(self, topology):
        ring = build_greedy_ring(topology, [1, 4, 6])
        assert set(ring.order) == {1, 4, 6}

    def test_validation(self, topology):
        with pytest.raises(RcclError):
            build_greedy_ring(topology, [0])
        with pytest.raises(RcclError):
            build_greedy_ring(topology, [0, 0])
        with pytest.raises(RcclError):
            build_greedy_ring(topology, [0, 42])

    def test_segment_from_unknown_member(self, topology):
        ring = build_greedy_ring(topology, [0, 1])
        with pytest.raises(RcclError):
            ring.segment_from(5)

    def test_describe_marks_relays(self, topology):
        ring = build_greedy_ring(topology, list(range(7)))
        assert "~>" in ring.describe()
        ring8 = build_greedy_ring(topology, list(range(8)))
        assert "~>" not in ring8.describe()


class TestOptimalRing:
    def test_optimal_never_worse_than_greedy(self, topology):
        for n in range(2, 8):
            greedy = build_greedy_ring(topology, list(range(n)))
            optimal = build_optimal_ring(topology, list(range(n)))
            assert optimal.num_relayed <= greedy.num_relayed
            if optimal.num_relayed == greedy.num_relayed:
                assert (
                    optimal.bottleneck_capacity >= greedy.bottleneck_capacity
                )

    def test_optimal_seven_ring_has_no_relay(self, topology):
        # The relay-free 7-ring exists (3-1-5-4-6-0-2); the greedy
        # heuristic misses it, the exhaustive search finds it.  This is
        # the ablation quantified in benchmarks/test_ablations.py.
        optimal = build_optimal_ring(topology, list(range(7)))
        assert optimal.num_relayed == 0

    def test_optimal_deterministic(self, topology):
        a = build_optimal_ring(topology, list(range(5)))
        b = build_optimal_ring(topology, list(range(5)))
        assert a.order == b.order

"""Regression tests for narrowed exception handling and ring exhaustion.

Two ``except Exception`` blocks used to mask programming errors:
``ring._validate_members`` swallowed *any* failure of the GCD lookup
into an RcclError, and ``HipRuntime._physical`` turned *any* failure of
the visibility mapping into ``hipErrorInvalidDevice``.  Both now catch
only the specific expected error; these tests pin the narrowed
behaviour from both sides.

The exhaustion tests pin the other bugfix: a fully-failed avoid set
must surface a clean :class:`RcclError`, not a raw
:class:`RoutingError` from deep inside the path search.
"""

import pytest

from repro.errors import (
    ConfigurationError,
    InvalidDeviceError,
    RcclError,
    RoutingError,
    TopologyError,
)
from repro.hip.runtime import HipRuntime
from repro.rccl.ring import build_greedy_ring
from repro.session import Session
from repro.topology.presets import frontier_node, single_gpu_node


class TestValidateMembersNarrowing:
    def test_unknown_gcd_becomes_rccl_error(self):
        with pytest.raises(RcclError, match="GCD 99 not in topology"):
            build_greedy_ring(frontier_node(), [0, 99])

    def test_cause_is_the_topology_error(self):
        with pytest.raises(RcclError) as excinfo:
            build_greedy_ring(frontier_node(), [0, 99])
        assert isinstance(excinfo.value.__cause__, TopologyError)

    def test_malformed_topology_propagates_unmasked(self):
        # A topology object whose gcd() lookup blows up with something
        # other than TopologyError is a programming error; the old
        # ``except Exception`` would have dressed it up as "GCD not in
        # topology" and sent callers chasing the wrong bug.
        class BrokenTopology:
            def gcd(self, index):
                raise AttributeError("no gcd table")

        with pytest.raises(AttributeError, match="no gcd table"):
            build_greedy_ring(BrokenTopology(), [0, 1])


class TestHipPhysicalNarrowing:
    def test_bad_ordinal_is_invalid_device(self):
        runtime = Session().hip
        with pytest.raises(InvalidDeviceError):
            runtime.set_device(99)

    def test_cause_is_the_configuration_error(self):
        runtime = Session().hip
        with pytest.raises(InvalidDeviceError) as excinfo:
            runtime.physical_device(99)
        assert isinstance(excinfo.value.__cause__, ConfigurationError)

    def test_broken_environment_propagates_unmasked(self):
        # An environment whose mapping raises something other than
        # ConfigurationError must not be reported as an invalid device.
        session = Session()
        runtime = HipRuntime(session.node, session.env)

        class BrokenEnv:
            def map_logical_device(self, logical, num_physical):
                raise AttributeError("no visibility table")

        runtime.env = BrokenEnv()
        with pytest.raises(AttributeError, match="no visibility table"):
            runtime.physical_device(0)


class TestRingExhaustion:
    def test_exhausted_paths_raise_clean_rccl_error(self):
        # Kill every link of the two-GCD node: no direct hop, no CPU
        # relay — the path search has nothing left.
        topology = single_gpu_node()
        avoid = {link.name for link in topology.links()}
        with pytest.raises(RcclError, match="no usable path"):
            build_greedy_ring(topology, [0, 1], avoid_links=avoid)

    def test_exhaustion_chains_the_routing_error(self):
        topology = single_gpu_node()
        avoid = {link.name for link in topology.links()}
        with pytest.raises(RcclError) as excinfo:
            build_greedy_ring(topology, [0, 1], avoid_links=avoid)
        assert isinstance(excinfo.value.__cause__, RoutingError)

    def test_partial_avoid_still_builds_a_detour_ring(self):
        # Failing only the direct quad link must NOT raise: the builder
        # detours over the CPU links instead.
        topology = single_gpu_node()
        quad = topology.require_link(0, 1)
        ring = build_greedy_ring(topology, [0, 1], avoid_links={quad.name})
        assert ring.order == (0, 1)
        for segment in ring.segments:
            assert all(quad.name != link.name for link in segment.route.links)

    def test_rebuild_ring_on_partitioned_node_raises_rccl_error(self):
        session = Session("single")
        comm = session.rccl_communicator([0, 1])
        for link in session.node.topology.links():
            session.node.mark_link_failed(link.name)
        with pytest.raises(RcclError, match="no usable path"):
            comm.rebuild_ring()

    def test_rebuild_ring_around_one_failure_succeeds(self):
        session = Session("single")
        comm = session.rccl_communicator([0, 1])
        session.node.mark_link_failed(
            session.node.topology.require_link(0, 1).name
        )
        ring = comm.rebuild_ring()
        assert ring.order == (0, 1)
        assert comm.ring_rebuilds == 1

"""Per-thread isolation of the ambient contexts.

Regression for the ``repro serve`` concurrency bug: the ambient
topology/faults/algorithm/observation slots were plain module globals,
so two service threads installing different contexts clobbered each
other mid-job.  They are now :class:`contextvars.ContextVar` slots —
each thread (and asyncio task) sees only its own installs, while
single-threaded code behaves exactly as the old globals did.
"""

import threading

from repro.faults.context import active as active_faults, install as install_faults
from repro.faults.scenario import FaultScenario, LinkDegrade
from repro.obs.capture import ObservationContext, active as active_obs, capture
from repro.rccl.algorithms import active_algorithm, install_algorithm
from repro.topology.context import active as active_topology, install
from repro.topology.presets import dense_hive_node, frontier_node

THREADS = 8
ROUNDS = 25


def _hammer(worker, threads=THREADS):
    """Run ``worker(index)`` in lockstep threads; re-raise any failure."""
    barrier = threading.Barrier(threads)
    failures = []

    def run(index):
        try:
            worker(index, barrier)
        except BaseException as exc:  # noqa: BLE001 - surfaced below
            failures.append(exc)

    pool = [threading.Thread(target=run, args=(i,)) for i in range(threads)]
    for t in pool:
        t.start()
    for t in pool:
        t.join()
    if failures:
        raise failures[0]


class TestTopologyContextIsolation:
    def test_threads_see_their_own_install(self):
        choices = (frontier_node(), dense_hive_node(), None)

        def worker(index, barrier):
            mine = choices[index % len(choices)]
            barrier.wait(timeout=30)
            for _ in range(ROUNDS):
                with install(mine):
                    assert active_topology() is mine

        _hammer(worker)
        assert active_topology() is None  # main thread untouched

    def test_nesting_still_restores(self):
        outer, inner = frontier_node(), dense_hive_node()
        with install(outer):
            with install(inner):
                assert active_topology() is inner
            assert active_topology() is outer
        assert active_topology() is None


class TestAlgorithmContextIsolation:
    def test_threads_see_their_own_algorithm(self):
        choices = ("ring", "tree", "double_binary_tree", None)

        def worker(index, barrier):
            mine = choices[index % len(choices)]
            barrier.wait(timeout=30)
            for _ in range(ROUNDS):
                if mine is None:
                    assert active_algorithm() is None
                else:
                    with install_algorithm(mine):
                        assert active_algorithm() == mine

        _hammer(worker)
        assert active_algorithm() is None


class TestFaultContextIsolation:
    def test_threads_see_their_own_scenario(self):
        scenarios = [
            FaultScenario(
                events=[LinkDegrade(link="0-1", factor=0.5, at=float(i))],
                name=f"deg-{i}",
            )
            for i in range(THREADS)
        ]

        def worker(index, barrier):
            mine = scenarios[index]
            barrier.wait(timeout=30)
            for _ in range(ROUNDS):
                with install_faults(mine):
                    assert active_faults() is mine

        _hammer(worker)
        assert active_faults() is None


class TestObservationContextIsolation:
    def test_threads_capture_independently(self):
        def worker(index, barrier):
            barrier.wait(timeout=30)
            for _ in range(ROUNDS):
                with capture() as ctx:
                    assert active_obs() is ctx
                    ctx.metrics.counter(f"iso/thread{index}").inc()
                snapshot = ctx.metrics.snapshot()
                counters = snapshot["counters"]
                assert counters == {f"iso/thread{index}": 1}

        _hammer(worker)
        assert active_obs() is None

    def test_capture_restores_previous_context(self):
        with capture() as outer:
            with capture() as inner:
                assert active_obs() is inner
            assert active_obs() is outer
        assert active_obs() is None

"""Unit tests for repro.config (environment model, placements)."""

import pytest

from repro.config import (
    SimEnvironment,
    parse_visible_devices,
    placement_for_strategy,
    same_gpu_placement,
    spread_placement,
)
from repro.errors import ConfigurationError


class TestVisibleDevices:
    def test_empty_string(self):
        assert parse_visible_devices("", 8) == ()

    def test_basic(self):
        assert parse_visible_devices("0,2,4,6", 8) == (0, 2, 4, 6)

    def test_reorders_logical_mapping(self):
        assert parse_visible_devices("7,0", 8) == (7, 0)

    def test_duplicate_rejected(self):
        with pytest.raises(ConfigurationError):
            parse_visible_devices("1,1", 8)

    def test_out_of_range_rejected(self):
        with pytest.raises(ConfigurationError):
            parse_visible_devices("8", 8)

    def test_garbage_rejected(self):
        with pytest.raises(ConfigurationError):
            parse_visible_devices("a,b", 8)


class TestSimEnvironment:
    def test_defaults_match_rocm(self):
        env = SimEnvironment()
        assert env.xnack_enabled is False
        assert env.sdma_enabled is True
        assert env.peer_sdma_enabled is True
        assert env.visible_devices is None

    def test_from_environ(self):
        env = SimEnvironment.from_environ(
            {
                "HSA_XNACK": "1",
                "HSA_ENABLE_SDMA": "0",
                "HIP_VISIBLE_DEVICES": "2,3",
                "MPICH_GPU_SUPPORT_ENABLED": "1",
            },
            num_physical=8,
        )
        assert env.xnack_enabled
        assert not env.sdma_enabled
        assert env.visible_devices == (2, 3)
        assert env.mpich_gpu_support

    def test_from_environ_bad_bool(self):
        with pytest.raises(ConfigurationError):
            SimEnvironment.from_environ({"HSA_XNACK": "maybe"})

    def test_logical_mapping_identity(self):
        env = SimEnvironment()
        assert env.map_logical_device(3, 8) == 3

    def test_logical_mapping_masked(self):
        env = SimEnvironment(visible_devices=(6, 4))
        assert env.map_logical_device(0, 8) == 6
        assert env.map_logical_device(1, 8) == 4
        with pytest.raises(ConfigurationError):
            env.map_logical_device(2, 8)

    def test_logical_out_of_range_unmasked(self):
        env = SimEnvironment()
        with pytest.raises(ConfigurationError):
            env.map_logical_device(8, 8)

    def test_num_visible(self):
        assert SimEnvironment().num_visible_devices(8) == 8
        assert SimEnvironment(visible_devices=(1,)).num_visible_devices(8) == 1

    def test_with_(self):
        env = SimEnvironment().with_(xnack_enabled=True)
        assert env.xnack_enabled
        assert SimEnvironment().xnack_enabled is False  # original untouched


class TestPlacements:
    def test_spread_prefers_distinct_packages(self):
        assert spread_placement(2) == (0, 2)
        assert spread_placement(4) == (0, 2, 4, 6)

    def test_spread_all_eight(self):
        assert spread_placement(8) == tuple(range(8))

    def test_same_gpu_fills_packages(self):
        assert same_gpu_placement(2) == (0, 1)
        assert same_gpu_placement(4) == (0, 1, 2, 3)

    def test_bounds(self):
        with pytest.raises(ConfigurationError):
            spread_placement(0)
        with pytest.raises(ConfigurationError):
            same_gpu_placement(9)

    def test_strategy_dispatch(self):
        assert placement_for_strategy("spread", 2) == (0, 2)
        assert placement_for_strategy("same_gpu", 2) == (0, 1)
        with pytest.raises(ConfigurationError):
            placement_for_strategy("diagonal", 2)

    def test_spread_counts_per_package(self, topology):
        # At <=4 GCDs the spread strategy uses at most one GCD per GPU.
        for count in (1, 2, 3, 4):
            placement = spread_placement(count)
            packages = [topology.gcd(g).gpu_package for g in placement]
            assert len(set(packages)) == count

"""Bottleneck attribution: the solver records *where* each flow is limited."""

import math

import pytest

from repro.errors import SimulationError
from repro.sim.fairshare import (
    FairshareSolver,
    FlowSpec,
    max_min_fair_rates,
    max_min_fair_rates_reference,
)


class TestReferenceAttribution:
    def test_single_flow_channel_bound(self):
        bottlenecks = {}
        rates = max_min_fair_rates_reference(
            [FlowSpec("f", ("a", "b"))],
            {"a": 10.0, "b": 100.0},
            bottlenecks,
        )
        assert rates["f"] == pytest.approx(10.0)
        assert bottlenecks["f"] == "a"

    def test_single_flow_cap_bound(self):
        bottlenecks = {}
        rates = max_min_fair_rates_reference(
            [FlowSpec("f", ("a",), cap=4.0)], {"a": 10.0}, bottlenecks
        )
        assert rates["f"] == pytest.approx(4.0)
        assert bottlenecks["f"] is None

    def test_shared_channel_attributed_to_the_saturated_one(self):
        bottlenecks = {}
        max_min_fair_rates_reference(
            [
                FlowSpec("f1", ("shared", "wide1")),
                FlowSpec("f2", ("shared", "wide2")),
            ],
            {"shared": 10.0, "wide1": 100.0, "wide2": 100.0},
            bottlenecks,
        )
        assert bottlenecks == {"f1": "shared", "f2": "shared"}

    def test_mixed_cap_and_channel_bound(self):
        bottlenecks = {}
        rates = max_min_fair_rates_reference(
            [
                FlowSpec("capped", ("shared",), cap=2.0),
                FlowSpec("free", ("shared",)),
            ],
            {"shared": 10.0},
            bottlenecks,
        )
        assert rates["capped"] == pytest.approx(2.0)
        assert rates["free"] == pytest.approx(8.0)
        assert bottlenecks["capped"] is None
        assert bottlenecks["free"] == "shared"

    def test_attribution_does_not_change_rates(self):
        flows = [
            FlowSpec("a", ("x", "y")),
            FlowSpec("b", ("y", "z"), cap=3.0),
            FlowSpec("c", ("z",)),
        ]
        capacities = {"x": 7.0, "y": 5.0, "z": 9.0}
        plain = max_min_fair_rates_reference(flows, capacities)
        tracked = max_min_fair_rates_reference(flows, capacities, {})
        assert plain == tracked

    def test_every_flow_is_attributed(self):
        # Work conservation: every flow freezes against a channel or
        # its own cap; the attribution map must cover all of them.
        flows = [
            FlowSpec(
                f"f{i}",
                ("trunk", f"leaf{i % 3}"),
                cap=math.inf if i % 2 else 4.0,
            )
            for i in range(6)
        ]
        capacities = {"trunk": 12.0, "leaf0": 5.0, "leaf1": 5.0, "leaf2": 5.0}
        bottlenecks = {}
        rates = max_min_fair_rates_reference(flows, capacities, bottlenecks)
        assert set(bottlenecks) == set(rates)
        for flow_id, channel in bottlenecks.items():
            assert channel is None or channel in capacities


class TestNumpyCoreAgreement:
    def test_attribution_matches_reference(self):
        flows = [
            FlowSpec("a", ("x", "y")),
            FlowSpec("b", ("y",), cap=1.5),
            FlowSpec("c", ("x", "z")),
            FlowSpec("d", ("z", "y")),
        ]
        capacities = {"x": 6.0, "y": 4.0, "z": 8.0}
        ref_b: dict = {}
        fast_b: dict = {}
        ref = max_min_fair_rates_reference(flows, capacities, ref_b)
        fast = max_min_fair_rates(flows, capacities, fast_b)
        assert ref == fast
        assert ref_b == fast_b


class TestSolverTracking:
    def test_bottleneck_query(self):
        solver = FairshareSolver(
            {"shared": 10.0, "wide": 100.0}, track_bottlenecks=True
        )
        solver.add_flow(FlowSpec("f1", ("shared", "wide")))
        solver.add_flow(FlowSpec("f2", ("shared",)))
        assert solver.bottleneck("f1") == "shared"
        assert solver.bottleneck("f2") == "shared"
        assert solver.bottlenecks() == {"f1": "shared", "f2": "shared"}

    def test_reattribution_on_removal(self):
        solver = FairshareSolver(
            {"narrow": 4.0, "wide": 100.0}, track_bottlenecks=True
        )
        solver.add_flow(FlowSpec("a", ("narrow", "wide")))
        solver.add_flow(FlowSpec("b", ("narrow",)))
        assert solver.bottleneck("a") == "narrow"
        solver.remove_flow("b")
        assert solver.bottleneck("a") == "narrow"
        assert "b" not in solver.bottlenecks()

    def test_cap_bound_is_none(self):
        solver = FairshareSolver({"c": 10.0}, track_bottlenecks=True)
        solver.add_flow(FlowSpec("f", ("c",), cap=2.0))
        assert solver.bottleneck("f") is None

    def test_untracked_solver_raises(self):
        solver = FairshareSolver({"c": 10.0})
        solver.add_flow(FlowSpec("f", ("c",)))
        assert not solver.tracks_bottlenecks
        with pytest.raises(SimulationError, match="track_bottlenecks"):
            solver.bottleneck("f")
        with pytest.raises(SimulationError, match="track_bottlenecks"):
            solver.bottlenecks()

    def test_tracking_leaves_rates_identical(self):
        def drive(track: bool) -> list:
            solver = FairshareSolver(
                {"a": 9.0, "b": 5.0, "c": 13.0}, track_bottlenecks=track
            )
            seen = []
            solver.add_flow(FlowSpec("f1", ("a", "b")))
            seen.append(dict(solver.rates()))
            solver.add_flow(FlowSpec("f2", ("b", "c"), cap=2.5))
            seen.append(dict(solver.rates()))
            solver.add_flow(FlowSpec("f3", ("a", "c")))
            seen.append(dict(solver.rates()))
            solver.remove_flow("f1")
            seen.append(dict(solver.rates()))
            return seen

        assert drive(False) == drive(True)

"""Differential tests for the incremental fair-share solver.

The acceptance property of the redesign: a :class:`FairshareSolver`
driven through an arbitrary add/remove churn sequence must produce
**bit-identical** rates to a from-scratch batch ``max_min_fair_rates``
over the surviving flows, at every step.  The global pre-PR algorithm
(``max_min_fair_rates_reference``) is kept as an approximate oracle —
it levels in a different floating-point order, so agreement there is
up to tolerance, not bitwise.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.sim.fairshare import (
    FairshareSolver,
    FlowSpec,
    allocation_is_feasible,
    max_min_fair_rates,
    max_min_fair_rates_reference,
)

CHANNELS = [f"ch{i}" for i in range(12)]
CAPACITIES = {
    channel: capacity
    for channel, capacity in zip(
        CHANNELS,
        [1.0, 2.0, 0.5, 4.0, 1.5, 3.0, 0.25, 8.0, 2.5, 1.25, 6.0, 0.75],
    )
}


def _fresh_solver() -> FairshareSolver:
    solver = FairshareSolver()
    for channel, capacity in CAPACITIES.items():
        solver.add_channel(channel, capacity)
    return solver


@st.composite
def churn_sequences(draw):
    """A list of add/remove operations over the fixed channel set."""
    num_ops = draw(st.integers(min_value=1, max_value=60))
    ops = []
    live = 0
    for index in range(num_ops):
        remove_possible = live > 0
        do_remove = remove_possible and draw(st.booleans())
        if do_remove:
            victim = draw(st.integers(min_value=0, max_value=live - 1))
            ops.append(("remove", victim))
            live -= 1
        else:
            channels = tuple(
                sorted(
                    draw(
                        st.sets(
                            st.sampled_from(CHANNELS), min_size=1, max_size=4
                        )
                    )
                )
            )
            cap = draw(
                st.one_of(
                    st.just(math.inf),
                    st.floats(min_value=0.05, max_value=10.0),
                )
            )
            ops.append(("add", channels, cap))
            live += 1
    return ops


@settings(max_examples=60, deadline=None)
@given(churn_sequences())
def test_incremental_bitwise_identical_to_batch(ops):
    solver = _fresh_solver()
    live: list[FlowSpec] = []
    next_id = 0
    for op in ops:
        if op[0] == "add":
            _, channels, cap = op
            spec = FlowSpec(next_id, channels, cap)
            next_id += 1
            live.append(spec)
            solver.add_flow(spec)
        else:
            victim = live.pop(op[1])
            solver.remove_flow(victim.flow_id)

        batch = max_min_fair_rates(live, CAPACITIES)
        incremental = solver.rates()
        assert incremental == batch  # bitwise: no tolerance

        if live:
            assert allocation_is_feasible(live, CAPACITIES, incremental)


@settings(max_examples=30, deadline=None)
@given(churn_sequences())
def test_component_solver_matches_global_reference(ops):
    """Decomposed batch solve ≈ the old global algorithm (1e-9 rel)."""
    live: list[FlowSpec] = []
    next_id = 0
    for op in ops:
        if op[0] == "add":
            _, channels, cap = op
            live.append(FlowSpec(next_id, channels, cap))
            next_id += 1
        else:
            live.pop(op[1])
    decomposed = max_min_fair_rates(live, CAPACITIES)
    reference = max_min_fair_rates_reference(live, CAPACITIES)
    assert decomposed.keys() == reference.keys()
    for flow_id, rate in decomposed.items():
        assert rate == pytest.approx(reference[flow_id], rel=1e-9, abs=1e-12)


class TestSolverBookkeeping:
    def test_remove_splits_component(self):
        solver = _fresh_solver()
        solver.add_flow(FlowSpec(0, ("ch0",), math.inf))
        solver.add_flow(FlowSpec(1, ("ch1",), math.inf))
        bridge = FlowSpec(2, ("ch0", "ch1"), math.inf)
        solver.add_flow(bridge)
        assert solver.component_of(0) == solver.component_of(1)

        solver.remove_flow(2)
        assert solver.component_of(0) != solver.component_of(1)
        assert solver.rates() == max_min_fair_rates(
            [FlowSpec(0, ("ch0",), math.inf), FlowSpec(1, ("ch1",), math.inf)],
            CAPACITIES,
        )

    def test_add_flow_returns_only_touched_component(self):
        solver = _fresh_solver()
        solver.add_flow(FlowSpec(0, ("ch0",), math.inf))
        updated = solver.add_flow(FlowSpec(1, ("ch3",), math.inf))
        assert set(updated) == {1}

    def test_stats_accumulate(self):
        solver = _fresh_solver()
        solver.add_flow(FlowSpec(0, ("ch0",), math.inf))
        solver.add_flow(FlowSpec(1, ("ch0",), math.inf))
        solver.remove_flow(0)
        stats = solver.stats.as_dict()
        assert stats["flows_added"] == 2
        assert stats["flows_removed"] == 1
        assert stats["component_solves"] >= 2

    def test_remove_unknown_flow_raises(self):
        from repro.errors import SimulationError

        solver = _fresh_solver()
        with pytest.raises(SimulationError):
            solver.remove_flow(99)

"""Batched epoch dispatch: same-timestamp semantics of the event core.

The engine drains every schedulable sharing a timestamp as one *epoch*
(a single bucket pop instead of one heap pop per item).  These tests
pin down the observable contract of that batching: FIFO order inside
an epoch, cancelled timers skimmed without moving the clock, and the
fast path that lets a callback append work to the epoch it is running
in.  A hypothesis oracle checks the whole ordering story against the
naive ``sorted(by=(time, seq))`` model.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.engine import SimEngine

US = 1e-6


@pytest.fixture
def engine():
    return SimEngine()


class TestSameTimestampFifo:
    def test_timers_fire_in_scheduling_order(self, engine):
        order = []
        for i in range(8):
            engine.call_after(1 * US, order.append, i)
        engine.run()
        assert order == list(range(8))

    def test_mixed_timers_and_events_keep_seq_order(self, engine):
        order = []
        done = engine.event()
        engine.call_after(1 * US, order.append, "timer-a")
        engine.call_after(1 * US, lambda: done.succeed(None))
        done.add_callback(lambda _: order.append("event"))
        engine.call_after(1 * US, order.append, "timer-b")
        engine.run()
        # succeed() runs at 1us and enqueues the delivery *behind*
        # timer-b's already-queued entry — strict sequence order.
        assert order == ["timer-a", "timer-b", "event"]

    def test_epochs_drain_in_time_order(self, engine):
        order = []
        for delay in (3, 1, 2, 1, 3, 2):
            engine.call_after(delay * US, order.append, delay)
        engine.run()
        assert order == [1, 1, 2, 2, 3, 3]
        assert engine.now == 3 * US


class TestCancelledSkim:
    def test_mid_epoch_cancellation_is_skimmed(self, engine):
        order = []
        engine.call_after(1 * US, order.append, "a")
        doomed = engine.schedule(1 * US, order.append, "never")
        engine.call_after(1 * US, order.append, "b")
        doomed.cancel()
        engine.run()
        assert order == ["a", "b"]
        assert engine.timers_cancelled == 1

    def test_trailing_cancelled_epoch_does_not_advance_clock(self, engine):
        engine.call_after(1 * US, lambda: None)
        late = engine.schedule(5 * US, lambda: None)
        late.cancel()
        engine.run()
        # An all-cancelled bucket is pure garbage collection: time stays
        # at the last *live* dispatch, exactly as the per-event loop
        # behaved before batching.
        assert engine.now == 1 * US

    def test_all_cancelled_run_leaves_clock_at_zero(self, engine):
        for delay in (1, 2, 3):
            engine.schedule(delay * US, lambda: None).cancel()
        engine.run()
        assert engine.now == 0.0
        assert engine.timers_fired == 0

    def test_callback_cancelling_later_entry_in_same_epoch(self, engine):
        order = []
        handles = {}

        def killer():
            order.append("killer")
            handles["victim"].cancel()

        engine.call_after(1 * US, killer)
        handles["victim"] = engine.schedule(1 * US, order.append, "victim")
        engine.call_after(1 * US, order.append, "survivor")
        engine.run()
        assert order == ["killer", "survivor"]


class TestEpochAppend:
    def test_zero_delay_from_callback_joins_current_epoch(self, engine):
        order = []

        def first():
            order.append("first")
            engine.call_after(0.0, order.append, "appended")

        engine.call_after(1 * US, first)
        engine.call_after(1 * US, order.append, "second")
        engine.run()
        # The appended timer lands at the epoch's own timestamp, so it
        # runs inside the same epoch — after everything already queued.
        assert order == ["first", "second", "appended"]
        assert engine.now == 1 * US

    def test_immediate_succeed_chain_drains_in_one_epoch(self, engine):
        hops = []

        def hop(n):
            hops.append(n)
            if n < 5:
                engine.call_after(0.0, hop, n + 1)

        engine.call_after(1 * US, hop, 0)
        engine.run()
        assert hops == [0, 1, 2, 3, 4, 5]
        assert engine.now == 1 * US

    def test_queue_depth_counts_epoch_remainder(self, engine):
        depths = []
        for i in range(4):
            engine.call_after(1 * US, lambda: depths.append(
                engine.stats()["heap_size"]
            ))
        engine.call_after(2 * US, lambda: None)
        engine.run()
        # Each callback sees the not-yet-dispatched tail of its own
        # epoch plus the untouched 2us bucket.
        assert depths == [4, 3, 2, 1]
        assert engine.stats()["heap_size"] == 0


class TestOrderingOracle:
    @settings(max_examples=80, deadline=None)
    @given(
        delays=st.lists(st.integers(min_value=0, max_value=5), min_size=1,
                        max_size=60),
        cancel_every=st.integers(min_value=2, max_value=7),
    )
    def test_dispatch_order_matches_time_seq_sort(self, delays, cancel_every):
        engine = SimEngine()
        order = []
        live = []
        for seq, delay in enumerate(delays):
            handle = engine.schedule(delay * US, order.append, seq)
            if seq % cancel_every == 0:
                handle.cancel()
            else:
                live.append((delay, seq))
        engine.run()
        assert order == [seq for _, seq in sorted(live)]

"""Tests for repro.sim.trace."""

import pytest

from repro.sim.trace import TraceRecord, Tracer


class TestTraceRecord:
    def test_duration(self):
        record = TraceRecord(1.0, 3.0, "memcpy", "h2d")
        assert record.duration == 2.0

    def test_format_contains_fields(self):
        record = TraceRecord(0.0, 1e-6, "kernel", "copy", {"device": 3})
        text = record.format()
        assert "kernel:copy" in text and "device=3" in text


class TestTracer:
    def test_disabled_by_default_drops_records(self):
        tracer = Tracer()
        tracer.record(0.0, 1.0, "x", "y")
        assert len(tracer) == 0

    def test_enabled_collects(self):
        tracer = Tracer(enabled=True)
        tracer.record(0.0, 1.0, "memcpy", "a", bytes=10)
        tracer.record(1.0, 2.0, "kernel", "b")
        assert len(tracer) == 2
        assert len(tracer.records("memcpy")) == 1

    def test_invalid_window_rejected(self):
        tracer = Tracer(enabled=True)
        with pytest.raises(ValueError):
            tracer.record(2.0, 1.0, "x", "y")

    def test_timeline_sorted(self):
        tracer = Tracer(enabled=True)
        tracer.record(5.0, 6.0, "b", "later")
        tracer.record(1.0, 2.0, "a", "earlier")
        lines = tracer.timeline().splitlines()
        assert "earlier" in lines[0]
        assert "later" in lines[1]

    def test_clear(self):
        tracer = Tracer(enabled=True)
        tracer.record(0.0, 1.0, "x", "y")
        tracer.clear()
        assert len(tracer) == 0

    def test_capacity_rejects_non_positive(self):
        with pytest.raises(ValueError):
            Tracer(enabled=True, capacity=0)

    def test_ring_buffer_counts_dropped(self):
        tracer = Tracer(enabled=True, capacity=3)
        for i in range(8):
            tracer.record(float(i), float(i) + 0.5, "x", f"r{i}")
        assert len(tracer) == 3
        assert tracer.dropped == 5
        # The ring keeps the newest records.
        assert [r.label for r in tracer] == ["r5", "r6", "r7"]

    def test_unbounded_tracer_never_drops(self):
        tracer = Tracer(enabled=True)
        for i in range(100):
            tracer.record(float(i), float(i), "x", "y")
        assert tracer.dropped == 0

    def test_clear_resets_dropped(self):
        tracer = Tracer(enabled=True, capacity=1)
        tracer.record(0.0, 1.0, "x", "a")
        tracer.record(1.0, 2.0, "x", "b")
        assert tracer.dropped == 1
        tracer.clear()
        assert tracer.dropped == 0 and len(tracer) == 0


class TestTracingIntegration:
    def test_hip_memcpy_produces_trace(self):
        from repro.hardware.node import HardwareNode
        from repro.hip.runtime import HipRuntime
        from repro.units import MiB

        node = HardwareNode(trace=True)
        hip = HipRuntime(node)

        def run():
            host = hip.host_malloc(1 * MiB)
            dev = hip.malloc(1 * MiB)
            yield from hip.memcpy(dev, host)

        hip.run(run())
        records = node.tracer.records("memcpy")
        assert len(records) == 1
        assert records[0].detail["bytes"] == 1 * MiB

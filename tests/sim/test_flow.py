"""Tests for the fluid-flow network (repro.sim.flow)."""

import pytest

from repro.errors import SimulationError
from repro.sim.engine import SimEngine
from repro.sim.flow import FlowNetwork


@pytest.fixture
def net():
    engine = SimEngine()
    network = FlowNetwork(engine)
    network.add_channel("link", 100.0)
    return network


def run_flows(network, *specs):
    """Start flows (channels, size, cap) and return them after the run."""
    flows = [
        network.transfer(channels, size, cap=cap)
        for channels, size, cap in specs
    ]
    network.engine.run()
    return flows


class TestSingleFlow:
    def test_exact_completion_time(self, net):
        (flow,) = run_flows(net, (["link"], 200.0, float("inf")))
        assert flow.completed
        assert flow.elapsed == pytest.approx(2.0)
        assert flow.achieved_rate == pytest.approx(100.0)

    def test_cap_limits_rate(self, net):
        (flow,) = run_flows(net, (["link"], 100.0, 20.0))
        assert flow.elapsed == pytest.approx(5.0)

    def test_zero_byte_completes_immediately(self, net):
        flow = net.transfer(["link"], 0.0)
        assert flow.completed
        assert flow.elapsed == 0.0

    def test_negative_size_rejected(self, net):
        with pytest.raises(SimulationError):
            net.transfer(["link"], -1.0)

    def test_unknown_channel_rejected(self, net):
        with pytest.raises(SimulationError):
            net.transfer(["nope"], 1.0)

    def test_channelless_uncapped_rejected(self, net):
        with pytest.raises(SimulationError):
            net.transfer([], 1.0)


class TestSharing:
    def test_two_flows_share_then_speed_up(self, net):
        f1, f2 = run_flows(
            net,
            (["link"], 100.0, float("inf")),
            (["link"], 50.0, float("inf")),
        )
        # Shared at 50 each: f2 done at t=1; f1 then finishes its
        # remaining 50 at 100/s: t=1.5.
        assert f2.elapsed == pytest.approx(1.0)
        assert f1.elapsed == pytest.approx(1.5)

    def test_three_equal_flows(self, net):
        flows = run_flows(*([net] + [(["link"], 90.0, float("inf"))] * 3))
        for flow in flows:
            assert flow.elapsed == pytest.approx(2.7)

    def test_late_arrival_slows_first(self):
        engine = SimEngine()
        net = FlowNetwork(engine)
        net.add_channel("c", 100.0)

        def scenario():
            first = net.transfer(["c"], 100.0)
            yield engine.timeout(0.5)  # first has moved 50 bytes
            second = net.transfer(["c"], 100.0)
            yield engine.all_of([first.done, second.done])
            return first.elapsed, second.elapsed

        t1, t2 = engine.run_process(scenario())
        # first: 0.5s alone + 1.0s shared = 1.5; second: 1.0 shared +
        # 0.5 alone = 1.5 from its start.
        assert t1 == pytest.approx(1.5)
        assert t2 == pytest.approx(1.5)

    def test_multi_hop_flow_counts_on_every_channel(self):
        engine = SimEngine()
        net = FlowNetwork(engine)
        net.add_channel("a", 100.0)
        net.add_channel("b", 100.0)
        path = net.transfer(["a", "b"], 100.0)
        solo = net.transfer(["b"], 100.0)
        engine.run()
        # Channel b is shared at 50/50; both flows are b-limited the
        # whole way, so both take 2.0s (a's spare capacity is unusable).
        assert path.elapsed == pytest.approx(2.0)
        assert solo.elapsed == pytest.approx(2.0)


class TestUtilization:
    def test_utilization_reports_load(self):
        engine = SimEngine()
        net = FlowNetwork(engine)
        net.add_channel("c", 100.0)

        def scenario():
            net.transfer(["c"], 1000.0, cap=30.0)
            yield engine.timeout(0.0)
            return net.utilization("c")

        assert engine.run_process(scenario()) == pytest.approx(0.3)

    def test_duplicate_channel_rejected(self):
        engine = SimEngine()
        net = FlowNetwork(engine)
        net.add_channel("c", 1.0)
        with pytest.raises(SimulationError):
            net.add_channel("c", 2.0)


class TestConservation:
    def test_total_bytes_conserved(self):
        """Sum of (rate × time) slices equals each flow's size."""
        engine = SimEngine()
        net = FlowNetwork(engine)
        net.add_channel("c", 64.0)
        sizes = [10.0, 75.0, 33.0, 128.0, 1.0]
        flows = [net.transfer(["c"], s) for s in sizes]
        engine.run()
        for flow, size in zip(flows, sizes):
            assert flow.completed
            assert flow.remaining == 0.0
            # achieved_rate * elapsed == size
            assert flow.achieved_rate * flow.elapsed == pytest.approx(size)

    def test_completion_order_matches_sizes_for_equal_start(self):
        engine = SimEngine()
        net = FlowNetwork(engine)
        net.add_channel("c", 10.0)
        small = net.transfer(["c"], 10.0)
        big = net.transfer(["c"], 100.0)
        engine.run()
        assert small.finish_time < big.finish_time

"""Unit + property tests for max-min fair allocation."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.sim.fairshare import (
    FlowSpec,
    allocation_is_feasible,
    max_min_fair_rates,
)


class TestBasicAllocations:
    def test_single_flow_takes_channel(self):
        rates = max_min_fair_rates(
            [FlowSpec("f", ("c",))], {"c": 100.0}
        )
        assert rates["f"] == pytest.approx(100.0)

    def test_equal_split(self):
        flows = [FlowSpec(i, ("c",)) for i in range(4)]
        rates = max_min_fair_rates(flows, {"c": 100.0})
        assert all(r == pytest.approx(25.0) for r in rates.values())

    def test_cap_binds_first(self):
        flows = [FlowSpec("capped", ("c",), cap=10.0), FlowSpec("free", ("c",))]
        rates = max_min_fair_rates(flows, {"c": 100.0})
        assert rates["capped"] == pytest.approx(10.0)
        assert rates["free"] == pytest.approx(90.0)

    def test_cap_only_flow(self):
        rates = max_min_fair_rates([FlowSpec("f", (), cap=42.0)], {})
        assert rates["f"] == pytest.approx(42.0)

    def test_multi_hop_bottleneck(self):
        flows = [FlowSpec("path", ("wide", "narrow"))]
        rates = max_min_fair_rates(flows, {"wide": 100.0, "narrow": 10.0})
        assert rates["path"] == pytest.approx(10.0)

    def test_classic_three_flow_example(self):
        # f1 on A, f2 on A+B, f3 on B; A=10, B=20.
        flows = [
            FlowSpec("f1", ("A",)),
            FlowSpec("f2", ("A", "B")),
            FlowSpec("f3", ("B",)),
        ]
        rates = max_min_fair_rates(flows, {"A": 10.0, "B": 20.0})
        assert rates["f1"] == pytest.approx(5.0)
        assert rates["f2"] == pytest.approx(5.0)
        assert rates["f3"] == pytest.approx(15.0)

    def test_empty(self):
        assert max_min_fair_rates([], {}) == {}


class TestValidation:
    def test_duplicate_ids(self):
        with pytest.raises(SimulationError):
            max_min_fair_rates(
                [FlowSpec("f", ("c",)), FlowSpec("f", ("c",))], {"c": 1.0}
            )

    def test_unknown_channel(self):
        with pytest.raises(SimulationError):
            max_min_fair_rates([FlowSpec("f", ("nope",))], {})

    def test_nonpositive_capacity(self):
        with pytest.raises(SimulationError):
            max_min_fair_rates([FlowSpec("f", ("c",))], {"c": 0.0})

    def test_nonpositive_cap(self):
        with pytest.raises(SimulationError):
            FlowSpec("f", ("c",), cap=0.0)

    def test_unconstrained_flow(self):
        with pytest.raises(SimulationError):
            max_min_fair_rates([FlowSpec("f", ())], {})


@st.composite
def fairshare_problems(draw):
    num_channels = draw(st.integers(1, 5))
    capacities = {
        f"c{i}": draw(st.floats(1.0, 1000.0)) for i in range(num_channels)
    }
    num_flows = draw(st.integers(1, 8))
    flows = []
    for i in range(num_flows):
        channels = tuple(
            draw(
                st.lists(
                    st.sampled_from(sorted(capacities)),
                    min_size=1,
                    max_size=num_channels,
                    unique=True,
                )
            )
        )
        cap = draw(st.one_of(st.just(math.inf), st.floats(0.5, 500.0)))
        flows.append(FlowSpec(i, channels, cap))
    return flows, capacities


@settings(max_examples=150, deadline=None)
@given(fairshare_problems())
def test_allocation_properties(problem):
    """The three max-min invariants, checked on random problems."""
    flows, capacities = problem
    rates = max_min_fair_rates(flows, capacities)

    # 1. Feasibility: no channel over capacity, no cap exceeded.
    assert allocation_is_feasible(flows, capacities, rates)

    # 2. Positivity: nobody starves.
    assert all(rate > 0 for rate in rates.values())

    # 3. Work conservation: every flow is blocked by a tight channel
    #    or its own cap (cannot be raised unilaterally).
    load = {channel: 0.0 for channel in capacities}
    for flow in flows:
        for channel in flow.channels:
            load[channel] += rates[flow.flow_id]
    for flow in flows:
        at_cap = (
            flow.cap is not math.inf
            and rates[flow.flow_id] >= flow.cap * (1 - 1e-6)
        )
        on_tight_channel = any(
            load[channel] >= capacities[channel] * (1 - 1e-6)
            for channel in flow.channels
        )
        assert at_cap or on_tight_channel


@settings(max_examples=50, deadline=None)
@given(fairshare_problems())
def test_allocation_deterministic(problem):
    flows, capacities = problem
    first = max_min_fair_rates(flows, capacities)
    second = max_min_fair_rates(list(flows), dict(capacities))
    assert first == second

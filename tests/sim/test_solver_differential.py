"""Bit-identity across fairshare solver strategies.

Dirty-set trace replay (``dirty``), per-event replay (``eager``) and
the full per-component re-solve (``full``) must be *exactly*
equivalent — same rates, same bottleneck attribution, same completion
timestamps, down to the last float bit — or cached sweep results and
figure artifacts would silently depend on which strategy produced
them (the strategy deliberately stays out of cache fingerprints, see
:mod:`repro.sim.backends`).  Equality below is ``==`` on floats
throughout; ``pytest.approx`` would hide exactly the bugs these tests
exist for.

Two layers:

- solver level: random add/remove/``set_capacity`` sequences against
  a :class:`FairshareSolver` with and without dirty-set re-leveling,
  cross-checked against the batch :func:`max_min_fair_rates` oracle
  after every op;
- network level: full :class:`FlowNetwork` workloads (including
  same-timestamp bursts, the epoch-deferral regime) compared across
  all three strategies on the complete observable trace.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.sim.backends import SOLVER_STRATEGIES, resolve_solver
from repro.sim.engine import SimEngine
from repro.sim.fairshare import FairshareSolver, FlowSpec, max_min_fair_rates
from repro.sim.flow import FlowNetwork

#: Channel universe for the solver-level fuzz: a clique-ish core the
#: dirty threshold actually triggers on, plus private leaf channels.
CHANNELS = {
    "core0": 100.0,
    "core1": 150.0,
    "core2": 75.0,
    "leaf0": 50.0,
    "leaf1": 36.0,
    "leaf2": 200.0,
    "leaf3": 25.0,
}


@st.composite
def op_sequences(draw):
    """A deterministic add/remove/set_capacity script."""
    n_ops = draw(st.integers(min_value=1, max_value=60))
    ops = []
    live = 0
    names = sorted(CHANNELS)
    for index in range(n_ops):
        kind = draw(
            st.sampled_from(
                ["add", "add", "add", "remove", "set_capacity"]
                if live
                else ["add"]
            )
        )
        if kind == "add":
            channels = tuple(
                draw(
                    st.lists(
                        st.sampled_from(names),
                        min_size=1,
                        max_size=4,
                        unique=True,
                    )
                )
            )
            cap = draw(st.sampled_from([float("inf"), 20.0, 55.0, 80.0]))
            ops.append(("add", index, channels, cap))
            live += 1
        elif kind == "remove":
            ops.append(("remove", draw(st.integers(0, index - 1))))
            live -= 1
        else:
            ops.append(
                (
                    "set_capacity",
                    draw(st.sampled_from(names)),
                    draw(st.sampled_from([10.0, 40.0, 90.0, 160.0])),
                )
            )
    return ops


def apply_ops(solver, ops):
    """Run a script; returns ``[(rates, bottlenecks)]`` after each op."""
    states = []
    added = set()
    for op in ops:
        if op[0] == "add":
            _, flow_id, channels, cap = op
            solver.add_flow(FlowSpec(flow_id, channels, cap=cap))
            added.add(flow_id)
        elif op[0] == "remove":
            flow_id = op[1]
            if flow_id in added and flow_id in solver:
                solver.remove_flow(flow_id)
        else:
            solver.set_capacity(op[1], op[2])
        states.append((dict(solver.rates()), dict(solver.bottlenecks())))
    return states


def fresh_solver(dirty):
    solver = FairshareSolver(track_bottlenecks=True, dirty=dirty)
    for channel, capacity in sorted(CHANNELS.items()):
        solver.add_channel(channel, capacity)
    return solver


class TestDirtyReplayBitIdentical:
    @settings(max_examples=60, deadline=None)
    @given(ops=op_sequences())
    def test_dirty_equals_full_on_random_scripts(self, ops):
        dirty_states = apply_ops(fresh_solver(dirty=True), ops)
        full_states = apply_ops(fresh_solver(dirty=False), ops)
        assert dirty_states == full_states

    @settings(max_examples=25, deadline=None)
    @given(ops=op_sequences())
    def test_dirty_matches_batch_oracle_at_end(self, ops):
        solver = fresh_solver(dirty=True)
        apply_ops(solver, ops)
        flows = solver.flows()
        if not flows:
            return
        capacities = solver.capacities()
        used = {c for spec in flows for c in spec.channels}
        oracle = max_min_fair_rates(
            flows, {c: capacities[c] for c in used}
        )
        assert solver.rates() == oracle

    def test_churn_on_light_channel_replays_not_resolves(self):
        # The headline regime: a congested core freezes everything in
        # round 0, then steady churn on a lightly loaded leaf channel
        # must be absorbed by trace replay, not a full component
        # re-solve.  The buildup itself diverges at round 0 every time
        # (each arrival lands on the binding channel), so it drives the
        # component into replay backoff first — a few churn cycles
        # reach the probe trace, the probe's replay succeeds, and from
        # then on every churn op replays.
        solver = fresh_solver(dirty=True)
        for i in range(16):
            solver.add_flow(FlowSpec(("bg", i), ("core0", "leaf2")))
        for i in range(8):  # warm-up: rides out backoff to the probe
            solver.add_flow(FlowSpec(("warm", i), ("leaf2",), cap=20.0))
            solver.remove_flow(("warm", i))
        before = solver.stats.dirty_relevels
        solver.add_flow(FlowSpec("churn", ("leaf2",), cap=20.0))
        solver.remove_flow("churn")
        assert solver.stats.dirty_relevels >= before + 2

    def test_round0_churn_backs_off_trace_recording(self):
        # The anti-regime: every arrival changes the round-0 binding
        # constraint, so no replay can ever succeed — after the backoff
        # threshold the solver must stop paying for trace recording
        # (rates are differential-tested identical either way).
        solver = fresh_solver(dirty=True)
        for i in range(24):
            solver.add_flow(FlowSpec(("bg", i), ("core0",)))
        assert solver.stats.trace_skips > 0
        assert solver.stats.dirty_relevels == 0


def run_network_workload(solver, capacities, flow_specs, capacity_changes=()):
    """One FlowNetwork workload; returns the full observable trace.

    Mirrors the backend-differential harness: ``flow_specs`` is a list
    of ``(channel_indices, size, delay, cap)``, ``capacity_changes`` of
    ``(at, channel_index, capacity)``.  Delays repeat across flows on
    purpose — same-timestamp bursts are the epoch-deferral regime.
    """
    engine = SimEngine()
    net = FlowNetwork(engine, solver=solver)
    for index, capacity in enumerate(capacities):
        net.add_channel(f"ch{index}", capacity)
    completions = []
    flows = []

    def start(spec):
        channels, size, delay, cap = spec

        def proc():
            if delay:
                yield engine.timeout(delay)
            flow = net.transfer([f"ch{c}" for c in channels], size, cap=cap)
            flows.append(flow)
            yield flow.done
            completions.append((flow.flow_id, engine.now))

        engine.process(proc())

    for spec in flow_specs:
        start(spec)
    for at, index, capacity in capacity_changes:
        engine.schedule(at, net.set_capacity, f"ch{index}", capacity)
    engine.run()
    return {
        "completions": completions,
        "elapsed": [flow.elapsed for flow in flows],
        "rates": [flow.achieved_rate for flow in flows],
        "final_time": engine.now,
    }


@st.composite
def network_workloads(draw):
    n_channels = draw(st.integers(min_value=1, max_value=4))
    capacities = draw(
        st.lists(
            st.sampled_from([50.0, 100.0, 175.0, 275.0]),
            min_size=n_channels,
            max_size=n_channels,
        )
    )
    n_flows = draw(st.integers(min_value=1, max_value=12))
    flow_specs = []
    for _ in range(n_flows):
        channels = draw(
            st.lists(
                st.integers(min_value=0, max_value=n_channels - 1),
                min_size=1,
                max_size=n_channels,
                unique=True,
            )
        )
        size = draw(st.sampled_from([1.0, 7.5, 64.0, 100.0, 333.0]))
        # Few distinct delays → many same-timestamp arrivals, which is
        # exactly what epoch deferral coalesces into one solve.
        delay = draw(st.sampled_from([0.0, 0.25, 1.0]))
        cap = draw(st.sampled_from([float("inf"), 30.0, 80.0]))
        flow_specs.append((channels, size, delay, cap))
    changes = draw(
        st.lists(
            st.tuples(
                st.sampled_from([0.25, 1.0, 2.4]),
                st.integers(min_value=0, max_value=n_channels - 1),
                st.sampled_from([25.0, 60.0, 150.0]),
            ),
            max_size=3,
        )
    )
    return capacities, flow_specs, changes


class TestEpochDeferredBitIdentical:
    @settings(max_examples=40, deadline=None)
    @given(workload=network_workloads())
    def test_strategies_agree_on_completion_times(self, workload):
        capacities, flow_specs, changes = workload
        baseline = run_network_workload("full", capacities, flow_specs, changes)
        for strategy in ("eager", "dirty"):
            assert (
                run_network_workload(strategy, capacities, flow_specs, changes)
                == baseline
            ), strategy

    def test_same_epoch_burst_single_solve(self):
        # All transfers land in one epoch; deferral coalesces them and
        # completion callbacks still fire in listing (flow-id) order.
        traces = {
            strategy: run_network_workload(
                strategy, [100.0], [([0], 50.0, 0.0, float("inf"))] * 4
            )
            for strategy in SOLVER_STRATEGIES
        }
        ids = [fid for fid, _ in traces["full"]["completions"]]
        assert ids == sorted(ids)
        for strategy, trace in traces.items():
            assert trace == traces["full"], strategy


class TestSolverSelection:
    def test_unknown_strategy_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown solver"):
            FlowNetwork(SimEngine(), solver="magic")

    def test_env_var_sets_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_SOLVER", "full")
        net = FlowNetwork(SimEngine())
        assert net.solver_strategy == "full"
        assert not net.solver.dirty_releveling

    def test_explicit_strategy_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SOLVER", "full")
        net = FlowNetwork(SimEngine(), solver="dirty")
        assert net.solver_strategy == "dirty"
        assert net.solver.dirty_releveling

    def test_resolve_never_degrades(self):
        for name in SOLVER_STRATEGIES:
            choice = resolve_solver(name)
            assert choice.requested == choice.effective == name

    def test_eager_disables_deferral_keeps_replay(self):
        net = FlowNetwork(SimEngine(), solver="eager")
        assert net.solver.dirty_releveling
        assert not net._defer

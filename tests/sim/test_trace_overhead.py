"""Tracing must be near-free when disabled, bounded when ringed.

The regression of record: every runtime-layer call site guards on
``tracer.enabled`` before building kwargs or records, so a disabled
tracer performs **no per-record allocation at all** — enforced here by
making record construction explode and running traced code paths.
"""

from __future__ import annotations

import pytest

import repro
from repro.sim import trace as trace_module
from repro.sim.trace import TraceRecord, Tracer


class _ExplodingRecord:
    def __init__(self, *args, **kwargs):
        raise AssertionError("TraceRecord built while tracing is disabled")


@pytest.fixture
def no_record_construction(monkeypatch):
    monkeypatch.setattr(trace_module, "TraceRecord", _ExplodingRecord)


def _exercise_runtime(session: repro.Session) -> None:
    hip = session.hip

    def program():
        src = hip.host_malloc(1 << 20)
        dst = hip.malloc(1 << 20, device=0)
        peer = hip.malloc(1 << 20, device=1)
        yield from hip.memcpy(dst, src)
        yield from hip.memcpy_peer(peer, 1, dst, 0)
        yield hip.launch_stream_copy(peer, peer, device=1)
        managed = hip.malloc_managed(1 << 16)
        yield from hip.mem_prefetch(managed, device=0)

    session.run(program())


class TestDisabledTracerAllocatesNothing:
    def test_runtime_paths_build_no_records(self, no_record_construction):
        session = repro.Session()  # trace defaults to off
        _exercise_runtime(session)
        assert len(session.tracer) == 0

    def test_rccl_path_builds_no_records(self, no_record_construction):
        session = repro.Session()
        comm = session.rccl_communicator([0, 1])
        session.run(comm.allreduce(1 << 20))
        assert len(session.tracer) == 0

    def test_record_method_itself_is_not_called(self, monkeypatch):
        calls = []
        monkeypatch.setattr(
            Tracer,
            "record",
            lambda self, *a, **k: calls.append(a),
        )
        session = repro.Session()
        _exercise_runtime(session)
        assert calls == []

    def test_disabled_tracer_is_falsy(self):
        assert not Tracer(enabled=False)
        assert Tracer(enabled=True)


class TestEnabledTracerStillRecords:
    def test_same_workload_produces_records(self):
        session = repro.Session(obs=repro.ObsConfig(trace=True))
        _exercise_runtime(session)
        assert len(session.tracer) > 0
        categories = {r.category for r in session.tracer.records()}
        assert "memcpy" in categories


class TestRingBuffer:
    def test_capacity_keeps_newest(self):
        tracer = Tracer(enabled=True, capacity=3)
        for i in range(10):
            tracer.record(float(i), float(i) + 0.5, "k", f"r{i}")
        assert len(tracer) == 3
        labels = [record.label for record in tracer.records()]
        assert labels == ["r7", "r8", "r9"]
        assert tracer.dropped == 7

    def test_clear_resets_dropped(self):
        tracer = Tracer(enabled=True, capacity=1)
        tracer.record(0.0, 1.0, "k", "a")
        tracer.record(1.0, 2.0, "k", "b")
        assert tracer.dropped == 1
        tracer.clear()
        assert tracer.dropped == 0
        assert len(tracer) == 0

    def test_session_trace_capacity_flows_through(self):
        session = repro.Session(
            obs=repro.ObsConfig(trace=True, trace_capacity=2)
        )
        _exercise_runtime(session)
        assert len(session.tracer) == 2
        assert session.tracer.dropped > 0

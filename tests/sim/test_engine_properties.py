"""Property tests for the DES kernel's ordering guarantees."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.engine import SimEngine


@settings(max_examples=80, deadline=None)
@given(st.lists(st.floats(0.0, 100.0), min_size=1, max_size=30))
def test_timeouts_deliver_in_time_order(delays):
    """Callbacks fire in non-decreasing simulated time."""
    engine = SimEngine()
    fired = []
    for delay in delays:
        engine.timeout(delay).add_callback(
            lambda _e, d=delay: fired.append((engine.now, d))
        )
    engine.run()
    times = [t for t, _d in fired]
    assert times == sorted(times)
    # Every callback fired exactly at its delay.
    assert all(t == d for t, d in fired)
    assert len(fired) == len(delays)


@settings(max_examples=50, deadline=None)
@given(st.lists(st.floats(0.0, 10.0), min_size=1, max_size=15))
def test_equal_times_fire_fifo(delays):
    """Ties break in scheduling order (determinism guarantee)."""
    engine = SimEngine()
    order = []
    for index, _delay in enumerate(delays):
        engine.timeout(5.0).add_callback(
            lambda _e, i=index: order.append(i)
        )
    engine.run()
    assert order == list(range(len(delays)))


@settings(max_examples=40, deadline=None)
@given(
    st.lists(
        st.tuples(st.floats(0.0, 20.0), st.floats(0.0, 20.0)),
        min_size=1,
        max_size=12,
    )
)
def test_nested_processes_terminate(specs):
    """Processes spawning processes all run to completion."""
    engine = SimEngine()
    finished = []

    def child(delay):
        yield engine.timeout(delay)
        finished.append("child")

    def parent(first, second):
        yield engine.timeout(first)
        engine.process(child(second))
        finished.append("parent")

    for first, second in specs:
        engine.process(parent(first, second))
    engine.run()
    assert finished.count("parent") == len(specs)
    assert finished.count("child") == len(specs)


@settings(max_examples=40, deadline=None)
@given(st.integers(1, 40))
def test_chained_zero_timeouts_make_progress(depth):
    """Zero-delay chains complete without clock movement or hang."""
    engine = SimEngine()

    def chain(remaining):
        if remaining:
            yield engine.timeout(0.0)
            yield from chain(remaining - 1)
        return "done"

    assert engine.run_process(chain(depth)) == "done"
    assert engine.now == 0.0

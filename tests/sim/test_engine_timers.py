"""Pooled timers, lazy cancellation and engine counters."""

from __future__ import annotations

import pytest

from repro.errors import SchedulingError
from repro.sim.engine import SimEngine, TimerHandle, _TIMER_POOL_LIMIT


@pytest.fixture
def engine():
    return SimEngine()


class TestCallAfter:
    def test_fires_in_order_with_args(self, engine):
        order = []
        engine.call_after(2e-6, order.append, "late")
        engine.call_after(1e-6, order.append, "early")
        engine.run()
        assert order == ["early", "late"]
        assert engine.now == 2e-6

    def test_negative_delay_rejected(self, engine):
        with pytest.raises(SchedulingError):
            engine.call_after(-1.0, lambda: None)

    def test_records_are_recycled(self, engine):
        for _ in range(10):
            engine.call_after(1e-6, lambda: None)
        engine.run()
        assert len(engine._timer_pool) == 10
        engine.call_after(1e-6, lambda: None)
        assert len(engine._timer_pool) == 9  # popped from the free-list

    def test_pool_is_bounded(self, engine):
        for _ in range(_TIMER_POOL_LIMIT + 50):
            engine.call_after(1e-6, lambda: None)
        engine.run()
        assert len(engine._timer_pool) == _TIMER_POOL_LIMIT


class TestSchedule:
    def test_cancel_prevents_firing(self, engine):
        fired = []
        handle = engine.schedule(1e-6, fired.append, 1)
        engine.schedule(2e-6, fired.append, 2)
        handle.cancel()
        engine.run()
        assert fired == [2]
        assert engine.timers_cancelled == 1
        assert engine.timers_fired == 1

    def test_cancel_is_idempotent(self, engine):
        handle = engine.schedule(1e-6, lambda: None)
        handle.cancel()
        handle.cancel()
        engine.run()
        assert engine.timers_cancelled == 1

    def test_cancelled_handles_are_not_pooled(self, engine):
        handle = engine.schedule(1e-6, lambda: None)
        handle.cancel()
        engine.run()
        assert handle not in engine._timer_pool

    def test_cancel_releases_callback_references(self, engine):
        payload = object()
        handle = engine.schedule(1e-6, lambda p: None, payload)
        handle.cancel()
        assert handle.callback is None
        assert handle.args == ()

    def test_handle_is_slotted(self):
        handle = TimerHandle(lambda: None, (), pooled=False)
        with pytest.raises(AttributeError):
            handle.arbitrary_attribute = 1


class TestCounters:
    def test_stats_shape(self, engine):
        engine.call_after(1e-6, lambda: None)
        stale = engine.schedule(2e-6, lambda: None)
        stale.cancel()
        done = engine.event()
        engine.call_after(3e-6, done.succeed, None)
        engine.run()
        stats = engine.stats()
        assert stats["timers_fired"] == 2
        assert stats["timers_cancelled"] == 1
        assert stats["events_delivered"] == 1
        assert stats["heap_size"] == 0

    def test_determinism_with_mixed_timers(self):
        def trace():
            engine = SimEngine()
            order = []
            for i in range(50):
                if i % 3 == 0:
                    handle = engine.schedule((i % 7) * 1e-6, order.append, i)
                    if i % 6 == 0:
                        handle.cancel()
                else:
                    engine.call_after((i % 5) * 1e-6, order.append, i)
            engine.run()
            return order

        assert trace() == trace()

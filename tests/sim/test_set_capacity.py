"""Dynamic capacity changes: differential tests and failure semantics.

The tentpole property: driving a :class:`FairshareSolver` (or a live
:class:`FlowNetwork`) through arbitrary mid-flight ``set_capacity``
churn must produce **bit-identical** rates to tearing every flow down
and re-adding it under the new capacities.  Zero capacity models a
failed link: crossing flows fail with :class:`LinkDownError`, survivors
re-level.
"""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import LinkDownError, SimulationError
from repro.sim.engine import SimEngine
from repro.sim.fairshare import (
    FairshareSolver,
    FlowSpec,
    allocation_is_feasible,
    max_min_fair_rates,
)
from repro.sim.flow import FlowNetwork

CHANNELS = [f"ch{i}" for i in range(8)]
BASE_CAPACITIES = {
    channel: capacity
    for channel, capacity in zip(
        CHANNELS, [1.0, 2.0, 0.5, 4.0, 1.5, 3.0, 0.25, 8.0]
    )
}


def _fresh_solver() -> FairshareSolver:
    solver = FairshareSolver()
    for channel, capacity in BASE_CAPACITIES.items():
        solver.add_channel(channel, capacity)
    return solver


@st.composite
def churn_with_capacity_changes(draw):
    """add/remove/set_capacity op sequences over the fixed channel set."""
    num_ops = draw(st.integers(min_value=1, max_value=50))
    ops = []
    live = 0
    for _ in range(num_ops):
        kind = draw(st.integers(0, 2))
        if kind == 0 and live > 0:
            ops.append(("remove", draw(st.integers(0, live - 1))))
            live -= 1
        elif kind == 1:
            channel = draw(st.sampled_from(CHANNELS))
            factor = draw(st.floats(min_value=0.05, max_value=2.0))
            ops.append(("set_capacity", channel, factor))
        else:
            channels = tuple(
                sorted(
                    draw(
                        st.sets(
                            st.sampled_from(CHANNELS), min_size=1, max_size=3
                        )
                    )
                )
            )
            cap = draw(
                st.one_of(
                    st.just(math.inf),
                    st.floats(min_value=0.05, max_value=10.0),
                )
            )
            ops.append(("add", channels, cap))
            live += 1
    return ops


@settings(max_examples=60, deadline=None)
@given(churn_with_capacity_changes())
def test_set_capacity_bitwise_identical_to_readd_all(ops):
    """After every op the incremental solver equals a from-scratch batch
    solve of the surviving flows under the current capacities — the
    remove-all/re-add-all reference."""
    solver = _fresh_solver()
    capacities = dict(BASE_CAPACITIES)
    live: list[FlowSpec] = []
    next_id = 0
    for op in ops:
        if op[0] == "add":
            _, channels, cap = op
            spec = FlowSpec(next_id, channels, cap)
            next_id += 1
            live.append(spec)
            solver.add_flow(spec)
        elif op[0] == "remove":
            victim = live.pop(op[1])
            solver.remove_flow(victim.flow_id)
        else:
            _, channel, factor = op
            capacities[channel] = BASE_CAPACITIES[channel] * factor
            solver.set_capacity(channel, capacities[channel])

        batch = max_min_fair_rates(live, capacities)
        incremental = solver.rates()
        assert incremental == batch  # bitwise: no tolerance

        if live:
            assert allocation_is_feasible(live, capacities, incremental)


class TestNetworkSetCapacity:
    def _network(self):
        engine = SimEngine()
        network = FlowNetwork(engine)
        network.add_channel("a", 100.0)
        network.add_channel("b", 50.0)
        return engine, network

    def test_midflight_change_relevels_like_restart(self):
        engine, network = self._network()
        flows = [
            network.transfer(["a"], 1000.0),
            network.transfer(["a", "b"], 1000.0),
        ]

        def churn():
            yield engine.timeout(1.0)
            network.set_capacity("a", 60.0)
            batch = max_min_fair_rates(
                [
                    FlowSpec(f.flow_id, f.channels, f.cap)
                    for f in network.active_flows()
                ],
                network.capacities(),
            )
            assert {
                f.flow_id: f.rate for f in network.active_flows()
            } == batch

        engine.process(churn())
        engine.run()
        for flow in flows:
            assert flow.completed
            assert flow.remaining == 0.0

    def test_zero_capacity_fails_crossing_flows_and_speeds_survivors(self):
        engine, network = self._network()
        outcomes = {}

        def watch(name, flow):
            try:
                yield flow.done
                outcomes[name] = ("done", engine.now)
            except LinkDownError:
                outcomes[name] = ("failed", engine.now)

        def scenario():
            # Both flows share "a"; the victim also crosses "b".
            survivor = network.transfer(["a"], 500.0)
            victim = network.transfer(["a", "b"], 500.0)
            engine.process(watch("survivor", survivor))
            engine.process(watch("victim", victim))
            yield engine.timeout(1.0)
            network.set_capacity("b", 0.0)
            # The survivor immediately re-levels to the whole of "a".
            assert survivor.rate == pytest.approx(100.0)

        engine.process(scenario())
        engine.run()
        assert outcomes["victim"] == ("failed", pytest.approx(1.0))
        assert outcomes["survivor"][0] == "done"
        # 50 B/s for 1 s shared, then 100 B/s for the remaining 450 B.
        assert outcomes["survivor"][1] == pytest.approx(1.0 + 450.0 / 100.0)

    def test_transfer_on_dead_channel_rejected_until_restored(self):
        engine, network = self._network()
        network.set_capacity("b", 0.0)
        with pytest.raises(LinkDownError):
            network.transfer(["b"], 10.0)
        network.set_capacity("b", 50.0)
        flow = network.transfer(["b"], 10.0)
        engine.run()
        assert flow.completed

    def test_negative_capacity_rejected(self):
        _, network = self._network()
        with pytest.raises(SimulationError, match="non-negative"):
            network.set_capacity("a", -1.0)

    def test_unknown_channel_rejected(self):
        _, network = self._network()
        with pytest.raises(SimulationError, match="unknown channel"):
            network.set_capacity("nope", 1.0)

    def test_noop_change_is_free(self):
        _, network = self._network()
        before = network.solver.stats.as_dict().get("capacity_changes", 0)
        network.set_capacity("a", 100.0)  # same value
        after = network.solver.stats.as_dict().get("capacity_changes", 0)
        assert after == before

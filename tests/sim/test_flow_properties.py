"""Property tests for the fluid-flow network.

Random flow populations over random channel sets must conserve bytes,
complete every flow, respect capacities at all times, and be
deterministic.  These invariants are what make the benchmark numbers
trustworthy, so they get the heaviest hypothesis coverage.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.engine import SimEngine
from repro.sim.flow import FlowNetwork


@st.composite
def flow_scenarios(draw):
    num_channels = draw(st.integers(1, 4))
    capacities = [draw(st.floats(10.0, 1000.0)) for _ in range(num_channels)]
    num_flows = draw(st.integers(1, 10))
    flows = []
    for _ in range(num_flows):
        channels = draw(
            st.lists(
                st.integers(0, num_channels - 1),
                min_size=1,
                max_size=num_channels,
                unique=True,
            )
        )
        size = draw(st.floats(1.0, 10_000.0))
        cap = draw(st.one_of(st.just(math.inf), st.floats(1.0, 500.0)))
        start_delay = draw(st.floats(0.0, 5.0))
        flows.append((channels, size, cap, start_delay))
    return capacities, flows


def run_scenario(capacities, flows):
    engine = SimEngine()
    network = FlowNetwork(engine)
    for index, capacity in enumerate(capacities):
        network.add_channel(index, capacity)
    live = [None] * len(flows)

    def starter(index, channels, size, cap, delay):
        yield engine.timeout(delay)
        live[index] = network.transfer(channels, size, cap=cap)

    for index, spec in enumerate(flows):
        engine.process(starter(index, *spec))
    engine.run()
    return live


@settings(max_examples=80, deadline=None)
@given(flow_scenarios())
def test_all_flows_complete_and_conserve_bytes(scenario):
    capacities, flows = scenario
    live = run_scenario(capacities, flows)
    assert len(live) == len(flows)
    for flow, (channels, size, cap, delay) in zip(live, flows):
        assert flow.completed
        assert flow.remaining == 0.0
        # achieved_rate * elapsed reconstructs the size exactly.
        if flow.elapsed and flow.elapsed > 0:
            assert flow.achieved_rate * flow.elapsed == pytest.approx(
                size, rel=1e-6
            )
        # No flow ever beat its own cap on average.
        if cap is not math.inf and flow.elapsed and flow.elapsed > 0:
            assert flow.achieved_rate <= cap * (1 + 1e-6)


@settings(max_examples=40, deadline=None)
@given(flow_scenarios())
def test_aggregate_channel_throughput_bounded(scenario):
    """Total bytes through a channel ≤ capacity × makespan."""
    capacities, flows = scenario
    live = run_scenario(capacities, flows)
    makespan = max(flow.finish_time for flow in live)
    if makespan == 0:
        return
    for index, capacity in enumerate(capacities):
        total = sum(
            flow.size for flow in live if index in flow.channels
        )
        first_start = min(
            (flow.start_time for flow in live if index in flow.channels),
            default=0.0,
        )
        window = makespan - first_start
        if window > 0:
            assert total <= capacity * window * (1 + 1e-6)


@settings(max_examples=30, deadline=None)
@given(flow_scenarios())
def test_determinism(scenario):
    capacities, flows = scenario
    first = [f.finish_time for f in run_scenario(capacities, flows)]
    second = [f.finish_time for f in run_scenario(capacities, flows)]
    assert first == second


@settings(max_examples=40, deadline=None)
@given(
    st.lists(st.floats(1.0, 1000.0), min_size=2, max_size=6),
)
def test_single_channel_fifo_fairness(sizes):
    """Equal-start flows on one channel finish in size order."""
    engine = SimEngine()
    network = FlowNetwork(engine)
    network.add_channel("c", 100.0)
    flows = [network.transfer(["c"], s) for s in sizes]
    engine.run()
    finish_by_size = sorted(zip(sizes, [f.finish_time for f in flows]))
    finishes = [t for _s, t in finish_by_size]
    assert finishes == sorted(finishes)

"""Bit-identity across flow-integration backends.

The vectorized (NumPy) and compiled (numba) interval integrators must
be *exactly* equivalent to the scalar python loop — same completion
times, same rates, same event order, down to the last float bit — or
cached results and figure artifacts would silently depend on which
backend produced them.  Equality below is ``==`` on floats throughout;
``pytest.approx`` would hide exactly the bugs these tests exist for.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.sim.backends import (
    BACKENDS,
    compiled_available,
    numpy_available,
    resolve_backend,
)
from repro.sim.engine import SimEngine
from repro.sim.flow import FlowNetwork

pytestmark = pytest.mark.skipif(
    not numpy_available(), reason="numpy required for vectorized backend"
)

#: Backends that actually differ in implementation on this machine.
EFFECTIVE_BACKENDS = ["python", "vectorized"] + (
    ["compiled"] if compiled_available() else []
)


def run_workload(backend, capacities, flow_specs, capacity_changes=()):
    """Run one mixed workload; returns the full observable trace.

    ``flow_specs`` is a list of ``(channel_indices, size, delay, cap)``;
    ``capacity_changes`` of ``(at, channel_index, capacity)``.  The
    trace captures everything figure code could read: completion order
    with exact timestamps, per-flow elapsed/achieved_rate, and the
    final engine state.
    """
    engine = SimEngine()
    net = FlowNetwork(engine, backend=backend)
    for index, capacity in enumerate(capacities):
        net.add_channel(f"ch{index}", capacity)
    completions = []
    flows = []

    def start(spec):
        channels, size, delay, cap = spec

        def proc():
            if delay:
                yield engine.timeout(delay)
            flow = net.transfer([f"ch{c}" for c in channels], size, cap=cap)
            flows.append(flow)
            yield flow.done
            completions.append((flow.flow_id, engine.now))

        engine.process(proc())

    for spec in flow_specs:
        start(spec)
    for at, index, capacity in capacity_changes:
        engine.schedule(at, net.set_capacity, f"ch{index}", capacity)
    engine.run()
    return {
        "completions": completions,
        "elapsed": [flow.elapsed for flow in flows],
        "rates": [flow.achieved_rate for flow in flows],
        "final_time": engine.now,
        "events": engine.events_delivered,
        "timers": engine.timers_fired,
    }


@st.composite
def workloads(draw):
    n_channels = draw(st.integers(min_value=1, max_value=4))
    capacities = draw(
        st.lists(
            st.sampled_from([50.0, 100.0, 175.0, 275.0]),
            min_size=n_channels,
            max_size=n_channels,
        )
    )
    n_flows = draw(st.integers(min_value=1, max_value=10))
    flow_specs = []
    for _ in range(n_flows):
        channels = draw(
            st.lists(
                st.integers(min_value=0, max_value=n_channels - 1),
                min_size=1,
                max_size=n_channels,
                unique=True,
            )
        )
        size = draw(st.sampled_from([1.0, 7.5, 64.0, 100.0, 333.0, 1000.0]))
        delay = draw(st.sampled_from([0.0, 0.125, 0.25, 0.5, 1.0]))
        cap = draw(st.sampled_from([float("inf"), 30.0, 80.0, 120.0]))
        flow_specs.append((channels, size, delay, cap))
    changes = draw(
        st.lists(
            st.tuples(
                st.sampled_from([0.3, 0.6, 1.2, 2.4]),
                st.integers(min_value=0, max_value=n_channels - 1),
                st.sampled_from([25.0, 60.0, 150.0]),
            ),
            max_size=3,
        )
    )
    return capacities, flow_specs, changes


class TestBackendsBitIdentical:
    @settings(max_examples=40, deadline=None)
    @given(workload=workloads())
    def test_random_workloads_agree_exactly(self, workload):
        capacities, flow_specs, changes = workload
        baseline = run_workload("python", capacities, flow_specs, changes)
        for backend in EFFECTIVE_BACKENDS[1:]:
            assert run_workload(
                backend, capacities, flow_specs, changes
            ) == baseline, backend

    def test_same_time_completions_keep_flow_id_order(self):
        # Two equal flows on one channel finish at the same instant;
        # completion callbacks must fire in flow-id order on every
        # backend (the vectorized path detects them as one batch).
        traces = {
            backend: run_workload(
                backend, [100.0], [([0], 50.0, 0.0, float("inf"))] * 3
            )
            for backend in EFFECTIVE_BACKENDS
        }
        ids = [fid for fid, _ in traces["python"]["completions"]]
        assert ids == sorted(ids)
        for backend, trace in traces.items():
            assert trace == traces["python"], backend


class TestBackendSelection:
    def test_unknown_backend_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown backend"):
            FlowNetwork(SimEngine(), backend="fortran")

    def test_env_var_sets_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "python")
        net = FlowNetwork(SimEngine())
        assert net.backend == "python"

    def test_explicit_backend_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "python")
        net = FlowNetwork(SimEngine(), backend="vectorized")
        assert net.backend == "vectorized"

    def test_compiled_degrades_not_errors(self):
        choice = resolve_backend("compiled")
        assert choice.requested == "compiled"
        assert choice.effective in BACKENDS
        if not compiled_available():
            assert choice.degraded
            assert choice.effective == "vectorized"

    def test_network_reports_requested_and_effective(self):
        net = FlowNetwork(SimEngine(), backend="compiled")
        assert net.backend_requested == "compiled"
        if not compiled_available():
            assert net.backend == "vectorized"

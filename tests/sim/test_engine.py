"""Tests for the DES kernel (repro.sim.engine)."""

import pytest

from repro.errors import SchedulingError, SimulationError
from repro.sim.engine import SimEngine


@pytest.fixture
def engine():
    return SimEngine()


class TestEvents:
    def test_succeed_delivers_value(self, engine):
        seen = []
        event = engine.event()
        event.add_callback(lambda e: seen.append(e.value))
        event.succeed(42)
        engine.run()
        assert seen == [42]

    def test_double_trigger_rejected(self, engine):
        event = engine.event()
        event.succeed(1)
        with pytest.raises(SimulationError):
            event.succeed(2)

    def test_fail_requires_exception(self, engine):
        event = engine.event()
        with pytest.raises(SimulationError):
            event.fail("not an exception")  # type: ignore[arg-type]

    def test_late_callback_fires_immediately(self, engine):
        event = engine.event()
        event.succeed("x")
        engine.run()
        seen = []
        event.add_callback(lambda e: seen.append(e.value))
        assert seen == ["x"]


class TestTimeouts:
    def test_clock_advances(self, engine):
        engine.timeout(5.0)
        engine.run()
        assert engine.now == 5.0

    def test_negative_delay_rejected(self, engine):
        with pytest.raises(SchedulingError):
            engine.timeout(-1.0)

    def test_fifo_tie_break(self, engine):
        order = []
        engine.timeout(1.0).add_callback(lambda e: order.append("a"))
        engine.timeout(1.0).add_callback(lambda e: order.append("b"))
        engine.run()
        assert order == ["a", "b"]

    def test_run_until(self, engine):
        engine.timeout(10.0)
        engine.run(until=3.0)
        assert engine.now == 3.0


class TestProcesses:
    def test_return_value(self, engine):
        def proc():
            yield engine.timeout(1.0)
            return "done"

        assert engine.run_process(proc()) == "done"
        assert engine.now == 1.0

    def test_sequential_waits_accumulate(self, engine):
        def proc():
            yield engine.timeout(1.0)
            yield engine.timeout(2.0)
            return engine.now

        assert engine.run_process(proc()) == 3.0

    def test_wait_on_custom_event(self, engine):
        def proc():
            done = engine.event()
            engine.call_after(2.5, done.succeed, "payload")
            value = yield done
            return value

        assert engine.run_process(proc()) == "payload"

    def test_yielding_non_event_raises(self, engine):
        def proc():
            yield 42  # type: ignore[misc]

        process = engine.process(proc())
        with pytest.raises(SimulationError):
            engine.run()

    def test_exception_propagates(self, engine):
        def proc():
            yield engine.timeout(1.0)
            raise ValueError("boom")

        with pytest.raises(ValueError, match="boom"):
            engine.run_process(proc())

    def test_failed_event_raises_inside_process(self, engine):
        def proc():
            event = engine.event()
            engine.call_after(1.0, event.fail, RuntimeError("bad"))
            try:
                yield event
            except RuntimeError:
                return "caught"
            return "missed"

        assert engine.run_process(proc()) == "caught"

    def test_deadlock_detection(self, engine):
        def proc():
            yield engine.event()  # never triggered

        with pytest.raises(SimulationError, match="deadlock"):
            engine.run_process(proc())

    def test_interrupt(self, engine):
        from repro.sim.engine import Interrupt

        def sleeper():
            try:
                yield engine.timeout(100.0)
            except Interrupt as interrupt:
                return ("interrupted", interrupt.cause, engine.now)
            return "finished"

        proc = engine.process(sleeper())

        def interrupter():
            yield engine.timeout(1.0)
            proc.interrupt("stop")

        engine.process(interrupter())
        engine.run()
        assert proc.value == ("interrupted", "stop", 1.0)


class TestCombinators:
    def test_all_of_values_in_order(self, engine):
        def proc():
            t1 = engine.timeout(2.0, "slow")
            t2 = engine.timeout(1.0, "fast")
            values = yield engine.all_of([t1, t2])
            return (values, engine.now)

        values, now = engine.run_process(proc())
        assert values == ["slow", "fast"]
        assert now == 2.0

    def test_all_of_empty(self, engine):
        def proc():
            values = yield engine.all_of([])
            return values

        assert engine.run_process(proc()) == []

    def test_any_of_first_wins(self, engine):
        def proc():
            t1 = engine.timeout(2.0, "slow")
            t2 = engine.timeout(1.0, "fast")
            index, value = yield engine.any_of([t1, t2])
            return (index, value, engine.now)

        assert engine.run_process(proc()) == (1, "fast", 1.0)

    def test_any_of_empty_rejected(self, engine):
        with pytest.raises(SimulationError):
            engine.any_of([])


class TestDeterminism:
    def test_identical_runs(self):
        def scenario():
            engine = SimEngine()
            trace = []

            def worker(name, delay):
                yield engine.timeout(delay)
                trace.append((name, engine.now))

            for i in range(10):
                engine.process(worker(f"w{i}", (i * 7) % 5 + 0.5))
            engine.run()
            return trace

        assert scenario() == scenario()

"""Regression tests for flow-accounting edge cases.

Each class pins one historical bug: ``utilization()`` divided by zero
(or inf) capacity, ``achieved_rate`` returned ``inf`` for zero-duration
transfers, and ``add_channel`` accepted non-positive capacities that
blew up later mid-solve.
"""

import math

import pytest

from repro.errors import SimulationError
from repro.sim.engine import SimEngine
from repro.sim.flow import Channel, FlowNetwork


def _network():
    engine = SimEngine()
    return engine, FlowNetwork(engine)


class TestUtilizationGuards:
    def test_infinite_capacity_is_never_utilized(self):
        engine, network = _network()
        network.add_channel("unbounded", math.inf)
        network.transfer(["unbounded"], 100.0, cap=10.0)
        assert network.utilization("unbounded") == 0.0
        engine.run()
        assert network.utilization("unbounded") == 0.0

    def test_zero_capacity_idle_channel_reads_zero(self):
        _, network = _network()
        network.add_channel("c", 10.0)
        network.set_capacity("c", 0.0)
        assert network.utilization("c") == 0.0

    def test_zero_capacity_with_pinned_flows_reads_saturated(self):
        """Defensive guard: if capacity hits zero *under* a flow (e.g. a
        direct Channel poke that bypasses the re-level), the channel
        reads fully utilized, not a ZeroDivisionError."""
        _, network = _network()
        network.add_channel("c", 10.0)
        network.transfer(["c"], 100.0)
        network.channel("c").set_capacity(0.0)
        assert network.utilization("c") == 1.0

    def test_normal_utilization_unchanged(self):
        _, network = _network()
        network.add_channel("c", 10.0)
        network.transfer(["c"], 100.0)
        assert network.utilization("c") == pytest.approx(1.0)


class TestAchievedRateDegenerates:
    def test_inflight_flow_has_no_achieved_rate(self):
        _, network = _network()
        network.add_channel("c", 10.0)
        flow = network.transfer(["c"], 100.0)
        assert flow.achieved_rate is None

    def test_zero_byte_transfer_yields_none_not_inf(self):
        _, network = _network()
        network.add_channel("c", 10.0)
        flow = network.transfer(["c"], 0.0)
        assert flow.completed
        assert flow.elapsed == 0.0
        assert flow.achieved_rate is None

    def test_completed_flow_reports_average_rate(self):
        engine, network = _network()
        network.add_channel("c", 10.0)
        flow = network.transfer(["c"], 100.0)
        engine.run()
        assert flow.achieved_rate == pytest.approx(10.0)


class TestChannelValidation:
    def test_add_channel_rejects_zero_and_negative_capacity(self):
        _, network = _network()
        with pytest.raises(SimulationError, match="positive"):
            network.add_channel("zero", 0.0)
        with pytest.raises(SimulationError, match="positive"):
            network.add_channel("negative", -5.0)

    def test_add_channel_rejects_duplicates(self):
        _, network = _network()
        network.add_channel("c", 1.0)
        with pytest.raises(SimulationError, match="already exists"):
            network.add_channel("c", 2.0)

    def test_channel_constructor_rejects_non_positive(self):
        with pytest.raises(SimulationError, match="positive"):
            Channel("c", 0.0)

    def test_channel_set_capacity_rejects_negative(self):
        channel = Channel("c", 1.0)
        with pytest.raises(SimulationError, match="non-negative"):
            channel.set_capacity(-1.0)
        channel.set_capacity(0.0)  # zero = failed link, legal
        assert channel.capacity == 0.0

"""Tests for memory buffers and locations."""

import pytest

from repro.errors import AllocationError, InvalidAddressError
from repro.memory.buffer import Buffer, Location, MemoryKind


class TestLocation:
    def test_constructors(self):
        assert Location.gcd(3).is_device
        assert Location.host(1).is_host

    def test_validation(self):
        with pytest.raises(AllocationError):
            Location("disk", 0)
        with pytest.raises(AllocationError):
            Location("gcd", -1)

    def test_equality_and_ordering(self):
        assert Location.gcd(0) == Location.gcd(0)
        assert Location.gcd(0) != Location.host(0)
        assert sorted([Location.host(0), Location.gcd(0)])[0] == Location.gcd(0)


class TestMemoryKind:
    def test_host_kinds(self):
        assert MemoryKind.PINNED_COHERENT.is_host_kind
        assert MemoryKind.PAGEABLE.is_host_kind
        assert not MemoryKind.DEVICE.is_host_kind
        assert not MemoryKind.MANAGED.is_host_kind  # unified, not host-only

    def test_pinned_kinds(self):
        assert MemoryKind.PINNED_NONCOHERENT.is_pinned
        assert not MemoryKind.PAGEABLE.is_pinned


class TestBuffer:
    def make(self, kind=MemoryKind.DEVICE, home=None, size=4096):
        if home is None:
            home = Location.gcd(0) if kind is MemoryKind.DEVICE else Location.host(0)
        return Buffer(0x1000, size, kind, home)

    def test_kind_home_consistency(self):
        with pytest.raises(AllocationError):
            Buffer(0, 10, MemoryKind.DEVICE, Location.host(0))
        with pytest.raises(AllocationError):
            Buffer(0, 10, MemoryKind.PAGEABLE, Location.gcd(0))

    def test_size_positive(self):
        with pytest.raises(AllocationError):
            Buffer(0, 0, MemoryKind.DEVICE, Location.gcd(0))

    def test_geometry(self):
        buffer = self.make(size=100)
        assert buffer.end_address == 0x1000 + 100
        assert buffer.contains(0x1000)
        assert buffer.contains(0x1000 + 99)
        assert not buffer.contains(0x1000 + 100)

    def test_overlaps(self):
        a = Buffer(0, 100, MemoryKind.DEVICE, Location.gcd(0))
        b = Buffer(50, 100, MemoryKind.DEVICE, Location.gcd(0))
        c = Buffer(100, 10, MemoryKind.DEVICE, Location.gcd(0))
        assert a.overlaps(b)
        assert not a.overlaps(c)

    def test_double_free(self):
        buffer = self.make()
        buffer.mark_freed()
        with pytest.raises(InvalidAddressError):
            buffer.mark_freed()

    def test_use_after_free(self):
        buffer = self.make()
        buffer.mark_freed()
        with pytest.raises(InvalidAddressError):
            buffer.residency(0)

    def test_residency_without_page_table_is_home(self):
        buffer = self.make()
        assert buffer.residency(0) == Location.gcd(0)

    def test_residency_bounds(self):
        buffer = self.make(size=10)
        with pytest.raises(InvalidAddressError):
            buffer.residency(10)

"""Unit + property tests for the address space allocator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import AllocationError, InvalidAddressError
from repro.memory.allocator import AddressSpace
from repro.memory.buffer import Location, MemoryKind


class TestAllocate:
    def test_basic(self):
        space = AddressSpace()
        buffer = space.allocate(100, MemoryKind.PAGEABLE, Location.host(0))
        assert buffer.size == 100
        assert space.num_live == 1

    def test_page_aligned(self):
        space = AddressSpace()
        for size in (1, 4095, 4096, 4097):
            buffer = space.allocate(size, MemoryKind.PAGEABLE, Location.host(0))
            assert buffer.address % 4096 == 0

    def test_managed_gets_page_table(self):
        space = AddressSpace()
        buffer = space.allocate(10000, MemoryKind.MANAGED, Location.host(0))
        assert buffer.page_table is not None
        assert buffer.page_table.num_pages == 3

    def test_non_managed_has_no_page_table(self):
        space = AddressSpace()
        buffer = space.allocate(10000, MemoryKind.PAGEABLE, Location.host(0))
        assert buffer.page_table is None

    def test_reserve_hook_called(self):
        reserved = []
        space = AddressSpace()
        space.allocate(
            64,
            MemoryKind.DEVICE,
            Location.gcd(0),
            reserve=reserved.append,
        )
        assert reserved == [64]

    def test_reserve_failure_aborts(self):
        def reserve(size):
            raise AllocationError("oom")

        space = AddressSpace()
        with pytest.raises(AllocationError):
            space.allocate(64, MemoryKind.DEVICE, Location.gcd(0), reserve=reserve)
        assert space.num_live == 0

    def test_zero_size_rejected(self):
        space = AddressSpace()
        with pytest.raises(AllocationError):
            space.allocate(0, MemoryKind.PAGEABLE, Location.host(0))

    def test_bad_page_size(self):
        with pytest.raises(AllocationError):
            AddressSpace(page_size=1000)


class TestFree:
    def test_free_releases(self):
        released = []
        space = AddressSpace()
        buffer = space.allocate(100, MemoryKind.PAGEABLE, Location.host(0))
        space.free(buffer, release=released.append)
        assert released == [100]
        assert space.num_live == 0

    def test_double_free(self):
        space = AddressSpace()
        buffer = space.allocate(100, MemoryKind.PAGEABLE, Location.host(0))
        space.free(buffer)
        with pytest.raises(InvalidAddressError):
            space.free(buffer)


class TestResolve:
    def test_resolve_interior_address(self):
        space = AddressSpace()
        buffer = space.allocate(100, MemoryKind.PAGEABLE, Location.host(0))
        assert space.resolve(buffer.address + 50) is buffer

    def test_resolve_unmapped(self):
        space = AddressSpace()
        buffer = space.allocate(100, MemoryKind.PAGEABLE, Location.host(0))
        with pytest.raises(InvalidAddressError):
            space.resolve(buffer.address + 100)
        with pytest.raises(InvalidAddressError):
            space.resolve(buffer.address - 1)

    def test_total_live_bytes(self):
        space = AddressSpace()
        space.allocate(100, MemoryKind.PAGEABLE, Location.host(0))
        space.allocate(200, MemoryKind.MANAGED, Location.host(0))
        assert space.total_live_bytes() == 300
        assert space.total_live_bytes(MemoryKind.MANAGED) == 200


@settings(max_examples=60, deadline=None)
@given(
    st.lists(
        st.tuples(st.integers(1, 10_000_000), st.booleans()),
        min_size=1,
        max_size=40,
    )
)
def test_allocator_invariants_under_random_alloc_free(operations):
    """Non-overlap + alignment invariants hold under any alloc/free mix.

    Each tuple is (size, free_something_first).
    """
    space = AddressSpace()
    live = []
    for size, free_first in operations:
        if free_first and live:
            space.free(live.pop(len(live) // 2))
        live.append(
            space.allocate(size, MemoryKind.PAGEABLE, Location.host(0))
        )
        space.check_invariants()
    # Every live buffer resolves back to itself via any interior address.
    for buffer in live:
        assert space.resolve(buffer.address) is buffer
        assert space.resolve(buffer.end_address - 1) is buffer

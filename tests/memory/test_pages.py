"""Tests for page tables and the XNACK migration engine."""

import pytest

from repro.errors import InvalidAddressError, PageFaultError
from repro.hardware.node import HardwareNode
from repro.memory.buffer import Location, MemoryKind
from repro.memory.pages import MigrationEngine, PageTable
from repro.units import KiB, MiB


class TestPageTable:
    def make(self, size=40 * KiB, page=4 * KiB):
        return PageTable(size, page, Location.host(0))

    def test_page_count_rounds_up(self):
        table = PageTable(4097, 4096, Location.host(0))
        assert table.num_pages == 2
        assert table.page_bytes(0) == 4096
        assert table.page_bytes(1) == 1

    def test_initial_residency_is_home(self):
        table = self.make()
        assert table.location_of(0) == Location.host(0)
        assert table.resident_fraction(Location.host(0)) == 1.0

    def test_page_of_bounds(self):
        table = self.make(size=100)
        with pytest.raises(InvalidAddressError):
            table.page_of(100)

    def test_migrate_single_page(self):
        table = self.make()
        table.migrate(3, Location.gcd(0))
        assert table.page_location(3) == Location.gcd(0)
        assert table.location_of(0) == Location.host(0)
        assert table.migrations_in == 1

    def test_migrate_idempotent(self):
        table = self.make()
        table.migrate(0, Location.gcd(0))
        table.migrate(0, Location.gcd(0))
        assert table.migrations_in == 1

    def test_migrate_range(self):
        table = self.make()
        moved = table.migrate_range(0, 12 * KiB, Location.gcd(1))
        assert moved == 3
        assert table.nonresident_pages(0, 12 * KiB, Location.gcd(1)) == []
        assert table.nonresident_pages(0, 16 * KiB, Location.gcd(1)) == [3]

    def test_pages_in_range_validation(self):
        table = self.make(size=100)
        with pytest.raises(InvalidAddressError):
            table.pages_in_range(0, 0)
        with pytest.raises(InvalidAddressError):
            table.pages_in_range(50, 100)

    def test_invalid_page_size(self):
        with pytest.raises(InvalidAddressError):
            PageTable(100, 1000, Location.host(0))


class TestMigrationEngine:
    def _managed_buffer(self, hip, size):
        return hip.malloc_managed(size, device=0)

    def test_fault_without_xnack_is_fatal(self, hip):
        engine = MigrationEngine(hip.node)
        buffer = self._managed_buffer(hip, 64 * KiB)

        def run():
            yield from engine.migrate_for_access(
                buffer, 0, 64 * KiB, 0, xnack_enabled=False
            )

        with pytest.raises(PageFaultError):
            hip.run(run())

    def test_fluid_migration_rate_matches_paper(self, hip):
        engine = MigrationEngine(hip.node)
        size = 64 * MiB
        buffer = self._managed_buffer(hip, size)

        def run():
            t0 = hip.now
            yield from engine.migrate_for_access(
                buffer, 0, size, 0, xnack_enabled=True
            )
            return size / (hip.now - t0)

        rate = hip.run(run())
        assert rate == pytest.approx(2.8e9, rel=0.02)
        assert buffer.page_table.resident_fraction(Location.gcd(0)) == 1.0

    def test_discrete_matches_fluid_asymptotically(self, hip):
        """The fluid cap equals the discrete per-page engine's rate."""
        size = 256 * KiB  # 64 pages: cheap enough to fault one by one
        fluid_engine = MigrationEngine(hip.node)

        from repro.hip.runtime import HipRuntime

        hip2 = HipRuntime()
        discrete_engine = MigrationEngine(hip2.node, discrete=True)

        def measure(runtime, engine):
            buffer = runtime.malloc_managed(size, device=0)

            def run():
                t0 = runtime.now
                yield from engine.migrate_for_access(
                    buffer, 0, size, 0, xnack_enabled=True
                )
                return size / (runtime.now - t0)

            return runtime.run(run())

        fluid_rate = measure(hip, fluid_engine)
        discrete_rate = measure(hip2, discrete_engine)
        assert discrete_rate == pytest.approx(fluid_rate, rel=0.02)

    def test_already_resident_is_free(self, hip):
        engine = MigrationEngine(hip.node)
        buffer = self._managed_buffer(hip, 64 * KiB)

        def run():
            yield from engine.migrate_for_access(
                buffer, 0, 64 * KiB, 0, xnack_enabled=True
            )
            t_mid = hip.now
            yield from engine.migrate_for_access(
                buffer, 0, 64 * KiB, 0, xnack_enabled=True
            )
            return hip.now - t_mid

        assert hip.run(run()) == 0.0

    def test_prefetch_runs_at_sdma_rate(self, hip):
        """hipMemPrefetchAsync escapes the fault-bound 2.8 GB/s."""
        engine = MigrationEngine(hip.node)
        size = 64 * MiB
        buffer = self._managed_buffer(hip, size)

        def run():
            t0 = hip.now
            yield from engine.prefetch(buffer, Location.gcd(0))
            return size / (hip.now - t0)

        rate = hip.run(run())
        assert rate == pytest.approx(28.3e9, rel=0.02)

    def test_prefetch_back_to_host(self, hip):
        engine = MigrationEngine(hip.node)
        buffer = self._managed_buffer(hip, 1 * MiB)

        def run():
            yield from engine.prefetch(buffer, Location.gcd(2))
            yield from engine.prefetch(buffer, Location.host(0))

        hip.run(run())
        assert buffer.page_table.resident_fraction(Location.host(0)) == 1.0

    def test_non_managed_buffer_rejected(self, hip):
        engine = MigrationEngine(hip.node)
        buffer = hip.malloc(4 * KiB)

        def run():
            yield from engine.migrate_for_access(
                buffer, 0, 4 * KiB, 0, xnack_enabled=True
            )

        with pytest.raises(PageFaultError):
            hip.run(run())

"""Tests for coherence rules and NUMA placement policies."""

import pytest

from repro.errors import CoherenceError, ConfigurationError
from repro.memory.buffer import Buffer, Location, MemoryKind
from repro.memory.coherence import CoherencePolicy, is_coherent, is_gpu_cacheable
from repro.memory.placement import (
    ClosestNumaPolicy,
    ExplicitNumaPolicy,
    InterleavePolicy,
)
from repro.topology.numa import NumaMap


def make_buffer(kind, home=None):
    if home is None:
        home = Location.gcd(0) if kind is MemoryKind.DEVICE else Location.host(0)
    return Buffer(0x1000, 4096, kind, home)


class TestCoherenceRules:
    def test_table_i_coherence_column(self):
        # Table I: pinned default coherent, managed coherent, the
        # explicit-movement kinds non-coherent.
        assert is_coherent(MemoryKind.PINNED_COHERENT)
        assert is_coherent(MemoryKind.MANAGED)
        assert not is_coherent(MemoryKind.PINNED_NONCOHERENT)
        assert not is_coherent(MemoryKind.PAGEABLE)
        assert not is_coherent(MemoryKind.DEVICE)

    def test_coherent_means_uncacheable_on_mi250x(self):
        assert not is_gpu_cacheable(MemoryKind.PINNED_COHERENT)
        assert not is_gpu_cacheable(MemoryKind.MANAGED)
        assert is_gpu_cacheable(MemoryKind.DEVICE)

    def test_mi300_lifts_restriction(self):
        assert is_gpu_cacheable(
            MemoryKind.PINNED_COHERENT, mi300_coherent_fabric=True
        )

    def test_policy_object(self):
        policy = CoherencePolicy()
        assert not policy.gpu_cacheable(make_buffer(MemoryKind.MANAGED))
        assert policy.gpu_cacheable(make_buffer(MemoryKind.DEVICE))

    def test_cpu_cannot_touch_device_memory(self):
        policy = CoherencePolicy()
        with pytest.raises(CoherenceError):
            policy.validate_cpu_visibility(make_buffer(MemoryKind.DEVICE))
        policy.validate_cpu_visibility(make_buffer(MemoryKind.MANAGED, Location.host(0)))

    def test_fabric_roundtrip_rule(self):
        policy = CoherencePolicy()
        managed = make_buffer(MemoryKind.MANAGED, Location.host(0))
        assert policy.requires_fabric_roundtrip(managed, local=False)
        assert not policy.requires_fabric_roundtrip(managed, local=True)
        device = make_buffer(MemoryKind.DEVICE)
        assert not policy.requires_fabric_roundtrip(device, local=False)


class TestPlacementPolicies:
    @pytest.fixture
    def numa_map(self, topology):
        return NumaMap.from_topology(topology)

    def test_closest_follows_active_gpu(self, numa_map):
        policy = ClosestNumaPolicy()
        assert policy.numa_for(active_gcd=0, numa_map=numa_map) == 0
        assert policy.numa_for(active_gcd=7, numa_map=numa_map) == 3

    def test_explicit_overrides(self, numa_map):
        policy = ExplicitNumaPolicy(2)
        assert policy.numa_for(active_gcd=0, numa_map=numa_map) == 2

    def test_explicit_validation(self, numa_map):
        with pytest.raises(ConfigurationError):
            ExplicitNumaPolicy(-1)
        with pytest.raises(ConfigurationError):
            ExplicitNumaPolicy(9).numa_for(active_gcd=0, numa_map=numa_map)

    def test_interleave_cycles(self, numa_map):
        policy = InterleavePolicy()
        targets = [
            policy.numa_for(active_gcd=0, numa_map=numa_map) for _ in range(8)
        ]
        assert targets == [0, 1, 2, 3, 0, 1, 2, 3]

    def test_describe(self, numa_map):
        assert "closest" in ClosestNumaPolicy().describe()
        assert "2" in ExplicitNumaPolicy(2).describe()
        assert "interleave" in InterleavePolicy().describe()

"""Documentation quality gate: every public item carries a docstring.

Deliverable (e) requires doc comments on every public item; this test
enforces it mechanically so it cannot rot.  Private names (leading
underscore), dataclass-generated members and re-exports are exempt.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro

IGNORED_MODULE_PARTS = ("__main__",)


def _walk_modules():
    yield repro
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        if any(part in info.name for part in IGNORED_MODULE_PARTS):
            continue
        yield importlib.import_module(info.name)


MODULES = list(_walk_modules())


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_has_docstring(module):
    assert module.__doc__ and module.__doc__.strip(), module.__name__


def _public_members(module):
    for name, member in vars(module).items():
        if name.startswith("_"):
            continue
        if not (inspect.isclass(member) or inspect.isfunction(member)):
            continue
        if getattr(member, "__module__", None) != module.__name__:
            continue  # re-export; documented at its definition site
        yield name, member


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_public_classes_and_functions_documented(module):
    undocumented = []
    for name, member in _public_members(module):
        if not (member.__doc__ and member.__doc__.strip()):
            undocumented.append(name)
        if inspect.isclass(member):
            for attr_name, attr in vars(member).items():
                if attr_name.startswith("_"):
                    continue
                if not (
                    inspect.isfunction(attr) or isinstance(attr, property)
                ):
                    continue
                doc = (
                    attr.fget.__doc__
                    if isinstance(attr, property) and attr.fget
                    else attr.__doc__
                )
                if not (doc and doc.strip()):
                    undocumented.append(f"{name}.{attr_name}")
    assert not undocumented, (
        f"{module.__name__}: missing docstrings on {undocumented}"
    )

"""HTTP frontend integration tests over a real ephemeral port.

Exercises the whole stack — urllib client → ThreadingHTTPServer →
SimService → SweepRunner — the way ``repro submit`` and the load-test
harness drive it.
"""

import json
import threading
import urllib.request

import pytest

from repro.errors import BenchmarkError
from repro.serve import (
    JobFailedError,
    ServeClient,
    ServeError,
    ServiceConfig,
    SimService,
    create_server,
)


@pytest.fixture
def server(tmp_path):
    service = SimService(
        ServiceConfig(workers=2, cache_dir=str(tmp_path / "store"))
    )
    srv = create_server(service, port=0)
    thread = threading.Thread(target=srv.serve_forever, daemon=True)
    thread.start()
    host, port = srv.server_address[:2]
    yield srv, f"http://{host}:{port}"
    srv.shutdown()
    srv.server_close()
    service.close()


@pytest.fixture
def client(server):
    _, url = server
    return ServeClient(url, tenant="pytest", timeout=300.0)


class TestEndpoints:
    def test_health_and_stats(self, client):
        health = client.health()
        assert health["status"] == "ok"
        assert health["queue_depth"] == 0
        from repro import __version__

        assert health["version"] == __version__
        stats = client.stats()
        assert stats["queue_capacity"] == 256
        assert stats["draining"] is False

    def test_submit_run_and_wait(self, client):
        job_id = client.submit_run("fig01")
        record = client.wait(job_id, timeout=300)
        assert record["state"] == "done"
        assert record["kind"] == "run"
        assert record["tenant"] == "pytest"
        assert record["result"]["artifact"] == "fig01"
        assert "Topology" in record["result"]["report"]

    def test_submit_whatif_artifact_with_algorithm(self, client):
        job_id = client.submit_whatif(artifact="fig11", algorithm="tree")
        record = client.wait(job_id, timeout=600)
        assert record["state"] == "done"
        assert record["result"]["algorithm"] == "tree"
        assert record["result"]["measurements"] > 0

    def test_event_stream_is_ordered_ndjson(self, client):
        job_id = client.submit_run("fig01")
        events = list(client.events(job_id))
        names = [e["event"] for e in events]
        assert names == ["queued", "running", "done"]
        assert [e["seq"] for e in events] == [0, 1, 2]
        assert all(e["job"] == job_id for e in events)

    def test_metrics_snapshot_counts_requests(self, client):
        job_id = client.submit_run("fig01")
        client.wait(job_id, timeout=300)
        snapshot = client.metrics()
        assert snapshot["counters"]["serve/requests/run"] >= 1
        assert snapshot["counters"]["serve/jobs/done"] >= 1


class TestErrorMapping:
    def test_unknown_job_404(self, client):
        with pytest.raises(ServeError) as excinfo:
            client.job("j999999")
        assert excinfo.value.status == 404

    def test_unknown_route_404(self, client):
        with pytest.raises(ServeError) as excinfo:
            client._request("GET", "/v2/jobs")
        assert excinfo.value.status == 404

    def test_bad_request_400_with_message(self, client):
        with pytest.raises(ServeError) as excinfo:
            client.submit_run("fig99")
        assert excinfo.value.status == 400
        assert "unknown artifact" in str(excinfo.value)

    def test_invalid_json_400(self, server):
        _, url = server
        request = urllib.request.Request(
            f"{url}/v1/run",
            data=b"{not json",
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=30)
        assert excinfo.value.code == 400

    def test_non_object_body_400(self, server):
        _, url = server
        request = urllib.request.Request(
            f"{url}/v1/run",
            data=b"[1, 2]",
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=30)
        assert excinfo.value.code == 400

    def test_failed_job_raises_on_wait(self, server, client, monkeypatch):
        srv, _ = server
        monkeypatch.setattr(
            srv.service.queue,
            "_executor",
            lambda job: (_ for _ in ()).throw(RuntimeError("kaboom")),
        )
        job_id = client.submit_run("fig01")
        with pytest.raises(JobFailedError, match="kaboom"):
            client.wait(job_id, timeout=60)


class TestBackpressureOverHttp:
    def test_429_with_retry_after_header(self, tmp_path):
        service = SimService(
            ServiceConfig(
                workers=1,
                quota_rate=0.001,
                quota_burst=1.0,
                cache_dir=str(tmp_path),
            )
        )
        srv = create_server(service, port=0)
        thread = threading.Thread(target=srv.serve_forever, daemon=True)
        thread.start()
        url = f"http://{srv.server_address[0]}:{srv.server_address[1]}"
        try:
            greedy = ServeClient(url, tenant="greedy", timeout=60.0)
            greedy.submit_run("fig01")
            with pytest.raises(ServeError) as excinfo:
                greedy.submit_run("fig01")
            assert excinfo.value.status == 429
            assert excinfo.value.retry_after is not None
            assert excinfo.value.retry_after >= 1.0
            # Tenants are isolated: another name still gets through.
            other = ServeClient(url, tenant="other", timeout=60.0)
            other.submit_run("fig01")
        finally:
            srv.shutdown()
            srv.server_close()
            service.close()

    def test_tenant_header_reaches_quota_buckets(self, server, client):
        srv, _ = server
        job_id = client.submit_run("fig01")
        client.wait(job_id, timeout=300)
        assert "pytest" in srv.service.quota.tenants()


class TestDrainOverHttp:
    def test_draining_service_answers_503(self, server, client):
        srv, _ = server
        srv.service._draining = True
        try:
            with pytest.raises(ServeError) as excinfo:
                client.submit_run("fig01")
            assert excinfo.value.status == 503
            assert client.health()["status"] == "draining"
        finally:
            srv.service._draining = False


class TestClientTransport:
    def test_unreachable_server_raises_benchmark_error(self):
        client = ServeClient("http://127.0.0.1:9", timeout=2.0)
        with pytest.raises(BenchmarkError, match="cannot reach"):
            client.health()

    def test_cross_client_dedup_over_http(self, client, server):
        first = client.wait(client.submit_run("fig04"), timeout=300)
        other = ServeClient(client.base_url, tenant="second-team", timeout=300.0)
        second = other.wait(other.submit_run("fig04"), timeout=300)
        assert second["result"]["runner"]["cache_misses"] == 0
        assert second["result"]["canonical"] == first["result"]["canonical"]

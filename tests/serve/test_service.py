"""SimService unit tests: quotas, admission, validation, lifecycle, drain.

Everything here exercises the HTTP-free core — no sockets — so the
admission and execution semantics are pinned independently of the
frontend (which ``test_http.py`` covers over a real port).
"""

import threading
import time

import pytest

from repro.serve import (
    BadRequestError,
    JobState,
    QueueFullError,
    QuotaExceededError,
    QuotaPolicy,
    ServiceConfig,
    ServiceDrainingError,
    SimService,
    TokenBucket,
)


@pytest.fixture
def service(tmp_path):
    svc = SimService(
        ServiceConfig(workers=2, cache_dir=str(tmp_path / "store"))
    )
    yield svc
    svc.close()


class TestTokenBucket:
    def test_burst_then_throttle_then_refill(self):
        bucket = TokenBucket(rate=2.0, burst=3.0, now=0.0)
        assert [bucket.try_acquire(0.0) for _ in range(3)] == [0.0] * 3
        retry = bucket.try_acquire(0.0)
        assert retry == pytest.approx(0.5)  # 1 token / 2 per second
        assert bucket.try_acquire(0.5) == 0.0  # refilled exactly enough
        assert bucket.try_acquire(0.5) > 0.0

    def test_refill_caps_at_burst(self):
        bucket = TokenBucket(rate=10.0, burst=2.0, now=0.0)
        bucket.try_acquire(0.0)
        # A long idle period must not bank more than `burst` tokens.
        assert bucket.try_acquire(1000.0) == 0.0
        assert bucket.try_acquire(1000.0) == 0.0
        assert bucket.try_acquire(1000.0) > 0.0


class TestQuotaPolicy:
    def test_buckets_are_per_tenant(self):
        clock = [0.0]
        policy = QuotaPolicy(rate=1.0, burst=1.0, clock=lambda: clock[0])
        assert policy.admit("alice") == 0.0
        assert policy.admit("alice") > 0.0  # alice exhausted her bucket
        assert policy.admit("bob") == 0.0  # bob is unaffected
        assert sorted(policy.tenants()) == ["alice", "bob"]

    def test_thread_safety_never_overadmits(self):
        clock = [0.0]
        policy = QuotaPolicy(rate=0.0001, burst=50.0, clock=lambda: clock[0])
        admitted = []
        barrier = threading.Barrier(10)

        def worker():
            barrier.wait(timeout=30)
            for _ in range(20):
                if policy.admit("shared") == 0.0:
                    admitted.append(1)

        threads = [threading.Thread(target=worker) for _ in range(10)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(admitted) == 50  # exactly the burst, not one more


class TestValidation:
    def test_unknown_kind(self, service):
        with pytest.raises(BadRequestError, match="unknown request kind"):
            service.submit("teleport", {})

    def test_run_requires_known_artifact(self, service):
        with pytest.raises(BadRequestError, match="unknown artifact"):
            service.submit("run", {"artifact": "fig99"})
        with pytest.raises(BadRequestError, match="'artifact'"):
            service.submit("run", {})

    def test_sweep_rejects_unknown_ids(self, service):
        with pytest.raises(BadRequestError, match="unknown artifact"):
            service.submit("sweep", {"artifacts": ["fig01", "nope"]})
        with pytest.raises(BadRequestError, match="non-empty"):
            service.submit("sweep", {"artifacts": []})

    def test_whatif_scenario_xor_artifact(self, service):
        with pytest.raises(BadRequestError, match="not both"):
            service.submit(
                "whatif", {"scenario": "baseline", "artifact": "fig01"}
            )
        with pytest.raises(BadRequestError, match="unknown scenario"):
            service.submit("whatif", {"scenario": "warp-drive"})
        with pytest.raises(BadRequestError, match="requires"):
            service.submit("whatif", {})

    def test_whatif_rejects_bad_algorithm(self, service):
        with pytest.raises(BadRequestError):
            service.submit(
                "whatif", {"artifact": "fig11", "algorithm": "gossip"}
            )

    def test_shadow_requires_exactly_one_source(self, service):
        with pytest.raises(BadRequestError, match="exactly one"):
            service.submit("shadow", {})
        with pytest.raises(BadRequestError, match="exactly one"):
            service.submit("shadow", {"telemetry": "", "records": []})
        with pytest.raises(BadRequestError, match="bad telemetry"):
            service.submit("shadow", {"telemetry": "not json lines"})

    def test_tenant_name_rules(self, service):
        with pytest.raises(BadRequestError, match="tenant"):
            service.submit("run", {"artifact": "fig01"}, tenant="  ")
        with pytest.raises(BadRequestError, match="tenant"):
            service.submit("run", {"artifact": "fig01"}, tenant="x" * 65)

    def test_rejected_requests_create_no_job(self, service):
        try:
            service.submit("run", {"artifact": "fig99"})
        except BadRequestError:
            pass
        assert service.jobs() == []


class TestJobLifecycle:
    def test_run_job_completes_with_result(self, service):
        job = service.submit("run", {"artifact": "fig01"})
        assert job.wait(timeout=120)
        assert job.state == JobState.DONE
        record = job.as_dict()
        assert record["result"]["artifact"] == "fig01"
        assert "Topology" in record["result"]["report"]
        assert record["latency_seconds"] > 0
        events = [e["event"] for e in job.events_since(0)]
        assert events == ["queued", "running", "done"]

    def test_failed_job_reports_error_without_result(self, service, monkeypatch):
        # The queue captured the bound executor at construction time, so
        # patch the queue's reference, not the class method.
        monkeypatch.setattr(
            service.queue,
            "_executor",
            lambda job: (_ for _ in ()).throw(RuntimeError("boom")),
        )
        job = service.submit("run", {"artifact": "fig01"})
        assert job.wait(timeout=30)
        assert job.state == JobState.FAILED
        record = job.as_dict()
        assert "boom" in record["error"]
        assert "result" not in record
        assert [e["event"] for e in job.events_since(0)][-1] == "failed"

    def test_whatif_scenario_runs_validation(self, service):
        job = service.submit("whatif", {"scenario": "baseline"})
        assert job.wait(timeout=300)
        assert job.state == JobState.DONE
        assert job.result["passed"] is True
        assert job.result["scenario"] == "baseline"

    def test_jobs_lookup(self, service):
        job = service.submit("run", {"artifact": "fig01"})
        assert service.job(job.id) is job
        assert service.job("j999999") is None
        assert job in service.jobs()
        job.wait(timeout=120)


class TestSharedStoreDedup:
    def test_second_submission_hits_cache(self, service):
        first = service.submit("run", {"artifact": "fig04"}, tenant="alice")
        assert first.wait(timeout=300)
        second = service.submit("run", {"artifact": "fig04"}, tenant="bob")
        assert second.wait(timeout=300)
        assert second.result["runner"]["cache_misses"] == 0
        assert second.result["runner"]["cache_hits"] > 0
        assert second.result["canonical"] == first.result["canonical"]

    def test_stats_report_store(self, service):
        job = service.submit("run", {"artifact": "fig04"})
        assert job.wait(timeout=300)
        stats = service.stats()
        assert stats["store"]["entries"] > 0
        assert stats["jobs"].get("done", 0) >= 1
        assert stats["latency"]["run"]["count"] >= 1


class TestAdmissionControl:
    def test_quota_exhaustion_raises_with_retry_after(self, tmp_path):
        svc = SimService(
            ServiceConfig(
                workers=1,
                quota_rate=0.001,
                quota_burst=2.0,
                cache_dir=str(tmp_path),
            )
        )
        try:
            svc.submit("run", {"artifact": "fig01"}, tenant="greedy")
            svc.submit("run", {"artifact": "fig01"}, tenant="greedy")
            with pytest.raises(QuotaExceededError) as excinfo:
                svc.submit("run", {"artifact": "fig01"}, tenant="greedy")
            assert excinfo.value.retry_after > 0
            assert excinfo.value.tenant == "greedy"
            # Another tenant still gets in.
            svc.submit("run", {"artifact": "fig01"}, tenant="patient")
            snapshot = svc.metrics.snapshot()
            assert snapshot["counters"]["serve/rejected/quota"] == 1
        finally:
            svc.close()

    def test_full_queue_raises_and_forgets_job(self, tmp_path):
        svc = SimService(
            ServiceConfig(workers=1, queue_capacity=1, cache_dir=str(tmp_path))
        )
        gate = threading.Event()
        original = SimService._execute
        svc.queue._executor = lambda job: (gate.wait(timeout=60), original(svc, job))[1]
        try:
            blocker = svc.submit("run", {"artifact": "fig01"})
            deadline = time.monotonic() + 10
            while svc.queue.in_flight < 1 and time.monotonic() < deadline:
                time.sleep(0.01)  # wait for the worker to pick it up
            queued = svc.submit("run", {"artifact": "fig01"})
            with pytest.raises(QueueFullError):
                svc.submit("run", {"artifact": "fig01"})
            before = {j.id for j in svc.jobs()}
            assert len(before) == 2  # the rejected one was removed
            gate.set()
            assert blocker.wait(timeout=120) and queued.wait(timeout=120)
            snapshot = svc.metrics.snapshot()
            assert snapshot["counters"]["serve/rejected/queue"] == 1
        finally:
            gate.set()
            svc.close()


class TestDrain:
    def test_drain_finishes_queued_then_refuses(self, tmp_path):
        svc = SimService(ServiceConfig(workers=2, cache_dir=str(tmp_path)))
        jobs = [svc.submit("run", {"artifact": "fig01"}) for _ in range(4)]
        svc.drain()
        assert all(j.state == JobState.DONE for j in jobs)
        with pytest.raises(ServiceDrainingError):
            svc.submit("run", {"artifact": "fig01"})
        assert svc.draining

    def test_close_drops_queued(self, tmp_path):
        svc = SimService(ServiceConfig(workers=1, cache_dir=str(tmp_path)))
        gate = threading.Event()
        original = SimService._execute
        svc.queue._executor = lambda job: (gate.wait(timeout=60), original(svc, job))[1]
        running = svc.submit("run", {"artifact": "fig01"})
        deadline = time.monotonic() + 10
        while svc.queue.in_flight < 1 and time.monotonic() < deadline:
            time.sleep(0.01)  # in-flight jobs always finish
        dropped = svc.submit("run", {"artifact": "fig01"})
        gate.set()
        svc.close()
        assert running.wait(timeout=120)
        assert running.state == JobState.DONE
        assert dropped.state == JobState.QUEUED  # dropped, never ran

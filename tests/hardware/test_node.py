"""Tests for the assembled HardwareNode."""

import pytest

from repro.errors import TopologyError
from repro.hardware.node import HardwareNode, frontier_hardware
from repro.hardware.xgmi import (
    both_channels,
    channels_for_route,
    link_channel,
    reverse_channels_for_route,
)
from repro.topology.link import LinkEndpoint, LinkTier
from repro.topology.routing import RoutingPolicy


class TestConstruction:
    def test_default_is_frontier(self):
        node = HardwareNode()
        assert node.num_gcds == 8
        assert node.topology.name == "frontier-mi250x"

    def test_all_link_channels_exist(self, node):
        for link in node.topology.links():
            fwd, rev = both_channels(link)
            assert node.network.has_channel(fwd)
            assert node.network.has_channel(rev)
            assert node.network.channel(fwd).capacity == link.capacity_per_direction

    def test_gcd_lookup_raises(self, node):
        with pytest.raises(TopologyError):
            node.gcd(99)


class TestRouting:
    def test_route_caching_returns_same_object(self, node):
        r1 = node.gcd_route(1, 7)
        r2 = node.gcd_route(1, 7)
        assert r1 is r2

    def test_policy_distinguished_in_cache(self, node):
        wide = node.gcd_route(1, 7, RoutingPolicy.BANDWIDTH_MAX)
        short = node.gcd_route(1, 7, RoutingPolicy.SHORTEST)
        assert wide.num_hops == 3 and short.num_hops == 2

    def test_cpu_link_route(self, node):
        to_gcd = node.cpu_link_route(5, to_gcd=True)
        assert to_gcd.num_hops == 1
        assert to_gcd.source == LinkEndpoint.numa(2)
        assert to_gcd.destination == LinkEndpoint.gcd(5)
        from_gcd = node.cpu_link_route(5, to_gcd=False)
        assert from_gcd.source == LinkEndpoint.gcd(5)

    def test_bottleneck_tier(self, node):
        assert node.bottleneck_tier(node.gcd_route(0, 1)) is LinkTier.QUAD
        assert node.bottleneck_tier(node.gcd_route(1, 7)) is LinkTier.DUAL
        with pytest.raises(TopologyError):
            node.bottleneck_tier(node.gcd_route(0, 0))


class TestChannelComposition:
    def test_direction_encoding(self, node):
        link = node.topology.require_link(0, 1)
        fwd = link_channel(link, LinkEndpoint.gcd(0), LinkEndpoint.gcd(1))
        rev = link_channel(link, LinkEndpoint.gcd(1), LinkEndpoint.gcd(0))
        assert fwd != rev
        assert fwd[2] == "fwd" and rev[2] == "rev"

    def test_route_channels_reverse(self, node):
        route = node.gcd_route(1, 7)
        fwd = channels_for_route(route)
        rev = reverse_channels_for_route(route)
        assert len(fwd) == len(rev) == 3
        assert set(fwd).isdisjoint(rev)

    def test_host_to_gcd_channels(self, node):
        channels = node.host_to_gcd_channels(buffer_numa=0, gcd_index=0)
        assert ("numaport", 0) in channels
        assert ("dram", 0) in channels
        assert ("hbm", 0) in channels
        assert any(c[0] == "link" for c in channels if isinstance(c, tuple))

    def test_gcd_to_gcd_channels_include_both_hbm(self, node):
        channels = node.gcd_to_gcd_channels(0, 2)
        assert ("hbm", 0) in channels and ("hbm", 2) in channels

    def test_wrong_direction_channels_differ(self, node):
        fwd = node.gcd_to_gcd_channels(0, 2)
        rev = node.gcd_to_gcd_channels(2, 0)
        fwd_links = [c for c in fwd if c[0] == "link"]
        rev_links = [c for c in rev if c[0] == "link"]
        assert set(fwd_links).isdisjoint(rev_links)


class TestHelpers:
    def test_frontier_hardware_convenience(self):
        node = frontier_hardware(trace=True)
        assert node.tracer.enabled

    def test_describe_mentions_calibration(self, node):
        assert "CalibrationProfile" in node.describe()

    def test_run_all_drains(self, node):
        node.engine.timeout(1.0)
        assert node.run_all() == 1.0

"""Tests for the hardware device models (hbm, cache, sdma, cpu, gcd)."""

import pytest

from repro.core.calibration import CalibrationProfile
from repro.errors import AllocationError
from repro.hardware.cache import AccessClass, CacheHierarchy
from repro.hardware.cpu import CpuSocket
from repro.hardware.gcd import GcdDevice
from repro.hardware.hbm import HbmStack
from repro.hardware.sdma import SdmaEngines
from repro.hardware.xgmi import protocol_peak_bandwidth
from repro.sim.engine import SimEngine
from repro.sim.flow import FlowNetwork
from repro.topology.link import LinkTier
from repro.topology.node import GcdInfo
from repro.units import GiB, MiB


@pytest.fixture
def network():
    return FlowNetwork(SimEngine())


@pytest.fixture
def gcd_info():
    return GcdInfo(index=0, gpu_package=0, numa_domain=0)


class TestXgmiProtocol:
    def test_first_principles_peak(self):
        # 16 bit × 25 GT/s = 50 GB/s (§II-A).
        assert protocol_peak_bandwidth() == pytest.approx(50e9)


class TestHbm:
    def test_stream_bandwidth_is_87_percent(self, gcd_info, network, calibration):
        hbm = HbmStack(gcd_info, calibration, network)
        assert hbm.stream_bandwidth == pytest.approx(0.875 * 1.6e12)

    def test_capacity_ledger(self, gcd_info, network, calibration):
        hbm = HbmStack(gcd_info, calibration, network)
        hbm.reserve(10 * GiB)
        assert hbm.allocated_bytes == 10 * GiB
        hbm.release(10 * GiB)
        assert hbm.free_bytes == hbm.capacity_bytes

    def test_oom(self, gcd_info, network, calibration):
        hbm = HbmStack(gcd_info, calibration, network)
        with pytest.raises(AllocationError):
            hbm.reserve(hbm.capacity_bytes + 1)

    def test_over_release_rejected(self, gcd_info, network, calibration):
        hbm = HbmStack(gcd_info, calibration, network)
        with pytest.raises(AllocationError):
            hbm.release(1)

    def test_channel_registered(self, gcd_info, network, calibration):
        HbmStack(gcd_info, calibration, network)
        assert network.has_channel(("hbm", 0))


class TestCache:
    def test_classification(self, gcd_info, calibration):
        cache = CacheHierarchy(gcd_info, calibration)
        assert cache.classify(local=True, coherent=False) is AccessClass.LOCAL_CACHED
        assert (
            cache.classify(local=False, coherent=True)
            is AccessClass.REMOTE_UNCACHED
        )
        assert (
            cache.classify(local=False, coherent=False)
            is AccessClass.REMOTE_CACHEABLE
        )

    def test_llc_threshold_is_32mib(self, gcd_info, calibration):
        cache = CacheHierarchy(gcd_info, calibration)
        assert cache.fits_llc(32 * MiB)
        assert not cache.fits_llc(32 * MiB + 1)

    def test_coherent_streams_never_boosted(self, gcd_info, calibration):
        cache = CacheHierarchy(gcd_info, calibration)
        assert not cache.llc_boost_applies(1 * MiB, AccessClass.REMOTE_UNCACHED)
        assert cache.llc_boost_applies(1 * MiB, AccessClass.REMOTE_CACHEABLE)

    def test_hit_fraction(self, gcd_info, calibration):
        cache = CacheHierarchy(gcd_info, calibration)
        assert cache.streaming_hit_fraction(16 * MiB, AccessClass.LOCAL_CACHED) == 1.0
        assert cache.streaming_hit_fraction(
            64 * MiB, AccessClass.LOCAL_CACHED
        ) == pytest.approx(0.5)
        assert (
            cache.streaming_hit_fraction(1 * MiB, AccessClass.REMOTE_UNCACHED)
            == 0.0
        )


class TestSdma:
    def test_engine_channels(self, network, calibration):
        sdma = SdmaEngines(0, calibration, network)
        assert network.has_channel(sdma.ingress_channel)
        assert network.has_channel(sdma.egress_channel)
        assert sdma.engine_channel(outbound=True) == sdma.egress_channel

    def test_rate_caps_reproduce_fig6c_tiers(self, node):
        sdma = node.gcd(0).sdma
        single = sdma.rate_cap_for_route(node.gcd_route(0, 2))
        dual = sdma.rate_cap_for_route(node.gcd_route(0, 6))
        quad = sdma.rate_cap_for_route(node.gcd_route(0, 1))
        assert single == pytest.approx(37.75e9)
        assert dual == pytest.approx(50e9)
        assert quad == pytest.approx(50e9)

    def test_latency_classes_match_fig6b(self, node):
        sdma = node.gcd(0).sdma
        single = sdma.copy_latency(node.gcd_route(0, 2))
        dual = sdma.copy_latency(node.gcd_route(0, 6))
        quad = sdma.copy_latency(node.gcd_route(0, 1))
        three_hop = sdma.copy_latency(node.gcd_route(1, 7))
        assert single == pytest.approx(8.7e-6)
        assert 10.0e-6 <= dual < 10.5e-6
        assert 10.5e-6 <= quad <= 10.8e-6
        assert 17.8e-6 <= three_hop <= 18.2e-6


class TestCpuSocket:
    def test_channels_registered(self, topology, calibration):
        network = FlowNetwork(SimEngine())
        cpu = CpuSocket(topology, calibration, network)
        for numa in range(4):
            assert network.has_channel(("dram", numa))
            assert network.has_channel(("numaport", numa))
        assert network.has_channel(("socket",))
        assert cpu.total_dram_bandwidth == pytest.approx(204.8e9)

    def test_local_path_has_no_socket_hop(self, topology, calibration):
        network = FlowNetwork(SimEngine())
        cpu = CpuSocket(topology, calibration, network)
        channels = cpu.host_side_channels(buffer_numa=0, gcd_index=0)
        assert ("socket",) not in channels

    def test_mismatched_path_crosses_socket(self, topology, calibration):
        network = FlowNetwork(SimEngine())
        cpu = CpuSocket(topology, calibration, network)
        channels = cpu.host_side_channels(buffer_numa=3, gcd_index=0)
        assert ("socket",) in channels
        assert ("dram", 3) in channels
        assert ("numaport", 0) in channels


class TestGcdDevice:
    def test_peer_access_registry(self, node):
        gcd = node.gcd(0)
        assert gcd.enable_peer_access(1)
        assert not gcd.enable_peer_access(1)  # already on
        assert gcd.can_access_peer(1)
        assert not gcd.can_access_peer(2)
        assert gcd.can_access_peer(0)  # self always
        assert gcd.disable_peer_access(1)
        assert not gcd.disable_peer_access(1)

    def test_self_peer_is_noop(self, node):
        assert not node.gcd(0).enable_peer_access(0)

"""The ``repro.Session`` facade: wiring, presets, deprecations."""

from __future__ import annotations

import warnings

import pytest

import repro
from repro.config import SimEnvironment
from repro.errors import ConfigurationError
from repro.topology.presets import frontier_node, single_gpu_node


class TestConstruction:
    def test_default_is_the_paper_node(self):
        session = repro.Session()
        assert session.num_gcds == 8
        assert session.topology.name == frontier_node().name
        assert session.hip.node is session.node
        assert session.network is session.node.network

    def test_preset_names(self):
        assert repro.Session(topology="mi250x").num_gcds == 8
        assert repro.Session(topology="single").num_gcds == 2
        assert repro.Session(topology="dense-hive").num_gcds == 8

    def test_preset_names_are_case_insensitive(self):
        assert repro.Session(topology="  MI250X ").num_gcds == 8

    def test_explicit_topology_object(self):
        session = repro.Session(topology=single_gpu_node())
        assert session.num_gcds == 2

    def test_unknown_preset_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown topology preset"):
            repro.Session(topology="epyc")

    def test_resolve_topology_rejects_other_types(self):
        with pytest.raises(ConfigurationError):
            repro.resolve_topology(42)

    def test_env_flags_build_environment(self):
        session = repro.Session(xnack_enabled=True, sdma_enabled=False)
        assert session.env.xnack_enabled is True
        assert session.env.sdma_enabled is False

    def test_env_object_passthrough(self):
        env = SimEnvironment(xnack_enabled=True)
        assert repro.Session(env=env).env is env

    def test_env_and_flags_conflict(self):
        with pytest.raises(ConfigurationError, match="not both"):
            repro.Session(env=SimEnvironment(), xnack_enabled=True)

    def test_unknown_env_flag_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown environment flag"):
            repro.Session(frobnicate=True)

    def test_no_deprecation_warnings_emitted(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            session = repro.Session(obs=repro.ObsConfig(trace=True))
            session.mpi_world([0, 1])
            session.rccl_communicator([0, 1])


class TestContextManager:
    def test_enter_returns_session_and_close_drains(self):
        with repro.Session() as session:
            done = session.engine.event()
            session.engine.call_after(5e-6, done.succeed, None)
        assert session.now == 5e-6  # close() drained the queue

    def test_close_is_idempotent(self):
        session = repro.Session()
        session.close()
        session.close()

    def test_run_drives_a_process(self):
        with repro.Session() as session:

            def program():
                yield session.engine.timeout(1e-6)
                return session.now

            assert session.run(program()) == 1e-6


class TestWorkloads:
    def test_memcpy_peer_roundtrip(self):
        with repro.Session(topology="mi250x") as session:
            hip = session.hip

            def program():
                src = hip.malloc(1 << 20, device=0)
                dst = hip.malloc(1 << 20, device=4)
                t0 = session.now
                yield from hip.memcpy_peer(dst, 4, src, 0)
                return session.now - t0

            elapsed = session.run(program())
        assert elapsed > 0

    def test_mpi_world_shares_the_node(self):
        session = repro.Session()
        world = session.mpi_world([0, 1])
        assert world.node is session.node
        assert world.env is session.env

    def test_rccl_communicator_shares_the_node(self):
        session = repro.Session()
        comm = session.rccl_communicator([0, 1, 2])
        assert comm.node is session.node
        assert comm.gcds == (0, 1, 2)

    def test_stats_expose_engine_and_solver_counters(self):
        with repro.Session() as session:
            hip = session.hip

            def program():
                src = hip.malloc(1 << 20, device=0)
                dst = hip.malloc(1 << 20, device=2)
                yield from hip.memcpy_peer(dst, 2, src, 0)

            session.run(program())
            stats = session.stats()
        assert stats["flows_added"] > 0
        assert stats["events_delivered"] > 0
        assert stats["sim_time"] == session.now
        assert stats["trace_records"] == 0

    def test_describe_mentions_topology(self):
        assert "GCD" in repro.Session().describe()


class TestBlessedSurface:
    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_solve_is_max_min_fair_rates(self):
        assert repro.solve is repro.max_min_fair_rates

    def test_topology_presets_registry(self):
        assert set(repro.TOPOLOGY_PRESETS) >= {"mi250x", "single", "dense-hive"}


class TestDeprecatedPaths:
    def test_implicit_hip_runtime_warns_but_works(self):
        from repro.hip.runtime import HipRuntime

        with pytest.warns(DeprecationWarning, match="repro.Session"):
            hip = HipRuntime()
        assert hip.device_count() == 8

    def test_implicit_mpi_world_warns_but_works(self):
        from repro.mpi.comm import MpiWorld

        with pytest.warns(DeprecationWarning, match="repro.Session"):
            world = MpiWorld(rank_gcds=[0, 1])
        assert world.size == 2

    def test_implicit_rccl_communicator_warns_but_works(self):
        from repro.rccl.communicator import RcclCommunicator

        with pytest.warns(DeprecationWarning, match="repro.Session"):
            comm = RcclCommunicator(gcds=[0, 1])
        assert comm.size == 2

    def test_frontier_hardware_warns_but_works(self):
        from repro.hardware.node import frontier_hardware

        with pytest.warns(DeprecationWarning, match="repro.Session"):
            node = frontier_hardware()
        assert node.num_gcds == 8

    def test_explicit_node_does_not_warn(self):
        from repro.hip.runtime import HipRuntime

        session = repro.Session()
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            HipRuntime(session.node, session.env)

"""Tests for the exception hierarchy."""

import pytest

from repro import errors


class TestHierarchy:
    def test_everything_is_reproerror(self):
        for name in (
            "ConfigurationError",
            "TopologyError",
            "RoutingError",
            "SimulationError",
            "SchedulingError",
            "AllocationError",
            "InvalidAddressError",
            "PageFaultError",
            "CoherenceError",
            "HipError",
            "MpiError",
            "RcclError",
            "BenchmarkError",
            "CalibrationError",
        ):
            cls = getattr(errors, name)
            assert issubclass(cls, errors.ReproError), name

    def test_routing_is_topology(self):
        assert issubclass(errors.RoutingError, errors.TopologyError)

    def test_scheduling_is_simulation(self):
        assert issubclass(errors.SchedulingError, errors.SimulationError)

    def test_memory_family(self):
        for cls in (
            errors.AllocationError,
            errors.InvalidAddressError,
            errors.PageFaultError,
            errors.CoherenceError,
        ):
            assert issubclass(cls, errors.MemoryError_)

    def test_memory_error_does_not_shadow_builtin(self):
        assert errors.MemoryError_ is not MemoryError
        assert not issubclass(errors.MemoryError_, MemoryError)


class TestHipErrors:
    def test_status_carried(self):
        err = errors.HipError("hipErrorInvalidValue", "bad size")
        assert err.status == "hipErrorInvalidValue"
        assert "bad size" in str(err)

    def test_specialized_statuses(self):
        assert errors.InvalidDeviceError().status == "hipErrorInvalidDevice"
        assert (
            errors.PeerAccessError().status == "hipErrorPeerAccessNotEnabled"
        )
        assert errors.StreamError().status == "hipErrorInvalidHandle"

    def test_catchable_as_hip_error(self):
        with pytest.raises(errors.HipError):
            raise errors.InvalidDeviceError("device 42")

"""Tests for streams, events and the peer-access API."""

import pytest

from repro.errors import HipError, PeerAccessError, StreamError
from repro.hip.event import HipEvent
from repro.hip.stream import Stream
from repro.sim.engine import SimEngine
from repro.units import MiB


class TestStream:
    @pytest.fixture
    def engine(self):
        return SimEngine()

    def test_fifo_ordering(self, engine):
        stream = Stream(engine, 0)
        order = []

        def op(name, delay):
            def factory():
                yield engine.timeout(delay)
                order.append((name, engine.now))

            return factory

        stream.enqueue(op("first", 2.0))
        stream.enqueue(op("second", 1.0))
        engine.run()
        # second starts only after first completes.
        assert order == [("first", 2.0), ("second", 3.0)]

    def test_synchronize(self, engine):
        stream = Stream(engine, 0)

        def factory():
            yield engine.timeout(1.5)

        stream.enqueue(factory)

        def waiter():
            yield from stream.synchronize()
            return engine.now

        assert engine.run_process(waiter()) == 1.5

    def test_synchronize_empty_stream(self, engine):
        stream = Stream(engine, 0)

        def waiter():
            yield from stream.synchronize()
            return engine.now

        assert engine.run_process(waiter()) == 0.0

    def test_destroyed_stream_rejects_work(self, engine):
        stream = Stream(engine, 0)
        stream.destroy()
        with pytest.raises(StreamError):
            stream.enqueue(lambda: iter(()))

    def test_pending_depth(self, engine):
        stream = Stream(engine, 0)

        def factory():
            yield engine.timeout(1.0)

        stream.enqueue(factory)
        stream.enqueue(factory)
        assert stream.pending_operations == 2
        engine.run()
        assert stream.pending_operations == 0


class TestHipEvent:
    def test_timestamps_taken_on_stream(self):
        engine = SimEngine()
        stream = Stream(engine, 0)
        start, stop = HipEvent(engine), HipEvent(engine)

        def work():
            yield engine.timeout(3.0)

        start.record(stream)
        stream.enqueue(work)
        stop.record(stream)
        engine.run()
        assert stop.elapsed_since(start) == pytest.approx(3.0)

    def test_unreached_event_raises(self):
        engine = SimEngine()
        event = HipEvent(engine)
        with pytest.raises(HipError):
            _ = event.timestamp

    def test_synchronize_before_record_raises(self):
        engine = SimEngine()
        event = HipEvent(engine)
        with pytest.raises(HipError):
            engine.run_process(event.synchronize())

    def test_rerecord_resets(self):
        engine = SimEngine()
        stream = Stream(engine, 0)
        event = HipEvent(engine)
        event.record(stream)
        engine.run()
        first = event.timestamp

        def work():
            yield engine.timeout(2.0)

        stream.enqueue(work)
        event.record(stream)
        engine.run()
        assert event.timestamp == first + 2.0


class TestPeerApi:
    def test_can_access_peer_everywhere(self, hip):
        assert hip.can_access_peer(0, 7)
        assert not hip.can_access_peer(3, 3)

    def test_double_enable_raises(self, hip):
        hip.enable_peer_access(1, device=0)
        with pytest.raises(PeerAccessError):
            hip.enable_peer_access(1, device=0)

    def test_self_peer_rejected(self, hip):
        with pytest.raises(PeerAccessError):
            hip.enable_peer_access(0, device=0)

    def test_enable_all_pairs_count(self, hip):
        assert hip.enable_all_peer_access() == 8 * 7
        # Second call is a no-op.
        assert hip.enable_all_peer_access() == 0

    def test_disable(self, hip):
        hip.enable_peer_access(1, device=0)
        hip.peer_api.disable_peer_access(0, 1)
        with pytest.raises(PeerAccessError):
            hip.peer_api.disable_peer_access(0, 1)

"""Tests for hipMemcpy / hipMemcpyPeer paths."""

import pytest

from repro.config import SimEnvironment
from repro.errors import HipError
from repro.hip.enums import HostMallocFlags, MemcpyKind
from repro.hip.memcpy import pageable_variation, pair_jitter
from repro.hip.runtime import HipRuntime
from repro.units import GiB, KiB, MiB, to_gbps


def measure_memcpy(hip, dst, src, nbytes=None):
    def run():
        t0 = hip.now
        yield from hip.memcpy(dst, src, nbytes)
        return (nbytes or min(dst.size, src.size)) / (hip.now - t0)

    return hip.run(run())


class TestKindResolution:
    def test_resolve(self, hip):
        host = hip.host_malloc(1 * MiB)
        dev = hip.malloc(1 * MiB)
        from repro.hip.memcpy import CopyApi

        assert CopyApi.resolve_kind(dev, host) is MemcpyKind.HOST_TO_DEVICE
        assert CopyApi.resolve_kind(host, dev) is MemcpyKind.DEVICE_TO_HOST
        assert CopyApi.resolve_kind(host, host) is MemcpyKind.HOST_TO_HOST
        assert CopyApi.resolve_kind(dev, dev) is MemcpyKind.DEVICE_TO_DEVICE


class TestHostDevice:
    def test_pinned_h2d_hits_paper_peak(self, hip):
        host = hip.host_malloc(1 * GiB, HostMallocFlags.NON_COHERENT)
        dev = hip.malloc(1 * GiB)
        rate = measure_memcpy(hip, dev, host)
        assert to_gbps(rate) == pytest.approx(28.3, rel=0.01)

    def test_d2h_symmetric(self, hip):
        host = hip.host_malloc(1 * GiB, HostMallocFlags.NON_COHERENT)
        dev = hip.malloc(1 * GiB)
        rate = measure_memcpy(hip, host, dev)
        assert to_gbps(rate) == pytest.approx(28.3, rel=0.01)

    def test_pageable_slower_and_varying(self, hip):
        rates = []
        for size in (64 * MiB, 128 * MiB, 256 * MiB):
            src = hip.pageable_malloc(size)
            dst = hip.malloc(size)
            rates.append(measure_memcpy(hip, dst, src))
        assert all(to_gbps(r) < 28.3 for r in rates)
        # Deterministic variation: distinct sizes give distinct rates.
        assert len({round(to_gbps(r), 3) for r in rates}) == 3

    def test_small_transfer_is_latency_bound(self, hip):
        host = hip.host_malloc(4 * KiB, HostMallocFlags.NON_COHERENT)
        dev = hip.malloc(4 * KiB)
        rate = measure_memcpy(hip, dev, host)
        assert to_gbps(rate) < 0.5  # dominated by the 10 us call latency

    def test_host_to_host(self, hip):
        a = hip.pageable_malloc(64 * MiB, numa_index=0)
        b = hip.pageable_malloc(64 * MiB, numa_index=2)
        rate = measure_memcpy(hip, b, a)
        assert to_gbps(rate) == pytest.approx(12.0, rel=0.05)

    def test_oversized_copy_rejected(self, hip):
        host = hip.host_malloc(1 * MiB)
        dev = hip.malloc(2 * MiB)
        with pytest.raises(HipError):
            hip.run(hip.memcpy(dev, host, 2 * MiB))

    def test_zero_byte_copy(self, hip):
        host = hip.host_malloc(1 * MiB)
        dev = hip.malloc(1 * MiB)

        def run():
            yield from hip.memcpy(dev, host, 0)
            return hip.now

        assert hip.run(run()) == pytest.approx(10e-6)  # latency only


class TestPeerCopies:
    @pytest.mark.parametrize(
        "dst,expected",
        [(2, 37.75), (6, 50.0), (1, 50.0)],
    )
    def test_sdma_tiers(self, hip, dst, expected):
        src_buf = hip.malloc(1 * GiB, device=0)
        dst_buf = hip.malloc(1 * GiB, device=dst)

        def run():
            t0 = hip.now
            yield from hip.memcpy_peer(dst_buf, dst, src_buf, 0)
            return (1 * GiB) / (hip.now - t0)

        assert to_gbps(hip.run(run())) == pytest.approx(expected, rel=0.01)

    def test_blit_kernel_uses_full_link(self):
        env = SimEnvironment(peer_sdma_enabled=False)
        hip = HipRuntime(env=env)
        src_buf = hip.malloc(1 * GiB, device=0)
        dst_buf = hip.malloc(1 * GiB, device=1)

        def run():
            t0 = hip.now
            yield from hip.memcpy_peer(dst_buf, 1, src_buf, 0)
            return (1 * GiB) / (hip.now - t0)

        # Quad link at kernel efficiency: 0.88 × 200 = 176 GB/s.
        assert to_gbps(hip.run(run())) == pytest.approx(176.0, rel=0.01)

    def test_same_device_peer_copy(self, hip):
        a = hip.malloc(256 * MiB, device=0)
        b = hip.malloc(256 * MiB, device=0)

        def run():
            t0 = hip.now
            yield from hip.memcpy_peer(b, 0, a, 0)
            return (256 * MiB) / (hip.now - t0)

        assert to_gbps(hip.run(run())) == pytest.approx(50.0, rel=0.02)

    def test_d2d_memcpy_routes_to_peer_path(self, hip):
        a = hip.malloc(1 * GiB, device=0)
        b = hip.malloc(1 * GiB, device=2)
        rate = measure_memcpy(hip, b, a)
        assert to_gbps(rate) == pytest.approx(37.75, rel=0.01)


class TestAsyncAndStreams:
    def test_async_copies_serialize_on_stream(self, hip):
        host = hip.host_malloc(256 * MiB, HostMallocFlags.NON_COHERENT)
        dev = hip.malloc(256 * MiB)
        stream = hip.stream_create(device=0)
        e1 = hip.memcpy_async(dev, host, None, MemcpyKind.HOST_TO_DEVICE, stream)
        e2 = hip.memcpy_async(host, dev, None, MemcpyKind.DEVICE_TO_HOST, stream)

        def run():
            yield e2
            return hip.now

        elapsed = hip.run(run())
        single = 256 * MiB / 28.3e9
        # Two serialized copies, not two parallel ones.
        assert elapsed == pytest.approx(2 * single, rel=0.05)

    def test_concurrent_h2d_d2h_overlap_on_distinct_streams(self, hip):
        host1 = hip.host_malloc(256 * MiB, HostMallocFlags.NON_COHERENT)
        host2 = hip.host_malloc(256 * MiB, HostMallocFlags.NON_COHERENT)
        dev1 = hip.malloc(256 * MiB)
        dev2 = hip.malloc(256 * MiB)
        s1 = hip.stream_create(device=0)
        s2 = hip.stream_create(device=0)
        e1 = hip.memcpy_async(dev1, host1, None, MemcpyKind.HOST_TO_DEVICE, s1)
        e2 = hip.memcpy_async(host2, dev2, None, MemcpyKind.DEVICE_TO_HOST, s2)

        def run():
            yield hip.engine.all_of([e1, e2])
            return hip.now

        elapsed = hip.run(run())
        single = 256 * MiB / 28.3e9
        # Opposite directions ride separate engines and link directions
        # — full overlap (then the NUMA port at 45 GB/s binds slightly).
        assert elapsed < 1.5 * single


class TestDeterministicHelpers:
    def test_pair_jitter_stable_and_bounded(self):
        assert pair_jitter(0, 1) == pair_jitter(0, 1)
        assert pair_jitter(0, 1) != pair_jitter(1, 0)
        for a in range(8):
            for b in range(8):
                assert 0.0 <= pair_jitter(a, b) < 1.0

    def test_pageable_variation_stable(self):
        assert pageable_variation(1024) == pageable_variation(1024)
        assert 0.0 <= pageable_variation(12345) < 1.0

"""Tests for the mini-hipify translator."""

import pytest

from repro.hip.hipify import API_MAP, hipify_source

P2P_SNIPPET = """
#include <cuda_runtime.h>

int main() {
    int count;
    cudaGetDeviceCount(&count);
    float *buffers[8];
    for (int i = 0; i < count; i++) {
        cudaSetDevice(i);
        cudaMalloc(&buffers[i], N);
        for (int j = 0; j < count; j++)
            if (i != j) cudaDeviceEnablePeerAccess(j, 0);
    }
    cudaEvent_t start, stop;
    cudaEventCreate(&start);
    cudaEventCreate(&stop);
    cudaEventRecord(start, stream);
    cudaMemcpyPeerAsync(buffers[1], 1, buffers[0], 0, 16, stream);
    cudaEventRecord(stop, stream);
    cudaStreamSynchronize(stream);
    float ms;
    cudaEventElapsedTime(&ms, start, stop);
}
"""


class TestApiTranslation:
    def test_p2p_benchmark_snippet_translates_cleanly(self):
        result = hipify_source(P2P_SNIPPET)
        assert result.clean
        assert "hipMemcpyPeerAsync" in result.translated
        assert "hipDeviceEnablePeerAccess" in result.translated
        assert "hip/hip_runtime.h" in result.translated
        assert "cuda" not in result.translated.lower().replace("cudnn", "")

    def test_replacement_counts(self):
        result = hipify_source("cudaMalloc(a); cudaMalloc(b);")
        assert result.replacements["cudaMalloc"] == 2

    def test_word_boundaries_respected(self):
        # my_cudaMalloc is not an API call; cudaMallocHost is its own
        # entry, not cudaMalloc + "Host".
        result = hipify_source("my_cudaMalloc(); cudaMallocHost(&p, n);")
        assert "my_cudaMalloc()" in result.translated
        assert "hipHostMalloc" in result.translated
        assert "hipMallocHost" not in result.translated

    def test_unresolved_identifiers_reported(self):
        result = hipify_source("cudaGraphLaunch(graph, stream);")
        assert not result.clean
        assert "cudaGraphLaunch" in result.unresolved
        # Left untouched, exactly like hipify-perl warnings.
        assert "cudaGraphLaunch" in result.translated

    def test_map_values_are_hip(self):
        for cuda_name, hip_name in API_MAP.items():
            assert hip_name.startswith("hip"), (cuda_name, hip_name)


class TestKernelLaunchRewrite:
    def test_basic_launch(self):
        result = hipify_source("copy<<<grid, block>>>(dst, src, n);")
        assert result.kernel_launches == 1
        assert (
            "hipLaunchKernelGGL(copy, grid, block, 0, 0, dst, src, n)"
            in result.translated
        )

    def test_launch_with_shmem_and_stream(self):
        result = hipify_source("k<<<g, b, 128, s>>>(x);")
        assert "hipLaunchKernelGGL(k, g, b, 128, s, x)" in result.translated

    def test_launch_without_args(self):
        result = hipify_source("init<<<1, 64>>>();")
        assert "hipLaunchKernelGGL(init, 1, 64, 0, 0)" in result.translated

    def test_summary_mentions_launches(self):
        result = hipify_source("copy<<<g, b>>>(a); cudaFree(a);")
        text = result.summary()
        assert "1 kernel launch" in text
        assert "cudaFree -> hipFree" in text

"""Concurrency-semantics tests: what overlaps and what serializes.

The paper's measurements hinge on these semantics — Listing 1's
one-kernel-per-GPU parallelism, SDMA/kernel overlap, stream ordering —
so they get their own suite.
"""

import pytest

from repro.hip.runtime import HipRuntime
from repro.units import GiB, MiB


def run_timed(hip, process):
    def wrapper():
        t0 = hip.now
        yield from process
        return hip.now - t0

    return hip.run(wrapper())


class TestCrossDeviceParallelism:
    def test_kernels_on_distinct_gcds_overlap(self, hip):
        size = 1 * GiB
        buffers = {
            gcd: (hip.malloc(size, device=gcd), hip.malloc(size, device=gcd))
            for gcd in (0, 2, 4)
        }

        def program():
            t0 = hip.now
            events = [
                hip.launch_stream_copy(b, a, device=gcd)
                for gcd, (a, b) in buffers.items()
            ]
            yield hip.engine.all_of(events)
            return hip.now - t0

        three = hip.run(program())
        single = 2 * size / 1.4e12
        # Local HBM kernels on different dies are fully parallel.
        assert three == pytest.approx(single, rel=0.05)

    def test_same_device_null_stream_serializes(self, hip):
        size = 1 * GiB
        a = hip.malloc(size, device=0)
        b = hip.malloc(size, device=0)

        def program():
            t0 = hip.now
            e1 = hip.launch_stream_copy(b, a, device=0)
            e2 = hip.launch_stream_copy(a, b, device=0)
            yield hip.engine.all_of([e1, e2])
            return hip.now - t0

        both = hip.run(program())
        single = 2 * size / 1.4e12
        assert both == pytest.approx(2 * single, rel=0.05)

    def test_same_device_user_streams_share_hbm(self, hip):
        """Two kernels on separate streams of one GCD run concurrently
        but split the HBM channel — different from serialization."""
        size = 1 * GiB
        a = hip.malloc(size, device=0)
        b = hip.malloc(size, device=0)
        c = hip.malloc(size, device=0)
        d = hip.malloc(size, device=0)
        s1 = hip.stream_create(device=0)
        s2 = hip.stream_create(device=0)

        def program():
            t0 = hip.now
            e1 = hip.launch_stream_copy(b, a, device=0, stream=s1)
            e2 = hip.launch_stream_copy(d, c, device=0, stream=s2)
            yield hip.engine.all_of([e1, e2])
            return hip.now - t0

        both = hip.run(program())
        single = 2 * size / 1.4e12
        # Concurrent HBM sharing: same wall time as serialized here
        # (bandwidth-conserved), but both finish together.
        assert both == pytest.approx(2 * single, rel=0.05)


class TestCopyComputeOverlap:
    def test_sdma_copy_overlaps_local_kernel(self, hip):
        """The SDMA engine's advantage (§V-A2): hipMemcpy runs beside
        kernel execution without slowing it."""
        size = 1 * GiB
        a = hip.malloc(size, device=0)
        b = hip.malloc(size, device=0)
        host = hip.host_malloc(size, device=0)
        dev = hip.malloc(size, device=0)
        kernel_stream = hip.stream_create(device=0)
        copy_stream = hip.stream_create(device=0)

        kernel_alone = run_timed(
            hip, hip.kernel_api.stream_copy(0, b, a)
        )

        def program():
            t0 = hip.now
            kernel_event = hip.launch_stream_copy(
                b, a, device=0, stream=kernel_stream
            )
            copy_event = hip.memcpy_async(dev, host, stream=copy_stream)
            yield hip.engine.all_of([kernel_event, copy_event])
            return hip.now - t0

        overlapped = hip.run(program())
        copy_alone = size / 28.3e9
        # Both proceed concurrently: the slower one dominates; the
        # kernel is barely affected (28 GB/s of HBM traffic vs 1400).
        assert overlapped < kernel_alone + copy_alone
        assert overlapped == pytest.approx(
            max(kernel_alone, copy_alone), rel=0.05
        )

    def test_opposite_direction_peer_copies_overlap(self, hip):
        size = 1 * GiB
        a0 = hip.malloc(size, device=0)
        b0 = hip.malloc(size, device=0)
        a1 = hip.malloc(size, device=1)
        b1 = hip.malloc(size, device=1)
        s0 = hip.stream_create(device=0)
        s1 = hip.stream_create(device=1)

        def program():
            t0 = hip.now
            e1 = hip.memcpy_peer_async(b1, 1, a0, 0, size, s0)
            e2 = hip.memcpy_peer_async(b0, 0, a1, 1, size, s1)
            yield hip.engine.all_of([e1, e2])
            return hip.now - t0

        both = hip.run(program())
        single = size / 50e9
        assert both == pytest.approx(single, rel=0.05)

    def test_same_direction_peer_copies_share_engine(self, hip):
        """Two same-source copies contend on the egress SDMA engine."""
        size = 1 * GiB
        src1 = hip.malloc(size, device=0)
        src2 = hip.malloc(size, device=0)
        dst1 = hip.malloc(size, device=1)
        dst2 = hip.malloc(size, device=6)
        s1 = hip.stream_create(device=0)
        s2 = hip.stream_create(device=0)

        def program():
            t0 = hip.now
            e1 = hip.memcpy_peer_async(dst1, 1, src1, 0, size, s1)
            e2 = hip.memcpy_peer_async(dst2, 6, src2, 0, size, s2)
            yield hip.engine.all_of([e1, e2])
            return hip.now - t0

        both = hip.run(program())
        single = size / 50e9
        # The shared 50 GB/s engine halves each copy.
        assert both == pytest.approx(2 * single, rel=0.05)

"""Tests for the HipRuntime facade: devices, allocation, sync."""

import pytest

from repro.config import SimEnvironment
from repro.errors import AllocationError, InvalidDeviceError
from repro.hip.enums import HostMallocFlags
from repro.hip.runtime import HipRuntime
from repro.memory.buffer import MemoryKind
from repro.memory.placement import ExplicitNumaPolicy
from repro.units import GiB, MiB


class TestDeviceManagement:
    def test_device_count(self, hip):
        assert hip.device_count() == 8

    def test_set_get_device(self, hip):
        hip.set_device(5)
        assert hip.get_device() == 5
        assert hip.physical_device() == 5

    def test_invalid_device(self, hip):
        with pytest.raises(InvalidDeviceError):
            hip.set_device(8)

    def test_visible_devices_remap(self):
        env = SimEnvironment(visible_devices=(6, 2))
        hip = HipRuntime(env=env)
        assert hip.device_count() == 2
        hip.set_device(0)
        assert hip.physical_device() == 6
        hip.set_device(1)
        assert hip.physical_device() == 2
        with pytest.raises(InvalidDeviceError):
            hip.set_device(2)

    def test_visible_devices_affects_allocation(self):
        env = SimEnvironment(visible_devices=(7,))
        hip = HipRuntime(env=env)
        hip.set_device(0)
        buffer = hip.malloc(1 * MiB)
        assert buffer.home.index == 7


class TestAllocationApis:
    def test_malloc_is_device_memory(self, hip):
        buffer = hip.malloc(1 * MiB, device=3)
        assert buffer.kind is MemoryKind.DEVICE
        assert buffer.home.index == 3
        assert hip.node.gcd(3).hbm.allocated_bytes == 1 * MiB

    def test_free_returns_hbm(self, hip):
        buffer = hip.malloc(1 * MiB, device=3)
        hip.free(buffer)
        assert hip.node.gcd(3).hbm.allocated_bytes == 0

    def test_device_oom(self, hip):
        hip.malloc(60 * 10**9, device=0)
        with pytest.raises(AllocationError):
            hip.malloc(10 * 10**9, device=0)

    def test_host_malloc_default_coherent(self, hip):
        buffer = hip.host_malloc(1 * MiB)
        assert buffer.kind is MemoryKind.PINNED_COHERENT

    def test_host_malloc_noncoherent_flag(self, hip):
        buffer = hip.host_malloc(1 * MiB, HostMallocFlags.NON_COHERENT)
        assert buffer.kind is MemoryKind.PINNED_NONCOHERENT

    def test_conflicting_flags(self, hip):
        with pytest.raises(AllocationError):
            hip.host_malloc(
                1 * MiB,
                HostMallocFlags.COHERENT | HostMallocFlags.NON_COHERENT,
            )

    def test_host_malloc_numa_follows_device(self, hip):
        # §IV-B: default placement is the active GPU's NUMA node.
        hip.set_device(6)
        buffer = hip.host_malloc(1 * MiB)
        assert buffer.home.index == 3

    def test_numa_user_policy(self, hip):
        buffer = hip.host_malloc(
            1 * MiB,
            HostMallocFlags.NUMA_USER,
            policy=ExplicitNumaPolicy(2),
        )
        assert buffer.home.index == 2

    def test_numa_user_without_policy(self, hip):
        with pytest.raises(AllocationError):
            hip.host_malloc(1 * MiB, HostMallocFlags.NUMA_USER)

    def test_managed_allocation(self, hip):
        buffer = hip.malloc_managed(1 * MiB, device=4)
        assert buffer.kind is MemoryKind.MANAGED
        assert buffer.home.is_host and buffer.home.index == 2
        assert buffer.page_table is not None

    def test_pageable(self, hip):
        buffer = hip.pageable_malloc(1 * MiB, numa_index=1)
        assert buffer.kind is MemoryKind.PAGEABLE
        assert buffer.home.index == 1

    def test_register_host_buffer(self, hip):
        pageable = hip.pageable_malloc(1 * MiB)
        pinned = hip.alloc_api.register_host_buffer(pageable)
        assert pinned.kind is MemoryKind.PINNED_COHERENT
        assert pinned.address == pageable.address
        with pytest.raises(AllocationError):
            hip.alloc_api.register_host_buffer(hip.host_malloc(1 * MiB))


class TestSynchronization:
    def test_device_synchronize_waits_for_all_streams(self, hip):
        a = hip.malloc(64 * MiB, device=0)
        b = hip.malloc(64 * MiB, device=0)
        stream = hip.stream_create(device=0)
        hip.launch_stream_copy(b, a, device=0)  # null stream
        hip.launch_stream_copy(a, b, device=0, stream=stream)

        def run():
            yield from hip.device_synchronize(0)
            return hip.now

        elapsed = hip.run(run())
        assert elapsed > 0
        assert hip.null_stream(0).pending_operations == 0
        assert stream.pending_operations == 0

    def test_sync_of_idle_device_is_instant(self, hip):
        def run():
            yield from hip.device_synchronize(4)
            return hip.now

        assert hip.run(run()) == 0.0

"""Tests for the kernel cost models (zero-copy access regimes)."""

import pytest

from repro.config import SimEnvironment
from repro.errors import CoherenceError, PeerAccessError
from repro.hip.runtime import HipRuntime
from repro.units import GiB, MiB, to_gbps


def timed(hip, process):
    def run():
        t0 = hip.now
        yield from process
        return hip.now - t0

    return hip.run(run())


class TestLocalAccess:
    def test_local_stream_copy_1400(self, hip):
        a = hip.malloc(1 * GiB)
        b = hip.malloc(1 * GiB)
        elapsed = timed(hip, hip.kernel_api.stream_copy(0, b, a))
        assert to_gbps(2 * GiB / elapsed) == pytest.approx(1400, rel=0.01)

    def test_triad_counts_three_streams(self, hip):
        size = 1 * GiB
        a, b, c = (hip.malloc(size) for _ in range(3))
        elapsed = timed(hip, hip.kernel_api.stream_triad(0, a, b, c))
        assert to_gbps(3 * size / elapsed) == pytest.approx(1400, rel=0.01)

    def test_init_array_write_only(self, hip):
        a = hip.malloc(1 * GiB)
        elapsed = timed(hip, hip.kernel_api.init_array(0, a))
        assert to_gbps(1 * GiB / elapsed) == pytest.approx(1400, rel=0.01)

    def test_launch_overhead_floor(self, hip):
        a = hip.malloc(64)
        b = hip.malloc(64)
        elapsed = timed(hip, hip.kernel_api.stream_copy(0, b, a))
        assert elapsed >= 2.2e-6


class TestRemoteGcdAccess:
    def _remote(self, hip, executor, data, size=1 * GiB):
        hip.enable_all_peer_access()
        a = hip.malloc(size, device=data)
        b = hip.malloc(size, device=data)
        elapsed = timed(hip, hip.kernel_api.stream_copy(executor, b, a))
        return to_gbps(2 * size / elapsed)

    def test_bidirectional_tiers_43_percent(self, hip):
        # Fig. 9: 43.5 % of theoretical bidirectional, all tiers.
        assert self._remote(hip, 0, 1) == pytest.approx(174, rel=0.01)

    def test_bidirectional_single(self, hip):
        assert self._remote(hip, 0, 2) == pytest.approx(43.5, rel=0.01)

    def test_bidirectional_dual(self, hip):
        assert self._remote(hip, 0, 6) == pytest.approx(87, rel=0.01)

    def test_unidirectional_read(self, hip):
        hip.enable_all_peer_access()
        src = hip.malloc(1 * GiB, device=2)
        dst = hip.malloc(1 * GiB, device=0)
        elapsed = timed(hip, hip.kernel_api.stream_copy(0, dst, src))
        # Only reads cross the single link: 0.88 × 50 = 44 GB/s.
        assert to_gbps(1 * GiB / elapsed) == pytest.approx(44, rel=0.01)

    def test_peer_access_required(self, hip):
        src = hip.malloc(1 * MiB, device=2)
        dst = hip.malloc(1 * MiB, device=0)
        with pytest.raises(PeerAccessError):
            hip.run(hip.kernel_api.stream_copy(0, dst, src))

    def test_read_sum_unidirectional(self, hip):
        hip.enable_all_peer_access()
        src = hip.malloc(1 * GiB, device=6)
        elapsed = timed(hip, hip.kernel_api.read_sum(0, src))
        assert to_gbps(1 * GiB / elapsed) == pytest.approx(88, rel=0.01)


class TestHostAccess:
    def test_pinned_zero_copy_read(self, hip):
        host = hip.host_malloc(1 * GiB, device=0)
        dev = hip.malloc(1 * GiB, device=0)
        elapsed = timed(hip, hip.kernel_api.stream_copy(0, dev, host))
        assert to_gbps(1 * GiB / elapsed) == pytest.approx(25.5, rel=0.01)

    def test_pageable_not_gpu_accessible(self, hip):
        pageable = hip.pageable_malloc(1 * MiB)
        dev = hip.malloc(1 * MiB)
        with pytest.raises(CoherenceError):
            hip.run(hip.kernel_api.stream_copy(0, dev, pageable))

    def test_bidirectional_host_stream_port_limited(self, hip):
        # Listing 1 kernel: both buffers on host → NUMA port binds at 45.
        a = hip.host_malloc(1 * GiB, device=0)
        b = hip.host_malloc(1 * GiB, device=0)
        elapsed = timed(hip, hip.kernel_api.stream_copy(0, b, a))
        assert to_gbps(2 * GiB / elapsed) == pytest.approx(45, rel=0.01)


class TestManagedAccess:
    def test_zero_copy_without_xnack(self, hip):
        managed = hip.malloc_managed(1 * GiB, device=0)
        dev = hip.malloc(1 * GiB, device=0)
        elapsed = timed(hip, hip.kernel_api.stream_copy(0, dev, managed))
        assert to_gbps(1 * GiB / elapsed) == pytest.approx(25.5, rel=0.01)

    def test_migration_with_xnack(self, hip_xnack):
        hip = hip_xnack
        managed = hip.malloc_managed(256 * MiB, device=0)
        dev = hip.malloc(256 * MiB, device=0)
        elapsed = timed(hip, hip.kernel_api.stream_copy(0, dev, managed))
        assert to_gbps(256 * MiB / elapsed) == pytest.approx(2.8, rel=0.02)

    def test_second_pass_is_local_after_migration(self, hip_xnack):
        hip = hip_xnack
        managed = hip.malloc_managed(256 * MiB, device=0)
        dev = hip.malloc(256 * MiB, device=0)

        def run():
            yield from hip.kernel_api.stream_copy(0, dev, managed)
            t_mid = hip.now
            yield from hip.kernel_api.stream_copy(0, dev, managed)
            return 256 * MiB / (hip.now - t_mid)

        rate = to_gbps(hip.run(run()))
        # Pages now GPU-resident: local HBM speed, not 2.8 GB/s.
        assert rate > 500

    def test_prefetch_then_access_is_fast(self, hip_xnack):
        hip = hip_xnack
        managed = hip.malloc_managed(256 * MiB, device=0)
        dev = hip.malloc(256 * MiB, device=0)

        def run():
            yield from hip.mem_prefetch(managed, device=0)
            t0 = hip.now
            yield from hip.kernel_api.stream_copy(0, dev, managed)
            return 256 * MiB / (hip.now - t0)

        assert to_gbps(hip.run(run())) > 500

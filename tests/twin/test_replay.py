"""Tests for the shadow replayer (repro.twin.replay).

The load-bearing property is the round trip: a stream synthesized from
a figure artifact under a profile replays under the *same* profile with
drift of exactly 0.0 — synthesis and replay share the duration↔output
expressions, so any nonzero drift is a real divergence, not float
noise.  Everything else (attribution, windowing, alerts, metrics)
builds on that baseline.
"""

import pytest

from repro.core.calibration import DEFAULT_CALIBRATION
from repro.obs.metrics import MetricsRegistry
from repro.session import Session
from repro.topology.presets import frontier_node
from repro.twin import (
    DEFAULT_ALERT_THRESHOLD,
    shadow_replay,
    synthesize_telemetry,
)
from repro.twin.replay import attribute_record, record_point, predicted_duration
from repro.twin.schema import record_from_json
from repro.twin.synthesize import perturbed_profile


@pytest.fixture(scope="module")
def fig09_stream():
    return synthesize_telemetry("fig09")


@pytest.fixture(scope="module")
def fig06_stream():
    return synthesize_telemetry("fig06")


class TestRoundTrip:
    def test_fig09_replays_drift_free(self, fig09_stream):
        report = shadow_replay(fig09_stream)
        assert report.max_abs_drift == 0.0
        assert report.max_link_drift == 0.0
        assert not report.alerts

    def test_fig06_replays_drift_free_per_link(self, fig06_stream):
        report = shadow_replay(fig06_stream)
        assert report.overall.count == len(fig06_stream.records)
        # The acceptance gate: every link's drift under 1e-9.
        assert report.max_link_drift < 1e-9
        assert report.max_abs_drift < 1e-9

    def test_report_carries_fingerprints(self, fig09_stream):
        report = shadow_replay(fig09_stream)
        assert report.telemetry_fingerprint == fig09_stream.fingerprint()
        assert (
            report.calibration_fingerprint == DEFAULT_CALIBRATION.fingerprint()
        )

    def test_windowing_does_not_change_drift(self, fig06_stream):
        whole = shadow_replay(fig06_stream)
        windowed = shadow_replay(fig06_stream, window=fig06_stream.span / 7)
        assert len(windowed.windows) > 1
        assert windowed.overall.count == whole.overall.count
        assert windowed.max_abs_drift == whole.max_abs_drift == 0.0


class TestDriftDetection:
    def test_perturbed_profile_raises_alerts(self, fig06_stream):
        degraded = perturbed_profile(
            DEFAULT_CALIBRATION, {"sdma_xgmi_efficiency": 0.9}
        )
        report = shadow_replay(fig06_stream, calibration=degraded)
        assert report.max_abs_drift > 0.05
        assert report.alerts
        dimensions = {alert["dimension"] for alert in report.alerts}
        assert "link" in dimensions
        # Latency pings are not SDMA-rate-bound: that interface stays
        # quiet while memcpy_peer lights up.
        assert report.by_interface["memcpy_peer"].max_abs > 0.05
        assert report.by_interface["memcpy_peer_latency"].max_abs < 0.01

    def test_alert_threshold_is_tunable(self, fig06_stream):
        degraded = perturbed_profile(
            DEFAULT_CALIBRATION, {"sdma_xgmi_efficiency": 0.9}
        )
        quiet = shadow_replay(
            fig06_stream, calibration=degraded, alert_threshold=0.5
        )
        assert not quiet.alerts

    def test_drift_is_signed(self, fig09_stream):
        # A *faster* model than the machine predicts shorter durations:
        # negative drift.
        slow_machine = perturbed_profile(
            DEFAULT_CALIBRATION, {"kernel_xgmi_bidir_efficiency": 0.9}
        )
        stream = synthesize_telemetry("fig09", calibration=slow_machine)
        report = shadow_replay(stream)
        assert report.overall.mean_signed < 0


class TestMetricsPublication:
    def test_drift_timeseries_published(self, fig09_stream):
        registry = MetricsRegistry()
        shadow_replay(fig09_stream, metrics=registry)
        names = [
            name
            for name in registry.snapshot().get("timeseries", {})
            if name.startswith("drift/")
        ]
        assert any(name.startswith("drift/interface/") for name in names)

    def test_metrics_off_by_default(self, fig09_stream):
        report = shadow_replay(fig09_stream)
        assert report.max_abs_drift == 0.0


class TestReportPayload:
    def test_json_schema_and_shape(self, fig09_stream):
        payload = shadow_replay(fig09_stream, window=0.1).to_json()
        assert payload["schema"] == "repro-shadow/1"
        assert payload["record_count"] == len(fig09_stream.records)
        assert payload["overall"]["max_abs_drift"] == 0.0
        assert payload["by_link"] and payload["by_interface"]
        assert payload["records"] and payload["windows"]
        assert payload["runner"] is None

    def test_describe_mentions_alert_state(self, fig09_stream):
        text = shadow_replay(fig09_stream).describe()
        assert "no drift above" in text


class TestAttribution:
    def test_transfer_blames_bottleneck_link(self):
        record = record_from_json(
            {
                "t": 0.0,
                "kind": "transfer",
                "src": 0,
                "dst": 2,
                "bytes": 1 << 20,
                "duration": 1e-4,
            }
        )
        link, tier, interface = attribute_record(record, frontier_node())
        assert link == "gcd0-gcd2:single"
        assert tier == "single"
        assert interface == "memcpy_peer"

    def test_local_stream_has_no_link(self):
        record = record_from_json(
            {
                "t": 0.0,
                "kind": "stream",
                "executor": 3,
                "data": 3,
                "bytes": 1 << 20,
                "duration": 1e-4,
            }
        )
        link, tier, interface = attribute_record(record, frontier_node())
        assert link is None and tier is None
        assert interface == "hbm_stream"

    def test_h2d_blames_cpu_link(self):
        record = record_from_json(
            {
                "t": 0.0,
                "kind": "h2d",
                "interface": "pinned_memcpy",
                "gcd": 5,
                "bytes": 1 << 20,
                "duration": 1e-4,
            }
        )
        link, tier, interface = attribute_record(record, frontier_node())
        assert link is not None and tier == "cpu"
        assert interface == "h2d/pinned_memcpy"


class TestRecordPoints:
    def test_transfer_maps_to_pair_bandwidth(self):
        record = record_from_json(
            {
                "t": 0.0,
                "kind": "transfer",
                "src": 0,
                "dst": 4,
                "bytes": 1 << 20,
                "duration": 1e-4,
            }
        )
        point = record_point(record)
        assert point.fn.endswith(":measure_pair_bandwidth")
        output = point.execute()
        assert predicted_duration(record, output) == pytest.approx(
            (1 << 20) / output
        )

    def test_peer_access_false_maps_to_peer_copy(self):
        record = record_from_json(
            {
                "t": 0.0,
                "kind": "transfer",
                "src": 0,
                "dst": 4,
                "bytes": 1 << 20,
                "duration": 1e-4,
                "peer_access": False,
            }
        )
        assert record_point(record).fn.endswith(":measure_peer_copy")

    def test_latency_duration_passes_through(self):
        record = record_from_json(
            {
                "t": 0.0,
                "kind": "latency",
                "src": 0,
                "dst": 1,
                "repetitions": 3,
                "duration": 1e-5,
            }
        )
        point = record_point(record)
        assert point.fn.endswith(":measure_pair_latency")
        output = point.execute()
        assert predicted_duration(record, output) == output


class TestSessionIntegration:
    def test_session_shadow_uses_session_calibration(self, fig09_stream):
        degraded = perturbed_profile(
            DEFAULT_CALIBRATION, {"kernel_xgmi_bidir_efficiency": 0.9}
        )
        with Session(calibration=degraded, telemetry=fig09_stream) as session:
            report = session.shadow()
        assert report.calibration_fingerprint == degraded.fingerprint()
        assert report.max_abs_drift > 0.0

    def test_session_shadow_without_telemetry_is_an_error(self):
        from repro.errors import ConfigurationError

        with Session() as session:
            with pytest.raises(ConfigurationError, match="no telemetry"):
                session.shadow()

    def test_session_accepts_telemetry_path(self, tmp_path, fig09_stream):
        path = tmp_path / "machine.jsonl"
        fig09_stream.dump(path)
        with Session(telemetry=path) as session:
            report = session.shadow(
                alert_threshold=DEFAULT_ALERT_THRESHOLD
            )
        assert report.max_abs_drift == 0.0

"""Tests for the repro-telemetry/1 schema (repro.twin.schema)."""

import json
import pathlib

import pytest

from repro.errors import TelemetryError
from repro.twin import (
    TELEMETRY_SCHEMA,
    TelemetryRecord,
    TelemetryStream,
    load_telemetry,
    loads_telemetry,
    stream_from_records,
)
from repro.twin.schema import implied_bandwidth, record_from_json

TELEMETRY_DIR = (
    pathlib.Path(__file__).resolve().parents[2] / "benchmarks" / "telemetry"
)
COMMITTED = sorted(TELEMETRY_DIR.glob("*.jsonl"))


def _transfer(t=0.0, src=0, dst=4, size=1 << 20, duration=1e-4, **extra):
    entry = {
        "t": t,
        "kind": "transfer",
        "src": src,
        "dst": dst,
        "bytes": size,
        "duration": duration,
    }
    entry.update(extra)
    return entry


def _stream(records):
    lines = [json.dumps({"schema": TELEMETRY_SCHEMA, "name": "test"})]
    lines.extend(json.dumps(entry) for entry in records)
    return "\n".join(lines) + "\n"


class TestRecordParsing:
    def test_transfer_round_trips(self):
        record = record_from_json(_transfer())
        assert record.kind == "transfer"
        assert record.get("bytes") == 1 << 20
        assert record_from_json(record.to_json()) == record

    def test_fields_are_sorted_and_hashable(self):
        record = record_from_json(_transfer())
        assert record.fields == tuple(sorted(record.fields))
        hash(record)

    def test_gcds_list_becomes_tuple(self):
        record = record_from_json(
            {
                "t": 0.0,
                "kind": "host_stream",
                "gcds": [0, 1],
                "bytes": 4096,
                "duration": 1e-5,
            }
        )
        assert record.get("gcds") == (0, 1)
        hash(record)
        # ...and serializes back to a JSON list.
        assert record.to_json()["gcds"] == [0, 1]

    def test_consistent_bandwidth_accepted(self):
        size, duration = 1 << 20, 1e-4
        record = record_from_json(
            _transfer(size=size, duration=duration, bandwidth=size / duration)
        )
        assert record.bandwidth == pytest.approx(size / duration)
        assert implied_bandwidth(record) == pytest.approx(size / duration)

    def test_latency_has_no_implied_bandwidth(self):
        record = record_from_json(
            {
                "t": 0.0,
                "kind": "latency",
                "src": 0,
                "dst": 1,
                "repetitions": 3,
                "duration": 1e-5,
            }
        )
        assert implied_bandwidth(record) is None


class TestStrictValidation:
    def test_rejects_unknown_kind(self):
        with pytest.raises(TelemetryError, match="unknown kind"):
            record_from_json({"t": 0.0, "kind": "teleport", "duration": 1e-4})

    def test_rejects_unknown_field(self):
        with pytest.raises(TelemetryError, match="unknown fields"):
            record_from_json(_transfer(hops=3))

    def test_rejects_missing_required_field(self):
        entry = _transfer()
        del entry["bytes"]
        with pytest.raises(TelemetryError, match="missing \\['bytes'\\]"):
            record_from_json(entry)

    def test_rejects_missing_duration(self):
        entry = _transfer()
        del entry["duration"]
        with pytest.raises(TelemetryError, match="missing 'duration'"):
            record_from_json(entry)

    @pytest.mark.parametrize("duration", [0, -1e-4])
    def test_rejects_non_positive_duration(self, duration):
        with pytest.raises(TelemetryError, match="duration must be positive"):
            record_from_json(_transfer(duration=duration))

    def test_rejects_negative_t(self):
        with pytest.raises(TelemetryError, match="t must be non-negative"):
            record_from_json(_transfer(t=-1.0))

    def test_rejects_boolean_posing_as_number(self):
        with pytest.raises(TelemetryError, match="must be a number"):
            record_from_json(_transfer(t=True))

    def test_rejects_non_integer_endpoint(self):
        with pytest.raises(TelemetryError, match="must be an integer"):
            record_from_json(_transfer(src="gcd0"))

    def test_rejects_src_equal_dst(self):
        with pytest.raises(TelemetryError, match="src and dst must differ"):
            record_from_json(_transfer(src=2, dst=2))

    def test_rejects_inconsistent_bandwidth(self):
        with pytest.raises(TelemetryError, match="disagrees"):
            record_from_json(_transfer(bandwidth=1.0))

    def test_rejects_unknown_h2d_interface(self):
        with pytest.raises(TelemetryError, match="unknown h2d interface"):
            record_from_json(
                {
                    "t": 0.0,
                    "kind": "h2d",
                    "interface": "quantum",
                    "gcd": 0,
                    "bytes": 4096,
                    "duration": 1e-5,
                }
            )

    def test_rejects_unknown_collective_library(self):
        with pytest.raises(TelemetryError, match="unknown collective library"):
            record_from_json(
                {
                    "t": 0.0,
                    "kind": "collective",
                    "library": "nccl2",
                    "collective": "allreduce",
                    "ranks": 8,
                    "bytes": 4096,
                    "duration": 1e-5,
                }
            )

    def test_rejects_duplicate_gcds(self):
        with pytest.raises(TelemetryError, match="duplicates"):
            record_from_json(
                {
                    "t": 0.0,
                    "kind": "host_stream",
                    "gcds": [0, 0],
                    "bytes": 4096,
                    "duration": 1e-5,
                }
            )

    def test_rejects_non_boolean_peer_access(self):
        with pytest.raises(TelemetryError, match="must be a boolean"):
            record_from_json(_transfer(peer_access=1))

    def test_error_names_the_line(self):
        text = _stream([_transfer(), _transfer(src=1, dst=1)])
        with pytest.raises(TelemetryError, match="line 3"):
            loads_telemetry(text)


class TestStreamParsing:
    def test_rejects_empty_document(self):
        with pytest.raises(TelemetryError, match="empty"):
            loads_telemetry("")

    def test_rejects_wrong_schema(self):
        text = json.dumps({"schema": "repro-telemetry/9"}) + "\n"
        with pytest.raises(TelemetryError, match="unsupported telemetry schema"):
            loads_telemetry(text)

    def test_rejects_unknown_header_field(self):
        text = json.dumps({"schema": TELEMETRY_SCHEMA, "machine": "frontier"})
        with pytest.raises(TelemetryError, match="unknown fields"):
            loads_telemetry(text)

    def test_rejects_bad_json_line(self):
        text = _stream([]) + "{not json\n"
        with pytest.raises(TelemetryError, match="line 2 is not valid JSON"):
            loads_telemetry(text)

    def test_load_reports_missing_file(self, tmp_path):
        with pytest.raises(TelemetryError, match="cannot read"):
            load_telemetry(tmp_path / "absent.jsonl")

    def test_name_defaults_to_file_stem(self, tmp_path):
        path = tmp_path / "my_machine.jsonl"
        path.write_text(
            json.dumps({"schema": TELEMETRY_SCHEMA})
            + "\n"
            + json.dumps(_transfer())
            + "\n"
        )
        assert load_telemetry(path).name == "my_machine"

    def test_schema_constant(self):
        assert TELEMETRY_SCHEMA == "repro-telemetry/1"


class TestStreamBehaviour:
    def test_records_sort_by_event_time(self):
        late = record_from_json(_transfer(t=2.0))
        early = record_from_json(_transfer(t=1.0))
        stream = stream_from_records([late, early])
        assert [r.t for r in stream] == [1.0, 2.0]

    def test_fingerprint_ignores_name_and_generator(self):
        records = (record_from_json(_transfer()),)
        a = TelemetryStream(records, name="a")
        b = TelemetryStream(records, name="b", generator="synthesized")
        assert a.fingerprint() == b.fingerprint()

    def test_fingerprint_tracks_records(self):
        a = stream_from_records([record_from_json(_transfer())])
        b = stream_from_records([record_from_json(_transfer(size=2 << 20))])
        assert a.fingerprint() != b.fingerprint()

    def test_dumps_load_dumps_is_a_fixpoint(self, tmp_path):
        stream = stream_from_records(
            [record_from_json(_transfer(t=i * 1e-3)) for i in range(3)],
            name="fixpoint",
        )
        path = tmp_path / "stream.jsonl"
        stream.dump(path)
        first = path.read_text()
        load_telemetry(path).dump(path)
        assert path.read_text() == first

    def test_windows_partition_by_start_time(self):
        stream = stream_from_records(
            [record_from_json(_transfer(t=t)) for t in (0.0, 0.4, 1.1, 3.0)]
        )
        windows = stream.windows(1.0)
        assert [w.index for w in windows] == [0, 1, 3]
        assert len(windows[0].records) == 2
        assert windows[2].start == 3.0 and windows[2].end == 4.0

    def test_windows_none_is_one_window(self):
        stream = stream_from_records(
            [record_from_json(_transfer(t=t)) for t in (0.0, 5.0)]
        )
        windows = stream.windows(None)
        assert len(windows) == 1
        assert len(windows[0].records) == 2

    def test_windows_reject_non_positive_width(self):
        stream = stream_from_records([record_from_json(_transfer())])
        with pytest.raises(TelemetryError, match="window must be positive"):
            stream.windows(0.0)

    def test_span_covers_first_start_to_last_end(self):
        stream = stream_from_records(
            [
                record_from_json(_transfer(t=1.0, duration=1e-3)),
                record_from_json(_transfer(t=2.0, duration=5e-3)),
            ]
        )
        assert stream.span == pytest.approx(1.005)


class TestCommittedFiles:
    def test_example_stream_is_committed(self):
        assert "fig06_example" in {path.stem for path in COMMITTED}

    @pytest.mark.parametrize("path", COMMITTED, ids=lambda p: p.stem)
    def test_committed_file_is_valid_and_canonical(self, path):
        stream = load_telemetry(path)
        assert stream.records
        assert stream.dumps() == path.read_text()

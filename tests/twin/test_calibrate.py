"""Tests for the auto-calibrator (repro.twin.calibrate).

The headline property: synthesize telemetry from a machine whose
efficiency constant drifted by up to ±10%, fit it back, and the
recovered constant lands within 1% of the truth — deterministically,
every run.  fig09 (three remote-stream kernels) keeps the property
cheap; fig06 exercises the full SDMA path once.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.calibration import DEFAULT_CALIBRATION
from repro.errors import CalibrationError, TelemetryError
from repro.session import Session
from repro.twin import (
    FIT_BOUNDS,
    fit_calibration,
    shadow_replay,
    stream_from_records,
    synthesize_telemetry,
)
from repro.twin.synthesize import perturbed_profile


@pytest.fixture(scope="module")
def fig09_stream():
    return synthesize_telemetry("fig09")


class TestRecovery:
    @settings(max_examples=8, deadline=None)
    @given(factor=st.floats(0.9, 1.1))
    def test_recovers_kernel_efficiency_within_one_percent(self, factor):
        truth = DEFAULT_CALIBRATION.kernel_xgmi_bidir_efficiency * factor
        stream = synthesize_telemetry(
            "fig09", perturb={"kernel_xgmi_bidir_efficiency": factor}
        )
        fit = fit_calibration(
            stream, fields=["kernel_xgmi_bidir_efficiency"]
        )
        recovered = fit.profile.kernel_xgmi_bidir_efficiency
        assert abs(recovered - truth) / truth < 0.01
        assert fit.final_rms <= fit.initial_rms

    def test_recovers_sdma_efficiency_from_fig06(self):
        truth = DEFAULT_CALIBRATION.sdma_xgmi_efficiency * 0.9
        stream = synthesize_telemetry(
            "fig06", perturb={"sdma_xgmi_efficiency": 0.9}
        )
        fit = fit_calibration(stream, fields=["sdma_xgmi_efficiency"])
        recovered = fit.profile.sdma_xgmi_efficiency
        assert abs(recovered - truth) / truth < 0.01
        # Replaying under the fitted profile closes the loop.
        refit = shadow_replay(stream, calibration=fit.profile)
        assert refit.max_abs_drift < 1e-3

    def test_unperturbed_fit_keeps_the_base_profile(self, fig09_stream):
        fit = fit_calibration(
            fig09_stream, fields=["kernel_xgmi_bidir_efficiency"]
        )
        assert fit.profile.fingerprint() == DEFAULT_CALIBRATION.fingerprint()
        assert fit.initial_rms == 0.0

    def test_fit_is_deterministic(self, fig09_stream):
        stream = synthesize_telemetry(
            "fig09", perturb={"kernel_xgmi_bidir_efficiency": 1.05}
        )
        first = fit_calibration(stream, fields=["kernel_xgmi_bidir_efficiency"])
        second = fit_calibration(stream, fields=["kernel_xgmi_bidir_efficiency"])
        assert first.profile.fingerprint() == second.profile.fingerprint()
        assert first.evaluations == second.evaluations


class TestSensitivity:
    def test_invisible_constants_are_skipped(self, fig09_stream):
        # fig09's remote-stream kernels never touch the SDMA engines or
        # host-pageable staging: the probe must drop those fields
        # instead of letting the line search wander.
        fit = fit_calibration(
            fig09_stream,
            fields=["kernel_xgmi_bidir_efficiency", "pageable_efficiency"],
        )
        assert "pageable_efficiency" in fit.skipped_fields
        assert (
            fit.profile.pageable_efficiency
            == DEFAULT_CALIBRATION.pageable_efficiency
        )

    def test_default_field_set_is_the_fit_bounds(self, fig09_stream):
        fit = fit_calibration(fig09_stream)
        assert set(fit.fitted_fields) | set(fit.skipped_fields) == set(
            FIT_BOUNDS
        )


class TestValidation:
    def test_empty_stream_is_an_error(self):
        with pytest.raises(TelemetryError, match="empty telemetry"):
            fit_calibration(stream_from_records([]))

    def test_unknown_field_is_an_error(self, fig09_stream):
        with pytest.raises(CalibrationError, match="not fittable"):
            fit_calibration(fig09_stream, fields=["warp_speed"])

    def test_unfittable_field_is_an_error(self, fig09_stream):
        # A real constant, but not an efficiency the fitter owns.
        with pytest.raises(CalibrationError, match="not fittable"):
            fit_calibration(fig09_stream, fields=["page_size"])

    def test_perturb_rejects_unknown_field(self):
        with pytest.raises(TelemetryError, match="unknown"):
            perturbed_profile(DEFAULT_CALIBRATION, {"warp_speed": 1.1})


class TestFitPayload:
    def test_provenance_names_the_stream(self):
        stream = synthesize_telemetry(
            "fig09", perturb={"kernel_xgmi_bidir_efficiency": 0.95}
        )
        fit = fit_calibration(stream, fields=["kernel_xgmi_bidir_efficiency"])
        provenance = fit.provenance()
        assert provenance["source"] == "fitted-from-telemetry"
        assert provenance["telemetry"] == stream.name
        assert provenance["telemetry_fingerprint"] == stream.fingerprint()
        assert provenance["fitted_fields"] == ["kernel_xgmi_bidir_efficiency"]
        assert provenance["final_rms"] < provenance["initial_rms"]

    def test_json_and_describe(self, fig09_stream):
        fit = fit_calibration(
            fig09_stream, fields=["kernel_xgmi_bidir_efficiency"]
        )
        payload = fit.to_json()
        assert payload["schema"] == "repro-calibration-fit/1"
        assert payload["record_count"] == len(fig09_stream.records)
        assert "residual RMS" in fit.describe()


class TestSessionIntegration:
    def test_session_calibrate_starts_from_session_profile(self):
        stream = synthesize_telemetry(
            "fig09", perturb={"kernel_xgmi_bidir_efficiency": 1.08}
        )
        with Session(telemetry=stream) as session:
            fit = session.calibrate(fields=["kernel_xgmi_bidir_efficiency"])
        assert fit.base_fingerprint == DEFAULT_CALIBRATION.fingerprint()
        truth = DEFAULT_CALIBRATION.kernel_xgmi_bidir_efficiency * 1.08
        recovered = fit.profile.kernel_xgmi_bidir_efficiency
        assert abs(recovered - truth) / truth < 0.01

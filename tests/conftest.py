"""Shared fixtures for the repro test suite."""

from __future__ import annotations

import pytest

from repro.config import SimEnvironment
from repro.core.calibration import CalibrationProfile
from repro.hardware.node import HardwareNode
from repro.hip.runtime import HipRuntime
from repro.topology.presets import frontier_node


@pytest.fixture(scope="session")
def topology():
    """The Fig. 1 topology (immutable, safe to share)."""
    return frontier_node()


@pytest.fixture(scope="session")
def calibration():
    """Default MI250X calibration profile (immutable)."""
    return CalibrationProfile.default()


@pytest.fixture
def node():
    """A fresh simulated node per test."""
    return HardwareNode()


@pytest.fixture
def hip():
    """A fresh HIP runtime on a fresh node."""
    return HipRuntime()


@pytest.fixture
def hip_xnack():
    """HIP runtime with HSA_XNACK=1."""
    return HipRuntime(env=SimEnvironment(xnack_enabled=True))


def make_runtime(**env_kwargs) -> HipRuntime:
    """Helper for tests needing specific environment switches."""
    return HipRuntime(env=SimEnvironment(**env_kwargs))

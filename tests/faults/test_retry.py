"""RetryPolicy semantics and the ambient fault-scenario context."""

import pytest

from repro.errors import ConfigurationError
from repro.faults import FaultScenario, LinkFail, RetryPolicy
from repro.faults.context import active, install
from repro.faults.retry import NO_RETRY


class TestRetryPolicy:
    def test_exponential_backoff_schedule(self):
        policy = RetryPolicy(max_attempts=4, base_delay=10e-6, multiplier=2.0)
        assert policy.delay(1) == pytest.approx(10e-6)
        assert policy.delay(2) == pytest.approx(20e-6)
        assert policy.delay(3) == pytest.approx(40e-6)

    def test_allows_retry_counts_the_first_try(self):
        policy = RetryPolicy(max_attempts=3)
        assert policy.allows_retry(1)
        assert policy.allows_retry(2)
        assert not policy.allows_retry(3)

    def test_no_retry_fails_fast(self):
        assert not NO_RETRY.allows_retry(1)
        assert NO_RETRY.delay(1) == 0.0

    def test_validation(self):
        with pytest.raises(ConfigurationError, match="max_attempts"):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ConfigurationError, match="base_delay"):
            RetryPolicy(base_delay=-1.0)
        with pytest.raises(ConfigurationError, match="multiplier"):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ConfigurationError, match="1-based"):
            RetryPolicy().delay(0)


class TestAmbientContext:
    def test_default_is_none(self):
        assert active() is None

    def test_install_and_restore(self):
        scenario = FaultScenario(events=(LinkFail(link="1-3", at=0.0),))
        with install(scenario) as installed:
            assert installed is scenario
            assert active() is scenario
        assert active() is None

    def test_nesting_restores_outer(self):
        outer = FaultScenario(events=(LinkFail(link="1-3", at=0.0),))
        inner = FaultScenario(events=(LinkFail(link="0-1", at=0.0),))
        with install(outer):
            with install(inner):
                assert active() is inner
            assert active() is outer

    def test_installing_none_shields_inner_code(self):
        scenario = FaultScenario(events=(LinkFail(link="1-3", at=0.0),))
        with install(scenario):
            with install(None):
                assert active() is None
            assert active() is scenario

    def test_restores_on_exception(self):
        scenario = FaultScenario(events=(LinkFail(link="1-3", at=0.0),))
        with pytest.raises(RuntimeError):
            with install(scenario):
                raise RuntimeError("boom")
        assert active() is None

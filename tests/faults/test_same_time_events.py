"""Same-timestamp fault events fire in scenario listing order.

The injector arms one engine timer per event; the epoch queue's FIFO
tie-break therefore makes *listing order* the execution order for
events sharing an ``at`` time.  Last-writer-wins effects (capacity
sets) are how we observe it.
"""

import pytest

from repro.faults import FaultScenario, LinkDegrade
from repro.faults.injector import resolve_link
from repro.hardware.node import HardwareNode
from repro.hardware.xgmi import both_channels

LINK = "gcd1-gcd3:single"


def degraded_capacity(node):
    link = resolve_link(node.topology, LINK)
    (channel, _) = both_channels(link)
    return node.network.channel(channel).capacity, link.capacity_per_direction


@pytest.mark.parametrize(
    "factors, winner",
    [((0.5, 0.25), 0.25), ((0.25, 0.5), 0.5)],
    ids=["halve-then-quarter", "quarter-then-halve"],
)
def test_same_time_degrades_apply_in_listing_order(factors, winner):
    # Both events target the same link at the same instant; each sets
    # capacity to factor × healthy, so the listed-last factor must win.
    scenario = FaultScenario(
        events=tuple(
            LinkDegrade(link=LINK, at=1e-3, factor=factor)
            for factor in factors
        ),
        name="same-time",
    )
    node = HardwareNode(faults=scenario)
    node.engine.run(until=2e-3)
    capacity, healthy = degraded_capacity(node)
    assert capacity == pytest.approx(winner * healthy)


def test_same_time_events_on_distinct_links_all_apply():
    other = "gcd0-gcd2:single"
    scenario = FaultScenario(
        events=(
            LinkDegrade(link=LINK, at=1e-3, factor=0.5),
            LinkDegrade(link=other, at=1e-3, factor=0.25),
        ),
        name="fan-out",
    )
    node = HardwareNode(faults=scenario)
    node.engine.run(until=2e-3)
    for spec, factor in ((LINK, 0.5), (other, 0.25)):
        link = resolve_link(node.topology, spec)
        for channel in both_channels(link):
            assert node.network.channel(channel).capacity == pytest.approx(
                factor * link.capacity_per_direction
            )

"""FaultScenario data model: validation, JSON round-trip, fingerprints."""

import math
import pickle

import pytest

from repro.errors import ConfigurationError
from repro.faults import (
    FaultScenario,
    LinkDegrade,
    LinkFail,
    PageMigrationStorm,
    SdmaStall,
)


class TestEventValidation:
    def test_degrade_factor_must_be_in_unit_interval(self):
        with pytest.raises(ConfigurationError, match="factor"):
            LinkDegrade(link="1-3", factor=0.0, at=0.0)
        with pytest.raises(ConfigurationError, match="factor"):
            LinkDegrade(link="1-3", factor=1.5, at=0.0)
        # factor=1.0 restores full health and is legal.
        LinkDegrade(link="1-3", factor=1.0, at=0.0)

    def test_event_times_must_be_finite_and_non_negative(self):
        with pytest.raises(ConfigurationError, match="at"):
            LinkDegrade(link="1-3", factor=0.5, at=-1.0)
        with pytest.raises(ConfigurationError, match="at"):
            LinkFail(link="1-3", at=math.inf)
        with pytest.raises(ConfigurationError, match="number"):
            LinkFail(link="1-3", at=True)

    def test_fail_heal_must_follow_failure(self):
        with pytest.raises(ConfigurationError, match="heal"):
            LinkFail(link="1-3", at=0.5, until=0.5)
        LinkFail(link="1-3", at=0.5, until=0.6)

    def test_stall_duration_must_be_positive(self):
        with pytest.raises(ConfigurationError, match="duration"):
            SdmaStall(engine="gcd0:out", at=0.0, duration=0.0)

    def test_storm_rate_and_numa_validated(self):
        with pytest.raises(ConfigurationError, match="rate"):
            PageMigrationStorm(numa=0, at=0.0, rate=0.0)
        with pytest.raises(ConfigurationError, match="rate"):
            PageMigrationStorm(numa=0, at=0.0, rate=math.inf)
        with pytest.raises(ConfigurationError, match="numa"):
            PageMigrationStorm(numa=-1, at=0.0, rate=1e9)
        with pytest.raises(ConfigurationError, match="numa"):
            PageMigrationStorm(numa=True, at=0.0, rate=1e9)

    def test_scenario_rejects_non_events(self):
        with pytest.raises(ConfigurationError, match="not a fault event"):
            FaultScenario(events=("link_degrade",))

    def test_scenario_name_must_be_non_empty(self):
        with pytest.raises(ConfigurationError):
            FaultScenario(events=(), name="")


class TestScenarioBasics:
    def test_empty_scenario_is_falsy(self):
        assert not FaultScenario()
        assert len(FaultScenario()) == 0
        one = FaultScenario(events=(LinkFail(link="1-3", at=0.0),))
        assert one and len(one) == 1

    def test_scenario_is_picklable(self):
        scenario = FaultScenario(
            events=(
                LinkDegrade(link="gcd1-gcd3:single", factor=0.5, at=0.0),
                PageMigrationStorm(numa=0, at=0.0, rate=1e9),
            ),
            name="pickled",
        )
        clone = pickle.loads(pickle.dumps(scenario))
        assert clone == scenario
        assert clone.fingerprint() == scenario.fingerprint()

    def test_describe_lists_events_in_time_order(self):
        scenario = FaultScenario(
            events=(
                LinkFail(link="1-3", at=0.002),
                SdmaStall(engine="gcd0", at=0.001, duration=0.001),
            ),
            name="ordered",
        )
        text = scenario.describe()
        assert "'ordered'" in text
        assert text.index("sdma_stall") < text.index("link_fail")


class TestJsonRoundTrip:
    def _scenario(self):
        return FaultScenario(
            events=(
                LinkDegrade(link="gcd1-gcd3:single", factor=0.5, at=0.0),
                LinkFail(link="gcd0-gcd1:quad", at=0.0005, until=0.002),
                SdmaStall(engine="gcd0:out", at=0.0, duration=0.001),
                PageMigrationStorm(numa=0, at=0.0, rate=2.0e10),
            ),
            name="chaos",
        )

    def test_to_from_json_round_trips(self):
        scenario = self._scenario()
        assert FaultScenario.from_json(scenario.to_json()) == scenario

    def test_infinite_storm_duration_encodes_as_string(self):
        scenario = FaultScenario(
            events=(PageMigrationStorm(numa=1, at=0.0, rate=1e9),)
        )
        payload = scenario.to_json()
        assert payload["events"][0]["duration"] == "inf"
        clone = FaultScenario.from_json(payload)
        assert clone.events[0].duration == math.inf

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown fault event kind"):
            FaultScenario.from_json(
                {"events": [{"kind": "meteor_strike", "at": 0.0}]}
            )

    def test_unknown_fields_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown fields"):
            FaultScenario.from_json(
                {
                    "events": [
                        {
                            "kind": "link_fail",
                            "link": "1-3",
                            "at": 0.0,
                            "severity": "high",
                        }
                    ]
                }
            )

    def test_missing_required_field_rejected(self):
        with pytest.raises(ConfigurationError, match="bad link_fail event"):
            FaultScenario.from_json({"events": [{"kind": "link_fail"}]})

    def test_dump_load_round_trips(self, tmp_path):
        scenario = self._scenario()
        path = tmp_path / "chaos.json"
        scenario.dump(path)
        assert FaultScenario.load(path) == scenario

    def test_load_uses_file_stem_when_name_absent(self, tmp_path):
        path = tmp_path / "degrade_all.json"
        path.write_text(
            '{"events": [{"kind": "link_fail", "link": "1-3", "at": 0.0}]}'
        )
        assert FaultScenario.load(path).name == "degrade_all"

    def test_load_rejects_bad_json_and_missing_file(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(ConfigurationError, match="not valid JSON"):
            FaultScenario.load(bad)
        with pytest.raises(ConfigurationError, match="cannot read"):
            FaultScenario.load(tmp_path / "absent.json")


class TestFingerprint:
    def test_fingerprint_is_stable(self):
        scenario = FaultScenario(
            events=(LinkDegrade(link="1-3", factor=0.5, at=0.0),)
        )
        assert scenario.fingerprint() == scenario.fingerprint()

    def test_name_excluded_from_fingerprint(self):
        events = (LinkDegrade(link="1-3", factor=0.5, at=0.0),)
        a = FaultScenario(events=events, name="alpha")
        b = FaultScenario(events=events, name="beta")
        assert a.fingerprint() == b.fingerprint()

    def test_events_included_in_fingerprint(self):
        a = FaultScenario(events=(LinkDegrade(link="1-3", factor=0.5, at=0.0),))
        b = FaultScenario(events=(LinkDegrade(link="1-3", factor=0.6, at=0.0),))
        assert a.fingerprint() != b.fingerprint()

    def test_event_order_included_in_fingerprint(self):
        """Same-time events fire in listing order, so order is behaviour."""
        x = LinkFail(link="1-3", at=0.0)
        y = SdmaStall(engine="gcd0", at=0.0, duration=0.001)
        assert (
            FaultScenario(events=(x, y)).fingerprint()
            != FaultScenario(events=(y, x)).fingerprint()
        )

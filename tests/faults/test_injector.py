"""FaultInjector: target resolution, event application, and heals."""

import pytest

from repro.errors import ConfigurationError, LinkDownError, SimulationError
from repro.faults import (
    FaultScenario,
    LinkDegrade,
    LinkFail,
    PageMigrationStorm,
    SdmaStall,
)
from repro.faults.injector import FaultInjector, resolve_link
from repro.hardware.node import HardwareNode
from repro.hardware.xgmi import both_channels

DEAD_LINK = "gcd1-gcd3:single"


def scenario(*events, name="test"):
    return FaultScenario(events=tuple(events), name=name)


class TestLinkResolution:
    def test_all_spec_forms_resolve_to_the_same_link(self, topology):
        exact = resolve_link(topology, DEAD_LINK)
        assert resolve_link(topology, "gcd1-gcd3") is exact
        assert resolve_link(topology, "1-3") is exact

    def test_cpu_links_resolve_by_endpoint_pair(self, topology):
        link = resolve_link(topology, "gcd0-numa0")
        assert link.name == "gcd0-numa0:cpu"

    def test_unknown_link_lists_known_names(self, topology):
        with pytest.raises(ConfigurationError, match="known links"):
            resolve_link(topology, "gcd0-gcd3")


class TestConstructionValidation:
    def test_unknown_link_fails_at_node_construction(self):
        with pytest.raises(ConfigurationError, match="unknown link"):
            HardwareNode(
                faults=scenario(LinkFail(link="gcd9-gcd10", at=0.0))
            )

    def test_storm_rate_must_stay_below_dram_bandwidth(self):
        with pytest.raises(ConfigurationError, match="DRAM bandwidth"):
            HardwareNode(
                faults=scenario(
                    PageMigrationStorm(numa=0, at=0.0, rate=1e15)
                )
            )

    def test_bad_sdma_direction_rejected(self):
        with pytest.raises(ConfigurationError, match="direction"):
            HardwareNode(
                faults=scenario(
                    SdmaStall(engine="gcd0:sideways", at=0.0, duration=1.0)
                )
            )

    def test_double_arm_rejected(self):
        node = HardwareNode()
        injector = FaultInjector(
            node, scenario(LinkFail(link=DEAD_LINK, at=0.0))
        )
        injector.arm()
        with pytest.raises(SimulationError, match="already armed"):
            injector.arm()

    def test_past_events_rejected_at_arm_time(self):
        node = HardwareNode()

        def advance():
            yield node.engine.timeout(1.0)

        node.engine.run_process(advance())
        injector = FaultInjector(
            node, scenario(LinkFail(link=DEAD_LINK, at=0.5))
        )
        with pytest.raises(ConfigurationError, match="in the past"):
            injector.arm()


class TestLinkDegrade:
    def test_degrade_scales_both_directions(self):
        node = HardwareNode(
            faults=scenario(LinkDegrade(link=DEAD_LINK, factor=0.5, at=0.0))
        )
        node.engine.run()
        link = resolve_link(node.topology, DEAD_LINK)
        for channel in both_channels(link):
            assert node.network.channel(channel).capacity == pytest.approx(
                0.5 * link.capacity_per_direction
            )

    def test_degrades_do_not_compound(self):
        """factor is relative to healthy capacity, not the current one."""
        node = HardwareNode(
            faults=scenario(
                LinkDegrade(link=DEAD_LINK, factor=0.5, at=0.0),
                LinkDegrade(link=DEAD_LINK, factor=0.8, at=1.0),
            )
        )
        node.engine.run()
        link = resolve_link(node.topology, DEAD_LINK)
        for channel in both_channels(link):
            assert node.network.channel(channel).capacity == pytest.approx(
                0.8 * link.capacity_per_direction
            )

    def test_factor_one_restores_and_clears_alias(self):
        node = HardwareNode(
            faults=scenario(
                LinkDegrade(link=DEAD_LINK, factor=0.5, at=0.0),
                LinkDegrade(link=DEAD_LINK, factor=1.0, at=1.0),
            )
        )
        node.engine.run()
        link = resolve_link(node.topology, DEAD_LINK)
        for channel in both_channels(link):
            assert node.network.channel(channel).capacity == pytest.approx(
                link.capacity_per_direction
            )
            assert channel not in node.network._blame_names


class TestLinkFail:
    def test_inflight_flow_fails_at_event_time_then_link_heals(self):
        node = HardwareNode(
            faults=scenario(LinkFail(link=DEAD_LINK, at=0.4, until=0.8))
        )
        link = resolve_link(node.topology, DEAD_LINK)
        caught = []

        def victim():
            # 50 GB over a ~50 GB/s single link: still in flight at t=0.4.
            flow = node.start_flow(
                node.gcd_to_gcd_channels(1, 3),
                link.capacity_per_direction,
                label="victim",
            )
            try:
                yield flow.done
            except LinkDownError as exc:
                caught.append((node.now, exc))

        node.engine.process(victim())
        node.engine.run()
        assert len(caught) == 1
        at, exc = caught[0]
        assert at == pytest.approx(0.4)
        assert "victim" in str(exc)
        # Heal timer restored capacity and the failed-link registry.
        assert not node.failed_links()
        for channel in both_channels(link):
            assert node.network.channel(channel).capacity == pytest.approx(
                link.capacity_per_direction
            )

    def test_routes_detour_during_outage_and_recover_after(self):
        node = HardwareNode(
            faults=scenario(LinkFail(link=DEAD_LINK, at=0.0, until=1.0))
        )
        link = resolve_link(node.topology, DEAD_LINK)
        dead = set(both_channels(link))
        healthy_channels = tuple(HardwareNode().gcd_to_gcd_channels(1, 3))
        seen = {}

        def sampler():
            yield node.engine.timeout(0.5)
            seen["during"] = (
                tuple(node.gcd_to_gcd_channels(1, 3)),
                node.failed_links(),
            )
            yield node.engine.timeout(1.0)
            seen["after"] = (
                tuple(node.gcd_to_gcd_channels(1, 3)),
                node.failed_links(),
            )

        node.engine.process(sampler())
        node.engine.run()
        during_channels, during_failed = seen["during"]
        assert DEAD_LINK in during_failed
        assert dead.isdisjoint(during_channels)
        after_channels, after_failed = seen["after"]
        assert not after_failed
        assert after_channels == healthy_channels

    def test_new_transfer_on_dead_channel_raises_up_front(self):
        node = HardwareNode(
            faults=scenario(LinkFail(link=DEAD_LINK, at=0.0))
        )
        link = resolve_link(node.topology, DEAD_LINK)
        node.engine.run()
        with pytest.raises(LinkDownError, match="down"):
            node.start_flow(both_channels(link), 1e9)


class TestSdmaStall:
    def test_stall_applies_for_duration_then_clears(self):
        node = HardwareNode(
            faults=scenario(
                SdmaStall(engine="gcd0:out", at=0.0, duration=0.5)
            )
        )
        sampled = []

        def sampler():
            yield node.engine.timeout(0.25)
            sdma = node.gcd(0).sdma
            sampled.append(
                (
                    sdma.is_stalled(outbound=True),
                    sdma.is_stalled(outbound=False),
                )
            )

        node.engine.process(sampler())
        node.engine.run()
        assert sampled == [(True, False)]
        assert not node.gcd(0).sdma.is_stalled(outbound=True)

    def test_bare_gcd_spec_stalls_both_directions(self):
        node = HardwareNode(
            faults=scenario(SdmaStall(engine="gcd2", at=0.0, duration=0.5))
        )
        sampled = []

        def sampler():
            yield node.engine.timeout(0.25)
            sdma = node.gcd(2).sdma
            sampled.append(
                (
                    sdma.is_stalled(outbound=True),
                    sdma.is_stalled(outbound=False),
                )
            )

        node.engine.process(sampler())
        node.engine.run()
        assert sampled == [(True, True)]


class TestPageMigrationStorm:
    def test_storm_steals_dram_bandwidth_then_restores(self):
        rate = 1e10
        node = HardwareNode(
            faults=scenario(
                PageMigrationStorm(numa=0, at=0.0, rate=rate, duration=0.5)
            )
        )
        channel = node.cpu.dram_channel(0)
        healthy = node.network.channel(channel).capacity
        sampled = []

        def sampler():
            yield node.engine.timeout(0.25)
            sampled.append(node.network.channel(channel).capacity)

        node.engine.process(sampler())
        node.engine.run()
        assert sampled == [pytest.approx(healthy - rate)]
        assert node.network.channel(channel).capacity == pytest.approx(healthy)

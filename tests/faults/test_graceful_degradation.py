"""End-to-end graceful degradation: retry in MPI, ring rebuild in RCCL,
SDMA engine fallback in HIP.

These tests drive the runtime layers against live fault scenarios and
assert the *recovery* behaviour the fault subsystem promises: work
completes (slower) under a retry policy, fails fast without one, and
the modeled penalties match the calibrated constants.
"""

import pytest

from repro.errors import MpiError, RcclError
from repro.faults import FaultScenario, LinkFail, RetryPolicy, SdmaStall
from repro.hardware.node import HardwareNode
from repro.hardware.sdma import SDMA_FALLBACK_EFFICIENCY
from repro.mpi.comm import MpiWorld
from repro.rccl.collectives import RCCL_COLLECTIVES
from repro.rccl.communicator import RcclCommunicator
from repro.session import Session
from repro.units import MiB

DEAD_LINK = "gcd1-gcd3:single"


def _p2p_main(nbytes):
    def main(ctx):
        buf = ctx.hip.malloc(nbytes)
        t0 = ctx.engine.now
        if ctx.rank == 0:
            yield from ctx.send(buf, 1)
        else:
            yield from ctx.recv(buf, 0)
        return ctx.engine.now - t0

    return main


class TestMpiRetry:
    NBYTES = 256 * MiB

    def _healthy_time(self):
        world = MpiWorld(HardwareNode(), rank_gcds=[1, 3])
        return max(world.run(_p2p_main(self.NBYTES)))

    def test_transfer_survives_midflight_outage_with_retry(self):
        healthy = self._healthy_time()
        scenario = FaultScenario(
            events=(LinkFail(link=DEAD_LINK, at=healthy / 2),)
        )
        node = HardwareNode(faults=scenario)
        world = MpiWorld(
            node, rank_gcds=[1, 3], retry=RetryPolicy(max_attempts=3)
        )
        faulted = max(world.run(_p2p_main(self.NBYTES)))
        # The whole message restarts (around the dead link), so the
        # faulted run costs strictly more than a healthy one.
        assert faulted > healthy

    def test_without_retry_the_failure_surfaces_as_mpi_error(self):
        healthy = self._healthy_time()
        scenario = FaultScenario(
            events=(LinkFail(link=DEAD_LINK, at=healthy / 2),)
        )
        node = HardwareNode(faults=scenario)
        world = MpiWorld(node, rank_gcds=[1, 3])  # NO_RETRY default
        with pytest.raises(MpiError, match="after 1 attempt"):
            world.run(_p2p_main(self.NBYTES))


class TestRcclRingRebuild:
    NBYTES = 8 * MiB

    def _allreduce(self, node, comm):
        def run():
            t0 = node.now
            yield from RCCL_COLLECTIVES["allreduce"](comm, self.NBYTES)
            return node.now - t0

        return node.engine.run_process(run())

    def _healthy(self):
        node = HardwareNode()
        comm = RcclCommunicator(node, list(range(8)))
        return self._allreduce(node, comm), comm.ring

    def test_midflight_failure_rebuilds_ring_around_dead_link(self):
        healthy_time, healthy_ring = self._healthy()
        # The healthy greedy ring must actually use the link we kill,
        # or this test exercises nothing.
        assert any(
            DEAD_LINK in (link.name for link in segment.route.links)
            for segment in healthy_ring.segments
        )
        scenario = FaultScenario(
            events=(LinkFail(link=DEAD_LINK, at=healthy_time / 3),)
        )
        node = HardwareNode(faults=scenario)
        comm = RcclCommunicator(
            node, list(range(8)), retry=RetryPolicy(max_attempts=4)
        )
        faulted_time = self._allreduce(node, comm)
        assert comm.ring_rebuilds >= 1
        for segment in comm.ring.segments:
            assert DEAD_LINK not in (
                link.name for link in segment.route.links
            )
        assert faulted_time > healthy_time

    def test_midflight_failure_without_retry_raises(self):
        healthy_time, _ = self._healthy()
        scenario = FaultScenario(
            events=(LinkFail(link=DEAD_LINK, at=healthy_time / 3),)
        )
        node = HardwareNode(faults=scenario)
        comm = RcclCommunicator(node, list(range(8)))  # NO_RETRY default
        with pytest.raises(RcclError, match="after 1 attempt"):
            self._allreduce(node, comm)

    def test_failure_before_start_detours_without_rebuild(self):
        """A link dead from t=0 never raises into the collective: every
        segment routes around it from the start."""
        scenario = FaultScenario(events=(LinkFail(link=DEAD_LINK, at=0.0),))
        node = HardwareNode(faults=scenario)
        node.engine.run()  # apply the t=0 failure before building the ring
        comm = RcclCommunicator(node, list(range(8)))
        self._allreduce(node, comm)
        assert comm.ring_rebuilds == 0
        for segment in comm.ring.segments:
            assert DEAD_LINK not in (
                link.name for link in segment.route.links
            )


class TestSdmaFallback:
    NBYTES = 256 * MiB

    def _h2d_time(self, faults=None):
        session = Session(faults=faults)
        hip = session.hip

        def run():
            host = hip.host_malloc(self.NBYTES)
            dev = hip.malloc(self.NBYTES, device=0)
            t0 = hip.now
            yield from hip.memcpy(dev, host, self.NBYTES)
            return hip.now - t0

        return session.run(run())

    def test_stalled_engine_falls_back_at_modeled_penalty(self):
        healthy = self._h2d_time()
        stalled = self._h2d_time(
            FaultScenario(
                events=(SdmaStall(engine="gcd0:in", at=0.0, duration=1.0),)
            )
        )
        # Fixed launch latency dilutes the bandwidth penalty slightly,
        # so the ratio sits just under 1/efficiency.
        assert stalled / healthy == pytest.approx(
            1.0 / SDMA_FALLBACK_EFFICIENCY, rel=5e-3
        )
        assert stalled / healthy < 1.0 / SDMA_FALLBACK_EFFICIENCY

    def test_both_engines_stalled_compounds_the_penalty(self):
        healthy = self._h2d_time()
        stalled = self._h2d_time(
            FaultScenario(
                events=(SdmaStall(engine="gcd0", at=0.0, duration=1.0),)
            )
        )
        assert stalled / healthy == pytest.approx(
            1.0 / SDMA_FALLBACK_EFFICIENCY**2, rel=5e-3
        )

"""Functional payload mode: numerical verification of data movement.

Buffers are timing-only by default; ``Buffer.ensure_data()`` opts a
buffer into carrying real bytes, and every transfer path then moves
actual contents.  These tests verify copies and collectives *by
value* — the strongest correctness check the simulator offers.
"""

import numpy as np
import pytest

from repro.hip.runtime import HipRuntime
from repro.mpi.collectives import allreduce, broadcast, reduce
from repro.mpi.comm import MpiWorld
from repro.units import KiB


class TestHipPayloads:
    def test_default_buffers_carry_no_data(self, hip):
        buffer = hip.malloc(4 * KiB)
        assert not buffer.has_data

    def test_memcpy_moves_content(self, hip):
        host = hip.host_malloc(4 * KiB)
        dev = hip.malloc(4 * KiB)
        host.ensure_data()[:] = np.arange(4 * KiB, dtype=np.uint8)

        def run():
            yield from hip.memcpy(dev, host)

        hip.run(run())
        assert dev.has_data
        np.testing.assert_array_equal(dev.data, host.data)

    def test_memcpy_roundtrip(self, hip):
        src_host = hip.host_malloc(1 * KiB)
        dev = hip.malloc(1 * KiB)
        dst_host = hip.host_malloc(1 * KiB)
        src_host.ensure_data()[:] = 0xAB

        def run():
            yield from hip.memcpy(dev, src_host)
            yield from hip.memcpy(dst_host, dev)

        hip.run(run())
        assert (dst_host.data == 0xAB).all()

    def test_partial_copy_leaves_tail(self, hip):
        a = hip.host_malloc(1 * KiB)
        b = hip.host_malloc(1 * KiB)
        a.ensure_data()[:] = 7
        b.ensure_data()[:] = 9

        def run():
            yield from hip.memcpy(b, a, 512)

        hip.run(run())
        assert (b.data[:512] == 7).all()
        assert (b.data[512:] == 9).all()

    def test_peer_copy_moves_content(self, hip):
        src = hip.malloc(2 * KiB, device=0)
        dst = hip.malloc(2 * KiB, device=7)
        src.ensure_data()[:] = 0x5C

        def run():
            yield from hip.memcpy_peer(dst, 7, src, 0)

        hip.run(run())
        assert (dst.data == 0x5C).all()

    def test_stream_copy_kernel_moves_content(self, hip):
        hip.enable_all_peer_access()
        src = hip.malloc(1 * KiB, device=1)
        dst = hip.malloc(1 * KiB, device=0)
        src.ensure_data()[:] = 3

        def run():
            yield hip.launch_stream_copy(dst, src, device=0)

        hip.run(run())
        assert (dst.data == 3).all()

    def test_init_and_read_sum(self, hip):
        buffer = hip.malloc(1 * KiB)
        buffer.ensure_data()

        def run():
            yield hip.launch_init_array(buffer)
            done = hip.launch_read_sum(buffer)
            yield done
            return done.value

        assert hip.run(run()) == 1 * KiB  # all ones

    def test_triad_sums_bytes(self, hip):
        a = hip.malloc(1 * KiB)
        b = hip.malloc(1 * KiB)
        c = hip.malloc(1 * KiB)
        b.ensure_data()[:] = 2
        c.ensure_data()[:] = 5

        def run():
            yield hip.launch_stream_triad(a, b, c)

        hip.run(run())
        assert (a.data == 7).all()

    def test_untouched_transfers_stay_data_free(self, hip):
        """No materialization when neither side opted in."""
        host = hip.host_malloc(4 * KiB)
        dev = hip.malloc(4 * KiB)

        def run():
            yield from hip.memcpy(dev, host)

        hip.run(run())
        assert not host.has_data and not dev.has_data


class TestMpiPayloads:
    def test_message_content(self):
        world = MpiWorld(rank_gcds=[0, 1])

        def main(ctx):
            buf = ctx.hip.malloc(1 * KiB)
            if ctx.rank == 0:
                buf.ensure_data()[:] = 42
                yield from ctx.send(buf, 1)
                return None
            buf.ensure_data()
            yield from ctx.recv(buf, 0)
            return int(buf.data[0]), int(buf.data[-1])

        assert world.run(main)[1] == (42, 42)

    @pytest.mark.parametrize("root", [0, 3])
    def test_broadcast_delivers_root_content(self, root):
        world = MpiWorld(rank_gcds=list(range(8)))

        def main(ctx):
            buf = ctx.hip.malloc(1 * KiB)
            buf.ensure_data()[:] = 100 + ctx.rank
            yield from broadcast(ctx, buf, 1 * KiB, root=root)
            return int(buf.data[0])

        values = world.run(main)
        assert values == [100 + root] * 8

    @pytest.mark.parametrize("ranks", [2, 4, 8])
    def test_allreduce_sums_contributions(self, ranks):
        world = MpiWorld(rank_gcds=list(range(ranks)))

        def main(ctx):
            send = ctx.hip.malloc(1 * KiB)
            recv = ctx.hip.malloc(1 * KiB)
            send.ensure_data()[:] = ctx.rank + 1
            recv.ensure_data()
            yield from allreduce(ctx, send, recv, 1 * KiB)
            return int(recv.data[0])

        expected = sum(r + 1 for r in range(ranks))
        assert world.run(main) == [expected] * ranks

    def test_allreduce_non_power_of_two(self):
        world = MpiWorld(rank_gcds=list(range(3)))

        def main(ctx):
            send = ctx.hip.malloc(256)
            recv = ctx.hip.malloc(256)
            send.ensure_data()[:] = 2 ** ctx.rank
            recv.ensure_data()
            yield from allreduce(ctx, send, recv, 256)
            return int(recv.data[17])

        assert world.run(main) == [7, 7, 7]  # 1 + 2 + 4

    @pytest.mark.parametrize("root", [0, 5])
    def test_reduce_sums_at_root(self, root):
        world = MpiWorld(rank_gcds=list(range(8)))

        def main(ctx):
            send = ctx.hip.malloc(512)
            recv = ctx.hip.malloc(512)
            send.ensure_data()[:] = 1
            recv.ensure_data()
            yield from reduce(ctx, send, recv, 512, root=root)
            return int(recv.data[0])

        values = world.run(main)
        assert values[root] == 8  # every rank contributed a 1

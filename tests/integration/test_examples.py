"""Smoke tests: every example script runs and prints its key lines.

Examples are part of the public deliverable; these tests keep them
from rotting as the library evolves.  Each runs in-process via runpy
with argv pinned to small inputs.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


def run_example(name, argv=(), capsys=None):
    """Execute an example as __main__ and return its stdout."""
    old_argv = sys.argv
    sys.argv = [name, *argv]
    try:
        runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    finally:
        sys.argv = old_argv
    assert capsys is not None
    return capsys.readouterr().out


class TestExamples:
    def test_quickstart(self, capsys):
        out = run_example("quickstart.py", capsys=capsys)
        assert "28.3 GB/s" in out
        assert "RCCL wins" in out and "MPI wins" in out

    def test_placement_advisor(self, capsys):
        out = run_example("placement_advisor.py", ["64", "1"], capsys=capsys)
        assert "recommended strategy" in out
        assert "spread" in out

    def test_collective_planner(self, capsys):
        out = run_example("collective_planner.py", ["allgather"], capsys=capsys)
        assert "Plan:" in out
        assert "avoid 7-GCD communicators" in out

    def test_topology_explorer(self, capsys):
        out = run_example("topology_explorer.py", ["1"], capsys=capsys)
        assert "detour" in out
        assert "dense hive" in out

    def test_trace_timeline(self, capsys):
        out = run_example("trace_timeline.py", capsys=capsys)
        assert "NUMA0 Infinity Fabric port utilization" in out
        assert "90.0 GB/s" in out

    def test_stencil_halo(self, capsys):
        out = run_example("stencil_halo.py", ["4"], capsys=capsys)
        assert "stride-3 (pathological)" in out
        assert "memcpy" in out

    def test_training_step(self, capsys):
        out = run_example("training_step.py", ["16", "256"], capsys=capsys)
        assert "Best 8-worker configuration" in out
        assert "rccl" in out

    def test_port_benchmark(self, capsys):
        out = run_example("port_benchmark.py", capsys=capsys)
        assert "hipify:" in out
        assert "3-hop routed pair" in out

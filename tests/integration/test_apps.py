"""Tests for the application workload models."""

import pytest

from repro.apps.data_parallel import (
    TrainStepConfig,
    configuration_sweep,
    run_train_step,
)
from repro.apps.stencil import (
    TOPOLOGY_AWARE_ORDER,
    StencilConfig,
    order_comparison,
    run_stencil,
)
from repro.apps.transpose import (
    TransposeConfig,
    run_transpose,
    scaling_study,
)
from repro.errors import BenchmarkError
from repro.units import MiB


class TestStencil:
    def test_runs_and_accounts_phases(self):
        config = StencilConfig(iterations=2, slab_bytes=64 * MiB, halo_bytes=4 * MiB)
        result = run_stencil(config)
        assert len(result.iteration_seconds) == 2
        assert result.compute_seconds > 0
        assert result.exchange_seconds > 0
        assert result.total_seconds == pytest.approx(
            result.compute_seconds + result.exchange_seconds, rel=0.01
        )

    def test_validation(self):
        with pytest.raises(BenchmarkError):
            StencilConfig(gcd_order=(0,))
        with pytest.raises(BenchmarkError):
            StencilConfig(gcd_order=(0, 0))
        with pytest.raises(BenchmarkError):
            StencilConfig(iterations=0)

    def test_ring_friendly_orders_tie(self):
        """Emergent finding: naive == topology-aware on this mesh."""
        results = order_comparison(
            {
                "naive": tuple(range(8)),
                "aware": TOPOLOGY_AWARE_ORDER,
            },
            iterations=1,
            slab_bytes=64 * MiB,
            halo_bytes=4 * MiB,
        )
        assert results["naive"].exchange_seconds == pytest.approx(
            results["aware"].exchange_seconds, rel=0.02
        )

    def test_pathological_order_pays_contention(self):
        results = order_comparison(
            {
                "aware": TOPOLOGY_AWARE_ORDER,
                "stride3": (0, 3, 6, 1, 4, 7, 2, 5),
            },
            iterations=1,
            slab_bytes=64 * MiB,
            halo_bytes=4 * MiB,
        )
        assert (
            results["stride3"].exchange_seconds
            > 1.4 * results["aware"].exchange_seconds
        )

    def test_memcpy_exchange_is_sdma_capped(self):
        kernel = run_stencil(
            StencilConfig(
                iterations=1, slab_bytes=64 * MiB, halo_bytes=16 * MiB
            )
        )
        memcpy = run_stencil(
            StencilConfig(
                iterations=1,
                slab_bytes=64 * MiB,
                halo_bytes=16 * MiB,
                exchange="memcpy",
            )
        )
        # SDMA caps at 37.75 on single links vs 44 for kernel reads.
        assert memcpy.exchange_seconds > kernel.exchange_seconds


class TestTrainStep:
    def test_breakdown_sums(self):
        result = run_train_step(TrainStepConfig(num_workers=4))
        breakdown = result.breakdown()
        assert set(breakdown) == {"load", "compute", "allreduce"}
        assert result.total_seconds == pytest.approx(sum(breakdown.values()))

    def test_single_worker_skips_allreduce(self):
        result = run_train_step(TrainStepConfig(num_workers=1))
        assert result.allreduce_seconds == 0.0

    def test_spread_loads_faster_than_same_gpu(self):
        spread = run_train_step(
            TrainStepConfig(num_workers=4, placement_strategy="spread")
        )
        packed = run_train_step(
            TrainStepConfig(num_workers=4, placement_strategy="same_gpu")
        )
        assert spread.load_seconds < packed.load_seconds

    def test_rccl_allreduce_beats_mpi(self):
        rccl = run_train_step(TrainStepConfig(num_workers=8, library="rccl"))
        mpi = run_train_step(TrainStepConfig(num_workers=8, library="mpi"))
        assert rccl.allreduce_seconds < mpi.allreduce_seconds

    def test_xnack_loader_is_much_slower(self):
        pinned = run_train_step(
            TrainStepConfig(num_workers=2, loader="pinned_memcpy")
        )
        managed = run_train_step(
            TrainStepConfig(num_workers=2, loader="managed_xnack")
        )
        # 28.3 GB/s vs 2.8 GB/s: about an order of magnitude.
        assert managed.load_seconds > 5 * pinned.load_seconds

    def test_validation(self):
        with pytest.raises(BenchmarkError):
            TrainStepConfig(num_workers=0)
        with pytest.raises(BenchmarkError):
            TrainStepConfig(batch_bytes=0)

    def test_sweep_covers_grid(self):
        results = configuration_sweep(
            num_workers=(2,), batch_bytes=16 * MiB
        )
        assert len(results) == 4  # 2 placements × 2 libraries


class TestTranspose:
    def test_runs(self):
        result = run_transpose(
            TransposeConfig(gcds=(0, 1, 2, 3), matrix_bytes_per_gcd=64 * MiB)
        )
        assert result.alltoall_seconds > 0
        assert result.local_seconds > 0
        assert result.aggregate_bandwidth > 0

    def test_aggregate_bandwidth_exceeds_single_link(self):
        """All-to-all drives many links at once: aggregate far above
        one link's 50 GB/s."""
        result = run_transpose(TransposeConfig(matrix_bytes_per_gcd=128 * MiB))
        assert result.aggregate_bandwidth > 100e9

    def test_scaling_study(self):
        results = scaling_study((2, 4), matrix_bytes_per_gcd=64 * MiB)
        assert len(results) == 2
        # More GCDs exchange more total data over more links.
        assert results[1].aggregate_bandwidth > results[0].aggregate_bandwidth

    def test_validation(self):
        with pytest.raises(BenchmarkError):
            TransposeConfig(gcds=(0,))
        with pytest.raises(BenchmarkError):
            TransposeConfig(gcds=(0, 0))

"""End-to-end determinism: identical runs produce identical artifacts.

Bit-exact reproducibility is the repository's headline property — it
is what makes the EXPERIMENTS.md numbers citable.  These tests rerun
whole artifact drivers and compare every measurement exactly.
"""

import pytest

from repro import figures
from repro.units import KiB, MiB


def snapshot(result):
    """Hashable view of every measurement in a result."""
    return [
        (m.x, m.value, m.unit, tuple(sorted(m.meta.items())))
        for m in result.measurements
    ]


class TestArtifactDeterminism:
    def test_fig06_bit_exact(self):
        first = figures.run("fig06")
        second = figures.run("fig06")
        assert snapshot(first) == snapshot(second)

    def test_fig03_bit_exact_reduced(self):
        sizes = [64 * KiB, 4 * MiB, 64 * MiB]
        first = figures.run("fig03", sizes=sizes)
        second = figures.run("fig03", sizes=sizes)
        assert snapshot(first) == snapshot(second)

    def test_fig12_bit_exact_reduced(self):
        kwargs = dict(collectives=["allreduce"], thread_counts=(2, 7, 8))
        assert snapshot(figures.run("fig12", **kwargs)) == snapshot(
            figures.run("fig12", **kwargs)
        )

    def test_reports_identical_text(self):
        _, first = figures.run_and_report("fig09")
        _, second = figures.run_and_report("fig09")
        assert first == second

    def test_validation_battery_deterministic(self):
        from repro.core.validation import validate_node

        first = validate_node(probe_bytes=64 * MiB)
        second = validate_node(probe_bytes=64 * MiB)
        assert [
            (r.check_id, r.observed) for r in first.results
        ] == [(r.check_id, r.observed) for r in second.results]

"""File-defined topologies reproduce the paper artifacts bit-identically.

The acceptance test of the topology-as-data schema: running every
figure against the committed ``benchmarks/topologies/mi250x_node.json``
must produce the same canonical artifact — and the same span-blame
ranking — as the built-in code preset, because the file round-trips to
a fingerprint-identical topology.  The fingerprint equality also means
both runs share one cache identity, pinned here by a hits-only replay.
"""

import pathlib

import pytest

from repro import figures
from repro.faults import FaultScenario, LinkDegrade
from repro.obs import blame_ranking
from repro.runner import SimPoint, SweepRunner
from repro.topology import frontier_node, load_topology
from repro.units import MiB

TOPOLOGY_DIR = (
    pathlib.Path(__file__).resolve().parents[2] / "benchmarks" / "topologies"
)
NODE_FILE = TOPOLOGY_DIR / "mi250x_node.json"

ALL_IDS = figures.all_ids()


@pytest.fixture(scope="module")
def file_topology():
    return load_topology(NODE_FILE)


class TestFileTopologyGoldens:
    def test_file_is_fingerprint_identical_to_preset(self, file_topology):
        assert file_topology.fingerprint() == frontier_node().fingerprint()

    @pytest.mark.parametrize("experiment_id", ALL_IDS)
    def test_artifact_is_bit_identical(self, experiment_id, file_topology):
        preset = SweepRunner(use_cache=False).run_experiment(experiment_id)
        from_file = SweepRunner(
            use_cache=False, topology=file_topology
        ).run_experiment(experiment_id)
        assert from_file.canonical() == preset.canonical()

    def test_span_blame_is_topology_source_invariant(self, file_topology):
        def spans_and_blame(topology):
            runner = SweepRunner(
                use_cache=False, capture_spans=True, topology=topology
            )
            runner.run_experiment("fig06")
            return runner.stats.spans, blame_ranking(runner.stats.spans)

        preset_spans, preset_blame = spans_and_blame(None)
        file_spans, file_blame = spans_and_blame(file_topology)
        assert file_blame == preset_blame
        assert file_spans == preset_spans


class TestFileTopologyCacheIdentity:
    def test_file_and_preset_runs_share_cache_entries(
        self, file_topology, tmp_path
    ):
        # A run keyed by the code preset must be replayable from cache
        # by a run keyed by the fingerprint-equal file topology: the
        # cache key folds the topology in via its fingerprint, not its
        # Python identity or provenance.
        warm = SweepRunner(cache_dir=tmp_path, topology=frontier_node())
        warm.run_experiment("fig04")
        assert warm.stats.cache_misses > 0

        replay = SweepRunner(cache_dir=tmp_path, topology=file_topology)
        replay.run_experiment("fig04")
        assert replay.stats.cache_misses == 0
        assert replay.stats.cache_hits > 0


class TestFaultsAgainstFileTopology:
    def test_link_degrade_resolves_against_file_topology(self, file_topology):
        # Fault scenarios name links symbolically; they must resolve
        # against whatever topology the run was given — including one
        # loaded from a file, whose link names match the preset's.
        scenario = FaultScenario(
            events=(LinkDegrade(link="gcd1-gcd3:single", factor=0.5, at=0.0),),
            name="file-topology-degrade",
        )
        points = [
            SimPoint.make(
                "fig06",
                f"bw/1->3/{size}",
                "repro.bench_suites.p2p_matrix:measure_pair_bandwidth",
                src_gcd=1,
                dst_gcd=3,
                size=size,
            )
            for size in (16 * MiB, 32 * MiB)
        ]
        healthy = SweepRunner(use_cache=False, topology=file_topology)
        degraded = SweepRunner(
            use_cache=False, topology=file_topology, faults=scenario
        )
        baseline = healthy.run_points(points)
        faulted = degraded.run_points(points)
        # With the 1-3 single link halved, the link itself becomes the
        # binding constraint; measured bandwidth must drop.
        assert all(f < b for f, b in zip(faulted, baseline))

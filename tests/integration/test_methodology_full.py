"""Full three-step methodology run: the artifact's headline command.

This is the most expensive test in the suite (~10 s): it executes
every figure driver at full fidelity through the methodology
orchestrator, exactly what ``python -m repro methodology`` does, and
cross-checks the assembled report.
"""

import pytest

from repro.core.methodology import Methodology


@pytest.fixture(scope="module")
def full_report():
    return Methodology().run()


class TestFullMethodology:
    def test_every_artifact_ran(self, full_report):
        assert set(full_report.results) == {
            f"fig{i:02d}" for i in range(2, 13)
        }

    def test_text_contains_all_steps(self, full_report):
        text = full_report.text()
        for step in ("cpu_gpu", "gpu_p2p", "collectives"):
            assert f"STEP {step}" in text

    def test_headline_numbers_in_report(self, full_report):
        text = full_report.text()
        # Fig. 2 peaks, Fig. 9 utilization, collective tables.
        assert "28.29" in text or "28.3" in text
        assert "43.5%" in text
        assert "RCCL" in text and "MPI" in text

    def test_results_are_nonempty(self, full_report):
        for artifact_id, result in full_report.results.items():
            assert len(result) > 0, artifact_id

    def test_wall_time_recorded(self, full_report):
        for result in full_report.results.values():
            assert result.wall_seconds >= 0

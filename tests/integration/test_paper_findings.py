"""Integration tests: every quantitative finding of the paper.

Each test quotes the paper statement it verifies and asserts it against
the full simulated stack (benchmark suite → runtime → hardware → DES).
These are the acceptance criteria of DESIGN.md §3.
"""

import pytest

from repro.bench_suites import comm_scope, osu, p2p_matrix, rccl_tests, stream
from repro.config import spread_placement
from repro.core.analysis import cluster_tiers
from repro.core.bounds import collective_latency_bound
from repro.units import GiB, MiB, to_gbps, to_us


class TestSectionIV_CpuGpu:
    def test_pinned_peak_28_3(self):
        """'We achieve a maximum bandwidth of 28.3 GB/s, with explicit
        data transfer from pinned memory.'"""
        rate = comm_scope.measure_h2d("pinned_memcpy", 1 * GiB)
        assert to_gbps(rate) == pytest.approx(28.3, abs=0.2)

    def test_managed_zerocopy_peak_25_5(self):
        """'managed memory with zero-copy access achieves a highest
        bandwidth of 25.5 GB/s.'"""
        rate = comm_scope.measure_h2d("managed_zerocopy", 1 * GiB)
        assert to_gbps(rate) == pytest.approx(25.5, abs=0.2)

    def test_page_migration_2_8(self):
        """'managed memory with page migration only achieved 2.8 GB/s.'"""
        rate = comm_scope.measure_h2d("managed_migration", 512 * MiB)
        assert to_gbps(rate) == pytest.approx(2.8, abs=0.1)

    def test_zerocopy_tracks_pinned_up_to_32mb(self):
        """'zero-copy managed memory approximate the behavior of pinned
        memory, up to 32 MB transfer size, after which pinned memory
        bandwidth is able to reach higher value.'"""
        small, large = 16 * MiB, 512 * MiB
        pinned_small = comm_scope.measure_h2d("pinned_memcpy", small)
        managed_small = comm_scope.measure_h2d("managed_zerocopy", small)
        assert managed_small == pytest.approx(pinned_small, rel=0.12)
        pinned_large = comm_scope.measure_h2d("pinned_memcpy", large)
        managed_large = comm_scope.measure_h2d("managed_zerocopy", large)
        assert pinned_large > managed_large * 1.08

    def test_numa_placement_no_degradation(self):
        """'we were not able to identify any bandwidth degradation when
        performing a copy operation within a non-optimal combination of
        NUMA node/GCD.'"""
        rates = [
            comm_scope.measure_numa_to_gpu(0, numa, 256 * MiB)
            for numa in range(4)
        ]
        assert max(rates) / min(rates) < 1.02

    def test_fig4_same_gpu_does_not_scale(self):
        """'using two GCDs of the same GPU does not provide a bandwidth
        improvement over single GCD.'"""
        one = stream.multi_gpu_cpu_stream([0])
        same = stream.multi_gpu_cpu_stream([0, 1])
        spread = stream.multi_gpu_cpu_stream([0, 2])
        assert same == pytest.approx(one, rel=0.05)
        assert spread == pytest.approx(2 * one, rel=0.05)

    def test_fig5_eight_equals_four(self):
        """'using eight GCDs does not improve the aggregated bandwidth,
        compared to four GCDs.'"""
        four = stream.multi_gpu_cpu_stream(spread_placement(4))
        eight = stream.multi_gpu_cpu_stream(spread_placement(8))
        assert eight == pytest.approx(four, rel=0.05)
        one = stream.multi_gpu_cpu_stream([0])
        assert four == pytest.approx(4 * one, rel=0.05)


class TestSectionV_PeerToPeer:
    def test_fig6b_latency_window(self):
        """'The measured latency varies within 8.7-18.2 us.'"""
        matrix = p2p_matrix.latency_matrix()
        values = [to_us(v) for v in matrix.values()]
        assert min(values) == pytest.approx(8.7, abs=0.05)
        assert max(values) <= 18.2

    def test_fig6b_single_link_pairs_below_10(self):
        """'the GCD pairs 0-2, 1-3, 1-5, 3-7, 4-6, 5-7 exhibit a
        latency below 10 us.'"""
        matrix = p2p_matrix.latency_matrix()
        single_pairs = [(0, 2), (1, 3), (1, 5), (3, 7), (4, 6), (5, 7)]
        for a, b in single_pairs:
            assert to_us(matrix[(a, b)]) < 10
            assert to_us(matrix[(b, a)]) < 10
        # And they are the ONLY sub-10 pairs.
        sub10 = {
            frozenset(pair) for pair, v in matrix.items() if to_us(v) < 10
        }
        assert sub10 == {frozenset(p) for p in single_pairs}

    def test_fig6b_same_gpu_band(self):
        """'latency measured between GCDs located on the same physical
        GPU is between 10.5-10.8 us.'"""
        matrix = p2p_matrix.latency_matrix()
        for a in (0, 2, 4, 6):
            for pair in ((a, a + 1), (a + 1, a)):
                assert 10.5 <= to_us(matrix[pair]) <= 10.8

    def test_fig6b_detour_outliers(self):
        """'four outliers, with latency values within 17.8-18.2 us,
        corresponding to the GCD pairs 1-7 and 5-3.'"""
        matrix = p2p_matrix.latency_matrix()
        outlier_pairs = {(1, 7), (7, 1), (3, 5), (5, 3)}
        for pair, value in matrix.items():
            if pair in outlier_pairs:
                assert 17.8 <= to_us(value) <= 18.2
            else:
                assert to_us(value) < 17.8

    def test_fig6c_two_bandwidth_tiers(self):
        """'We can divide the results into two values of bandwidth:
        50 GB/s and 37-38 GB/s' — not the theoretical three."""
        matrix = p2p_matrix.bandwidth_matrix(size=256 * MiB)
        tiers = cluster_tiers([to_gbps(v) for v in matrix.values()])
        assert len(tiers) == 2
        low, high = sorted(t.center for t in tiers)
        assert 37 <= low <= 38
        assert high == pytest.approx(50, abs=0.5)

    def test_fig6c_same_gpu_pairs_stuck_at_50(self):
        """'bandwidth measured for GCD pairs located on the same GPU
        ... is on the order of 50 GB/s, which is significantly below
        the expected 200 GB/s.'"""
        rate = p2p_matrix.measure_pair_bandwidth(0, 1, size=1 * GiB)
        assert to_gbps(rate) == pytest.approx(50, abs=1)

    def test_fig7_utilization_75_50_25(self):
        """'The bandwidth utilization for single, double, and quad
        Infinity Fabric links is 75%, 50% and 25%, respectively.'"""
        for dst, theoretical, expected in ((2, 50e9, 0.755), (6, 100e9, 0.50), (1, 200e9, 0.25)):
            rate = comm_scope.measure_peer_copy(0, dst, 2 * GiB)
            assert rate / theoretical == pytest.approx(expected, abs=0.01)

    def test_local_stream_1400(self):
        """'we observe a bandwidth of 1400 GB/s - that is, 87% of the
        theoretical 1.6 TB/s memory bandwidth.'"""
        rate = stream.local_stream_copy(0, 1 * GiB)
        assert to_gbps(rate) == pytest.approx(1400, rel=0.01)

    def test_fig9_three_tiers_at_43_44_percent(self):
        """'For all placements, we observe that the achieved ratio of
        theoretical peak is 43-44%.'"""
        for data_gcd, bidir_peak in ((1, 400e9), (6, 200e9), (2, 100e9)):
            rate = stream.remote_stream_copy(0, data_gcd, 2 * GiB)
            assert 0.43 <= rate / bidir_peak <= 0.44

    def test_fig10_sdma_caps_mpi_below_50(self):
        """'the SDMA-enabled MPI transfer only reaches 50 GB/s — below
        50% for a dual Infinity Fabric link, and 25% for a quad link.'"""
        quad = osu.osu_bw(0, 1, sdma_enabled=True)
        dual = osu.osu_bw(0, 6, sdma_enabled=True)
        assert to_gbps(quad) <= 50 and to_gbps(dual) <= 50
        assert quad / 200e9 <= 0.26
        assert dual / 100e9 <= 0.51

    def test_fig10_sdma_off_10_15_below_direct(self):
        """'the SDMA-disabled MPI transfer exhibits a 10-15% lower
        bandwidth than the direct peer-to-peer copy kernel.'"""
        for dst in (1, 2, 6):
            mpi = osu.osu_bw(0, dst, sdma_enabled=False, message_bytes=1 * GiB)
            direct = stream.direct_p2p_read(0, dst, 1 * GiB)
            assert 0.85 <= mpi / direct <= 0.90

    def test_fig10_non_neighbors_match_neighbors(self):
        """'transferring data from GCD0 to a non-neighbor GCD ... does
        not exhibit significant difference in measured bandwidth
        compared to neighbor GCDs.'"""
        neighbor = stream.direct_p2p_read(0, 2, 1 * GiB)  # single link
        for non_neighbor in (3, 4, 5):
            rate = stream.direct_p2p_read(0, non_neighbor, 1 * GiB)
            assert rate == pytest.approx(neighbor, rel=0.05)


class TestSectionVI_Collectives:
    def test_rccl_beats_mpi_except_broadcast(self):
        """'RCCL is more efficient than MPI collectives for all tested
        collectives, except for broadcast.'"""
        for name in ("reduce", "allreduce", "reduce_scatter", "allgather"):
            for partners in (2, 4, 8):
                mpi = osu.osu_collective_latency(name, partners)
                rccl = rccl_tests.rccl_collective_latency(name, partners)
                assert rccl < mpi, f"{name}@{partners}"
        for partners in (3, 4, 8):
            mpi = osu.osu_collective_latency("broadcast", partners)
            rccl = rccl_tests.rccl_collective_latency("broadcast", partners)
            assert mpi < rccl, f"broadcast@{partners}"

    def test_two_thread_all_to_all_near_bound(self):
        """'For two threads, the lowest measured latency for all-to-all
        collectives is close to the lowest bound of 17.4 us.'"""
        bound = to_us(collective_latency_bound("allgather").bound)
        assert bound == pytest.approx(17.4)
        lowest = min(
            to_us(rccl_tests.rccl_collective_latency(name, 2))
            for name in ("allreduce", "reduce_scatter", "allgather")
        )
        assert bound <= lowest <= bound * 1.15

    def test_latency_increases_above_two_threads(self):
        """'When increasing the number of threads above 2, the latency
        increases as expected.'"""
        for name in ("allreduce", "allgather", "reduce_scatter"):
            two = rccl_tests.rccl_collective_latency(name, 2)
            seven = rccl_tests.rccl_collective_latency(name, 7)
            assert seven > two

    def test_seven_to_eight_drop(self):
        """'for Reduce, Broadcast, and AllReduce collectives, the
        latency drops when increasing from 7 to 8 threads.'"""
        for name in ("reduce", "broadcast", "allreduce"):
            seven = rccl_tests.rccl_collective_latency(name, 7)
            eight = rccl_tests.rccl_collective_latency(name, 8)
            assert eight < seven, name

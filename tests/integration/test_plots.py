"""Tests for the per-figure ASCII chart builders."""

import pytest

from repro import figures
from repro.figures.plots import PLOTTERS, plot
from repro.units import GiB, KiB, MiB


class TestPlotRegistry:
    def test_tables_have_no_chart(self):
        assert "tab01" not in PLOTTERS
        result = figures.run("tab01")
        assert plot("tab01", result) is None

    def test_every_plotter_targets_a_known_artifact(self):
        known = set(figures.all_ids())
        assert set(PLOTTERS) <= known


class TestChartRendering:
    def test_fig02_bars(self):
        result = figures.run("fig02")
        chart = plot("fig02", result)
        assert chart is not None
        assert "pinned_memcpy" in chart and "#" in chart

    def test_fig03_series(self):
        result = figures.run("fig03", sizes=[64 * KiB, 1 * MiB, 64 * MiB])
        chart = plot("fig03", result)
        assert "(log x)" in chart
        assert "pinned_memcpy" in chart

    def test_fig06_heatmaps(self):
        result = figures.run("fig06")
        chart = plot("fig06", result)
        assert "latency [us]" in chart and "bandwidth [GB/s]" in chart

    def test_fig12_collective_series(self):
        result = figures.run(
            "fig12", collectives=["allreduce"], thread_counts=(2, 4, 8)
        )
        chart = plot("fig12", result)
        assert "allreduce" in chart
        assert "(log x)" not in chart  # linear thread axis

    def test_fig11_limits_series_count(self):
        result = figures.run(
            "fig11",
            collectives=("reduce", "broadcast", "allreduce", "reduce_scatter", "allgather"),
            partner_counts=(2, 8),
        )
        chart = plot("fig11", result)
        assert chart is not None  # 10 series reduced below the glyph cap

    def test_fig09_bars(self):
        result = figures.run("fig09")
        chart = plot("fig09", result)
        assert "GCD0<->1" in chart

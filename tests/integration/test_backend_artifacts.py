"""Every figure artifact is backend- and solver-strategy-invariant.

The backend knob (``REPRO_BACKEND``) selects *how* flow integration is
computed, and the solver knob (``REPRO_SOLVER``) selects *how* the
fairshare levels are reached (dirty-set replay + epoch deferral vs a
full re-solve per event) — never *what* either computes.  So each of
the paper artifacts must come out canonically identical under every
combination.  This is the acceptance test that keeps both knobs out of
cache keys: results are bit-identical by construction, and this file
is the construction's proof.
"""

import pytest

from repro import figures
from repro.obs import blame_ranking
from repro.runner import SweepRunner
from repro.sim.backends import (
    BACKEND_ENV_VAR,
    SOLVER_ENV_VAR,
    SOLVER_STRATEGIES,
    numpy_available,
)

ALL_IDS = figures.all_ids()


@pytest.mark.skipif(
    not numpy_available(), reason="numpy required for vectorized backend"
)
class TestArtifactsBackendInvariant:
    @pytest.mark.parametrize("experiment_id", ALL_IDS)
    def test_python_and_vectorized_agree(self, experiment_id, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "python")
        scalar = figures.run(experiment_id).canonical()
        monkeypatch.setenv(BACKEND_ENV_VAR, "vectorized")
        vectorized = figures.run(experiment_id).canonical()
        assert vectorized == scalar

    def test_span_blame_is_backend_invariant(self, monkeypatch):
        # The solver's bottleneck bookkeeping (which channel froze each
        # flow, and when) must not depend on how remaining-bytes were
        # integrated: identical spans, identical ranked blame.
        def spans_and_blame(backend):
            monkeypatch.setenv(BACKEND_ENV_VAR, backend)
            runner = SweepRunner(use_cache=False, capture_spans=True)
            runner.run_experiment("fig06")
            spans = runner.stats.spans
            return spans, blame_ranking(spans)

        scalar_spans, scalar_blame = spans_and_blame("python")
        vector_spans, vector_blame = spans_and_blame("vectorized")
        assert vector_blame == scalar_blame
        assert vector_spans == scalar_spans


class TestArtifactsSolverInvariant:
    @pytest.mark.parametrize("experiment_id", ALL_IDS)
    def test_all_strategies_agree(self, experiment_id, monkeypatch):
        canonicals = {}
        for strategy in SOLVER_STRATEGIES:
            monkeypatch.setenv(SOLVER_ENV_VAR, strategy)
            canonicals[strategy] = figures.run(experiment_id).canonical()
        assert canonicals["dirty"] == canonicals["full"]
        assert canonicals["eager"] == canonicals["full"]

    def test_span_blame_is_solver_invariant(self, monkeypatch):
        # Bottleneck attribution rides through the dirty-set replay
        # (binding-set certificates) and the deferred flush; the blame
        # ranking must not notice either.
        def spans_and_blame(strategy):
            monkeypatch.setenv(SOLVER_ENV_VAR, strategy)
            runner = SweepRunner(use_cache=False, capture_spans=True)
            runner.run_experiment("fig06")
            spans = runner.stats.spans
            return spans, blame_ranking(spans)

        full_spans, full_blame = spans_and_blame("full")
        for strategy in ("eager", "dirty"):
            spans, blame = spans_and_blame(strategy)
            assert blame == full_blame, strategy
            assert spans == full_spans, strategy

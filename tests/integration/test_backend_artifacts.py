"""Every figure artifact is backend-invariant.

The backend knob (``REPRO_BACKEND``) selects *how* flow integration is
computed, never *what* it computes — so each of the paper artifacts
must come out canonically identical under the scalar python loop and
the vectorized integrator.  This is the acceptance test that keeps the
backend out of cache keys: results are bit-identical by construction,
and this file is the construction's proof.
"""

import pytest

from repro import figures
from repro.obs import blame_ranking
from repro.runner import SweepRunner
from repro.sim.backends import BACKEND_ENV_VAR, numpy_available

ALL_IDS = figures.all_ids()


@pytest.mark.skipif(
    not numpy_available(), reason="numpy required for vectorized backend"
)
class TestArtifactsBackendInvariant:
    @pytest.mark.parametrize("experiment_id", ALL_IDS)
    def test_python_and_vectorized_agree(self, experiment_id, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "python")
        scalar = figures.run(experiment_id).canonical()
        monkeypatch.setenv(BACKEND_ENV_VAR, "vectorized")
        vectorized = figures.run(experiment_id).canonical()
        assert vectorized == scalar

    def test_span_blame_is_backend_invariant(self, monkeypatch):
        # The solver's bottleneck bookkeeping (which channel froze each
        # flow, and when) must not depend on how remaining-bytes were
        # integrated: identical spans, identical ranked blame.
        def spans_and_blame(backend):
            monkeypatch.setenv(BACKEND_ENV_VAR, backend)
            runner = SweepRunner(use_cache=False, capture_spans=True)
            runner.run_experiment("fig06")
            spans = runner.stats.spans
            return spans, blame_ranking(spans)

        scalar_spans, scalar_blame = spans_and_blame("python")
        vector_spans, vector_blame = spans_and_blame("vectorized")
        assert vector_blame == scalar_blame
        assert vector_spans == scalar_spans

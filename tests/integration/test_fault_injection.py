"""Fault injection end to end: blame attribution and the inject CLI.

The acceptance scenario for the fault subsystem: degrading the 1-3
Infinity Fabric hop must visibly shift ``repro explain`` blame onto a
``fault:`` bucket for fig11 (the collectives figure whose ring crosses
that hop), and ``repro inject`` must drive the whole pipeline from a
scenario JSON file.
"""

import json

import pytest

from repro import obs
from repro.cli import main
from repro.faults import FaultScenario, LinkDegrade

DEGRADE = FaultScenario(
    events=(LinkDegrade(link="gcd1-gcd3:single", factor=0.3, at=0.0),),
    name="degrade-1-3",
)


def _blame_fractions(report):
    total = report["critical_path"]["length"]
    return {
        entry["key"]: entry["seconds"] / total for entry in report["blame"]
    }


class TestBlameShift:
    def test_degraded_link_dominates_fig11_blame(self):
        healthy = obs.collect_report("fig11", jobs=1)
        faulted = obs.collect_report("fig11", jobs=1, faults=DEGRADE)

        healthy_blame = _blame_fractions(healthy)
        faulted_blame = _blame_fractions(faulted)
        # Healthy runs never produce fault buckets.
        assert not any(key.startswith("fault:") for key in healthy_blame)
        # The degraded hop becomes the single largest blame bucket.
        fault_key = "fault:link-degrade:1->3"
        assert fault_key in faulted_blame
        assert faulted_blame[fault_key] == max(faulted_blame.values())

    def test_faulted_report_carries_scenario_metadata(self):
        report = obs.collect_report("fig11", jobs=1, faults=DEGRADE)
        assert report["faults"]["name"] == "degrade-1-3"
        assert report["faults"]["fingerprint"] == DEGRADE.fingerprint()
        assert len(report["faults"]["events"].splitlines()) == 2

    def test_healthy_report_has_no_faults_entry(self):
        report = obs.collect_report("fig11", jobs=1)
        assert report["faults"] is None


class TestInjectCli:
    @pytest.fixture
    def scenario_file(self, tmp_path):
        path = tmp_path / "degrade.json"
        DEGRADE.dump(path)
        return path

    def test_inject_runs_artifact_under_scenario(
        self, scenario_file, capsys, monkeypatch, tmp_path
    ):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        code = main(
            ["inject", "fig04", "--scenario", str(scenario_file)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "injecting scenario 'degrade-1-3'" in out
        assert DEGRADE.fingerprint()[:12] in out
        assert "link_degrade" in out

    def test_seedless_bypasses_the_cache(
        self, scenario_file, capsys, monkeypatch, tmp_path
    ):
        cache_dir = tmp_path / "cache"
        monkeypatch.setenv("REPRO_CACHE_DIR", str(cache_dir))
        code = main(
            [
                "inject",
                "fig04",
                "--scenario",
                str(scenario_file),
                "--seedless",
            ]
        )
        assert code == 0
        assert not (cache_dir / "objects").exists()

    def test_lethal_scenario_reports_cleanly_and_exits_1(
        self, tmp_path, capsys, monkeypatch
    ):
        """A link_fail that kills an unretried transfer must surface as
        a one-line error plus hint, not a LinkDownError traceback."""
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        lethal = tmp_path / "outage.json"
        lethal.write_text(
            json.dumps(
                {
                    "events": [
                        {
                            "kind": "link_fail",
                            "link": "gcd0-numa0:cpu",
                            "at": 0.0001,
                        }
                    ]
                }
            )
        )
        code = main(["inject", "fig04", "--scenario", str(lethal), "--seedless"])
        assert code == 1
        err = capsys.readouterr().err
        assert "killed the run" in err
        assert "link failed" in err
        assert "RetryPolicy" in err

    def test_unknown_artifact_exits_2(self, scenario_file, capsys):
        assert (
            main(["inject", "fig99", "--scenario", str(scenario_file)]) == 2
        )
        assert "unknown artifact" in capsys.readouterr().err

    def test_unreadable_scenario_exits_2(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{broken")
        assert main(["inject", "fig04", "--scenario", str(bad)]) == 2
        assert "cannot load scenario" in capsys.readouterr().err

    def test_invalid_scenario_event_exits_2(self, tmp_path, capsys):
        bad = tmp_path / "bad_event.json"
        bad.write_text(
            json.dumps(
                {"events": [{"kind": "link_fail", "link": "1-3", "at": -1}]}
            )
        )
        assert main(["inject", "fig04", "--scenario", str(bad)]) == 2
        assert "cannot load scenario" in capsys.readouterr().err

"""Smoke + shape tests for every figure/table driver and the
three-step methodology orchestrator."""

import pytest

from repro import figures
from repro.core.methodology import STEPS, Methodology
from repro.units import GiB, KiB, MiB


class TestRegistry:
    def test_all_fourteen_artifacts_registered(self):
        ids = figures.all_ids()
        expected = {f"fig{i:02d}" for i in range(1, 13)} | {"tab01", "tab02"}
        assert set(ids) == expected

    def test_unknown_id_rejected(self):
        from repro.errors import BenchmarkError

        with pytest.raises(BenchmarkError):
            figures.run("fig99")


class TestQuickDrivers:
    """Drivers cheap enough to run at full fidelity."""

    def test_tab01(self):
        result, text = figures.run_and_report("tab01")
        assert "5/5 rows verified" in text

    def test_tab02(self):
        result, text = figures.run_and_report("tab02")
        assert "12/12 rows importable" in text

    def test_fig01(self):
        result, text = figures.run_and_report("fig01")
        assert "4x quad" in text and "0-6: dual" in text

    def test_fig02(self):
        result, text = figures.run_and_report("fig02")
        assert "pinned_memcpy" in text
        peak = result.peak(interface="pinned_memcpy")
        assert peak.value == pytest.approx(28.3e9, rel=0.01)

    def test_fig04(self):
        result, text = figures.run_and_report("fig04")
        assert "same GPU" in text and "spread" in text

    def test_fig05(self):
        result, _ = figures.run_and_report("fig05")
        assert len(result) == 4

    def test_fig06(self):
        result, text = figures.run_and_report("fig06")
        assert len(result.series(panel="b")) == 56
        assert "(a) shortest-path" in text
        assert "(c) unidirectional bandwidth" in text

    def test_fig09(self):
        result, text = figures.run_and_report("fig09")
        assert "43.5%" in text

    def test_fig10(self):
        result, text = figures.run_and_report("fig10")
        assert "MPI (SDMA)" in text and "direct P2P" in text
        assert len(result) == 21  # 7 destinations × 3 series


class TestParameterizedDrivers:
    """Heavier drivers, exercised with reduced grids."""

    def test_fig03_reduced(self):
        result, text = figures.run_and_report(
            "fig03", sizes=[64 * KiB, 1 * MiB, 64 * MiB]
        )
        assert len(result) == 12
        assert "peaks" in text

    def test_fig07_reduced(self):
        result, _ = figures.run_and_report(
            "fig07", sizes=[1 * MiB, 1 * GiB]
        )
        assert len(result) == 6

    def test_fig08_reduced(self):
        result, text = figures.run_and_report(
            "fig08", sizes=[256 * MiB, 1 * GiB]
        )
        assert "87% of the 1.6 TB/s HBM peak" in text

    def test_fig11_reduced(self):
        result, text = figures.run_and_report(
            "fig11",
            collectives=("broadcast", "allreduce"),
            partner_counts=(2, 8),
        )
        assert len(result) == 8
        assert "MPI" in text and "RCCL" in text

    def test_fig12_reduced(self):
        result, text = figures.run_and_report(
            "fig12", collectives=["allreduce"], thread_counts=(2, 7, 8)
        )
        values = {int(m.x): m.value for m in result.measurements}
        assert values[8] < values[7]
        assert "17.4 us" in text


class TestMethodology:
    def test_steps_cover_all_figures(self):
        covered = {fid for ids in STEPS.values() for fid in ids}
        assert covered == {f"fig{i:02d}" for i in range(2, 13)}

    def test_unknown_step_rejected(self):
        from repro.errors import BenchmarkError

        with pytest.raises(BenchmarkError):
            Methodology(["quantum"])

    def test_single_step_run(self):
        methodology = Methodology(["cpu_gpu"])
        assert methodology.artifact_ids() == ["fig02", "fig03", "fig04", "fig05"]

    def test_report_text_assembles(self):
        # Run just the cheap collectives step with a reduced grid via
        # the figures API to keep this test fast, then check the text
        # assembly path with a stub.
        from repro.core.methodology import MethodologyReport

        report = MethodologyReport()
        report.reports["fig02"] = "FIG02 BODY"
        text = report.text()
        assert "STEP cpu_gpu" in text and "FIG02 BODY" in text

"""End-to-end observability: sessions, ambient capture, fig04 contention."""

import pytest

import repro
from repro import figures
from repro.obs import capture, trace_experiment, validate_chrome_trace
from repro.units import MiB


def _peer_copy_session():
    session = repro.Session(
        topology="mi250x", obs=repro.ObsConfig(metrics=True, trace=True)
    )
    hip = session.hip

    def program():
        src = hip.malloc(4 * MiB, device=0)
        dst = hip.malloc(4 * MiB, device=1)
        yield from hip.memcpy_peer(dst, 1, src, 0)

    session.run(program())
    return session


class TestSessionMetrics:
    def test_peer_copy_populates_layers(self):
        session = _peer_copy_session()
        snapshot = session.metrics()
        counters = snapshot["counters"]
        assert counters["hip/memcpy/peer"] == 1
        assert counters["hip/memcpy/peer/bytes"] == 4 * MiB
        assert counters["engine/events_delivered"] > 0
        assert counters["network/flows_started"] >= 1
        # Solver stats are published as absolute values.
        assert counters["solver/component_solves"] >= 1

    def test_sdma_engine_saturates_its_channel(self):
        session = _peer_copy_session()
        channels = session.node.metrics.channels()
        sdma = [u for n, u in channels.items() if n.startswith("sdma/")]
        assert sdma, f"no sdma channels in {sorted(channels)}"
        assert max(u.utilization for u in sdma) == pytest.approx(1.0, rel=1e-3)
        # A single peer copy uses one lane of the quad link: 25% of peak.
        quad = [u for n, u in channels.items() if ":quad" in n]
        assert quad
        assert max(u.utilization for u in quad) == pytest.approx(0.25, rel=1e-3)

    def test_metrics_call_is_idempotent(self):
        session = _peer_copy_session()
        first = session.metrics()
        second = session.metrics()
        assert second["counters"] == first["counters"]

    def test_export_trace_validates_and_writes(self, tmp_path):
        session = _peer_copy_session()
        payload = session.export_trace(tmp_path / "trace.json")
        assert validate_chrome_trace(payload) == []
        assert (tmp_path / "trace.json").is_file()
        other = payload["otherData"]
        assert "calibration_fingerprint" in other
        assert other["metrics"]["counters"]["hip/memcpy/peer"] == 1

    def test_default_session_pays_no_metric_storage(self):
        with repro.Session() as session:
            assert not session.node.metrics
            assert session.node.metrics.counters() == {}


class TestAmbientCapture:
    def test_nodes_adopt_the_active_context(self):
        with capture() as ctx:
            first = repro.Session()
            second = repro.Session()
        assert ctx.adoptions >= 2
        assert first.node.metrics is ctx.metrics
        assert second.node.metrics is ctx.metrics
        assert first.node.tracer is ctx.tracer

    def test_explicit_arguments_beat_the_context(self):
        with capture() as ctx:
            own = repro.Session(obs=repro.ObsConfig(metrics=True))
        assert own.node.metrics is not ctx.metrics
        assert own.node.metrics.enabled

    def test_context_restored_after_exit(self):
        from repro.obs import active

        assert active() is None
        with capture():
            assert active() is not None
        assert active() is None

    def test_nested_captures_stack_innermost_wins(self):
        from repro.obs import active

        with capture() as outer:
            assert active() is outer
            with capture() as inner:
                assert active() is inner
                assert inner is not outer
            assert active() is outer
        assert active() is None

    def test_context_restored_when_body_raises(self):
        from repro.obs import active

        with pytest.raises(RuntimeError, match="boom"):
            with capture():
                raise RuntimeError("boom")
        assert active() is None

    def test_outer_context_restored_when_inner_body_raises(self):
        from repro.obs import active

        with capture() as outer:
            with pytest.raises(ValueError):
                with capture():
                    raise ValueError("inner")
            assert active() is outer
        assert active() is None

    def test_pool_worker_trampolines_leak_no_registry(self):
        # execute_point_observed / execute_point_spanned run inside
        # pool workers; each must install and fully tear down its own
        # ambient context so the next point starts clean.
        from repro.obs import active
        from repro.runner import SimPoint
        from repro.runner.points import (
            execute_point_observed,
            execute_point_spanned,
        )
        from repro.units import MiB

        point = SimPoint.make(
            "fig03",
            "h2d/pinned/1MiB",
            "repro.bench_suites.comm_scope:measure_h2d",
            interface="pinned_memcpy",
            size=1 * MiB,
        )
        assert active() is None
        value, snapshot = execute_point_observed(point)
        assert active() is None
        value2, snapshot2, spans = execute_point_spanned(point)
        assert active() is None
        assert value == value2
        assert snapshot["channels"]
        # Two consecutive points must not share a registry: byte
        # totals per channel are identical, not cumulative.
        for name, usage in snapshot["channels"].items():
            assert snapshot2["channels"][name]["bytes"] == usage["bytes"]


class TestFig04Contention:
    def test_shared_numaport_link_reaches_capacity(self):
        """The dual-GCD contention case must saturate the shared link.

        During the timed STREAM phase both GCDs pull through the same
        NUMA port, so the summed allocated rate of the shared channel
        must equal its capacity — within 1%, the paper-facing
        acceptance bound.  (The whole-run average is lower because the
        untimed init phase runs below the port limit.)
        """
        with capture(trace=False) as ctx:
            figures.run("fig04")
        ports = {
            name: usage
            for name, usage in ctx.metrics.channels().items()
            if name.startswith("numaport/")
        }
        assert ports, f"no numaport channels in {sorted(ctx.metrics.channels())}"
        peak = max(
            rate
            for usage in ports.values()
            for _, rate in usage.samples
        )
        capacity = max(usage.capacity for usage in ports.values())
        assert peak == pytest.approx(capacity, rel=0.01)
        shared = max(ports.values(), key=lambda u: u.max_concurrent_flows)
        assert shared.max_concurrent_flows >= 2  # both GCDs aboard at once


class TestTraceExperiment:
    def test_payload_is_valid_and_annotated(self):
        payload = trace_experiment("fig04")
        assert validate_chrome_trace(payload) == []
        events = payload["traceEvents"]
        point_slices = [
            e for e in events if e["ph"] == "X" and e.get("cat") == "point"
        ]
        assert len(point_slices) == len(figures.sweep_points("fig04"))
        assert payload["otherData"]["experiment"] == "fig04"

"""Span recorder unit tests: lifecycle, blame accounting, merging."""

import pytest

from repro.obs.spans import (
    DEFAULT_INTERVAL_CAPACITY,
    NULL_SPANS,
    Span,
    SpanRecorder,
    merge_point_spans,
    resolve_spans,
    span_dicts,
)


class TestSpanRecorder:
    def test_begin_finish_lifecycle(self):
        recorder = SpanRecorder()
        root = recorder.begin("mpi", "send", start=0.0)
        child = recorder.begin("flow", "copy", start=0.1, parent=root)
        recorder.finish(child, 0.4)
        recorder.finish(root, 0.5)
        assert root.span_id == 0
        assert child.parent_id == 0
        assert child.duration == pytest.approx(0.3)
        assert len(recorder) == 2
        assert [s.span_id for s in recorder.spans()] == [0, 1]

    def test_disabled_recorder_is_falsy_and_inert(self):
        recorder = SpanRecorder(enabled=False)
        assert not recorder
        assert recorder.begin("flow", "x", start=0.0) is None
        recorder.finish(None, 1.0)  # must not raise
        assert len(recorder) == 0
        assert not NULL_SPANS

    def test_enabled_recorder_is_truthy(self):
        assert SpanRecorder()

    def test_meta_kwargs_are_kept(self):
        recorder = SpanRecorder()
        span = recorder.begin("rccl", "all_reduce", start=0.0, bytes=4096)
        assert span.meta == {"bytes": 4096}

    def test_resolve_spans(self):
        assert resolve_spans(None) is NULL_SPANS
        assert resolve_spans(False) is NULL_SPANS
        fresh = resolve_spans(True)
        assert isinstance(fresh, SpanRecorder) and fresh.enabled
        existing = SpanRecorder()
        assert resolve_spans(existing) is existing


class TestSpanAccounting:
    def test_account_accumulates_blame(self):
        span = Span(0, "flow", "copy", 0.0)
        span.account(0.0, 0.2, 1e9, "link/a:fwd")
        span.account(0.2, 0.3, 5e8, "link/a:fwd")
        span.account(0.5, 0.1, 2e9, "cap:dma")
        assert span.blame["link/a:fwd"] == pytest.approx(0.5)
        assert span.blame["cap:dma"] == pytest.approx(0.1)
        assert len(span.intervals) == 3
        assert span.dropped == 0

    def test_interval_ring_bounds_and_counts_drops(self):
        span = Span(0, "flow", "copy", 0.0, interval_capacity=2)
        for i in range(5):
            span.account(i * 0.1, 0.1, 1e9, "c")
        assert len(span.intervals) == 2
        assert span.dropped == 3
        # Blame totals stay exact regardless of the sample bound.
        assert span.blame["c"] == pytest.approx(0.5)

    def test_default_interval_capacity(self):
        span = Span(0, "flow", "copy", 0.0)
        assert span._interval_capacity == DEFAULT_INTERVAL_CAPACITY

    def test_unfinished_span_duration_is_zero(self):
        span = Span(0, "flow", "copy", 3.0)
        assert span.duration == 0.0


class TestSpanSerialization:
    def test_as_dict_from_dict_round_trip(self):
        recorder = SpanRecorder()
        root = recorder.begin("mpi", "send", start=0.0, rank=2)
        child = recorder.begin("flow", "copy", start=0.1, parent=root)
        child.account(0.1, 0.2, 1e9, "link/a:fwd")
        recorder.finish(child, 0.3)
        recorder.finish(root, 0.4)

        for original in recorder.spans():
            data = original.as_dict()
            rebuilt = Span.from_dict(data)
            assert rebuilt.as_dict() == data

    def test_unfinished_end_survives_round_trip(self):
        span = Span(7, "flow", "copy", 1.0, parent_id=3)
        rebuilt = Span.from_dict(span.as_dict())
        assert rebuilt.end is None
        assert rebuilt.parent_id == 3

    def test_span_dicts_normalizes_all_carriers(self):
        recorder = SpanRecorder()
        span = recorder.begin("flow", "x", start=0.0)
        recorder.finish(span, 1.0)
        from_recorder = span_dicts(recorder)
        from_spans = span_dicts([span])
        from_dicts = span_dicts(from_recorder)
        assert from_recorder == from_spans == from_dicts


class TestMergePointSpans:
    def _point(self, n, start=0.0):
        recorder = SpanRecorder()
        spans = []
        for i in range(n):
            span = recorder.begin("flow", f"op{i}", start=start + i * 0.1)
            recorder.finish(span, start + i * 0.1 + 0.05)
            spans.append(span)
        return recorder.as_dicts()

    def test_ids_are_remapped_uniquely(self):
        merged = merge_point_spans(
            [("p0", self._point(2)), ("p1", self._point(3))]
        )
        ids = [span["id"] for span in merged]
        assert ids == sorted(ids) == list(range(len(merged)))

    def test_synthetic_point_roots(self):
        merged = merge_point_spans([("alpha", self._point(2))])
        root = merged[0]
        assert root["cat"] == "point"
        assert root["name"] == "alpha"
        assert root["parent"] is None
        for span in merged[1:]:
            assert span["parent"] == root["id"]

    def test_points_are_separated_by_gap(self):
        merged = merge_point_spans(
            [("p0", self._point(1)), ("p1", self._point(1))], gap=0.5
        )
        roots = [s for s in merged if s["cat"] == "point"]
        assert roots[1]["start"] == pytest.approx(roots[0]["end"] + 0.5)

    def test_merge_is_deterministic_in_input_order(self):
        points = [("p0", self._point(2)), ("p1", self._point(3, start=5.0))]
        assert merge_point_spans(points) == merge_point_spans(points)

    def test_empty_point_still_gets_root(self):
        merged = merge_point_spans([("empty", [])])
        assert len(merged) == 1
        assert merged[0]["cat"] == "point"
        assert merged[0]["start"] == merged[0]["end"]

    def test_parent_edges_survive_remap(self):
        recorder = SpanRecorder()
        root = recorder.begin("mpi", "send", start=0.0)
        child = recorder.begin("flow", "copy", start=0.1, parent=root)
        recorder.finish(child, 0.2)
        recorder.finish(root, 0.3)
        merged = merge_point_spans([("p", recorder.as_dicts())])
        by_name = {span["name"]: span for span in merged}
        assert by_name["copy"]["parent"] == by_name["send"]["id"]
        assert by_name["send"]["parent"] == by_name["p"]["id"]

"""Run reports and the jobs=1 vs jobs=N span-determinism guarantee."""

import json

import pytest

from repro.obs.attribution import critical_path
from repro.obs.report import (
    collect_report,
    explain_artifact,
    render_html,
    write_report,
)
from repro.runner import SweepRunner


def _strip_wall_clock(spans):
    """Span dicts minus nothing — spans carry only simulated time."""
    return spans


class TestJobsDeterminism:
    def test_span_sets_identical_serial_vs_parallel(self):
        serial = SweepRunner(1, use_cache=False, capture_spans=True)
        serial.run_experiment("fig10")
        parallel = SweepRunner(4, use_cache=False, capture_spans=True)
        parallel.run_experiment("fig10")

        assert serial.stats.spans is not None
        assert parallel.stats.spans is not None
        assert _strip_wall_clock(serial.stats.spans) == _strip_wall_clock(
            parallel.stats.spans
        )

    def test_critical_path_identical_serial_vs_parallel(self):
        serial = SweepRunner(1, use_cache=False, capture_spans=True)
        serial.run_experiment("fig05")
        parallel = SweepRunner(4, use_cache=False, capture_spans=True)
        parallel.run_experiment("fig05")

        path_1 = critical_path(serial.stats.spans)
        path_n = critical_path(parallel.stats.spans)
        assert path_1.length == path_n.length
        assert [s.as_dict() for s in path_1.segments] == [
            s.as_dict() for s in path_n.segments
        ]


class TestFig11Acceptance:
    def test_explain_names_the_single_link_hop(self):
        # Non-adjacent GCDs (1 -> 3 crosses packages) ride one IF link;
        # the collectives sweep must pin its top blame entry there.
        text = explain_artifact("fig11_collectives", jobs=1, top=5)
        lines = [line for line in text.splitlines() if line.startswith("  ")]
        assert lines, text
        top = lines[0]
        assert "rccl:1->3" in top, text


class TestCollectReport:
    @pytest.fixture(scope="class")
    def report(self):
        return collect_report("fig05", validate=False)

    def test_structure(self, report):
        assert report["artifact"] == "fig05"
        assert report["span_count"] > 0
        assert report["spans"]
        assert report["critical_path"]["length"] > 0
        assert report["blame"]
        assert report["validation"] is None
        assert report["provenance"]["artifact"] == "fig05"
        assert report["runner"]["points"] == 4
        assert "critical path" in report["explain"]

    def test_blame_entries_are_ranked(self, report):
        seconds = [entry["seconds"] for entry in report["blame"]]
        assert seconds == sorted(seconds, reverse=True)

    def test_json_serializable(self, report):
        json.dumps(report)

    def test_accepts_module_alias(self):
        report = collect_report("fig05_scaling", validate=False)
        assert report["artifact"] == "fig05"

    def test_render_html_self_contained(self, report):
        doc = render_html(report)
        assert doc.startswith("<!DOCTYPE html>")
        assert "fig05" in doc
        assert "critical-path blame" in doc
        assert "validation skipped" in doc
        # Self-contained: no external asset references.
        assert "http://" not in doc and "https://" not in doc
        assert "<script" not in doc

    def test_write_report(self, report, tmp_path):
        html_path = tmp_path / "r.html"
        json_path = tmp_path / "r.json"
        written = write_report(
            report, html_path=html_path, json_path=json_path
        )
        assert written == [html_path, json_path]
        assert html_path.read_text().startswith("<!DOCTYPE html>")
        loaded = json.loads(json_path.read_text())
        assert loaded["artifact"] == "fig05"


class TestExplainArtifact:
    def test_header_and_breakdown(self):
        text = explain_artifact("fig05", top=3)
        assert text.startswith("fig05:")
        assert "span(s) over" in text
        assert "critical path" in text

    def test_subtree_restriction(self):
        runner = SweepRunner(1, use_cache=False, capture_spans=True)
        runner.run_experiment("fig05")
        root_id = runner.stats.spans[0]["id"]
        text = explain_artifact("fig05", span_id=root_id)
        assert f"span {root_id}" in text


class TestCalibrationSection:
    def test_default_block(self):
        from repro.core.calibration import DEFAULT_CALIBRATION
        from repro.obs.report import calibration_block

        block = calibration_block()
        assert block["source"] == "default"
        assert block["fingerprint"] == DEFAULT_CALIBRATION.fingerprint()

    def test_fitted_profile_block_carries_provenance(self, tmp_path):
        from repro.core.calibration import DEFAULT_CALIBRATION, dump_profile
        from repro.obs.report import calibration_block

        path = tmp_path / "profile.json"
        fitted = DEFAULT_CALIBRATION.with_(sdma_xgmi_efficiency=0.7)
        dump_profile(
            fitted,
            path,
            provenance={
                "source": "fitted-from-telemetry",
                "telemetry": "machine",
                "telemetry_fingerprint": "abc123",
                "fitted_fields": ["sdma_xgmi_efficiency"],
                "initial_rms": 0.08,
                "final_rms": 0.001,
            },
        )
        block = calibration_block(path)
        assert block["source"] == "fitted-from-telemetry"
        assert block["fingerprint"] == fitted.fingerprint()
        assert block["telemetry"] == "machine"
        assert block["final_rms"] == 0.001

    def test_report_defaults_have_no_drift_section(self):
        report = collect_report("fig05", validate=False)
        assert report["calibration"]["source"] == "default"
        assert report["drift"] is None

    def test_report_with_telemetry_gains_drift_section(self):
        from repro.twin import synthesize_telemetry

        stream = synthesize_telemetry("fig09")
        report = collect_report("fig09", validate=False, telemetry=stream)
        assert report["drift"]["schema"] == "repro-shadow/1"
        assert report["drift"]["overall"]["max_abs_drift"] == 0.0
        json.dumps(report)

    def test_html_renders_calibration_and_drift(self):
        from repro.twin import synthesize_telemetry

        stream = synthesize_telemetry("fig09")
        report = collect_report("fig09", validate=False, telemetry=stream)
        doc = render_html(report)
        assert "Calibration" in doc
        assert "Digital-twin drift" in doc
        assert "http://" not in doc and "<script" not in doc

"""Chrome-trace export: schema round-trip and validator rejections."""

import json

import pytest

from repro.obs import (
    MetricsRegistry,
    build_chrome_trace,
    build_provenance,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.sim.trace import Tracer


def _tracer():
    tracer = Tracer(enabled=True)
    tracer.record(0.0, 1e-3, "memcpy", "h2d:pinned", bytes=1024)
    tracer.record(1e-3, 2e-3, "kernel", "copy", device=0)
    tracer.record(2e-3, 3e-3, "kernel", "copy", device=1)
    return tracer


def _metrics():
    registry = MetricsRegistry()
    usage = registry.channel(("link", "gcd0-gcd1:quad", "fwd"), 200e9)
    usage.account(0.0, 1e-3, 50e9, 1)
    usage.account(1e-3, 1e-3, 100e9, 2)
    registry.timeseries("engine/heap_depth").observe(0.0, 3.0)
    return registry


class TestBuildChromeTrace:
    def test_slices_land_on_per_device_tracks(self):
        payload = build_chrome_trace(_tracer().records())
        events = payload["traceEvents"]
        thread_names = {
            e["args"]["name"]
            for e in events
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        assert {"memcpy/h2d", "gcd0/kernel", "gcd1/kernel"} <= thread_names
        slices = [e for e in events if e["ph"] == "X"]
        assert len(slices) == 3
        # Simulated seconds scale to microseconds.
        assert slices[0]["ts"] == pytest.approx(0.0)
        assert slices[0]["dur"] == pytest.approx(1e3)

    def test_metrics_become_counter_tracks(self):
        payload = build_chrome_trace(_tracer().records(), metrics=_metrics())
        counters = [e for e in payload["traceEvents"] if e["ph"] == "C"]
        names = {e["name"] for e in counters}
        assert "link/gcd0-gcd1:quad/fwd GB/s" in names
        assert "engine/heap_depth" in names
        rates = [
            e["args"]["rate"]
            for e in counters
            if e["name"].endswith("GB/s")
        ]
        assert rates == [50.0, 100.0]
        assert payload["otherData"]["metrics"]["channels"]

    def test_provenance_lands_in_other_data(self):
        provenance = build_provenance(extra={"experiment": "fig06"})
        payload = build_chrome_trace([], provenance=provenance)
        other = payload["otherData"]
        assert other["generator"] == "repro.obs.perfetto"
        assert other["experiment"] == "fig06"
        assert "version" in other and "git_sha" in other


class TestValidateAndWrite:
    def test_round_trip_through_disk(self, tmp_path):
        payload = build_chrome_trace(
            _tracer().records(),
            metrics=_metrics(),
            provenance=build_provenance(),
        )
        path = write_chrome_trace(tmp_path / "trace.json", payload)
        loaded = json.loads(path.read_text())
        assert validate_chrome_trace(loaded) == []
        assert loaded == json.loads(json.dumps(payload))

    def test_validator_rejects_malformed_payloads(self):
        assert validate_chrome_trace([]) == ["top level is not an object"]
        assert validate_chrome_trace({}) == [
            "traceEvents is missing or not an array"
        ]
        bad_phase = {"traceEvents": [{"ph": "B", "name": "x", "pid": 1}]}
        assert any("phase" in p for p in validate_chrome_trace(bad_phase))
        bad_slice = {
            "traceEvents": [
                {"ph": "X", "name": "x", "pid": 1, "ts": -1.0, "dur": 1.0}
            ]
        }
        problems = validate_chrome_trace(bad_slice)
        assert any("ts" in p for p in problems)
        assert any("tid" in p for p in problems)
        bad_counter = {
            "traceEvents": [
                {"ph": "C", "name": "c", "pid": 2, "ts": 0.0, "args": {"v": "hi"}}
            ]
        }
        assert any(
            "non-numeric" in p for p in validate_chrome_trace(bad_counter)
        )

    def test_validator_rejects_negative_duration_slice(self):
        payload = {
            "traceEvents": [
                {
                    "ph": "X",
                    "name": "x",
                    "pid": 1,
                    "tid": 1,
                    "ts": 0.0,
                    "dur": -2.5,
                }
            ]
        }
        problems = validate_chrome_trace(payload)
        assert any("dur" in p for p in problems)

    def test_validator_rejects_backwards_counter_timestamps(self):
        def counter(ts):
            return {
                "ph": "C",
                "name": "rate",
                "pid": 2,
                "ts": ts,
                "args": {"v": 1.0},
            }

        payload = {"traceEvents": [counter(0.0), counter(5.0), counter(3.0)]}
        problems = validate_chrome_trace(payload)
        assert len(problems) == 1
        assert "goes backwards" in problems[0]

    def test_counter_series_are_independent_per_pid_and_name(self):
        # Interleaved series may each restart the clock; only a
        # regression *within* one (pid, name) series is an error.
        payload = {
            "traceEvents": [
                {"ph": "C", "name": "a", "pid": 1, "ts": 5.0, "args": {"v": 1}},
                {"ph": "C", "name": "b", "pid": 1, "ts": 0.0, "args": {"v": 1}},
                {"ph": "C", "name": "a", "pid": 2, "ts": 0.0, "args": {"v": 1}},
                {"ph": "C", "name": "a", "pid": 1, "ts": 6.0, "args": {"v": 1}},
            ]
        }
        assert validate_chrome_trace(payload) == []

    def test_validator_accepts_flow_event_pair(self):
        payload = {
            "traceEvents": [
                {
                    "ph": "s",
                    "name": "causal",
                    "cat": "flow",
                    "id": 7,
                    "pid": 3,
                    "tid": 0,
                    "ts": 1.0,
                },
                {
                    "ph": "f",
                    "name": "causal",
                    "cat": "flow",
                    "id": 7,
                    "pid": 3,
                    "tid": 1,
                    "ts": 1.0,
                    "bp": "e",
                },
            ]
        }
        assert validate_chrome_trace(payload) == []

    def test_validator_rejects_flow_event_without_id_or_tid(self):
        payload = {
            "traceEvents": [
                {"ph": "s", "name": "causal", "pid": 3, "ts": 1.0}
            ]
        }
        problems = validate_chrome_trace(payload)
        assert any("tid" in p for p in problems)
        assert any("without id" in p for p in problems)

    def test_write_refuses_invalid_payload(self, tmp_path):
        with pytest.raises(ValueError, match="invalid trace"):
            write_chrome_trace(tmp_path / "bad.json", {"traceEvents": None})
        assert not (tmp_path / "bad.json").exists()


class TestSpanExport:
    def _spans(self):
        from repro.obs import SpanRecorder

        recorder = SpanRecorder()
        root = recorder.begin("mpi", "send", start=0.0)
        child = recorder.begin("flow", "copy", start=1e-4, parent=root)
        child.account(1e-4, 2e-4, 1e9, "link/a:fwd")
        recorder.finish(child, 4e-4)
        recorder.finish(root, 5e-4)
        return recorder.as_dicts()

    def test_spans_become_slices_and_flow_arrows(self):
        payload = build_chrome_trace([], spans=self._spans())
        assert validate_chrome_trace(payload) == []
        events = payload["traceEvents"]
        slices = [e for e in events if e["ph"] == "X"]
        assert {e["name"] for e in slices} == {"send", "copy"}
        starts = [e for e in events if e["ph"] == "s"]
        finishes = [e for e in events if e["ph"] == "f"]
        assert len(starts) == len(finishes) == 1
        assert starts[0]["id"] == finishes[0]["id"]
        assert finishes[0]["bp"] == "e"

    def test_span_slices_carry_blame_args(self):
        payload = build_chrome_trace([], spans=self._spans())
        copy = next(
            e
            for e in payload["traceEvents"]
            if e["ph"] == "X" and e["name"] == "copy"
        )
        assert copy["args"]["blame_us"]["link/a:fwd"] == pytest.approx(200.0)

    def test_span_tracks_grouped_by_category(self):
        payload = build_chrome_trace([], spans=self._spans())
        names = {
            e["args"]["name"]
            for e in payload["traceEvents"]
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        assert {"spans/mpi", "spans/flow"} <= names

"""Metric primitives: counters, gauges, time-weighted series, merging."""

import pytest

from repro.obs import (
    NULL_METRICS,
    ChannelUsage,
    MetricsRegistry,
    TimeSeries,
    format_snapshot,
    merge_snapshots,
    metric_name,
    resolve_metrics,
)


class TestPrimitives:
    def test_counter_increments(self):
        registry = MetricsRegistry()
        counter = registry.counter("events")
        counter.inc()
        counter.inc(5)
        assert counter.value == 6
        assert registry.counter("events") is counter

    def test_gauge_tracks_running_max(self):
        gauge = MetricsRegistry().gauge("depth")
        gauge.set(10)
        gauge.set(3)
        assert gauge.value == 3
        assert gauge.max_value == 10

    def test_timeseries_mean_is_time_weighted(self):
        series = TimeSeries("depth")
        series.observe(0.0, 10.0)
        series.observe(9.0, 0.0)  # level 10 held for 9 s
        series.observe(10.0, 0.0)  # level 0 held for 1 s
        assert series.elapsed == pytest.approx(10.0)
        # 9 s at 10 and 1 s at 0 average 9, not 5 (arithmetic mean).
        assert series.mean() == pytest.approx(9.0)
        assert series.max_value == 10.0

    def test_timeseries_ring_buffer_counts_dropped(self):
        series = TimeSeries("depth", capacity=4)
        for i in range(10):
            series.observe(float(i), float(i))
        assert len(series.samples) == 4
        assert series.dropped == 6
        # Summary statistics stay exact despite eviction.
        assert series.max_value == 9.0

    def test_channel_usage_utilization(self):
        usage = ChannelUsage("link/a-b", capacity=100.0)
        usage.account(0.0, 1.0, 50.0, 1)
        usage.account(1.0, 1.0, 100.0, 3)
        assert usage.bytes == pytest.approx(150.0)
        assert usage.busy_seconds == pytest.approx(2.0)
        assert usage.achieved_rate == pytest.approx(75.0)
        assert usage.utilization == pytest.approx(0.75)
        assert usage.max_concurrent_flows == 3

    def test_metric_name_flattens_tuples(self):
        assert metric_name(("sdma", 0, "out")) == "sdma/0/out"
        assert metric_name("plain") == "plain"


class TestRegistry:
    def test_disabled_registry_is_falsy(self):
        assert not NULL_METRICS
        assert not MetricsRegistry(enabled=False)
        assert MetricsRegistry()

    def test_resolve_metrics_coercions(self):
        assert resolve_metrics(None) is NULL_METRICS
        assert resolve_metrics(False) is NULL_METRICS
        fresh = resolve_metrics(True)
        assert fresh.enabled and fresh is not NULL_METRICS
        own = MetricsRegistry()
        assert resolve_metrics(own) is own

    def test_snapshot_is_json_able(self):
        import json

        registry = MetricsRegistry()
        registry.counter("a").inc()
        registry.gauge("b").set(2.0)
        registry.timeseries("c").observe(0.0, 1.0)
        registry.channel(("link", "x-y", "fwd"), 100.0).account(0.0, 1.0, 50.0, 1)
        snapshot = registry.snapshot()
        assert json.loads(json.dumps(snapshot)) == snapshot
        assert snapshot["counters"]["a"] == 1
        assert snapshot["channels"]["link/x-y/fwd"]["utilization"] == 0.5

    def test_format_snapshot_renders_channels(self):
        registry = MetricsRegistry()
        registry.counter("events").inc(3)
        registry.channel("link/a", 100e9).account(0.0, 1.0, 50e9, 2)
        text = format_snapshot(registry.snapshot())
        assert "events" in text
        assert "link/a" in text
        assert "50.0% of peak" in text

    def test_format_snapshot_empty(self):
        assert format_snapshot({}) == "no metrics recorded"


class TestMergeSnapshots:
    def _snapshot(self, *, counter=1, byte_count=100.0, busy=1.0):
        registry = MetricsRegistry()
        registry.counter("events").inc(counter)
        registry.gauge("depth").set(float(counter))
        registry.timeseries("level").observe(0.0, 1.0)
        usage = registry.channel("ch", 200.0)
        usage.flows += 1  # the flow network counts boardings at transfer()
        usage.account(0.0, busy, byte_count / busy, 1)
        return registry.snapshot()

    def test_none_base_starts_accumulator(self):
        snap = self._snapshot()
        merged = merge_snapshots(None, snap)
        assert merged["counters"]["events"] == 1

    def test_counters_and_channel_totals_add(self):
        merged = merge_snapshots(
            self._snapshot(counter=1, byte_count=100.0),
            self._snapshot(counter=2, byte_count=300.0),
        )
        assert merged["counters"]["events"] == 3
        channel = merged["channels"]["ch"]
        assert channel["bytes"] == pytest.approx(400.0)
        assert channel["busy_seconds"] == pytest.approx(2.0)
        assert channel["flows"] == 2
        # Utilization is recomputed from merged totals, not averaged.
        assert channel["achieved_rate"] == pytest.approx(200.0)
        assert channel["utilization"] == pytest.approx(1.0)

    def test_gauges_take_max(self):
        merged = merge_snapshots(
            self._snapshot(counter=5), self._snapshot(counter=2)
        )
        assert merged["gauges"]["depth"]["max"] == 5.0

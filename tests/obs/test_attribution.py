"""Critical-path extraction and blame ranking over hand-built span DAGs."""

import pytest

from repro.obs.attribution import (
    UNATTRIBUTED,
    CriticalPath,
    PathSegment,
    blame_ranking,
    critical_path,
    explain_spans,
    span_subtree,
)


def _span(span_id, start, end, *, parent=None, cat="flow", name=None, blame=None):
    return {
        "id": span_id,
        "parent": parent,
        "cat": cat,
        "name": name or f"s{span_id}",
        "start": start,
        "end": end,
        "blame": blame or {},
        "intervals": [],
        "dropped": 0,
        "meta": {},
    }


class TestCriticalPath:
    def test_empty_input(self):
        path = critical_path([])
        assert path.segments == []
        assert path.length == 0.0
        assert path.blame() == {}
        assert path.ranked_blame() == []

    def test_single_span(self):
        path = critical_path([_span(0, 1.0, 3.0, blame={"a": 2.0})])
        assert path.length == pytest.approx(2.0)
        assert len(path.segments) == 1
        seg = path.segments[0]
        assert (seg.start, seg.end) == (1.0, 3.0)
        assert path.blame()["a"] == pytest.approx(2.0)

    def test_segments_tile_the_run_exactly(self):
        spans = [
            _span(0, 0.0, 10.0, cat="point", name="root"),
            _span(1, 1.0, 4.0, parent=0),
            _span(2, 5.0, 9.0, parent=0),
        ]
        path = critical_path(spans)
        assert path.length == pytest.approx(10.0)
        covered = sum(seg.duration for seg in path.segments)
        assert covered == pytest.approx(10.0)
        # Segments are ordered and contiguous.
        for left, right in zip(path.segments, path.segments[1:]):
            assert left.end == pytest.approx(right.start)

    def test_latest_ending_child_wins(self):
        spans = [
            _span(0, 0.0, 10.0, cat="point", name="root"),
            _span(1, 0.0, 9.0, parent=0, name="long"),
            _span(2, 0.0, 3.0, parent=0, name="short"),
        ]
        path = critical_path(spans)
        names = [seg.name for seg in path.segments]
        assert "long" in names
        # The short child is shadowed by the long one covering its window.
        assert "short" not in names

    def test_nested_children_descend(self):
        spans = [
            _span(0, 0.0, 8.0, cat="point", name="root"),
            _span(1, 1.0, 7.0, parent=0, name="mid"),
            _span(2, 2.0, 6.0, parent=1, name="leaf"),
        ]
        path = critical_path(spans)
        by_name = {seg.name: seg for seg in path.segments}
        assert by_name["leaf"].duration == pytest.approx(4.0)
        assert path.length == pytest.approx(8.0)

    def test_blame_is_prorated_by_overlap(self):
        # The child covers [2, 6] of its own [0, 8] extent on the path;
        # its 8s of blame must be charged at the 50% overlap fraction.
        spans = [
            _span(0, 0.0, 8.0, cat="point", name="root"),
            _span(1, 0.0, 8.0, parent=0, name="a", blame={"x": 8.0}),
            _span(2, 2.0, 6.0, parent=1, name="b", blame={"y": 4.0}),
        ]
        path = critical_path(spans)
        blame = path.blame()
        assert blame["y"] == pytest.approx(4.0)
        assert blame["x"] == pytest.approx(4.0)

    def test_prorated_blame_capped_at_segment_duration(self):
        # Over-reported blame (more seconds than the span lasted) must
        # not inflate a segment past its own duration.
        spans = [_span(0, 0.0, 2.0, blame={"x": 100.0, "y": 50.0})]
        path = critical_path(spans)
        assert sum(path.blame().values()) <= path.length + 1e-12

    def test_gap_between_children_is_unattributed(self):
        spans = [
            _span(0, 0.0, 10.0, cat="point", name="root"),
            _span(1, 0.0, 3.0, parent=0),
            _span(2, 7.0, 10.0, parent=0),
        ]
        path = critical_path(spans)
        assert path.unattributed() >= 4.0 - 1e-12
        assert UNATTRIBUTED not in dict(path.ranked_blame())

    def test_ranked_blame_sorted_descending(self):
        spans = [
            _span(0, 0.0, 6.0, blame={"small": 1.0, "big": 5.0}),
        ]
        ranked = critical_path(spans).ranked_blame()
        keys = [key for key, _ in ranked]
        assert keys == ["big", "small"]
        seconds = [s for _, s in ranked]
        assert seconds == sorted(seconds, reverse=True)

    def test_unfinished_spans_do_not_crash(self):
        spans = [
            _span(0, 0.0, 4.0, cat="point", name="root"),
            _span(1, 1.0, None, parent=0, name="dangling"),
        ]
        path = critical_path(spans)
        assert path.length == pytest.approx(4.0)

    def test_deterministic_across_input_order(self):
        spans = [
            _span(0, 0.0, 10.0, cat="point", name="root"),
            _span(1, 0.0, 4.0, parent=0, blame={"a": 4.0}),
            _span(2, 4.0, 10.0, parent=0, blame={"b": 6.0}),
            _span(3, 5.0, 9.0, parent=2, blame={"c": 4.0}),
        ]
        forward = critical_path(spans)
        backward = critical_path(list(reversed(spans)))
        assert [s.as_dict() for s in forward.segments] == [
            s.as_dict() for s in backward.segments
        ]

    def test_as_dict_shape(self):
        path = critical_path([_span(0, 0.0, 1.0, blame={"a": 1.0})])
        data = path.as_dict()
        assert set(data) >= {"length", "t0", "t1", "segments", "blame"}
        assert data["length"] == pytest.approx(1.0)

    def test_format_mentions_length_and_top_blame(self):
        text = critical_path(
            [_span(0, 0.0, 1.0, blame={"link/a:fwd": 1.0})]
        ).format()
        assert "critical path" in text
        assert "link/a:fwd" in text


class TestSubtreeAndExplain:
    def _dag(self):
        return [
            _span(0, 0.0, 10.0, cat="point", name="root"),
            _span(1, 0.0, 5.0, parent=0, name="left", blame={"a": 5.0}),
            _span(2, 5.0, 10.0, parent=0, name="right", blame={"b": 5.0}),
            _span(3, 6.0, 9.0, parent=2, name="leaf", blame={"c": 3.0}),
        ]

    def test_span_subtree(self):
        subtree = span_subtree(self._dag(), 2)
        names = {span["name"] for span in subtree}
        assert names == {"right", "leaf"}

    def test_span_subtree_unknown_id_raises(self):
        with pytest.raises(KeyError, match="no span with id 99"):
            span_subtree(self._dag(), 99)

    def test_explain_full_run(self):
        text = explain_spans(self._dag())
        assert "critical path" in text
        assert "a" in text and "b" in text

    def test_explain_subtree_excludes_siblings(self):
        text = explain_spans(self._dag(), span_id=2)
        assert "b" in text or "c" in text
        assert "a " not in text

    def test_explain_empty(self):
        assert "no spans recorded" in explain_spans([])

    def test_blame_ranking_helper(self):
        ranked = blame_ranking(self._dag())
        assert ranked
        keys = [key for key, _ in ranked]
        assert UNATTRIBUTED not in keys


class TestPathSegment:
    def test_duration_and_as_dict(self):
        seg = PathSegment(
            span_id=1,
            category="flow",
            name="copy",
            start=1.0,
            end=3.5,
            blame={"a": 2.0},
        )
        assert seg.duration == pytest.approx(2.5)
        data = seg.as_dict()
        assert data["name"] == "copy"
        assert data["blame"] == {"a": 2.0}

    def test_critical_path_container(self):
        seg = PathSegment(
            span_id=0, category="flow", name="x", start=0.0, end=1.0, blame={}
        )
        path = CriticalPath(segments=[seg], t0=0.0, t1=1.0)
        assert path.length == pytest.approx(1.0)

"""Unit tests for repro.units."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro import units


class TestConstants:
    def test_paper_rate_convention(self):
        # Footnote 3: 1 GB/s = 1e9 bytes/s.
        assert units.GBps == 1e9

    def test_binary_sizes(self):
        assert units.KiB == 1024
        assert units.MiB == 1024**2
        assert units.GiB == 1024**3

    def test_decimal_sizes(self):
        assert units.GB == 10**9


class TestTimeHelpers:
    def test_us_roundtrip(self):
        assert units.to_us(units.us(8.7)) == pytest.approx(8.7)

    def test_ns(self):
        assert units.ns(96) == pytest.approx(96e-9)

    def test_gbps_roundtrip(self):
        assert units.to_gbps(units.gbps(28.3)) == pytest.approx(28.3)


class TestParseSize:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("4K", 4096),
            ("4KiB", 4096),
            ("1MiB", 1024**2),
            ("1GB", 10**9),
            ("1 GB", 10**9),
            ("512", 512),
            ("2.5KiB", 2560),
            (123, 123),
        ],
    )
    def test_valid(self, text, expected):
        assert units.parse_size(text) == expected

    @pytest.mark.parametrize("text", ["", "abc", "4XB", "-5K", "4..5K"])
    def test_invalid(self, text):
        with pytest.raises(ValueError):
            units.parse_size(text)


class TestFormat:
    def test_format_size_exact(self):
        assert units.format_size(4096) == "4KiB"
        assert units.format_size(8 * units.GiB) == "8GiB"

    def test_format_size_fractional(self):
        assert units.format_size(1536) == "1.50KiB"

    def test_format_size_small(self):
        assert units.format_size(16) == "16B"

    def test_format_size_negative(self):
        with pytest.raises(ValueError):
            units.format_size(-1)

    def test_format_rate(self):
        assert units.format_rate(28.3e9) == "28.3 GB/s"

    def test_format_time_units(self):
        assert units.format_time(0) == "0s"
        assert units.format_time(96e-9) == "96.0ns"
        assert units.format_time(8.7e-6) == "8.7us"
        assert units.format_time(1.5e-3) == "1.50ms"
        assert units.format_time(2.0) == "2.000s"

    def test_format_time_negative(self):
        with pytest.raises(ValueError):
            units.format_time(-1.0)


class TestPow2Sizes:
    def test_commscope_sweep_endpoints(self):
        sizes = list(units.pow2_sizes(4 * units.KiB, 1 * units.GiB))
        assert sizes[0] == 4 * units.KiB
        assert sizes[-1] == 1 * units.GiB
        assert len(sizes) == 19

    def test_non_power_of_two_rejected(self):
        with pytest.raises(ValueError):
            list(units.pow2_sizes(3, 8))

    def test_reversed_range_rejected(self):
        with pytest.raises(ValueError):
            list(units.pow2_sizes(16, 8))

    @given(st.integers(0, 20), st.integers(0, 20))
    def test_every_element_is_power_of_two(self, a, b):
        lo, hi = 1 << min(a, b), 1 << max(a, b)
        for size in units.pow2_sizes(lo, hi):
            assert size & (size - 1) == 0


class TestGeometricMean:
    def test_known_value(self):
        assert units.geometric_mean([1, 4]) == pytest.approx(2.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            units.geometric_mean([])

    def test_nonpositive_rejected(self):
        with pytest.raises(ValueError):
            units.geometric_mean([1.0, 0.0])

    @given(st.lists(st.floats(0.1, 1e6), min_size=1, max_size=20))
    def test_between_min_and_max(self, values):
        gm = units.geometric_mean(values)
        assert min(values) <= gm * (1 + 1e-9)
        assert gm <= max(values) * (1 + 1e-9)

"""Unit + property tests for repro.topology.routing."""

import itertools

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import RoutingError
from repro.topology.link import LinkEndpoint
from repro.topology.presets import dense_hive_node, frontier_node
from repro.topology.routing import (
    RoutingPolicy,
    all_pairs_hops,
    all_pairs_routes,
    bandwidth_maximizing_path,
    detour_pairs,
    route_between,
    shortest_path,
)

GCD_PAIRS = [(a, b) for a in range(8) for b in range(8) if a != b]


class TestShortestPath:
    def test_local_route(self, topology):
        route = shortest_path(topology, 0, 0)
        assert route.is_local and route.num_hops == 0

    def test_adjacent(self, topology):
        route = shortest_path(topology, 0, 1)
        assert route.num_hops == 1

    def test_fig6a_two_hop_maximum(self, topology):
        # Paper §V-A1: "the length of the shortest path never exceeds
        # two hops".
        hops = all_pairs_hops(topology)
        assert max(hops.values()) == 2
        assert hops[(0, 0)] == 0

    def test_fig6a_symmetry(self, topology):
        hops = all_pairs_hops(topology)
        for a, b in GCD_PAIRS:
            assert hops[(a, b)] == hops[(b, a)]

    def test_deterministic(self, topology):
        r1 = shortest_path(topology, 0, 3)
        r2 = shortest_path(topology, 0, 3)
        assert r1.nodes == r2.nodes


class TestBandwidthMaximizing:
    def test_paper_detour_pairs(self, topology):
        # §V-A1: exactly 1-7 and 3-5 take a longer, wider route.
        pairs = {frozenset(p) for p in detour_pairs(topology)}
        assert pairs == {frozenset({1, 7}), frozenset({3, 5})}

    def test_1_7_route_matches_paper(self, topology):
        # "the path maximizing the bandwidth is composed of three hops
        # (1-0-6-7)".
        route = bandwidth_maximizing_path(topology, 1, 7)
        assert [n.index for n in route.nodes] == [1, 0, 6, 7]
        assert route.bottleneck_capacity == 100e9

    def test_3_5_route(self, topology):
        route = bandwidth_maximizing_path(topology, 3, 5)
        assert [n.index for n in route.nodes] == [3, 2, 4, 5]

    def test_never_narrower_than_shortest(self, topology):
        for a, b in GCD_PAIRS:
            wide = bandwidth_maximizing_path(topology, a, b)
            short = shortest_path(topology, a, b)
            assert wide.bottleneck_capacity >= short.bottleneck_capacity

    def test_bounded_detour(self, topology):
        for a, b in GCD_PAIRS:
            wide = bandwidth_maximizing_path(topology, a, b)
            short = shortest_path(topology, a, b)
            assert wide.num_hops <= short.num_hops + 2

    def test_route_links_are_consecutive(self, topology):
        for a, b in GCD_PAIRS:
            route = bandwidth_maximizing_path(topology, a, b)
            for src, dst, link in route.hop_pairs():
                assert link.connects(src, dst)

    def test_policy_dispatch(self, topology):
        short = route_between(topology, 1, 7, RoutingPolicy.SHORTEST)
        wide = route_between(topology, 1, 7, RoutingPolicy.BANDWIDTH_MAX)
        assert short.num_hops == 2 and wide.num_hops == 3

    def test_all_pairs_routes_cover_everything(self, topology):
        routes = all_pairs_routes(topology)
        assert len(routes) == len(GCD_PAIRS)
        for (a, b), route in routes.items():
            assert route.source == LinkEndpoint.gcd(a)
            assert route.destination == LinkEndpoint.gcd(b)

    def test_no_path_raises(self, topology):
        with pytest.raises(RoutingError):
            shortest_path(topology, 0, 99)


class TestDenseTopology:
    def test_dense_hive_is_single_hop(self):
        dense = dense_hive_node()
        hops = all_pairs_hops(dense)
        offdiag = [h for pair, h in hops.items() if pair[0] != pair[1]]
        assert max(offdiag) == 1

    def test_dense_hive_no_detours(self):
        assert detour_pairs(dense_hive_node()) == []


@given(st.integers(0, 7), st.integers(0, 7))
def test_routing_is_total_and_consistent(a, b):
    """Property: routes exist for every pair; endpoints match; the
    bottleneck equals the min of the traversed link capacities."""
    topology = frontier_node()
    route = bandwidth_maximizing_path(topology, a, b)
    assert route.source == LinkEndpoint.gcd(a)
    assert route.destination == LinkEndpoint.gcd(b)
    if a != b:
        capacities = [l.capacity_per_direction for l in route.links]
        assert route.bottleneck_capacity == min(capacities)
    else:
        assert route.is_local

"""Unit tests for repro.topology.node (NodeTopology + builder)."""

import pytest

from repro.errors import TopologyError
from repro.topology.link import LinkTier
from repro.topology.node import (
    GcdInfo,
    NodeTopologyBuilder,
    NumaDomainInfo,
)


def tiny_builder():
    builder = NodeTopologyBuilder("tiny")
    builder.add_numa_domain(NumaDomainInfo(index=0))
    for gcd in range(2):
        builder.add_gcd(GcdInfo(index=gcd, gpu_package=0, numa_domain=0))
        builder.connect_cpu(gcd, 0)
    builder.connect_gcds(0, 1, 4)
    return builder


class TestBuilderValidation:
    def test_duplicate_gcd_rejected(self):
        builder = tiny_builder()
        builder.add_gcd(GcdInfo(index=0, gpu_package=0, numa_domain=0))
        with pytest.raises(TopologyError):
            builder.build()

    def test_unknown_numa_rejected(self):
        builder = NodeTopologyBuilder()
        builder.add_numa_domain(NumaDomainInfo(index=0))
        builder.add_gcd(GcdInfo(index=0, gpu_package=0, numa_domain=7))
        builder.connect_cpu(0, 0)
        with pytest.raises(TopologyError):
            builder.build()

    def test_disconnected_rejected(self):
        builder = NodeTopologyBuilder()
        builder.add_numa_domain(NumaDomainInfo(index=0))
        builder.add_gcd(GcdInfo(index=0, gpu_package=0, numa_domain=0))
        builder.add_gcd(GcdInfo(index=1, gpu_package=0, numa_domain=0))
        builder.connect_cpu(0, 0)  # GCD 1 left floating
        with pytest.raises(TopologyError):
            builder.build()

    def test_parallel_edges_rejected(self):
        builder = tiny_builder()
        builder.connect_gcds(0, 1, 1)
        with pytest.raises(TopologyError):
            builder.build()

    def test_negative_gcd_params_rejected(self):
        with pytest.raises(TopologyError):
            GcdInfo(index=0, gpu_package=0, numa_domain=0, hbm_bytes=0)
        with pytest.raises(TopologyError):
            NumaDomainInfo(index=0, dram_bytes=-1)


class TestQueries:
    def test_frontier_counts(self, topology):
        assert topology.num_gcds == 8
        assert topology.num_gpu_packages == 4
        assert topology.num_numa_domains == 4

    def test_gcd_lookup(self, topology):
        assert topology.gcd(3).gpu_package == 1
        with pytest.raises(TopologyError):
            topology.gcd(42)

    def test_link_between(self, topology):
        link = topology.link_between(0, 1)
        assert link is not None and link.tier is LinkTier.QUAD
        assert topology.link_between(0, 7) is None

    def test_require_link_raises(self, topology):
        with pytest.raises(TopologyError):
            topology.require_link(0, 7)

    def test_gcd_neighbors(self, topology):
        # Fig. 1: GCD0 is adjacent to 1 (quad), 2 (single), 6 (dual).
        assert topology.gcd_neighbors(0) == [1, 2, 6]

    def test_peer_tier(self, topology):
        assert topology.peer_tier(0, 1) is LinkTier.QUAD
        assert topology.peer_tier(0, 6) is LinkTier.DUAL
        assert topology.peer_tier(0, 2) is LinkTier.SINGLE
        assert topology.peer_tier(0, 7) is None

    def test_same_package(self, topology):
        assert topology.same_package(0, 1)
        assert not topology.same_package(1, 2)

    def test_package_peer(self, topology):
        assert topology.package_peer(0) == 1
        assert topology.package_peer(7) == 6

    def test_numa_affinity(self, topology):
        for gcd in range(8):
            assert topology.numa_of_gcd(gcd) == gcd // 2
        assert topology.gcds_of_numa(0) == [0, 1]

    def test_cpu_link_of_gcd(self, topology):
        link = topology.cpu_link_of_gcd(5)
        assert link.tier is LinkTier.CPU
        assert link.capacity_per_direction == 36e9

    def test_aggregate_cpu_bandwidth(self, topology):
        assert topology.aggregate_cpu_bandwidth() == 8 * 36e9

    def test_census(self, topology):
        census = topology.link_census()
        assert census[LinkTier.QUAD] == 4
        assert census[LinkTier.DUAL] == 2
        assert census[LinkTier.SINGLE] == 6
        assert census[LinkTier.CPU] == 8

    def test_graph_copy_is_independent(self, topology):
        graph = topology.graph()
        graph.remove_node(next(iter(graph.nodes)))
        # The original is untouched.
        assert topology.num_gcds == 8

    def test_describe_mentions_tiers(self, topology):
        text = topology.describe()
        assert "quad" in text and "single" in text and "cpu" in text

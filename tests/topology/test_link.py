"""Unit tests for repro.topology.link."""

import pytest

from repro.errors import TopologyError
from repro.topology.link import (
    CPU_LINK_BW,
    XGMI_LINK_BW,
    Link,
    LinkEndpoint,
    LinkTier,
    as_endpoint,
)


class TestLinkTier:
    def test_xgmi_peaks_match_paper(self):
        # §II-A: single/dual/quad of 50+50 GB/s links.
        assert LinkTier.SINGLE.peak_unidirectional == 50e9
        assert LinkTier.DUAL.peak_unidirectional == 100e9
        assert LinkTier.QUAD.peak_unidirectional == 200e9

    def test_cpu_peak_matches_paper(self):
        # §II-A: 36 GB/s theoretical peak per direction.
        assert LinkTier.CPU.peak_unidirectional == 36e9

    def test_bidirectional_is_double(self):
        for tier in LinkTier:
            assert tier.peak_bidirectional == 2 * tier.peak_unidirectional

    def test_widths(self):
        assert LinkTier.SINGLE.width == 1
        assert LinkTier.DUAL.width == 2
        assert LinkTier.QUAD.width == 4
        assert LinkTier.CPU.width == 1

    def test_from_width(self):
        assert LinkTier.from_width(1) is LinkTier.SINGLE
        assert LinkTier.from_width(2) is LinkTier.DUAL
        assert LinkTier.from_width(4) is LinkTier.QUAD

    def test_from_width_invalid(self):
        with pytest.raises(TopologyError):
            LinkTier.from_width(3)

    def test_constants(self):
        assert XGMI_LINK_BW == 50e9
        assert CPU_LINK_BW == 36e9


class TestLinkEndpoint:
    def test_ordering_and_equality(self):
        assert LinkEndpoint.gcd(0) < LinkEndpoint.gcd(1)
        assert LinkEndpoint.gcd(3) == LinkEndpoint.gcd(3)
        assert LinkEndpoint.gcd(0) != LinkEndpoint.numa(0)

    def test_kind_validation(self):
        with pytest.raises(TopologyError):
            LinkEndpoint("cpu", 0)
        with pytest.raises(TopologyError):
            LinkEndpoint("gcd", -1)

    def test_as_endpoint_coerces_int(self):
        assert as_endpoint(5) == LinkEndpoint.gcd(5)
        ep = LinkEndpoint.numa(2)
        assert as_endpoint(ep) is ep


class TestLink:
    def test_xgmi_link(self):
        link = Link(LinkEndpoint.gcd(0), LinkEndpoint.gcd(1), LinkTier.QUAD)
        assert link.capacity_per_direction == 200e9
        assert not link.is_cpu_link

    def test_cpu_link_endpoint_rules(self):
        Link(LinkEndpoint.gcd(0), LinkEndpoint.numa(0), LinkTier.CPU)
        with pytest.raises(TopologyError):
            Link(LinkEndpoint.gcd(0), LinkEndpoint.gcd(1), LinkTier.CPU)
        with pytest.raises(TopologyError):
            Link(LinkEndpoint.gcd(0), LinkEndpoint.numa(0), LinkTier.SINGLE)

    def test_self_link_rejected(self):
        with pytest.raises(TopologyError):
            Link(LinkEndpoint.gcd(1), LinkEndpoint.gcd(1), LinkTier.SINGLE)

    def test_name_is_order_independent(self):
        a = Link(LinkEndpoint.gcd(0), LinkEndpoint.gcd(2), LinkTier.SINGLE)
        b = Link(LinkEndpoint.gcd(2), LinkEndpoint.gcd(0), LinkTier.SINGLE)
        assert a.name == b.name

    def test_other(self):
        link = Link(LinkEndpoint.gcd(0), LinkEndpoint.gcd(6), LinkTier.DUAL)
        assert link.other(LinkEndpoint.gcd(0)) == LinkEndpoint.gcd(6)
        with pytest.raises(TopologyError):
            link.other(LinkEndpoint.gcd(3))

    def test_connects(self):
        link = Link(LinkEndpoint.gcd(0), LinkEndpoint.gcd(6), LinkTier.DUAL)
        assert link.connects(0, 6)
        assert link.connects(6, 0)
        assert not link.connects(0, 1)


class TestNicTier:
    def test_nic_peak_and_width(self):
        from repro.topology.link import NIC_LINK_BW

        assert LinkTier.NIC.peak_unidirectional == NIC_LINK_BW == 25e9
        assert LinkTier.NIC.peak_bidirectional == 50e9
        assert LinkTier.NIC.width == 1

    def test_nic_endpoint_rules(self):
        link = Link(LinkEndpoint.numa(0), LinkEndpoint.numa(4), LinkTier.NIC)
        assert link.is_nic_link and not link.is_cpu_link
        with pytest.raises(TopologyError):
            Link(LinkEndpoint.gcd(0), LinkEndpoint.numa(4), LinkTier.NIC)
        with pytest.raises(TopologyError):
            Link(LinkEndpoint.gcd(0), LinkEndpoint.gcd(8), LinkTier.NIC)

    def test_nic_tier_round_trips_through_name(self):
        link = Link(LinkEndpoint.numa(0), LinkEndpoint.numa(4), LinkTier.NIC)
        assert link.name == "numa0-numa4:nic"
        assert Link.tier_from_name(link.name) is LinkTier.NIC

    def test_nic_channel_name_peak_bandwidth(self):
        from repro.topology.link import peak_bandwidth_of_channel_name

        assert (
            peak_bandwidth_of_channel_name("link/numa0-numa4:nic/fwd") == 25e9
        )


class TestCapacityOverride:
    def test_override_replaces_tier_peak(self):
        link = Link(
            LinkEndpoint.gcd(0),
            LinkEndpoint.gcd(1),
            LinkTier.SINGLE,
            capacity_override=42e9,
        )
        assert link.capacity_per_direction == 42e9
        assert link.capacity_bidirectional == 84e9

    def test_no_override_keeps_tier_peak(self):
        link = Link(LinkEndpoint.gcd(0), LinkEndpoint.gcd(1), LinkTier.SINGLE)
        assert link.capacity_override is None
        assert link.capacity_per_direction == LinkTier.SINGLE.peak_unidirectional

    def test_name_is_unchanged_by_override(self):
        plain = Link(LinkEndpoint.gcd(0), LinkEndpoint.gcd(1), LinkTier.SINGLE)
        tuned = Link(
            LinkEndpoint.gcd(0),
            LinkEndpoint.gcd(1),
            LinkTier.SINGLE,
            capacity_override=42e9,
        )
        assert plain.name == tuned.name

    @pytest.mark.parametrize("bad", [0.0, -1e9, float("inf"), float("nan")])
    def test_rejects_non_positive_or_non_finite(self, bad):
        with pytest.raises(TopologyError, match="capacity override"):
            Link(
                LinkEndpoint.gcd(0),
                LinkEndpoint.gcd(1),
                LinkTier.SINGLE,
                capacity_override=bad,
            )

    def test_integer_override_is_coerced_to_float(self):
        link = Link(
            LinkEndpoint.gcd(0),
            LinkEndpoint.gcd(1),
            LinkTier.SINGLE,
            capacity_override=42_000_000_000,
        )
        assert link.capacity_override == 42e9
        assert isinstance(link.capacity_override, float)

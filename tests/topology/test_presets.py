"""Tests for the canonical topologies (repro.topology.presets)."""

import pytest

from repro.topology.link import LinkTier
from repro.topology.presets import (
    FRONTIER_SINGLE_LINK_PAIRS,
    dense_hive_node,
    frontier_node,
    single_gpu_node,
)


class TestFrontierPreset:
    def test_paper_narrative_gcd0(self, topology):
        # §II-A: GCD0 — quad to GCD1, dual to GCD6, single to GCD2.
        assert topology.peer_tier(0, 1) is LinkTier.QUAD
        assert topology.peer_tier(0, 6) is LinkTier.DUAL
        assert topology.peer_tier(0, 2) is LinkTier.SINGLE

    def test_single_link_pairs_match_fig6b_class(self, topology):
        singles = {
            frozenset((l.a.index, l.b.index))
            for l in topology.xgmi_links()
            if l.tier is LinkTier.SINGLE
        }
        assert singles == set(FRONTIER_SINGLE_LINK_PAIRS)

    def test_quad_pairs_are_packages(self, topology):
        quads = {
            frozenset((l.a.index, l.b.index))
            for l in topology.xgmi_links()
            if l.tier is LinkTier.QUAD
        }
        assert quads == {
            frozenset(p) for p in ((0, 1), (2, 3), (4, 5), (6, 7))
        }

    def test_every_gcd_has_exactly_one_cpu_link(self, topology):
        counts = {g.index: 0 for g in topology.gcds()}
        for link in topology.cpu_links():
            gcd_end = link.a if link.a.is_gcd else link.b
            counts[gcd_end.index] += 1
        assert all(count == 1 for count in counts.values())

    def test_package_shares_numa(self, topology):
        for gcd in range(0, 8, 2):
            assert topology.numa_of_gcd(gcd) == topology.numa_of_gcd(gcd + 1)

    def test_mi250x_per_gcd_specs(self, topology):
        gcd = topology.gcd(0)
        assert gcd.hbm_bytes == 64 * 10**9
        assert gcd.hbm_peak_bw == 1.6e12
        assert gcd.l2_bytes == 8 * 2**20

    def test_epyc_specs(self, topology):
        numa = topology.numa_domain(0)
        assert numa.dram_latency == pytest.approx(96e-9)
        total_bw = sum(n.dram_peak_bw for n in topology.numa_domains())
        assert total_bw == pytest.approx(204.8e9)
        total_dram = sum(n.dram_bytes for n in topology.numa_domains())
        assert total_dram == 512 * 10**9

    def test_fresh_instances_are_equivalent(self):
        a, b = frontier_node(), frontier_node()
        assert a.link_census() == b.link_census()


class TestOtherPresets:
    def test_single_gpu_node(self):
        node = single_gpu_node()
        assert node.num_gcds == 2
        assert node.peer_tier(0, 1) is LinkTier.QUAD
        assert node.num_numa_domains == 1

    def test_dense_hive_default(self):
        node = dense_hive_node()
        assert node.num_gcds == 8
        # fully connected: 8*7/2 GCD-GCD edges
        assert sum(1 for _ in node.xgmi_links()) == 28

    def test_dense_hive_small(self):
        node = dense_hive_node(1)
        assert node.num_gcds == 2

    def test_dense_hive_invalid(self):
        import pytest as _pytest

        from repro.errors import TopologyError

        with _pytest.raises(TopologyError):
            dense_hive_node(0)


class TestClusterPreset:
    def test_single_node_cluster_rejected(self):
        # Regression: nodes=1 used to thread through the ``nodes - 1``
        # NIC-census special case and silently build a zero-NIC
        # "cluster" that was just a mislabelled frontier node.
        from repro.errors import TopologyError
        from repro.topology.presets import mi250x_cluster

        with pytest.raises(TopologyError, match="at least two nodes"):
            mi250x_cluster(nodes=1)

    def test_two_node_census_regression(self):
        # Pin the nodes=2 duplicate-edge fix with the full link census:
        # each rail collapses to ONE edge (numa_d — numa_{4+d}), so the
        # census must show exactly 4 NIC links — 8 would mean the ring
        # wrapped around and double-connected every rail.
        from repro.topology.presets import mi250x_cluster

        cluster = mi250x_cluster(nodes=2)
        census = cluster.link_census()
        assert census == {
            LinkTier.QUAD: 8,
            LinkTier.DUAL: 4,
            LinkTier.SINGLE: 12,
            LinkTier.CPU: 16,
            LinkTier.NIC: 4,
        }
        rails = {
            frozenset((l.a.index, l.b.index)) for l in cluster.nic_links()
        }
        assert rails == {frozenset((d, 4 + d)) for d in range(4)}

    def test_each_node_replicates_fig1(self):
        from repro.topology.presets import mi250x_cluster

        cluster = mi250x_cluster(nodes=4)
        assert cluster.num_gcds == 32
        assert cluster.num_numa_domains == 16
        assert cluster.num_gpu_packages == 16
        for base in (0, 8, 16, 24):
            assert cluster.peer_tier(base, base + 1) is LinkTier.QUAD
            assert cluster.peer_tier(base, base + 6) is LinkTier.DUAL
            assert cluster.peer_tier(base, base + 2) is LinkTier.SINGLE

    def test_nic_rails_form_a_ring(self):
        from repro.topology.presets import mi250x_cluster

        cluster = mi250x_cluster(nodes=4)
        # 4 rails × 4 ring edges.
        assert sum(1 for _ in cluster.nic_links()) == 16
        # Two-node clusters must not duplicate ring edges.
        assert sum(1 for _ in mi250x_cluster(nodes=2).nic_links()) == 4

    def test_nic_links_stay_out_of_xgmi_census(self):
        from repro.topology.presets import mi250x_cluster

        cluster = mi250x_cluster(nodes=2)
        assert all(
            l.a.is_gcd and l.b.is_gcd for l in cluster.xgmi_links()
        )

    def test_invalid_node_count(self):
        from repro.errors import TopologyError
        from repro.topology.presets import mi250x_cluster

        with pytest.raises(TopologyError):
            mi250x_cluster(nodes=0)

    def test_session_preset_names(self):
        from repro.session import resolve_topology

        assert resolve_topology("mi250x-cluster").num_gcds == 32
        assert resolve_topology("mi250x-cluster-16").num_gcds == 128
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            resolve_topology("mi250x-cluster-0")
        with pytest.raises(ConfigurationError):
            resolve_topology("mi250x-cluster-1")
        with pytest.raises(ConfigurationError):
            resolve_topology("mi250x-cluster-many")

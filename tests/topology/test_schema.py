"""Tests for the repro-topology/1 schema (repro.topology.schema)."""

import json
import pathlib

import pytest

from repro.errors import TopologyError
from repro.topology import (
    TOPOLOGY_SCHEMA,
    dump_topology,
    frontier_node,
    load_topology,
    mi250x_cluster,
    single_gpu_node,
    topology_from_json,
    topology_to_json,
)
from repro.topology.schema import PRESET_EXPORTS, parse_endpoint

TOPOLOGY_DIR = pathlib.Path(__file__).resolve().parents[2] / "benchmarks" / "topologies"
COMMITTED = sorted(TOPOLOGY_DIR.glob("*.json"))


class TestEndpoints:
    def test_parse(self):
        assert str(parse_endpoint("gcd0")) == "gcd0"
        assert str(parse_endpoint("numa12")) == "numa12"

    @pytest.mark.parametrize("bad", ["gcd", "numa-1", "gcd01x", "cpu0", "", "gcd00"])
    def test_rejects_malformed(self, bad):
        with pytest.raises(TopologyError, match="endpoint"):
            parse_endpoint(bad)


class TestRoundTrip:
    @pytest.mark.parametrize(
        "factory", [frontier_node, single_gpu_node, lambda: mi250x_cluster(2)]
    )
    def test_json_round_trip_is_fingerprint_identical(self, factory):
        original = factory()
        rebuilt = topology_from_json(topology_to_json(original))
        assert rebuilt.fingerprint() == original.fingerprint()
        assert rebuilt.link_census() == original.link_census()

    def test_dump_load_dump_is_a_fixpoint(self, tmp_path):
        path = tmp_path / "node.json"
        dump_topology(frontier_node(), path)
        first = path.read_text()
        dump_topology(load_topology(path), path)
        assert path.read_text() == first

    def test_name_defaults_to_file_stem_without_entering_fingerprint(
        self, tmp_path
    ):
        payload = topology_to_json(frontier_node())
        del payload["name"]
        path = tmp_path / "my_machine.json"
        path.write_text(json.dumps(payload))
        loaded = load_topology(path)
        assert loaded.name == "my_machine"
        assert loaded.fingerprint() == frontier_node().fingerprint()

    def test_yaml_round_trip(self, tmp_path):
        yaml = pytest.importorskip("yaml")
        del yaml
        path = tmp_path / "node.yaml"
        dump_topology(frontier_node(), path)
        assert load_topology(path).fingerprint() == frontier_node().fingerprint()


class TestCommittedFiles:
    def test_every_preset_export_is_committed(self):
        stems = {path.stem for path in COMMITTED}
        assert set(PRESET_EXPORTS) <= stems

    @pytest.mark.parametrize("path", COMMITTED, ids=lambda p: p.stem)
    def test_committed_file_is_valid_and_round_trips(self, path, tmp_path):
        topology = load_topology(path)
        rebuilt = topology_from_json(topology_to_json(topology))
        assert rebuilt.fingerprint() == topology.fingerprint()

    @pytest.mark.parametrize("stem", sorted(PRESET_EXPORTS))
    def test_committed_file_matches_code_preset(self, stem):
        preset = PRESET_EXPORTS[stem]()
        loaded = load_topology(TOPOLOGY_DIR / f"{stem}.json")
        assert loaded.fingerprint() == preset.fingerprint()

    def test_mi300a_example_shape(self):
        topology = load_topology(TOPOLOGY_DIR / "mi300a_quad_apu.json")
        assert topology.num_gcds == 4
        assert topology.num_numa_domains == 4
        from repro.topology.link import LinkTier

        assert topology.link_census() == {LinkTier.DUAL: 6, LinkTier.CPU: 4}


class TestStrictValidation:
    def _payload(self):
        return topology_to_json(single_gpu_node())

    def test_rejects_wrong_schema(self):
        payload = self._payload()
        payload["schema"] = "repro-topology/9"
        with pytest.raises(TopologyError, match="unsupported topology schema"):
            topology_from_json(payload)

    def test_rejects_unknown_top_level_key(self):
        payload = self._payload()
        payload["nodes"] = 2
        with pytest.raises(TopologyError, match="unknown fields"):
            topology_from_json(payload)

    def test_rejects_unknown_gcd_key(self):
        payload = self._payload()
        payload["gcds"][0]["xgmi_ports"] = 7
        with pytest.raises(TopologyError, match="unknown fields"):
            topology_from_json(payload)

    def test_rejects_wrong_sdma_engine_count(self):
        payload = self._payload()
        payload["gcds"][0]["sdma_engines"] = 4
        with pytest.raises(TopologyError, match="sdma_engines"):
            topology_from_json(payload)

    def test_rejects_capacity_tier_mismatch(self):
        payload = self._payload()
        quad = next(l for l in payload["links"] if l["tier"] == "quad")
        quad["capacity_per_direction"] = 123e9
        with pytest.raises(TopologyError, match="capacity_per_direction"):
            topology_from_json(payload)

    def test_rejects_unknown_tier(self):
        payload = self._payload()
        payload["links"][0]["tier"] = "octo"
        with pytest.raises(TopologyError, match="unknown link tier"):
            topology_from_json(payload)

    def test_rejects_missing_section(self):
        payload = self._payload()
        del payload["links"]
        with pytest.raises(TopologyError, match="missing 'links'"):
            topology_from_json(payload)

    def test_rejects_non_integer_index(self):
        payload = self._payload()
        payload["gcds"][0]["index"] = "zero"
        with pytest.raises(TopologyError, match="must be an integer"):
            topology_from_json(payload)

    def test_load_reports_bad_json(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        with pytest.raises(TopologyError, match="not valid JSON"):
            load_topology(path)

    def test_load_reports_missing_file(self, tmp_path):
        with pytest.raises(TopologyError, match="cannot read"):
            load_topology(tmp_path / "absent.json")

    def test_schema_constant(self):
        assert TOPOLOGY_SCHEMA == "repro-topology/1"
        assert topology_to_json(frontier_node())["schema"] == TOPOLOGY_SCHEMA


class TestCapacityOverride:
    @staticmethod
    def _build(**kwargs):
        from repro.topology.node import (
            GcdInfo,
            NodeTopologyBuilder,
            NumaDomainInfo,
        )

        builder = NodeTopologyBuilder("tuned")
        builder.add_numa_domain(NumaDomainInfo(index=0))
        for gcd in range(2):
            builder.add_gcd(GcdInfo(index=gcd, gpu_package=0, numa_domain=0))
            builder.connect_cpu(gcd, 0)
        builder.connect_gcds(0, 1, 4, **kwargs)
        return builder.build()

    def _node_with_override(self):
        return self._build(capacity_gbps=168.0)

    def test_override_round_trips_through_json(self):
        original = self._node_with_override()
        payload = topology_to_json(original)
        entry = next(l for l in payload["links"] if l["tier"] == "quad")
        assert entry["capacity_gbps"] == pytest.approx(168.0)
        rebuilt = topology_from_json(payload)
        assert rebuilt.fingerprint() == original.fingerprint()
        link = next(l for l in rebuilt.links() if l.tier.name == "QUAD")
        assert link.capacity_per_direction == pytest.approx(168e9)

    def test_override_changes_the_fingerprint(self):
        assert (
            self._build().fingerprint()
            != self._build(capacity_gbps=168.0).fingerprint()
        )

    def test_dump_load_dump_is_a_fixpoint(self, tmp_path):
        path = tmp_path / "tuned.json"
        dump_topology(self._node_with_override(), path)
        first = path.read_text()
        dump_topology(load_topology(path), path)
        assert path.read_text() == first

    def test_rejects_non_positive_override(self):
        payload = topology_to_json(self._node_with_override())
        entry = next(l for l in payload["links"] if l["tier"] == "quad")
        entry["capacity_gbps"] = -1.0
        with pytest.raises(TopologyError, match="capacity_gbps must be positive"):
            topology_from_json(payload)

    def test_rejects_boolean_override(self):
        payload = topology_to_json(self._node_with_override())
        entry = next(l for l in payload["links"] if l["tier"] == "quad")
        entry["capacity_gbps"] = True
        with pytest.raises(TopologyError, match="capacity_gbps must be a number"):
            topology_from_json(payload)

    def test_informative_capacity_checks_against_override(self):
        payload = topology_to_json(self._node_with_override())
        entry = next(l for l in payload["links"] if l["tier"] == "quad")
        assert entry["capacity_per_direction"] == pytest.approx(168e9)
        entry["capacity_per_direction"] = 200e9
        with pytest.raises(TopologyError, match="disagrees"):
            topology_from_json(payload)

"""Tests for repro.topology.numa."""

import numpy as np
import pytest

from repro.errors import TopologyError
from repro.topology.numa import (
    NumaMap,
    gcds_per_numa_count,
    interleave_placement,
    numa_distance_matrix,
    numa_mismatch_pairs,
)


class TestNumaMap:
    def test_from_topology(self, topology):
        numa_map = NumaMap.from_topology(topology)
        assert numa_map.gcd_to_numa == (0, 0, 1, 1, 2, 2, 3, 3)
        assert numa_map.num_gcds == 8
        assert numa_map.num_numa_domains == 4

    def test_default_host_numa(self, topology):
        numa_map = NumaMap.from_topology(topology)
        assert numa_map.default_host_numa_for(5) == 2
        with pytest.raises(TopologyError):
            numa_map.default_host_numa_for(8)

    def test_gcds_of(self, topology):
        numa_map = NumaMap.from_topology(topology)
        assert numa_map.gcds_of(3) == (6, 7)
        with pytest.raises(TopologyError):
            numa_map.gcds_of(9)

    def test_is_local(self, topology):
        numa_map = NumaMap.from_topology(topology)
        assert numa_map.is_local(0, 0)
        assert not numa_map.is_local(0, 3)

    def test_as_table(self, topology):
        table = NumaMap.from_topology(topology).as_table()
        assert table[6] == 3


class TestDistanceMatrix:
    def test_single_socket_shape(self):
        matrix = numa_distance_matrix(4)
        assert matrix.shape == (4, 4)
        assert (np.diag(matrix) == 10).all()
        off = matrix[~np.eye(4, dtype=bool)]
        # All off-diagonal distances equal: the property behind the
        # paper's "no NUMA degradation" finding.
        assert (off == off[0]).all()

    def test_invalid(self):
        with pytest.raises(TopologyError):
            numa_distance_matrix(0)


class TestPlacementHelpers:
    def test_interleave_round_robin(self):
        assert [interleave_placement(i, 4) for i in range(6)] == [0, 1, 2, 3, 0, 1]

    def test_interleave_invalid(self):
        with pytest.raises(TopologyError):
            interleave_placement(0, 0)

    def test_mismatch_pairs_count(self, topology):
        pairs = numa_mismatch_pairs(topology)
        # 8 GCDs × 3 non-local NUMA domains each.
        assert len(pairs) == 24
        for gcd, numa in pairs:
            assert topology.numa_of_gcd(gcd) != numa

    def test_gcds_per_numa_count(self, topology):
        counts = gcds_per_numa_count([0, 1, 2], topology)
        assert counts == {0: 2, 1: 1}
        # The Fig. 4 mechanism: same-GPU placement doubles on one domain.
        assert max(gcds_per_numa_count([0, 1], topology).values()) == 2
        assert max(gcds_per_numa_count([0, 2], topology).values()) == 1

"""Tests for the extended benchmark surface: osu_latency, osu_bibw,
osu_mbw_mr and the bidirectional p2p matrix mode."""

import pytest

from repro.bench_suites.osu import osu_bibw, osu_bw, osu_latency, osu_mbw_mr
from repro.bench_suites.p2p_matrix import (
    measure_pair_bandwidth,
    measure_pair_bandwidth_bidirectional,
)
from repro.errors import BenchmarkError
from repro.units import GiB, KiB, MiB, to_gbps, to_us


class TestOsuLatency:
    def test_small_message_latency_is_host_dominated(self):
        lat = osu_latency(0, 1, message_bytes=8)
        # Eager path: message overhead + GPU pointer lookup per leg.
        assert 5 < to_us(lat) < 30

    def test_rendezvous_adds_handshake(self):
        eager = osu_latency(0, 1, message_bytes=8 * KiB)
        rendezvous = osu_latency(0, 1, message_bytes=8 * KiB + 1)
        assert rendezvous > eager

    def test_latency_grows_with_size(self):
        small = osu_latency(0, 1, message_bytes=1 * KiB)
        large = osu_latency(0, 1, message_bytes=4 * MiB)
        assert large > 2 * small

    def test_same_gcd_rejected(self):
        with pytest.raises(BenchmarkError):
            osu_latency(2, 2)


class TestOsuBibw:
    def test_bidirectional_roughly_doubles(self):
        uni = osu_bw(0, 1, message_bytes=1 * GiB)
        bidi = osu_bibw(0, 1, message_bytes=1 * GiB)
        assert bidi == pytest.approx(2 * uni, rel=0.1)

    def test_same_gcd_rejected(self):
        with pytest.raises(BenchmarkError):
            osu_bibw(1, 1)


class TestOsuMbwMr:
    def test_disjoint_pairs_scale(self):
        one = osu_mbw_mr([(0, 1)], message_bytes=256 * MiB)
        # 0-1 (quad) and 4-5 (quad): disjoint links and engines.
        two = osu_mbw_mr([(0, 1), (4, 5)], message_bytes=256 * MiB)
        assert two == pytest.approx(2 * one, rel=0.05)

    def test_pairs_sharing_a_bottleneck_do_not_scale_linearly(self):
        # 0->2 and 1->3 are independent single links: they scale; but
        # 0->2 twice would share — exercised via duplicate detection.
        with pytest.raises(BenchmarkError):
            osu_mbw_mr([(0, 2), (0, 3)])  # GCD0 used twice

    def test_empty_rejected(self):
        with pytest.raises(BenchmarkError):
            osu_mbw_mr([])


class TestBidirectionalP2pMatrix:
    def test_doubles_on_quad(self):
        uni = measure_pair_bandwidth(0, 1, size=1 * GiB)
        bidi = measure_pair_bandwidth_bidirectional(0, 1, size=1 * GiB)
        assert bidi == pytest.approx(2 * uni, rel=0.05)

    def test_single_link_both_directions_fit(self):
        # 37.75 each way on a 50+50 link: directions are independent.
        bidi = measure_pair_bandwidth_bidirectional(0, 2, size=1 * GiB)
        assert to_gbps(bidi) == pytest.approx(2 * 37.75, rel=0.05)

    def test_same_gcd_rejected(self):
        with pytest.raises(BenchmarkError):
            measure_pair_bandwidth_bidirectional(0, 0)

"""Tests for the STREAM and p2pBandwidthLatencyTest suites."""

import pytest

from repro.bench_suites.p2p_matrix import (
    bandwidth_matrix,
    hop_matrix,
    latency_matrix,
    measure_pair_bandwidth,
    measure_pair_latency,
)
from repro.bench_suites.stream import (
    direct_p2p_read,
    dual_gcd_experiment,
    host_zero_copy_stream,
    local_stream_copy,
    multi_gpu_cpu_stream,
    remote_stream_copy,
    remote_stream_sweep,
    scaling_experiment,
)
from repro.errors import BenchmarkError
from repro.units import GiB, MiB, to_gbps, to_us


class TestStreamSuite:
    def test_local_reference(self):
        assert to_gbps(local_stream_copy(0, 1 * GiB)) == pytest.approx(
            1400, rel=0.01
        )

    def test_remote_tiers(self):
        assert to_gbps(remote_stream_copy(0, 1, 1 * GiB)) == pytest.approx(
            174, rel=0.01
        )
        assert to_gbps(remote_stream_copy(0, 6, 1 * GiB)) == pytest.approx(
            87, rel=0.01
        )
        assert to_gbps(remote_stream_copy(0, 2, 1 * GiB)) == pytest.approx(
            43.5, rel=0.01
        )

    def test_remote_requires_distinct(self):
        with pytest.raises(BenchmarkError):
            remote_stream_copy(0, 0, 1 * MiB)

    def test_direct_p2p_unidirectional(self):
        assert to_gbps(direct_p2p_read(0, 2, 1 * GiB)) == pytest.approx(
            44, rel=0.01
        )

    def test_host_zero_copy(self):
        assert to_gbps(host_zero_copy_stream(0, 1 * GiB)) == pytest.approx(
            45, rel=0.01
        )

    def test_multi_gpu_validation(self):
        with pytest.raises(BenchmarkError):
            multi_gpu_cpu_stream([])
        with pytest.raises(BenchmarkError):
            multi_gpu_cpu_stream([0, 0])

    def test_dual_gcd_experiment_shape(self):
        result = dual_gcd_experiment(256 * MiB)
        by_case = {m.meta["case"]: m.value for m in result.measurements}
        assert by_case["2 GCDs (same GPU)"] == pytest.approx(
            by_case["1 GCD"], rel=0.05
        )
        assert by_case["2 GCDs (spread)"] == pytest.approx(
            2 * by_case["1 GCD"], rel=0.05
        )

    def test_scaling_experiment_shape(self):
        result = scaling_experiment((1, 4, 8), 256 * MiB)
        by_count = {int(m.x): m.value for m in result.measurements}
        assert by_count[4] == pytest.approx(4 * by_count[1], rel=0.05)
        assert by_count[8] == pytest.approx(by_count[4], rel=0.05)

    def test_remote_sweep_grid(self):
        result = remote_stream_sweep(0, (1, 2), sizes=[256 * MiB, 1 * GiB])
        assert len(result) == 4


class TestP2pMatrixSuite:
    def test_hop_matrix_matches_routing(self, topology):
        hops = hop_matrix(topology)
        assert hops[(1, 7)] == 2 and hops[(0, 1)] == 1

    def test_pair_latency_classes(self):
        assert to_us(measure_pair_latency(0, 2)) == pytest.approx(8.7, abs=0.35)
        quad = to_us(measure_pair_latency(0, 1))
        assert 10.5 <= quad <= 10.8

    def test_pair_latency_requires_distinct(self):
        with pytest.raises(BenchmarkError):
            measure_pair_latency(3, 3)

    def test_pair_bandwidth(self):
        assert to_gbps(measure_pair_bandwidth(0, 1)) == pytest.approx(
            50, rel=0.02
        )

    def test_latency_matrix_full_range(self):
        matrix = latency_matrix()
        values = [to_us(v) for v in matrix.values()]
        assert len(matrix) == 56
        # Paper §V-A1: latencies within 8.7-18.2 us.
        assert min(values) >= 8.7 - 1e-6
        assert max(values) <= 18.2 + 1e-6

    def test_latency_matrix_detour_outliers(self):
        matrix = latency_matrix()
        for pair in ((1, 7), (7, 1), (3, 5), (5, 3)):
            assert 17.8 <= to_us(matrix[pair]) <= 18.2

    def test_bandwidth_matrix_two_tiers(self):
        from repro.core.analysis import cluster_tiers

        matrix = bandwidth_matrix(size=256 * MiB)
        tiers = cluster_tiers([to_gbps(v) for v in matrix.values()])
        assert len(tiers) == 2
        centers = sorted(t.center for t in tiers)
        assert centers[0] == pytest.approx(37.7, rel=0.02)
        assert centers[1] == pytest.approx(50.0, rel=0.02)

"""Tests for the OSU and rccl-tests suites."""

import pytest

from repro.bench_suites.osu import (
    osu_bw,
    osu_bw_sweep,
    osu_collective_latency,
)
from repro.bench_suites.rccl_tests import (
    rccl_collective_latency,
    rccl_latency_sweep,
)
from repro.errors import BenchmarkError
from repro.units import GiB, MiB, to_gbps, to_us


class TestOsuBw:
    def test_sdma_enabled_single_link(self):
        rate = osu_bw(0, 2, sdma_enabled=True)
        assert to_gbps(rate) == pytest.approx(37.7, rel=0.02)

    def test_sdma_disabled_scales_with_link(self):
        quad = osu_bw(0, 1, sdma_enabled=False)
        dual = osu_bw(0, 6, sdma_enabled=False)
        assert to_gbps(quad) == pytest.approx(2 * to_gbps(dual), rel=0.03)

    def test_same_gcd_rejected(self):
        with pytest.raises(BenchmarkError):
            osu_bw(0, 0)

    def test_sweep_has_both_settings(self):
        result = osu_bw_sweep(0, (1, 2), message_bytes=256 * MiB)
        assert set(result.labels("sdma")) == {"enabled", "disabled"}
        assert len(result) == 4


class TestOsuCollectives:
    def test_latency_positive_and_scaled(self):
        two = osu_collective_latency("allreduce", 2)
        eight = osu_collective_latency("allreduce", 8)
        assert 0 < two < eight

    def test_unknown_collective(self):
        with pytest.raises(BenchmarkError):
            osu_collective_latency("scan", 4)

    def test_too_few_partners(self):
        with pytest.raises(BenchmarkError):
            osu_collective_latency("allreduce", 1)

    def test_warmup_amortizes_ipc_mapping(self):
        # With warmup, repeated iterations are stable: the reported
        # average should be well below the first-call cost.
        lat = osu_collective_latency("broadcast", 2, iterations=3, warmup=1)
        lat_nowarm = osu_collective_latency(
            "broadcast", 2, iterations=1, warmup=0
        )
        assert lat < lat_nowarm


class TestRcclTests:
    def test_basic_latency(self):
        lat = rccl_collective_latency("allreduce", 8)
        assert to_us(lat) == pytest.approx(103, rel=0.05)

    def test_two_thread_bound(self):
        rs = rccl_collective_latency("reduce_scatter", 2)
        assert 17.4 <= to_us(rs) <= 21.0

    def test_validation(self):
        with pytest.raises(BenchmarkError):
            rccl_collective_latency("alltoall", 4)
        with pytest.raises(BenchmarkError):
            rccl_collective_latency("allreduce", 1)

    def test_sweep_grid(self):
        result = rccl_latency_sweep(["allreduce"], (2, 8))
        assert len(result) == 2
        assert result.labels("library") == ["RCCL"]

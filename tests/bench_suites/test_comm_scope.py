"""Tests for the CommScope suite reimplementation."""

import pytest

from repro.bench_suites.comm_scope import (
    H2D_INTERFACES,
    h2d_sweep,
    measure_h2d,
    measure_numa_to_gpu,
    measure_peer_copy,
    numa_to_gpu_matrix,
    peer_sweep,
)
from repro.errors import BenchmarkError
from repro.units import GiB, KiB, MiB, to_gbps


class TestH2D:
    def test_pinned_peak(self):
        rate = measure_h2d("pinned_memcpy", 1 * GiB)
        assert to_gbps(rate) == pytest.approx(28.3, rel=0.01)

    def test_managed_zerocopy_peak(self):
        rate = measure_h2d("managed_zerocopy", 1 * GiB)
        assert to_gbps(rate) == pytest.approx(25.5, rel=0.01)

    def test_migration_rate(self):
        rate = measure_h2d("managed_migration", 256 * MiB)
        assert to_gbps(rate) == pytest.approx(2.8, rel=0.02)

    def test_pageable_below_pinned(self):
        pinned = measure_h2d("pinned_memcpy", 256 * MiB)
        pageable = measure_h2d("pageable_memcpy", 256 * MiB)
        assert pageable < pinned

    def test_unknown_interface(self):
        with pytest.raises(BenchmarkError):
            measure_h2d("cuda_memcpy", 1 * MiB)

    def test_bad_size(self):
        with pytest.raises(BenchmarkError):
            measure_h2d("pinned_memcpy", 0)

    def test_sweep_is_complete_grid(self):
        sizes = [64 * KiB, 1 * MiB]
        result = h2d_sweep(sizes=sizes)
        assert len(result) == len(H2D_INTERFACES) * len(sizes)
        assert set(result.labels("interface")) == set(H2D_INTERFACES)

    def test_sweep_monotone_ramp_for_pinned(self):
        sizes = [64 * KiB, 1 * MiB, 16 * MiB, 256 * MiB]
        result = h2d_sweep(["pinned_memcpy"], sizes)
        values = result.values(interface="pinned_memcpy")
        assert values == sorted(values)


class TestNumaPlacement:
    def test_local_vs_remote_no_degradation(self):
        """§IV-B: NUMA-mismatched placement shows no copy slowdown."""
        local = measure_numa_to_gpu(0, 0, 256 * MiB)
        remote = measure_numa_to_gpu(0, 3, 256 * MiB)
        assert remote == pytest.approx(local, rel=0.01)

    def test_matrix_is_flat(self):
        result = numa_to_gpu_matrix(64 * MiB)
        assert len(result) == 32  # 8 GCDs × 4 domains
        values = [m.value for m in result.measurements]
        assert max(values) / min(values) < 1.02


class TestPeerSweep:
    def test_single_point(self):
        rate = measure_peer_copy(0, 2, 1 * GiB)
        assert to_gbps(rate) == pytest.approx(37.75, rel=0.01)

    def test_fig7_utilizations(self):
        """Fig. 7: 75 % / 50 % / 25 % of single/dual/quad links."""
        result = peer_sweep(0, (1, 2, 6), sizes=[4 * GiB])
        peak = {m.meta["dst"]: m.value for m in result.measurements}
        assert peak[2] / 50e9 == pytest.approx(0.755, rel=0.01)
        assert peak[6] / 100e9 == pytest.approx(0.50, rel=0.01)
        assert peak[1] / 200e9 == pytest.approx(0.25, rel=0.01)

    def test_plateau_is_size_independent(self):
        result = peer_sweep(0, (1,), sizes=[1 * GiB, 4 * GiB])
        values = result.values(dst=1)
        assert values[1] == pytest.approx(values[0], rel=0.02)

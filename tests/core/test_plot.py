"""Tests for the ASCII plotting helpers."""

import math

import pytest

from repro.core.plot import ascii_bars, ascii_heatmap, ascii_series
from repro.errors import BenchmarkError


class TestAsciiSeries:
    def test_basic_render(self):
        xs = [4096, 65536, 1048576]
        text = ascii_series(
            xs,
            {"pinned": [1.0, 10.0, 28.0], "pageable": [0.5, 8.0, 20.0]},
        )
        assert "o=pinned" in text and "x=pageable" in text
        assert "(log x)" in text
        # Peak label appears on the top axis row.
        assert "28" in text

    def test_nan_points_skipped(self):
        text = ascii_series(
            [1, 2, 4], {"a": [1.0, math.nan, 3.0]}, log_x=False
        )
        chart_area = "\n".join(text.splitlines()[:-1])  # drop the legend
        assert chart_area.count("o") == 2

    def test_length_mismatch(self):
        with pytest.raises(BenchmarkError):
            ascii_series([1, 2], {"a": [1.0]})

    def test_empty(self):
        with pytest.raises(BenchmarkError):
            ascii_series([], {})

    def test_too_many_series(self):
        xs = [1, 2]
        series = {f"s{i}": [1.0, 2.0] for i in range(9)}
        with pytest.raises(BenchmarkError):
            ascii_series(xs, series)

    def test_constant_series(self):
        text = ascii_series([1, 2, 4], {"flat": [5.0, 5.0, 5.0]})
        assert "o" in text


class TestAsciiBars:
    def test_scaled_bars(self):
        text = ascii_bars({"pinned": 28.3e9, "migration": 2.8e9})
        lines = text.splitlines()
        assert lines[0].count("#") > lines[1].count("#")
        assert "28.30 GB/s" in lines[0]

    def test_empty(self):
        with pytest.raises(BenchmarkError):
            ascii_bars({})

    def test_nonpositive_peak(self):
        with pytest.raises(BenchmarkError):
            ascii_bars({"a": 0.0})


class TestAsciiHeatmap:
    def test_diagonal_dots(self):
        values = {(0, 1): 50.0, (1, 0): 38.0}
        text = ascii_heatmap(values)
        assert "·" in text  # missing diagonal entries
        assert "scale:" in text

    def test_shading_monotone(self):
        values = {(0, 1): 1.0, (0, 2): 10.0, (1, 2): 5.0, (1, 0): 1.0, (2, 0): 1.0, (2, 1): 1.0}
        normal = ascii_heatmap(values)
        inverted = ascii_heatmap(values, invert=True)
        assert normal != inverted

    def test_empty(self):
        with pytest.raises(BenchmarkError):
            ascii_heatmap({})

    def test_fig6_style_usage(self):
        """Render the actual Fig. 6c matrix without error."""
        from repro.bench_suites.p2p_matrix import bandwidth_matrix
        from repro.units import MiB

        matrix = bandwidth_matrix(size=64 * MiB)
        text = ascii_heatmap({k: v / 1e9 for k, v in matrix.items()})
        assert len(text.splitlines()) == 10  # header + 8 rows + scale

"""Tests for the calibration profile."""

import pytest

from repro.core.calibration import DEFAULT_CALIBRATION, CalibrationProfile
from repro.errors import CalibrationError
from repro.topology.link import LinkTier
from repro.units import MiB


class TestValidation:
    def test_default_is_valid(self):
        CalibrationProfile.default()

    def test_efficiency_bounds(self):
        with pytest.raises(CalibrationError):
            CalibrationProfile(sdma_xgmi_efficiency=1.5)
        with pytest.raises(CalibrationError):
            CalibrationProfile(hbm_stream_efficiency=0.0)

    def test_positive_rates(self):
        with pytest.raises(CalibrationError):
            CalibrationProfile(sdma_engine_throughput=-1)

    def test_page_size_power_of_two(self):
        with pytest.raises(CalibrationError):
            CalibrationProfile(page_size=3000)

    def test_with_returns_new_profile(self):
        profile = DEFAULT_CALIBRATION.with_(sdma_engine_throughput=60e9)
        assert profile.sdma_engine_throughput == 60e9
        assert DEFAULT_CALIBRATION.sdma_engine_throughput == 50e9


class TestDerivedRates:
    def test_sdma_caps_paper_values(self, calibration):
        assert calibration.sdma_cap_for_tier(LinkTier.SINGLE) == pytest.approx(37.75e9)
        assert calibration.sdma_cap_for_tier(LinkTier.DUAL) == pytest.approx(50e9)
        assert calibration.sdma_cap_for_tier(LinkTier.QUAD) == pytest.approx(50e9)
        assert calibration.sdma_cap_for_tier(LinkTier.CPU) == pytest.approx(
            28.296e9, rel=1e-3
        )

    def test_kernel_caps(self, calibration):
        assert calibration.kernel_remote_cap(
            LinkTier.QUAD, bidirectional=True
        ) == pytest.approx(87e9)
        assert calibration.kernel_remote_cap(
            LinkTier.QUAD, bidirectional=False
        ) == pytest.approx(176e9)
        assert calibration.kernel_remote_cap(
            LinkTier.CPU, bidirectional=False
        ) == pytest.approx(25.488e9, rel=1e-3)

    def test_llc_boost_requires_cacheable(self, calibration):
        base = calibration.kernel_remote_cap(
            LinkTier.CPU, bidirectional=False, working_set=1 * MiB
        )
        boosted = calibration.kernel_remote_cap(
            LinkTier.CPU,
            bidirectional=False,
            working_set=1 * MiB,
            cacheable=True,
        )
        assert boosted > base
        # Above the LLC no boost even when cacheable.
        big = calibration.kernel_remote_cap(
            LinkTier.CPU,
            bidirectional=False,
            working_set=64 * MiB,
            cacheable=True,
        )
        assert big == pytest.approx(base)

    def test_hbm_stream(self, calibration):
        assert calibration.hbm_stream_bw(1.6e12) == pytest.approx(1.4e12)

    def test_page_migration_is_2_8(self, calibration):
        assert calibration.page_migration_bw() == pytest.approx(2.8e9, rel=0.01)


class TestLatencyModel:
    def test_one_hop_classes(self, calibration):
        assert calibration.p2p_latency(1, LinkTier.SINGLE) == pytest.approx(8.7e-6)
        assert calibration.p2p_latency(1, LinkTier.QUAD) == pytest.approx(10.5e-6)
        assert calibration.p2p_latency(1, LinkTier.DUAL) == pytest.approx(10.1e-6)

    def test_multi_hop_has_no_tier_setup(self, calibration):
        three_hop = calibration.p2p_latency(3, None)
        assert three_hop == pytest.approx(8.7e-6 + 2 * 4.55e-6)

    def test_direct_tier_consistency_enforced(self, calibration):
        with pytest.raises(CalibrationError):
            calibration.p2p_latency(1, None)
        with pytest.raises(CalibrationError):
            calibration.p2p_latency(2, LinkTier.SINGLE)

    def test_jitter_bounds(self, calibration):
        base = calibration.p2p_latency(1, LinkTier.SINGLE, 0.0)
        jittered = calibration.p2p_latency(1, LinkTier.SINGLE, 0.999)
        assert base < jittered < base + calibration.p2p_latency_jitter
        with pytest.raises(CalibrationError):
            calibration.p2p_latency(1, LinkTier.SINGLE, 1.5)

    def test_zero_hops_rejected(self, calibration):
        with pytest.raises(CalibrationError):
            calibration.p2p_latency(0, None)


class TestDescribe:
    def test_describe_mentions_key_numbers(self, calibration):
        text = calibration.describe()
        assert "50 GB/s" in text
        assert "2.80 GB/s" in text or "2.8" in text


class TestProfileSerialization:
    """The repro-calibration/1 profile file format."""

    def test_round_trip_is_fingerprint_identical(self, tmp_path):
        from repro.core.calibration import dump_profile, load_profile

        path = tmp_path / "profile.json"
        dump_profile(DEFAULT_CALIBRATION, path)
        loaded, provenance = load_profile(path)
        assert loaded.fingerprint() == DEFAULT_CALIBRATION.fingerprint()
        assert provenance == {}

    def test_provenance_round_trips(self, tmp_path):
        from repro.core.calibration import dump_profile, load_profile

        path = tmp_path / "profile.json"
        dump_profile(
            DEFAULT_CALIBRATION.with_(sdma_xgmi_efficiency=0.7),
            path,
            provenance={
                "source": "fitted-from-telemetry",
                "telemetry": "machine",
                "fitted_fields": ["sdma_xgmi_efficiency"],
            },
        )
        profile, provenance = load_profile(path)
        assert profile.sdma_xgmi_efficiency == 0.7
        assert provenance["source"] == "fitted-from-telemetry"
        assert provenance["fitted_fields"] == ["sdma_xgmi_efficiency"]

    def test_dump_load_dump_is_a_fixpoint(self, tmp_path):
        from repro.core.calibration import dump_profile, load_profile

        path = tmp_path / "profile.json"
        dump_profile(DEFAULT_CALIBRATION, path)
        first = path.read_text()
        profile, _ = load_profile(path)
        dump_profile(profile, path)
        assert path.read_text() == first

    def test_rejects_edited_constants_with_stale_fingerprint(self, tmp_path):
        import json

        from repro.core.calibration import load_profile, profile_to_json

        entry = profile_to_json(DEFAULT_CALIBRATION)
        entry["constants"]["sdma_xgmi_efficiency"] = 0.5
        path = tmp_path / "edited.json"
        path.write_text(json.dumps(entry))
        with pytest.raises(CalibrationError, match="fingerprint mismatch"):
            load_profile(path)

    def test_rejects_unknown_top_level_key(self):
        from repro.core.calibration import profile_from_json, profile_to_json

        entry = profile_to_json(DEFAULT_CALIBRATION)
        entry["notes"] = "hand-tuned"
        with pytest.raises(CalibrationError, match="unknown calibration profile"):
            profile_from_json(entry)

    def test_rejects_unknown_constant(self):
        from repro.core.calibration import profile_from_json, profile_to_json

        entry = profile_to_json(DEFAULT_CALIBRATION)
        entry["constants"]["warp_speed"] = 1.0
        del entry["fingerprint"]
        with pytest.raises(CalibrationError, match="unknown calibration constant"):
            profile_from_json(entry)

    def test_rejects_unknown_provenance_field(self):
        from repro.core.calibration import profile_from_json, profile_to_json

        entry = profile_to_json(DEFAULT_CALIBRATION)
        entry["provenance"] = {"author": "me"}
        with pytest.raises(CalibrationError, match="unknown provenance"):
            profile_from_json(entry)

    def test_rejects_wrong_schema(self):
        from repro.core.calibration import profile_from_json, profile_to_json

        entry = profile_to_json(DEFAULT_CALIBRATION)
        entry["schema"] = "repro-calibration/9"
        with pytest.raises(CalibrationError, match="unsupported calibration schema"):
            profile_from_json(entry)

    def test_load_reports_bad_json(self, tmp_path):
        from repro.core.calibration import load_profile

        path = tmp_path / "broken.json"
        path.write_text("{not json")
        with pytest.raises(CalibrationError, match="not valid JSON"):
            load_profile(path)

    def test_out_of_bounds_constant_fails_profile_validation(self):
        from repro.core.calibration import profile_from_json, profile_to_json

        entry = profile_to_json(DEFAULT_CALIBRATION)
        entry["constants"]["sdma_xgmi_efficiency"] = 1.5
        del entry["fingerprint"]
        with pytest.raises(CalibrationError, match="outside"):
            profile_from_json(entry)

"""Tests for experiment abstractions and sweeps."""

import pytest

from repro.core.experiment import (
    Experiment,
    ExperimentResult,
    ExperimentSuite,
    Measurement,
)
from repro.core.sweep import (
    COMM_SCOPE_H2D,
    COMM_SCOPE_P2P,
    PARTNER_COUNTS,
    SizeSweep,
    grid,
)
from repro.errors import BenchmarkError
from repro.units import GiB, KiB


class TestExperimentResult:
    def make(self):
        result = ExperimentResult("x", "test")
        result.add(1, 10.0, "GB/s", interface="a")
        result.add(2, 20.0, "GB/s", interface="a")
        result.add(1, 5.0, "GB/s", interface="b")
        return result

    def test_series_filtering(self):
        result = self.make()
        assert result.values(interface="a") == [10.0, 20.0]
        assert result.xs(interface="b") == [1]

    def test_peak(self):
        result = self.make()
        assert result.peak(interface="a").value == 20.0
        with pytest.raises(BenchmarkError):
            result.peak(interface="missing")

    def test_labels_first_seen_order(self):
        assert self.make().labels("interface") == ["a", "b"]

    def test_len_and_notes(self):
        result = self.make()
        result.note("hello")
        assert len(result) == 3
        assert result.notes == ["hello"]


class TestExperimentAndSuite:
    def runner(self, value=1.0):
        def run():
            result = ExperimentResult("e1", "t")
            result.add(0, value, "u")
            return result

        return run

    def test_run_checks_id(self):
        good = Experiment("e1", "t", "Fig X", self.runner())
        assert len(good.run()) == 1
        bad = Experiment("e2", "t", "Fig X", self.runner())
        with pytest.raises(BenchmarkError):
            bad.run()

    def test_default_params_merged(self):
        captured = {}

        def run(alpha=1, beta=2):
            captured.update(alpha=alpha, beta=beta)
            return ExperimentResult("e1", "t")

        exp = Experiment("e1", "t", "fig", run, default_params={"alpha": 10})
        exp.run(beta=20)
        assert captured == {"alpha": 10, "beta": 20}

    def test_suite_registry(self):
        suite = ExperimentSuite()
        exp = Experiment("e1", "t", "fig", self.runner())
        suite.register(exp)
        assert suite.get("e1") is exp
        with pytest.raises(BenchmarkError):
            suite.register(exp)
        with pytest.raises(BenchmarkError):
            suite.get("nope")
        assert suite.ids() == ["e1"]
        assert len(suite.run_all()) == 1


class TestSweeps:
    def test_paper_ranges(self):
        assert COMM_SCOPE_H2D.sizes()[0] == 4 * KiB
        assert COMM_SCOPE_H2D.sizes()[-1] == 1 * GiB
        assert COMM_SCOPE_P2P.sizes()[0] == 256
        assert COMM_SCOPE_P2P.sizes()[-1] == 8 * GiB
        assert PARTNER_COUNTS == (2, 3, 4, 5, 6, 7, 8)

    def test_size_sweep_validation(self):
        with pytest.raises(BenchmarkError):
            SizeSweep(16, 8)
        with pytest.raises(BenchmarkError):
            SizeSweep(0, 8)

    def test_sweep_iterable(self):
        sweep = SizeSweep(4, 16)
        assert list(sweep) == [4, 8, 16]
        assert len(sweep) == 3

    def test_grid(self):
        points = list(grid(a=[1, 2], b=["x", "y"]))
        assert len(points) == 4
        assert {"a": 1, "b": "x"} in points
        with pytest.raises(BenchmarkError):
            list(grid())


class TestMeasurement:
    def test_meta_defaults(self):
        m = Measurement(1.0, 2.0, "GB/s")
        assert m.meta == {}

"""Tests for the system-validation battery."""

import pytest

from repro.core.validation import CheckResult, ValidationReport, validate_node
from repro.core.whatif import get_scenario
from repro.units import MiB


class TestCheckResult:
    def test_format(self):
        result = CheckResult("x.y", True, 28.3, 28.3, "GB/s", "engine")
        text = result.format()
        assert "[PASS]" in text and "engine" in text
        failed = CheckResult("x.y", False, 10.0, 28.3, "GB/s")
        assert "[FAIL]" in failed.format()


class TestValidationReport:
    def test_aggregation(self):
        report = ValidationReport(
            [
                CheckResult("a", True, 1, 1, "u"),
                CheckResult("b", False, 0, 1, "u"),
            ]
        )
        assert not report.passed
        assert [r.check_id for r in report.failures] == ["b"]
        assert "1/2 checks passed" in report.text()


class TestValidateNode:
    def test_baseline_passes(self):
        report = validate_node(probe_bytes=128 * MiB)
        assert report.passed, report.text()
        # The battery covers every interface family.
        ids = {r.check_id for r in report.results}
        assert any(i.startswith("h2d.") for i in ids)
        assert any(i.startswith("p2p.sdma") for i in ids)
        assert any(i.startswith("p2p.kernel") for i in ids)
        assert any(i.startswith("p2p.latency") for i in ids)
        assert "local.hbm_stream" in ids
        assert "scaling.same_gpu_flat" in ids

    def test_whatif_scenarios_self_consistent(self):
        """Expectations derive from the scenario's own calibration, so
        every scenario validates against itself."""
        for name in ("unconstrained-sdma", "fast-fault-handling"):
            scenario = get_scenario(name)
            report = validate_node(
                scenario.topology,
                scenario.calibration,
                probe_bytes=128 * MiB,
            )
            assert report.passed, f"{name}:\n{report.text()}"

    def test_mismatched_calibration_fails(self):
        """Running probes on one profile against another's expectations
        must fail — that is the battery's entire purpose."""
        from repro.bench_suites import comm_scope
        from repro.core.calibration import DEFAULT_CALIBRATION
        from repro.core.validation import _within
        from repro.topology.link import LinkTier

        wrong = DEFAULT_CALIBRATION.with_(sdma_cpu_link_efficiency=0.5)
        observed = comm_scope.measure_h2d(
            "pinned_memcpy", 128 * MiB, calibration=wrong
        )
        expected = DEFAULT_CALIBRATION.sdma_cap_for_tier(LinkTier.CPU)
        assert not _within(observed, expected, 0.05)

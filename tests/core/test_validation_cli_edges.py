"""Edge-path coverage: CLI validate, prefetch host→host, toolchain info."""

import pytest

from repro.cli import main
from repro.config import DEFAULT_TOOLCHAIN, ToolchainInfo


class TestCliValidate:
    def test_validate_baseline(self, capsys):
        assert main(["validate"]) == 0
        out = capsys.readouterr().out
        assert "checks passed" in out and "[PASS]" in out

    def test_validate_scenario(self, capsys):
        assert main(["validate", "fast-fault-handling"]) == 0
        out = capsys.readouterr().out
        assert "fast-fault-handling" in out

    def test_validate_unknown_scenario_rejected(self):
        with pytest.raises(SystemExit):
            main(["validate", "nonsense"])

    def test_run_all_writes_reports(self, tmp_path, capsys):
        assert (
            main(["run", "tab01", "tab02", "-o", str(tmp_path / "r")]) == 0
        )
        assert (tmp_path / "r" / "tab01.txt").exists()
        assert (tmp_path / "r" / "tab02.txt").exists()

    def test_run_with_plot_flag(self, capsys):
        assert main(["run", "fig09", "--plot"]) == 0
        out = capsys.readouterr().out
        assert "#" in out  # bar chart glyphs


class TestToolchainInfo:
    def test_defaults_match_paper(self):
        assert DEFAULT_TOOLCHAIN.rocm_version == "5.7.0"
        assert DEFAULT_TOOLCHAIN.rccl_version == "2.17.1"
        assert DEFAULT_TOOLCHAIN.osu_version == "7.4"

    def test_describe_with_extras(self):
        info = ToolchainInfo(extra={"slurm": "23.02"})
        text = info.describe()
        assert "ROCm 5.7.0" in text and "slurm: 23.02" in text


class TestPrefetchHostToHost:
    def test_prefetch_between_numa_domains(self, hip):
        from repro.memory.buffer import Location

        buffer = hip.malloc_managed(1 << 20, device=0)  # home: numa 0

        def run():
            yield from hip.migration.prefetch(buffer, Location.host(3))

        hip.run(run())
        assert buffer.page_table.resident_fraction(Location.host(3)) == 1.0

"""Tests for the report renderers and the Table I/II registries."""

import pytest

from repro.core.experiment import ExperimentResult
from repro.core.registry import (
    TABLE_I,
    TABLE_II,
    format_table_i,
    format_table_ii,
)
from repro.core.report import (
    bar_table,
    comparison_summary,
    geometric_summary,
    latency_table,
    matrix_table,
    peak_summary,
    series_table,
)
from repro.errors import BenchmarkError
from repro.memory.buffer import MemoryKind


class TestSeriesTable:
    def make(self):
        result = ExperimentResult("x", "Bandwidth")
        for size in (4096, 8192):
            result.add(size, 10e9 + size, "B/s", interface="pinned")
            result.add(size, 5e9 + size, "B/s", interface="pageable")
        return result

    def test_columns_and_rows(self):
        text = series_table(self.make(), series_key="interface")
        assert "pinned" in text and "pageable" in text
        assert "4KiB" in text and "8KiB" in text

    def test_missing_cells_dashed(self):
        result = self.make()
        result.add(16384, 1e9, "B/s", interface="pinned")  # pageable missing
        text = series_table(result, series_key="interface")
        assert "-" in text

    def test_unknown_key_rejected(self):
        with pytest.raises(BenchmarkError):
            series_table(self.make(), series_key="nope")


class TestMatrixTable:
    def test_diagonal_dash(self):
        values = {(0, 1): 50e9, (1, 0): 37.7e9}
        text = matrix_table(values, title="bw", scale=1e9, unit="GB/s")
        assert "-" in text and "50.0" in text and "37.7" in text

    def test_empty_rejected(self):
        with pytest.raises(BenchmarkError):
            matrix_table({}, title="empty")


class TestOtherRenderers:
    def test_bar_table_with_reference(self):
        text = bar_table(
            [("pinned", 28.3e9)],
            title="peaks",
            reference={"pinned": 36e9},
        )
        assert "78.6%" in text

    def test_latency_table(self):
        result = ExperimentResult("x", "collectives")
        result.add(2, 20e-6, "s", partners=2, library="MPI")
        result.add(2, 15e-6, "s", partners=2, library="RCCL")
        text = latency_table(result)
        assert "MPI" in text and "RCCL" in text and "20.0" in text

    def test_peak_summary(self):
        result = ExperimentResult("x", "peaks")
        result.add(4096, 10e9, "B/s", interface="a")
        result.add(8192, 28.3e9, "B/s", interface="a")
        text = peak_summary(result, "interface")
        assert "28.30 GB/s" in text and "8KiB" in text

    def test_comparison_summary(self):
        text = comparison_summary("t", {"alpha": 1, "beta": "x"})
        assert "alpha" in text and ": x" in text

    def test_geometric_summary(self):
        stats = geometric_summary([1.0, 4.0])
        assert stats["gmean"] == pytest.approx(2.0)
        assert stats["min"] == 1.0 and stats["max"] == 4.0
        with pytest.raises(BenchmarkError):
            geometric_summary([])


class TestRegistries:
    def test_table_i_has_five_rows(self):
        assert len(TABLE_I) == 5

    def test_table_i_movement_kinds(self):
        movements = {row.data_movement for row in TABLE_I}
        assert movements == {"explicit", "zero-copy", "implicit"}

    def test_table_i_pinned_default_is_coherent(self):
        coherent_pinned = [
            row
            for row in TABLE_I
            if row.kind is MemoryKind.PINNED_COHERENT
        ]
        assert len(coherent_pinned) == 1
        assert coherent_pinned[0].coherent

    def test_table_i_xnack_rows(self):
        managed = [row for row in TABLE_I if row.kind is MemoryKind.MANAGED]
        assert {row.xnack for row in managed} == {True, False}

    def test_table_ii_has_twelve_rows(self):
        assert len(TABLE_II) == 12

    def test_table_ii_modules_import(self):
        import importlib

        for row in TABLE_II:
            importlib.import_module(row.suite_module)

    def test_table_ii_links(self):
        assert {row.link for row in TABLE_II} == {"CPU-GPU", "GPU-GPU"}

    def test_formatters(self):
        assert "hipHostMalloc" in format_table_i()
        assert "RCCL-tests" in format_table_ii()

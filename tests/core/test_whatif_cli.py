"""Tests for the what-if scenarios and the CLI."""

import pytest

from repro.cli import main
from repro.core.whatif import SCENARIOS, get_scenario
from repro.errors import BenchmarkError


class TestScenarios:
    def test_all_scenarios_construct(self):
        for name in SCENARIOS:
            scenario = get_scenario(name)
            assert scenario.name == name
            assert scenario.topology.num_gcds >= 2
            assert scenario.description

    def test_unknown_scenario(self):
        with pytest.raises(BenchmarkError):
            get_scenario("quantum-fabric")

    def test_baseline_is_default_profile(self):
        from repro.core.calibration import DEFAULT_CALIBRATION

        scenario = get_scenario("baseline")
        assert scenario.calibration is DEFAULT_CALIBRATION
        assert scenario.topology.name == "frontier-mi250x"

    def test_unconstrained_sdma_only_changes_engine(self):
        scenario = get_scenario("unconstrained-sdma")
        assert scenario.calibration.sdma_engine_throughput == 200e9
        assert (
            scenario.calibration.kernel_xgmi_uni_efficiency
            == get_scenario("baseline").calibration.kernel_xgmi_uni_efficiency
        )

    def test_scenarios_do_not_mutate_default(self):
        from repro.core.calibration import DEFAULT_CALIBRATION

        get_scenario("fast-fault-handling")
        assert DEFAULT_CALIBRATION.xnack_fault_service == pytest.approx(
            1.32e-6
        )


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig06" in out and "tab01" in out

    def test_run_single_artifact(self, capsys):
        assert main(["run", "fig09"]) == 0
        out = capsys.readouterr().out
        assert "43.5%" in out

    def test_run_unknown_artifact(self, capsys):
        assert main(["run", "fig99"]) == 2
        assert "error" in capsys.readouterr().err

    def test_topology(self, capsys):
        assert main(["topology"]) == 0
        out = capsys.readouterr().out
        assert "frontier-mi250x" in out and "0-6: dual" in out

    def test_calibration(self, capsys):
        assert main(["calibration"]) == 0
        assert "SDMA" in capsys.readouterr().out

    def test_scenarios(self, capsys):
        assert main(["scenarios"]) == 0
        assert "unconstrained-sdma" in capsys.readouterr().out

    def test_methodology_single_step(self, capsys):
        assert main(["methodology", "collectives"]) == 0
        out = capsys.readouterr().out
        assert "STEP collectives" in out and "RCCL" in out

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

"""Tests for repro.core.bounds and repro.core.analysis."""

import pytest

from repro.core.analysis import (
    cluster_tiers,
    crossover_size,
    detect_outliers_iqr,
    scaling_efficiency,
    utilization_table,
    value_range,
)
from repro.core.bounds import (
    collective_latency_bound,
    cpu_gpu_peak_bidirectional,
    hbm_peak,
    min_p2p_latency,
    pair_peak_unidirectional,
    utilization,
)
from repro.errors import BenchmarkError


class TestBounds:
    def test_pair_peaks(self, topology):
        assert pair_peak_unidirectional(topology, 0, 1) == 200e9
        assert pair_peak_unidirectional(topology, 0, 6) == 100e9
        assert pair_peak_unidirectional(topology, 0, 2) == 50e9
        # Routed pair 1-7: widest path bottleneck is the dual link.
        assert pair_peak_unidirectional(topology, 1, 7) == 100e9
        # Local "pair": HBM peak.
        assert pair_peak_unidirectional(topology, 0, 0) == 1.6e12

    def test_cpu_gpu_peak(self, topology):
        assert cpu_gpu_peak_bidirectional(topology, [0]) == 72e9
        assert cpu_gpu_peak_bidirectional(topology, [0, 2, 4, 6]) == 288e9
        with pytest.raises(BenchmarkError):
            cpu_gpu_peak_bidirectional(topology, [])

    def test_hbm_peak(self, topology):
        assert hbm_peak(topology, 0) == 1.6e12

    def test_collective_bounds_match_section_vi(self):
        assert min_p2p_latency() == pytest.approx(8.7e-6)
        assert collective_latency_bound("reduce").bound == pytest.approx(8.7e-6)
        assert collective_latency_bound("broadcast").rounds == 1
        for name in ("allreduce", "reduce_scatter", "allgather"):
            bound = collective_latency_bound(name)
            assert bound.rounds == 2
            assert bound.bound == pytest.approx(17.4e-6)
        with pytest.raises(BenchmarkError):
            collective_latency_bound("alltoallv")

    def test_utilization(self):
        assert utilization(43.5, 100.0) == pytest.approx(0.435)
        with pytest.raises(BenchmarkError):
            utilization(1.0, 0.0)
        with pytest.raises(BenchmarkError):
            utilization(-1.0, 1.0)


class TestTierClustering:
    def test_fig6c_two_tiers(self):
        # 37-38 and ~50 GB/s: exactly two clusters.
        values = [37.7, 37.8, 49.9, 50.0, 37.75, 49.95]
        tiers = cluster_tiers(values)
        assert len(tiers) == 2
        assert tiers[0].center == pytest.approx(37.75, rel=0.01)
        assert tiers[1].center == pytest.approx(49.95, rel=0.01)

    def test_fig8_three_tiers(self):
        values = [43.5, 87.0, 174.0]
        assert len(cluster_tiers(values)) == 3

    def test_single_value(self):
        tiers = cluster_tiers([5.0])
        assert len(tiers) == 1 and tiers[0].count == 1

    def test_members_are_indices(self):
        tiers = cluster_tiers([50.0, 37.7, 50.1])
        by_center = {round(t.center): t for t in tiers}
        assert set(by_center[50].members) == {0, 2}

    def test_empty_rejected(self):
        with pytest.raises(BenchmarkError):
            cluster_tiers([])


class TestOutliers:
    def test_fig6b_outliers(self):
        # A miniature of the Fig. 6b distribution: single-link pairs
        # ~8.7-9, same-GPU ~10.5-10.8, two-hop ~13.3-13.5, and the
        # detour pairs at ~18 — only the last are outliers.
        values = (
            [8.7, 8.8, 8.9, 9.0]
            + [10.5, 10.6, 10.7, 10.8]
            + [13.3, 13.4, 13.5, 13.4, 13.3, 13.5, 13.4, 13.3]
            + [17.9, 18.1]
        )
        outliers = detect_outliers_iqr(values)
        assert set(outliers) == {16, 17}

    def test_short_series_no_outliers(self):
        assert detect_outliers_iqr([1.0, 100.0]) == []


class TestMisc:
    def test_value_range(self):
        assert value_range([3.0, 1.0, 2.0]) == (1.0, 3.0)
        with pytest.raises(BenchmarkError):
            value_range([])

    def test_utilization_table(self):
        rows = utilization_table({"quad": (174e9, 400e9)})
        assert rows[0].ratio == pytest.approx(0.435)
        assert "43.5%" in rows[0].format()
        with pytest.raises(BenchmarkError):
            utilization_table({"bad": (1.0, 0.0)})

    def test_crossover(self):
        sizes = [1, 2, 4, 8, 16]
        a = [1.0, 2.0, 3.0, 5.0, 6.0]
        b = [1.5, 2.5, 2.0, 4.0, 5.0]
        assert crossover_size(sizes, a, b) == 4
        assert crossover_size(sizes, b, a) is None
        with pytest.raises(BenchmarkError):
            crossover_size([1], [1.0, 2.0], [1.0])

    def test_scaling_efficiency(self):
        assert scaling_efficiency(45.0, 90.0, 2) == pytest.approx(1.0)
        assert scaling_efficiency(45.0, 45.0, 2) == pytest.approx(0.5)
        with pytest.raises(BenchmarkError):
            scaling_efficiency(0.0, 1.0, 2)

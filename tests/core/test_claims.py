"""Tests keeping the paper-claims registry honest."""

from pathlib import Path

import pytest

from repro import figures
from repro.core.claims import CLAIMS, format_claims

REPO = Path(__file__).resolve().parents[2]


class TestClaimsRegistry:
    def test_artifacts_exist(self):
        known = set(figures.all_ids())
        for claim in CLAIMS:
            assert claim.artifact in known, claim.claim_id

    def test_unique_ids(self):
        ids = [claim.claim_id for claim in CLAIMS]
        assert len(set(ids)) == len(ids)

    def test_referenced_tests_exist(self):
        """Every claim's test node resolves to a real test function."""
        for claim in CLAIMS:
            path, _, node = claim.test.partition("::")
            file = REPO / path
            assert file.exists(), claim.test
            function = node.rsplit("::", 1)[-1]
            assert function in file.read_text(), claim.test

    def test_every_paper_section_covered(self):
        sections = {claim.section for claim in CLAIMS}
        assert {"§IV-A", "§IV-B", "§IV-C", "§V-A1", "§V-A2", "§V-B", "§V-C", "§VI"} <= sections

    def test_format(self):
        text = format_claims()
        assert "21 claims tracked" in text
        assert "[sdma-two-tiers]" in text

    def test_cli_command(self, capsys):
        from repro.cli import main

        assert main(["claims"]) == 0
        assert "claims tracked" in capsys.readouterr().out

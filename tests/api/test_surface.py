"""The ``repro.api`` v1 surface and the pre-v1 compatibility shims."""

import warnings

import pytest

import repro
import repro.api as api
from repro.configs import ObsConfig, RunnerConfig
from repro.errors import ConfigurationError


class TestSurface:
    def test_every_exported_name_resolves(self):
        for name in api.__all__:
            assert getattr(api, name) is not None, name

    def test_api_version_is_one(self):
        assert api.API_VERSION == 1

    def test_front_door_names_are_the_package_names(self):
        # api re-exports, it does not wrap: identity, not equality.
        assert api.Session is repro.Session
        assert api.ObsConfig is repro.ObsConfig
        assert api.RunnerConfig is repro.RunnerConfig
        assert api.SweepRunner is repro.SweepRunner
        assert api.FaultScenario is repro.FaultScenario

    def test_quickstart_from_docstring_runs(self):
        with api.Session("mi250x", obs=api.ObsConfig(trace=True)) as s:
            src = s.hip.malloc(1 << 20, device=0)
            dst = s.hip.malloc(1 << 20, device=4)
            s.run(s.hip.memcpy_peer(dst, 4, src, 0))
            assert s.now > 0
            assert len(s.tracer) > 0


class TestObsConfig:
    def test_grouped_style_enables_tracer_without_warning(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            with api.Session(obs=ObsConfig(trace=True)) as s:
                assert s.tracer.enabled
                assert s.obs.trace is True

    def test_default_observes_nothing(self):
        with api.Session() as s:
            assert not s.obs.enabled
            assert not s.tracer.enabled

    def test_flat_kwargs_warn_and_still_work(self):
        with pytest.warns(DeprecationWarning, match="docs/migration.md"):
            s = api.Session(trace=True)
        try:
            assert s.tracer.enabled
            assert s.obs.trace is True
        finally:
            s.close()

    def test_mixing_styles_is_an_error(self):
        with pytest.raises(ConfigurationError, match="not both"):
            api.Session(trace=True, obs=ObsConfig())


class TestRunnerConfig:
    def test_session_runner_inherits_config(self, tmp_path):
        config = RunnerConfig(jobs=2, cache=True, cache_dir=str(tmp_path))
        with api.Session(runner=config) as s:
            runner = s.runner()
            assert runner.jobs == 2
            assert runner.cache is not None

    def test_cache_false_disables_cache(self):
        with api.Session(runner=RunnerConfig(cache=False)) as s:
            assert s.runner().cache is None

    def test_from_config_maps_every_field(self, tmp_path):
        config = RunnerConfig(
            jobs=3,
            cache=True,
            cache_dir=str(tmp_path),
            capture_metrics=True,
            capture_spans=True,
        )
        runner = api.SweepRunner.from_config(config)
        assert runner.jobs == 3
        assert runner.cache is not None
        assert runner.capture_metrics
        assert runner.capture_spans


class TestBackendKnob:
    def test_session_reports_backend(self):
        with api.Session(backend="python") as s:
            assert s.backend == "python"

    def test_unknown_backend_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown backend"):
            api.Session(backend="cuda")

    def test_resolve_backend_exported_and_consistent(self):
        choice = api.resolve_backend("compiled")
        if not api.compiled_available():
            assert choice.effective == "vectorized"

"""Regenerates Figure 12: RCCL collective latency, 2-8 threads.

Acceptance: two-thread all-to-all collectives near the 17.4 us bound;
latency grows with threads; Reduce/Broadcast/AllReduce drop from 7 to
8 threads.
"""

from repro.units import to_us


def test_figure_12(run_artifact):
    result = run_artifact("fig12")

    def series(collective):
        return {
            m.meta["partners"]: m.value
            for m in result.series(collective=collective)
        }

    lowest_two_thread = min(
        series(name)[2]
        for name in ("allreduce", "reduce_scatter", "allgather")
    )
    assert 17.4 <= to_us(lowest_two_thread) <= 20.0

    for name in ("allreduce", "allgather", "reduce_scatter"):
        values = series(name)
        assert values[2] < values[4] < values[7]

    for name in ("reduce", "broadcast", "allreduce"):
        values = series(name)
        assert values[8] < values[7], name

"""Regenerates Figure 10: OSU MPI p2p bandwidth vs direct P2P.

Acceptance: SDMA-enabled MPI ≤ 50 GB/s everywhere; SDMA-disabled MPI
10-15 % below the direct copy kernel; non-neighbour targets match the
neighbour with the same bottleneck link.
"""

import pytest

from repro.units import to_gbps


def test_figure_10(run_artifact):
    result = run_artifact("fig10")
    by = {
        (m.meta["series"], m.meta["dst"]): m.value
        for m in result.measurements
    }
    for dst in range(1, 8):
        assert to_gbps(by[("MPI (SDMA)", dst)]) <= 50.0 + 0.1
        ratio = by[("MPI (no SDMA)", dst)] / by[("direct P2P", dst)]
        assert 0.85 <= ratio <= 0.90
    # Single-link bottleneck class: GCD2 (neighbour) vs 3, 4, 5.
    for dst in (3, 4, 5):
        assert by[("direct P2P", dst)] == pytest.approx(
            by[("direct P2P", 2)], rel=0.05
        )
    # Quad link benefits only the kernel paths, never SDMA.
    assert by[("MPI (no SDMA)", 1)] > 2.5 * by[("MPI (SDMA)", 1)]

"""Extension study: MPI small-message latency (osu_latency).

Not a paper artifact — the paper measures bandwidth and collective
latency — but the OSU suite's latency tool completes the picture: it
exposes the eager/rendezvous protocol switch and the GPU-pointer
handling cost that also drives the Fig. 11 MPI overhead.
"""

import pytest

from repro.bench_suites.osu import osu_latency
from repro.units import KiB, MiB, to_us


def test_osu_latency_sweep(benchmark):
    sizes = [8, 1 * KiB, 8 * KiB, 16 * KiB, 256 * KiB, 4 * MiB]

    def run():
        return {size: osu_latency(0, 1, message_bytes=size) for size in sizes}

    latencies = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\nosu_latency GCD0->GCD1 (us):")
    for size, value in latencies.items():
        print(f"  {size:>8d} B: {to_us(value):7.2f}")

    # Small messages are host-overhead-bound and size-insensitive.
    assert latencies[1 * KiB] == pytest.approx(latencies[8], rel=0.2)
    # The rendezvous handshake appears beyond the 8 KiB eager threshold.
    assert latencies[16 * KiB] > latencies[8 * KiB]
    # Large messages become bandwidth-bound: ~ size / 50 GB/s.
    assert to_us(latencies[4 * MiB]) > 40

"""Regenerates Table II: evaluated benchmarks and interfaces."""


def test_table_ii(run_artifact):
    result = run_artifact("tab02")
    assert len(result) == 12
    assert all(m.value == 1.0 for m in result.measurements)

"""Regenerates Table I: HIP memory allocation methods."""


def test_table_i(run_artifact):
    result = run_artifact("tab01")
    # Every registry row allocates and matches its declared coherence.
    assert len(result) == 5
    assert all(m.value == 1.0 for m in result.measurements)

"""Regenerates Figure 1: the node topology inventory."""


def test_figure_1(run_artifact):
    result = run_artifact("fig01")
    census = {
        m.meta["tier"]: m.value
        for m in result.measurements
        if not str(m.meta["tier"]).startswith("edge:")
    }
    assert census == {"quad": 4.0, "dual": 2.0, "single": 6.0, "cpu": 8.0}

"""Regenerates Figure 9: peak direct-access bandwidth + utilization.

Acceptance: 43-44 % of the theoretical bidirectional peak on all tiers,
as the paper reports.
"""


def test_figure_9(run_artifact):
    result = run_artifact("fig09")
    for m in result.measurements:
        ratio = m.value / m.meta["theoretical"]
        assert 0.43 <= ratio <= 0.44

"""Regenerates Figure 11: collective latency, MPI vs RCCL (1 MiB).

Acceptance: RCCL beats MPI for Reduce/AllReduce/ReduceScatter/AllGather
at every partner count; MPI beats RCCL for Broadcast (from 3 partners
up, and in the mean).
"""

import numpy as np


def test_figure_11(run_artifact):
    result = run_artifact("fig11")

    def series(collective, library):
        return {
            m.meta["partners"]: m.value
            for m in result.series(collective=collective, library=library)
        }

    for name in ("reduce", "allreduce", "reduce_scatter", "allgather"):
        mpi = series(name, "MPI")
        rccl = series(name, "RCCL")
        for partners in mpi:
            assert rccl[partners] < mpi[partners], f"{name}@{partners}"

    mpi_bcast = series("broadcast", "MPI")
    rccl_bcast = series("broadcast", "RCCL")
    for partners in range(3, 9):
        if partners in mpi_bcast and partners != 5:
            assert mpi_bcast[partners] < rccl_bcast[partners]
    assert np.mean(list(mpi_bcast.values())) < np.mean(
        list(rccl_bcast.values())
    )

"""Regenerates Figure 8: bidirectional STREAM copy, remote placement.

Acceptance: three bandwidth tiers mirroring the three link tiers.
"""

import pytest

from repro.core.analysis import cluster_tiers
from repro.units import to_gbps


def test_figure_8(run_artifact):
    result = run_artifact("fig08")
    peaks = [result.peak(data_gcd=d).value for d in (1, 2, 6)]
    tiers = cluster_tiers([to_gbps(v) for v in peaks])
    assert len(tiers) == 3
    assert sorted(t.center for t in tiers) == pytest.approx(
        [43.5, 87.0, 174.0], rel=0.02
    )

"""Shared helpers for the benchmark harness.

Every ``benchmarks/test_*`` module regenerates one table or figure of
the paper: it runs the corresponding driver under pytest-benchmark,
prints the paper-style rows (visible with ``pytest -s`` or in the
captured output), and asserts the acceptance shape from DESIGN.md §3.
"""

from __future__ import annotations

import pytest

from repro import figures


@pytest.fixture
def run_artifact(benchmark):
    """Run a figure driver once under the benchmark timer.

    The simulator is deterministic, so a single round is exact; the
    benchmark timing reports the harness cost of regenerating the
    artifact.
    """

    def _run(artifact_id: str, **params):
        result = benchmark.pedantic(
            lambda: figures.run(artifact_id, **params),
            rounds=1,
            iterations=1,
        )
        text = figures.report(artifact_id, result)
        print()
        print(text)
        return result

    return _run

"""CI guard: every committed topology file is valid and in sync.

The ``repro-topology/1`` files under ``benchmarks/topologies/`` are the
data-form of the code presets (plus worked examples like the MI300A
node).  Three things can rot silently: a file stops parsing against the
strict schema, a file drifts from the preset it mirrors (someone edits
the preset but forgets to re-export), or a file stops round-tripping
(dump(load(f)) != f, i.e. the dumper and loader disagree).  This guard
fails CI on all three.

Usage::

    python benchmarks/ci/check_topologies.py [DIR]

Checks every ``*.json`` (and ``*.yaml``/``*.yml`` when PyYAML is
importable) under the given directory (default
``benchmarks/topologies``):

1. it loads under the strict schema validators;
2. ``dump(load(file))`` is byte-identical to the file (JSON only —
   YAML serialisation is not canonical across emitters);
3. files named after a preset export (``PRESET_EXPORTS``) are
   fingerprint-identical to the code preset;
4. every preset export has a committed file.

Exit 1 with a per-file report on any failure.
"""

from __future__ import annotations

import pathlib
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]
sys.path.insert(0, str(REPO_ROOT / "src"))

import json  # noqa: E402

from repro.errors import ReproError  # noqa: E402
from repro.topology import load_topology, topology_to_json  # noqa: E402
from repro.topology.schema import PRESET_EXPORTS  # noqa: E402


def _canonical_json(topology) -> str:
    # Must match dump_topology's JSON form exactly.
    return json.dumps(topology_to_json(topology), indent=2) + "\n"


def check_directory(directory: pathlib.Path) -> list[str]:
    problems: list[str] = []
    patterns = ("*.json", "*.yaml", "*.yml")
    files = sorted(p for pattern in patterns for p in directory.glob(pattern))
    if not files:
        return [f"{directory}: no topology files found"]

    stems = set()
    for path in files:
        rel = path.relative_to(REPO_ROOT)
        try:
            topology = load_topology(path)
        except ReproError as exc:
            problems.append(f"{rel}: does not load: {exc}")
            continue
        except ImportError as exc:  # YAML file without PyYAML
            print(f"skip {rel}: {exc}")
            continue
        stems.add(path.stem)

        if path.suffix == ".json":
            if _canonical_json(topology) != path.read_text():
                problems.append(
                    f"{rel}: not serialisation-canonical; re-export with "
                    f"repro.topology.schema.export_preset_files() or "
                    f"dump_topology()"
                )

        preset_factory = PRESET_EXPORTS.get(path.stem)
        if preset_factory is not None:
            preset = preset_factory()
            if topology.fingerprint() != preset.fingerprint():
                problems.append(
                    f"{rel}: fingerprint drifted from the code preset "
                    f"({topology.fingerprint()[:12]} != "
                    f"{preset.fingerprint()[:12]}); re-export it"
                )
        # Sanity independent of presets: the payload must re-parse.
        try:
            topology_to_json(topology)
        except ReproError as exc:
            problems.append(f"{rel}: loaded but cannot re-serialise: {exc}")

    for stem in sorted(set(PRESET_EXPORTS) - stems):
        problems.append(
            f"{directory}/{stem}.json: preset export missing from the "
            f"committed set"
        )
    return problems


def main(argv: list[str]) -> int:
    directory = (
        pathlib.Path(argv[1])
        if len(argv) > 1
        else REPO_ROOT / "benchmarks" / "topologies"
    )
    problems = check_directory(directory)
    if problems:
        print(f"{len(problems)} topology file problem(s):")
        for problem in problems:
            print(f"  {problem}")
        return 1
    print(f"topology files ok under {directory}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))

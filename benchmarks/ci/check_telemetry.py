"""CI guard: every committed telemetry file is valid and replayable.

The ``repro-telemetry/1`` streams under ``benchmarks/telemetry/`` are
worked examples (and the shadow-mode smoke fixture), synthesized from
figure artifacts under the default calibration.  Three things can rot
silently: a file stops parsing against the strict schema, a file stops
round-tripping (``dumps(load(f)) != f``, i.e. the dumper and loader
disagree), or the model drifts away from the committed stream (a
calibration or simulator change alters the predicted durations, so the
"zero drift by construction" guarantee breaks and the file needs a
re-export).  This guard fails CI on all three.

Usage::

    python benchmarks/ci/check_telemetry.py [DIR]

Checks every ``*.jsonl`` under the given directory (default
``benchmarks/telemetry``):

1. it loads under the strict ``repro-telemetry/1`` validators;
2. ``dumps(load(file))`` is byte-identical to the file;
3. files named in ``SYNTHETIC_EXPORTS`` shadow-replay under the
   default calibration with max |drift| below ``DRIFT_GATE`` — the
   round-trip guarantee that makes them usable as zero-drift fixtures;
4. every ``SYNTHETIC_EXPORTS`` entry has a committed file.

Exit 1 with a per-file report on any failure.
"""

from __future__ import annotations

import pathlib
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.errors import ReproError  # noqa: E402
from repro.twin import load_telemetry, shadow_replay  # noqa: E402

#: file stem -> artifact it was synthesized from (under the default
#: calibration).  These must replay drift-free; see ``DRIFT_GATE``.
SYNTHETIC_EXPORTS = {
    "fig06_example": "fig06",
}

#: Max per-record |relative drift| tolerated for synthetic exports.
#: Synthesis and replay share the same float expressions, so the true
#: round-trip error is exactly 0.0; the gate only leaves headroom for
#: a future serialisation change, not for model drift.
DRIFT_GATE = 1e-9


def check_directory(directory: pathlib.Path) -> list[str]:
    problems: list[str] = []
    files = sorted(directory.glob("*.jsonl"))
    if not files:
        return [f"{directory}: no telemetry files found"]

    stems = set()
    for path in files:
        rel = path.relative_to(REPO_ROOT)
        try:
            stream = load_telemetry(path)
        except ReproError as exc:
            problems.append(f"{rel}: does not load: {exc}")
            continue
        stems.add(path.stem)

        if stream.dumps() != path.read_text():
            problems.append(
                f"{rel}: not serialisation-canonical; re-export with "
                f"repro.twin.synthesize_telemetry(...).dump()"
            )

        if path.stem in SYNTHETIC_EXPORTS:
            artifact = SYNTHETIC_EXPORTS[path.stem]
            report = shadow_replay(stream)
            if report.max_abs_drift > DRIFT_GATE:
                problems.append(
                    f"{rel}: max |drift| {report.max_abs_drift:.3e} > "
                    f"{DRIFT_GATE:.0e} against the default calibration — "
                    f"the model moved away from this stream; re-export it "
                    f"from {artifact!r}"
                )
            else:
                print(
                    f"ok {rel}: {len(stream.records)} record(s), "
                    f"max |drift| {report.max_abs_drift:.3e}"
                )

    for stem in sorted(set(SYNTHETIC_EXPORTS) - stems):
        problems.append(
            f"{directory}/{stem}.jsonl: synthetic export missing from "
            f"the committed set"
        )
    return problems


def main(argv: list[str]) -> int:
    directory = (
        pathlib.Path(argv[1])
        if len(argv) > 1
        else REPO_ROOT / "benchmarks" / "telemetry"
    )
    problems = check_directory(directory)
    if problems:
        print(f"{len(problems)} telemetry file problem(s):")
        for problem in problems:
            print(f"  {problem}")
        return 1
    print(f"telemetry files ok under {directory}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))

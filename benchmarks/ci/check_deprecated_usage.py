"""CI guard: internal code must not use deprecated ``Session`` kwargs.

The pre-v1 flat observation kwargs (``Session(trace=True)``,
``metrics=...``, ``spans=...``, …) keep working for downstream callers
behind a :class:`DeprecationWarning`, but the library itself must be
fully migrated to ``obs=ObsConfig(...)`` — otherwise every internal
call site would spray warnings into user runs and the shim could never
be retired.

Usage::

    python benchmarks/ci/check_deprecated_usage.py [ROOT ...]

Walks every ``*.py`` under the given roots (default ``src/repro``),
parses them, and flags keyword arguments from ``DEPRECATED_KWARGS`` on
any call whose callee is literally named ``Session`` (attribute or
bare).  Pure AST — docstrings, comments, and the shim's own
implementation never trip it.  Exit 1 on any hit.
"""

from __future__ import annotations

import ast
import pathlib
import sys

#: The flat kwargs shimmed (and warned about) by ``Session.__init__``.
DEPRECATED_KWARGS = frozenset(
    {"trace", "trace_capacity", "metrics", "metrics_capacity", "spans"}
)


def _callee_name(call: ast.Call) -> str | None:
    func = call.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def find_violations(tree: ast.AST, path: str) -> list[str]:
    """Deprecated-kwarg call sites in one parsed module."""
    violations = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call) or _callee_name(node) != "Session":
            continue
        bad = sorted(
            keyword.arg
            for keyword in node.keywords
            if keyword.arg in DEPRECATED_KWARGS
        )
        if bad:
            violations.append(
                f"{path}:{node.lineno}: Session({', '.join(bad)}=...) is "
                f"deprecated — use obs=ObsConfig(...)"
            )
    return violations


def scan(roots: list[str]) -> list[str]:
    violations: list[str] = []
    for root in roots:
        for path in sorted(pathlib.Path(root).rglob("*.py")):
            try:
                tree = ast.parse(path.read_text(), filename=str(path))
            except SyntaxError as exc:
                violations.append(f"{path}: unparseable: {exc}")
                continue
            violations.extend(find_violations(tree, str(path)))
    return violations


def main(argv: list[str]) -> int:
    roots = argv[1:] or ["src/repro"]
    violations = scan(roots)
    for violation in violations:
        print(f"FAIL: {violation}", file=sys.stderr)
    if not violations:
        print(f"ok: no deprecated Session kwargs under {', '.join(roots)}")
    return 1 if violations else 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))

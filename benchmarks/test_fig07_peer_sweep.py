"""Regenerates Figure 7: hipMemcpyPeer bandwidth sweep, GCD0→{1,2,6}.

Acceptance: plateaus at 75 % / 50 % / 25 % of single/dual/quad link
peaks (the SDMA ceiling), with a latency-bound ramp at small sizes.
"""

import pytest

from repro.units import GiB


def test_figure_7(run_artifact):
    result = run_artifact("fig07")
    theoretical = {1: 200e9, 2: 50e9, 6: 100e9}
    expected_util = {1: 0.25, 2: 0.755, 6: 0.50}
    for dst, peak_link in theoretical.items():
        peak = result.peak(dst=dst)
        assert peak.value / peak_link == pytest.approx(
            expected_util[dst], abs=0.01
        )
        # Ramp: the smallest size is far below the plateau.
        series = result.series(dst=dst)
        smallest = min(series, key=lambda m: m.x)
        assert smallest.value < 0.05 * peak.value

"""Ablation benchmarks: quantify the design choices behind the findings.

Each test isolates one mechanism the paper identifies, runs the
affected experiment under the baseline and a what-if scenario (or an
alternative algorithm), and asserts the direction and rough magnitude
of the change.  Together they demonstrate that the reproduced shapes
come from the modeled mechanisms, not from hard-coded outputs.
"""

import pytest

from repro.bench_suites.comm_scope import measure_h2d, measure_peer_copy
from repro.bench_suites.p2p_matrix import (
    measure_pair_bandwidth,
    measure_pair_bandwidth_bidirectional,
)
from repro.bench_suites.stream import direct_p2p_read, multi_gpu_cpu_stream
from repro.core.whatif import get_scenario
from repro.hardware.node import HardwareNode
from repro.rccl.communicator import RcclCommunicator
from repro.rccl.ring import build_greedy_ring, build_optimal_ring
from repro.rccl.tree import tree_allreduce
from repro.units import GiB, KiB, MiB, to_gbps, to_us


def _rccl_latency(gcds, nbytes, *, ring_builder=build_greedy_ring, algo="ring"):
    node = HardwareNode()
    comm = RcclCommunicator(node, gcds, ring_builder=ring_builder)

    def run():
        t0 = node.now
        if algo == "tree":
            yield from tree_allreduce(comm, nbytes)
        else:
            yield from comm.allreduce(nbytes)
        return node.now - t0

    return node.engine.run_process(run())


class TestSdmaEngineCap:
    """§V-A2: the SDMA cap is why Fig. 6c has two tiers, not three."""

    def test_lifting_the_cap_restores_three_tiers(self, benchmark):
        scenario = get_scenario("unconstrained-sdma")

        def run():
            return {
                dst: measure_peer_copy(
                    0, dst, 1 * GiB, calibration=scenario.calibration
                )
                for dst in (1, 2, 6)
            }

        rates = benchmark.pedantic(run, rounds=1, iterations=1)
        print("\nhypothetical unconstrained SDMA engines (GB/s):")
        for dst, rate in rates.items():
            print(f"  GCD0->{dst}: {to_gbps(rate):6.1f}")
        # Three distinct tiers reappear, tracking the link widths.
        assert rates[1] > 1.8 * rates[6] > 1.6 * rates[2]
        # Baseline: quad and dual are indistinguishable (both 50).
        baseline_quad = measure_peer_copy(0, 1, 1 * GiB)
        baseline_dual = measure_peer_copy(0, 6, 1 * GiB)
        assert baseline_quad == pytest.approx(baseline_dual, rel=0.02)


class TestNumaPortCapacity:
    """§IV-C: the shared NUMA port is why same-GPU dual-GCD is flat."""

    def test_doubling_ports_makes_same_gpu_scale(self, benchmark):
        scenario = get_scenario("double-numa-ports")

        def run():
            return (
                multi_gpu_cpu_stream([0, 1]),
                multi_gpu_cpu_stream(
                    [0, 1], calibration=scenario.calibration
                ),
            )

        baseline_rate, widened_rate = benchmark.pedantic(
            run, rounds=1, iterations=1
        )
        print(
            f"\nsame-GPU dual-GCD STREAM: baseline "
            f"{to_gbps(baseline_rate):.1f} GB/s, doubled ports "
            f"{to_gbps(widened_rate):.1f} GB/s (now DRAM-bound)"
        )
        # Widening the IF port helps — and immediately exposes the next
        # bottleneck in the chain: the NUMA domain's 51.2 GB/s DRAM
        # channel, which both GCDs' host buffers share.  Removing one
        # constraint surfaces the next; same-GPU placement stays
        # structurally disadvantaged.
        assert widened_rate > 1.1 * baseline_rate
        assert to_gbps(widened_rate) == pytest.approx(51.2, rel=0.02)


class TestXnackSensitivity:
    """Fig. 3's 2.8 GB/s is fault-service-bound, not link-bound."""

    def test_faster_faults_raise_migration_bandwidth(self, benchmark):
        scenario = get_scenario("fast-fault-handling")

        def run():
            return (
                measure_h2d("managed_migration", 128 * MiB),
                measure_h2d(
                    "managed_migration",
                    128 * MiB,
                    calibration=scenario.calibration,
                ),
            )

        base, fast = benchmark.pedantic(run, rounds=1, iterations=1)
        print(
            f"\nXNACK migration: baseline {to_gbps(base):.2f} GB/s, "
            f"halved fault cost {to_gbps(fast):.2f} GB/s"
        )
        assert 1.7 * base < fast < 2.1 * base

    def test_huge_pages_approach_link_rate(self, benchmark):
        scenario = get_scenario("large-migration-pages")
        rate = benchmark.pedantic(
            lambda: measure_h2d(
                "managed_migration",
                256 * MiB,
                calibration=scenario.calibration,
            ),
            rounds=1,
            iterations=1,
        )
        print(f"\n2 MiB-granule migration: {to_gbps(rate):.1f} GB/s")
        # One fault per 2 MiB amortizes: close to the 28.3 GB/s engine rate.
        assert to_gbps(rate) > 24


class TestRingHeuristic:
    """Fig. 12's 7→8 drop comes from the greedy ring's relay at 7."""

    def test_optimal_ring_erases_the_seven_rank_penalty(self, benchmark):
        def run():
            return (
                _rccl_latency(list(range(7)), 1 * MiB),
                _rccl_latency(
                    list(range(7)), 1 * MiB, ring_builder=build_optimal_ring
                ),
                _rccl_latency(list(range(8)), 1 * MiB),
            )

        greedy7, optimal7, greedy8 = benchmark.pedantic(
            run, rounds=1, iterations=1
        )
        print(
            f"\nallreduce 1 MiB: greedy 7-ring {to_us(greedy7):.1f} us, "
            f"optimal 7-ring {to_us(optimal7):.1f} us, "
            f"8-ring {to_us(greedy8):.1f} us"
        )
        assert optimal7 < greedy7          # the heuristic costs real time
        assert optimal7 < greedy8          # and a relay-free 7-ring beats 8
        assert greedy8 < greedy7           # the paper's observed drop


class TestRingVsTree:
    """Extension: RCCL's tree algorithm vs the ring (NCCL_ALGO)."""

    def test_tree_wins_small_ring_wins_large(self, benchmark):
        def run():
            return {
                size: (
                    _rccl_latency(list(range(8)), size),
                    _rccl_latency(list(range(8)), size, algo="tree"),
                )
                for size in (32 * KiB, 16 * MiB)
            }

        results = benchmark.pedantic(run, rounds=1, iterations=1)
        small_ring, small_tree = results[32 * KiB]
        large_ring, large_tree = results[16 * MiB]
        print(
            f"\nallreduce 32 KiB: ring {to_us(small_ring):.1f} us, "
            f"tree {to_us(small_tree):.1f} us"
        )
        print(
            f"allreduce 16 MiB: ring {to_us(large_ring):.0f} us, "
            f"tree {to_us(large_tree):.0f} us"
        )
        assert small_tree < small_ring
        assert large_ring < large_tree


class TestTopologyWhatIf:
    """Extra links remove detours but cannot fix engine-bound copies."""

    def test_dense_mesh_helps_kernels_not_sdma(self, benchmark):
        scenario = get_scenario("dense-fabric")

        def run():
            return (
                direct_p2p_read(0, 3, 1 * GiB),
                direct_p2p_read(0, 3, 1 * GiB, topology=scenario.topology),
                measure_pair_bandwidth(0, 3, size=1 * GiB),
                measure_pair_bandwidth(
                    0, 3, size=1 * GiB, topology=scenario.topology
                ),
            )

        kernel_base, kernel_dense, sdma_base, sdma_dense = benchmark.pedantic(
            run, rounds=1, iterations=1
        )
        print(
            f"\nGCD0->3 kernel: frontier {to_gbps(kernel_base):.1f}, "
            f"dense {to_gbps(kernel_dense):.1f} GB/s; "
            f"SDMA: frontier {to_gbps(sdma_base):.1f}, "
            f"dense {to_gbps(sdma_dense):.1f} GB/s"
        )
        # 0-3 keeps a single-link bottleneck either way (the dense mesh
        # adds a *direct* single link), so the kernel rate is unchanged
        # but the route shortens; SDMA stays engine/protocol-capped.
        assert kernel_dense == pytest.approx(kernel_base, rel=0.02)
        assert sdma_dense == pytest.approx(sdma_base, rel=0.02)


class TestBidirectionalPeer:
    """Extension: p2pBandwidthLatencyTest's bidirectional matrix mode."""

    def test_bidirectional_doubles_sdma_plateau(self, benchmark):
        def run():
            return (
                measure_pair_bandwidth(0, 1, size=1 * GiB),
                measure_pair_bandwidth_bidirectional(0, 1, size=1 * GiB),
            )

        uni, bidi = benchmark.pedantic(run, rounds=1, iterations=1)
        print(
            f"\nGCD0<->1 SDMA: unidirectional {to_gbps(uni):.1f} GB/s, "
            f"bidirectional total {to_gbps(bidi):.1f} GB/s"
        )
        # Per-direction engines: the two directions overlap fully.
        assert bidi == pytest.approx(2 * uni, rel=0.05)


class TestCoherentFabric:
    """MI300A-style what-if: cache-coherent fabric lifts the MI250X
    rule that coherent memory bypasses GPU caches (paper §II-C)."""

    def test_cacheable_zero_copy_closes_the_fig3_gap(self, benchmark):
        from repro.hip.runtime import HipRuntime
        from repro.memory.coherence import CoherencePolicy

        def measure(mi300: bool, size):
            hip = HipRuntime(
                coherence=CoherencePolicy(mi300_coherent_fabric=mi300)
            )
            host = hip.host_malloc(size)  # pinned coherent
            dev = hip.malloc(size)

            def run():
                t0 = hip.now
                yield hip.launch_stream_copy(dev, host)
                return size / (hip.now - t0)

            return hip.run(run())

        def run_all():
            small = 16 * MiB  # LLC-resident working set
            return (
                measure(False, small),
                measure(True, small),
                measure(True, 256 * MiB),  # beyond the LLC
            )

        mi250, mi300_small, mi300_large = benchmark.pedantic(
            run_all, rounds=1, iterations=1
        )
        print(
            f"\nzero-copy H2D at 16 MiB: MI250X-coherent "
            f"{to_gbps(mi250):.1f} GB/s, coherent-fabric "
            f"{to_gbps(mi300_small):.1f} GB/s; at 256 MiB "
            f"{to_gbps(mi300_large):.1f} GB/s"
        )
        # With caching allowed, LLC-resident zero-copy reaches the
        # pinned-memcpy efficiency tier; beyond the LLC it falls back.
        assert mi300_small > 1.08 * mi250
        assert mi300_large == pytest.approx(mi250, rel=0.05)

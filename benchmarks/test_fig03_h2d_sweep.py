"""Regenerates Figure 3: H2D bandwidth vs transfer size (4 KiB-1 GiB).

Acceptance: the four interface curves with the paper's ordering at
large sizes and the pinned/managed separation beyond the 32 MB LLC.
"""

import pytest

from repro.units import GiB, KiB, MiB


def test_figure_3(run_artifact):
    result = run_artifact("fig03")
    assert len(result) == 4 * 19  # 4 interfaces x 19 power-of-two sizes

    big = 1 * GiB
    at_big = {
        m.meta["interface"]: m.value
        for m in result.measurements
        if m.x == big
    }
    assert (
        at_big["pinned_memcpy"]
        > at_big["managed_zerocopy"]
        > at_big["pageable_memcpy"]
        > at_big["managed_migration"]
    )

    # Zero-copy tracks pinned up to 32 MiB, then pinned pulls ahead.
    for size in (4 * MiB, 16 * MiB, 32 * MiB):
        pinned = next(
            m.value
            for m in result.series(interface="pinned_memcpy")
            if m.x == size
        )
        managed = next(
            m.value
            for m in result.series(interface="managed_zerocopy")
            if m.x == size
        )
        assert managed == pytest.approx(pinned, rel=0.12)
    pinned_1g = at_big["pinned_memcpy"]
    managed_1g = at_big["managed_zerocopy"]
    assert pinned_1g > 1.08 * managed_1g

    # Small transfers are latency-bound: far below peak at 4 KiB.
    for interface in ("pinned_memcpy", "managed_zerocopy"):
        small = next(
            m.value
            for m in result.series(interface=interface)
            if m.x == 4 * KiB
        )
        assert small < 0.1 * at_big[interface]

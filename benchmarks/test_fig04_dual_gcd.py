"""Regenerates Figure 4: dual-GCD CPU-GPU STREAM placements.

Acceptance: spread doubles the single-GCD bandwidth; same-GPU does not
improve on it.
"""

import pytest


def test_figure_4(run_artifact):
    result = run_artifact("fig04")
    by_case = {m.meta["case"]: m.value for m in result.measurements}
    one = by_case["1 GCD"]
    assert by_case["2 GCDs (same GPU)"] == pytest.approx(one, rel=0.05)
    assert by_case["2 GCDs (spread)"] == pytest.approx(2 * one, rel=0.05)

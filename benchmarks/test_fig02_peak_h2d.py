"""Regenerates Figure 2: peak achieved host-to-device bandwidth.

Acceptance (paper §IV-A): pinned 28.3 GB/s, managed zero-copy
25.5 GB/s, page migration 2.8 GB/s, pageable below pinned.
"""

import pytest


def test_figure_2(run_artifact):
    result = run_artifact("fig02")
    peaks = {m.meta["interface"]: m.value for m in result.measurements}
    assert peaks["pinned_memcpy"] == pytest.approx(28.3e9, abs=0.2e9)
    assert peaks["managed_zerocopy"] == pytest.approx(25.5e9, abs=0.2e9)
    assert peaks["managed_migration"] == pytest.approx(2.8e9, abs=0.1e9)
    assert peaks["pageable_memcpy"] < peaks["pinned_memcpy"]

"""Regenerates Figure 5: CPU-GPU STREAM scaling (1-8 GCDs, spread).

Acceptance: proportional scaling 1→4; eight GCDs equal four.
"""

import pytest


def test_figure_5(run_artifact):
    result = run_artifact("fig05")
    by_count = {int(m.x): m.value for m in result.measurements}
    assert by_count[2] == pytest.approx(2 * by_count[1], rel=0.05)
    assert by_count[4] == pytest.approx(4 * by_count[1], rel=0.05)
    assert by_count[8] == pytest.approx(by_count[4], rel=0.05)

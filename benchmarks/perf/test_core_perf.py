"""Smoke harness for the simulation-core perf suite.

Runs the scaled-down suite and checks the report shape plus basic
sanity (positive throughputs, incremental solver not slower than the
batch re-solve).  Full-scale numbers are produced by ``make bench`` /
``repro perf -o BENCH_core.json``.
"""

from __future__ import annotations

import json

from repro.perf.core import format_report, run_suite, write_report


def test_smoke_suite_shape_and_sanity(tmp_path):
    report = run_suite(smoke=True)

    assert report["schema"] == "repro-bench-core/8"
    assert report["smoke"] is True
    results = report["results"]
    assert results["engine_events"]["events_per_second"] > 0
    assert results["timer_cancel"]["timers_per_second"] > 0

    epochs = results["engine_epochs"]
    assert epochs["epoch_events_per_second"] > 0
    assert 0 < epochs["distinct_timestamps"] < epochs["events"]
    assert (
        report["headline"]["epoch_events_per_second"]
        == epochs["epoch_events_per_second"]
    )

    integration = results["flow_integration"]
    assert integration["transfers_per_second"]["python"] > 0
    assert integration["fastest_backend"] in integration["backends"]
    assert integration["identical_final_time"] is True
    assert (
        report["headline"]["flow_integration_speedup"]
        == integration["speedup"]
    )

    churn = results["flow_churn"]
    assert churn["total_flows"] == churn["pairs"] * churn["flows_per_pair"]
    assert churn["incremental_flows_per_second"] > 0
    # Even at smoke scale the persistent solver should not lose to a
    # full batch re-solve per flow event.
    assert churn["speedup"] > 0.9

    overhead = results["metrics_overhead"]
    assert overhead["baseline_wall_seconds"] > 0
    # Enabled metrics cost something; disabled must be near-free.  The
    # smoke bound is loose (tiny workloads are noisy); the committed
    # full report is held to 5% by check_bench.py.
    assert overhead["disabled_overhead"] < 0.5
    assert (
        report["headline"]["metrics_disabled_overhead"]
        == overhead["disabled_overhead"]
    )

    spans = results["span_overhead"]
    assert spans["baseline_wall_seconds"] > 0
    assert (
        report["headline"]["spans_disabled_overhead"]
        == spans["disabled_overhead"]
    )

    assert results["figure_sweep"]["measurements"] > 0
    assert report["headline"]["churn_speedup_vs_batch_resolve"] == churn["speedup"]

    shadow = results["shadow_replay"]
    assert shadow["records"] > 0
    assert shadow["windows"] > 1
    assert shadow["shadow_replay_windows_per_second"] > 0
    assert (
        report["headline"]["shadow_replay_windows_per_second"]
        == shadow["shadow_replay_windows_per_second"]
    )

    serve = results["serve"]
    assert serve["warm_cache_misses"] == 0
    assert serve["warm_identical"] is True
    assert serve["burst"]["rejected"] > 0
    assert serve["burst"]["retry_after_seen"] is True
    assert report["headline"]["serve_requests_per_second"] == serve["serve_requests_per_second"]
    assert report["headline"]["serve_whatif_p99_ms"] == serve["serve_whatif_p99_ms"]

    capacity = results["set_capacity"]
    assert capacity["changes"] > 0
    assert capacity["capacity_changes_per_second"] > 0
    assert (
        report["headline"]["capacity_changes_per_second"]
        == capacity["capacity_changes_per_second"]
    )

    path = tmp_path / "BENCH_core.json"
    write_report(str(path), report)
    assert json.loads(path.read_text())["schema"] == "repro-bench-core/8"

    text = format_report(report)
    assert "flow churn" in text and "events/s" in text
    assert "sweep parallel" in text and "cache hit" in text
    assert "span overhead" in text
    assert "capacity churn" in text
    assert "epoch dispatch" in text
    assert "flow integration" in text
    assert "shadow replay" in text
    assert "serve (warm)" in text


def test_smoke_suite_sweep_benchmarks():
    report = run_suite(smoke=True)
    results = report["results"]

    parallel = results["sweep_parallel"]
    assert parallel["points"] > 1
    assert parallel["jobs"] >= 1
    assert parallel["identical_outputs"] is True
    assert parallel["speedup"] > 0
    assert report["headline"]["sweep_parallel_speedup"] == parallel["speedup"]

    cache = results["cache_hit"]
    assert cache["warm_hits"] == cache["points"]
    assert cache["identical_outputs"] is True
    # A warm run only deserializes pickles; it must beat the cold run.
    assert cache["speedup"] > 1.0
    assert report["headline"]["cache_hit_speedup"] == cache["speedup"]


def test_report_is_reproducible_and_diffable():
    report = run_suite(smoke=True)

    # Provenance travels with the numbers.
    assert report["version"]
    assert report["git_sha"]
    # The only run-specific values live under meta, outside the
    # comparison path.
    assert "created_unix" in report["meta"]
    assert "created_unix" not in report["headline"]
    assert "created_unix" not in report["results"]

    def floats(value):
        if isinstance(value, float):
            yield value
        elif isinstance(value, dict):
            for child in value.values():
                yield from floats(child)
        elif isinstance(value, list):
            for child in value:
                yield from floats(child)

    for number in floats(report["results"]):
        assert number == round(number, 6)
    for number in floats(report["headline"]):
        assert number == round(number, 6)


def test_cli_perf_smoke(tmp_path, capsys):
    from repro.cli import main

    out = tmp_path / "bench.json"
    assert main(["perf", "--smoke", "-o", str(out)]) == 0
    assert out.exists()
    assert "simulation-core performance" in capsys.readouterr().out


def _guard_report(events=100_000.0, churn=20_000.0, platform="test-box"):
    return {
        "schema": "repro-bench-core/3",
        "smoke": False,
        "results": {"sweep_parallel": {"jobs": 1, "parallel_fallbacks": 0}},
        "headline": {
            "events_per_second": events,
            "incremental_flows_per_second": churn,
            "cache_hit_speedup": 10.0,
            "metrics_disabled_overhead": 0.01,
        },
        "meta": {"platform": platform},
    }


class TestCheckBenchBaseline:
    def _check(self, report, baseline):
        import check_bench

        return check_bench.check_baseline(report, baseline)

    def test_within_tolerance_passes(self):
        report = _guard_report(events=96_000.0)  # 4% below baseline
        assert self._check(report, _guard_report()) == []

    def test_regression_beyond_tolerance_fails(self):
        report = _guard_report(events=90_000.0)  # 10% below baseline
        failures = self._check(report, _guard_report())
        assert len(failures) == 1
        assert "events_per_second" in failures[0]

    def test_platform_mismatch_skips(self):
        report = _guard_report(events=1.0, platform="other-box")
        assert self._check(report, _guard_report()) == []

    def test_overhead_guard_in_main_check(self):
        import check_bench

        report = _guard_report()
        report["headline"]["metrics_disabled_overhead"] = 0.2
        failures = check_bench.check(report)
        assert any("metrics_disabled_overhead" in f for f in failures)

    def test_span_overhead_guard_in_main_check(self):
        import check_bench

        report = _guard_report()
        report["headline"]["spans_disabled_overhead"] = 0.2
        failures = check_bench.check(report)
        assert any("spans_disabled_overhead" in f for f in failures)

    def test_epoch_floor_guard_in_main_check(self):
        import check_bench

        report = _guard_report()
        report["headline"]["epoch_events_per_second"] = 1000.0
        failures = check_bench.check(report)
        assert any("epoch_events_per_second" in f for f in failures)

    def test_integration_speedup_guard_in_main_check(self):
        import check_bench

        report = _guard_report()
        report["headline"]["flow_integration_speedup"] = 1.1
        report["results"]["flow_integration"] = {
            "fastest_backend": "vectorized"
        }
        failures = check_bench.check(report)
        assert any("flow_integration_speedup" in f for f in failures)

    def test_serve_floor_guards_in_main_check(self):
        import check_bench

        report = _guard_report()
        report["headline"]["serve_requests_per_second"] = 0.5
        report["headline"]["serve_whatif_p99_ms"] = 10_000_000.0
        failures = check_bench.check(report)
        assert any("serve_requests_per_second" in f for f in failures)
        assert any("serve_whatif_p99_ms" in f for f in failures)

    def test_integration_guard_skips_python_only_runs(self):
        import check_bench

        report = _guard_report()
        report["headline"]["flow_integration_speedup"] = 1.0
        report["results"]["flow_integration"] = {"fastest_backend": "python"}
        failures = check_bench.check(report)
        assert not any("flow_integration" in f for f in failures)

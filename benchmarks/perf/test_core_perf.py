"""Smoke harness for the simulation-core perf suite.

Runs the scaled-down suite and checks the report shape plus basic
sanity (positive throughputs, incremental solver not slower than the
batch re-solve).  Full-scale numbers are produced by ``make bench`` /
``repro perf -o BENCH_core.json``.
"""

from __future__ import annotations

import json

from repro.perf.core import format_report, run_suite, write_report


def test_smoke_suite_shape_and_sanity(tmp_path):
    report = run_suite(smoke=True)

    assert report["schema"] == "repro-bench-core/1"
    assert report["smoke"] is True
    results = report["results"]
    assert results["engine_events"]["events_per_second"] > 0
    assert results["timer_cancel"]["timers_per_second"] > 0

    churn = results["flow_churn"]
    assert churn["total_flows"] == churn["pairs"] * churn["flows_per_pair"]
    assert churn["incremental_flows_per_second"] > 0
    # Even at smoke scale the persistent solver should not lose to a
    # full batch re-solve per flow event.
    assert churn["speedup"] > 0.9

    assert results["figure_sweep"]["measurements"] > 0
    assert report["headline"]["churn_speedup_vs_batch_resolve"] == churn["speedup"]

    path = tmp_path / "BENCH_core.json"
    write_report(str(path), report)
    assert json.loads(path.read_text())["schema"] == "repro-bench-core/1"

    text = format_report(report)
    assert "flow churn" in text and "events/s" in text


def test_cli_perf_smoke(tmp_path, capsys):
    from repro.cli import main

    out = tmp_path / "bench.json"
    assert main(["perf", "--smoke", "-o", str(out)]) == 0
    assert out.exists()
    assert "simulation-core performance" in capsys.readouterr().out

"""CI perf-regression guard for ``BENCH_core.json``.

Usage: ``python benchmarks/perf/check_bench.py BENCH_core.json``

Fails (exit 1) when a headline number regresses below its threshold:

- ``sweep_parallel_speedup`` must reach ``REPRO_MIN_PARALLEL_SPEEDUP``
  (default 1.5).  Skipped when the run had fewer than two effective
  jobs or fell back to serial execution — a single-core runner cannot
  demonstrate a parallel speedup and should not fail for it.
- ``cache_hit_speedup`` must reach ``REPRO_MIN_CACHE_SPEEDUP``
  (default 2.0; warm runs only deserialize pickles).

Thresholds are environment-overridable so a noisy runner can be
loosened without editing the workflow.
"""

from __future__ import annotations

import json
import os
import sys


def check(report: dict) -> list[str]:
    """Return a list of failure messages (empty = pass)."""
    failures: list[str] = []
    headline = report.get("headline", {})
    parallel = report.get("results", {}).get("sweep_parallel", {})

    min_parallel = float(os.environ.get("REPRO_MIN_PARALLEL_SPEEDUP", "1.5"))
    jobs = parallel.get("jobs", 1)
    fallbacks = parallel.get("parallel_fallbacks", 0)
    if jobs < 2 or fallbacks:
        print(
            f"skip: sweep_parallel check (jobs={jobs}, "
            f"fallbacks={fallbacks}) — no parallel run to judge"
        )
    else:
        speedup = headline.get("sweep_parallel_speedup", 0.0)
        if speedup < min_parallel:
            failures.append(
                f"sweep_parallel_speedup {speedup:.2f} < {min_parallel:.2f} "
                f"(jobs={jobs})"
            )
        else:
            print(
                f"ok: sweep_parallel_speedup {speedup:.2f} >= "
                f"{min_parallel:.2f} (jobs={jobs})"
            )

    min_cache = float(os.environ.get("REPRO_MIN_CACHE_SPEEDUP", "2.0"))
    cache_speedup = headline.get("cache_hit_speedup", 0.0)
    if cache_speedup < min_cache:
        failures.append(
            f"cache_hit_speedup {cache_speedup:.2f} < {min_cache:.2f}"
        )
    else:
        print(f"ok: cache_hit_speedup {cache_speedup:.2f} >= {min_cache:.2f}")

    return failures


def main(argv: list[str]) -> int:
    if len(argv) != 2:
        print(__doc__, file=sys.stderr)
        return 2
    with open(argv[1]) as handle:
        report = json.load(handle)
    schema = report.get("schema", "")
    if not schema.startswith("repro-bench-core/"):
        print(f"error: unrecognized report schema {schema!r}", file=sys.stderr)
        return 2
    failures = check(report)
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))

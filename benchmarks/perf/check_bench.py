"""CI perf-regression guard for ``BENCH_core.json``.

Usage::

    python benchmarks/perf/check_bench.py BENCH_core.json \
        [--baseline BASELINE.json]

Fails (exit 1) when a headline number regresses below its threshold:

- ``sweep_parallel_speedup`` must reach ``REPRO_MIN_PARALLEL_SPEEDUP``
  (default 1.5).  Skipped when the run had fewer than two effective
  jobs or fell back to serial execution — a single-core runner cannot
  demonstrate a parallel speedup and should not fail for it.
- ``cache_hit_speedup`` must reach ``REPRO_MIN_CACHE_SPEEDUP``
  (default 2.0; warm runs only deserialize pickles).
- ``metrics_disabled_overhead`` must stay at or below
  ``REPRO_MAX_METRICS_OVERHEAD`` (default 0.05): a *disabled* metrics
  registry may not slow the flow-churn workload by more than 5%,
  because every simulation pays the ``if metrics:`` guard.
- ``spans_disabled_overhead`` must stay at or below
  ``REPRO_MAX_SPANS_OVERHEAD`` (default 0.05): a disabled span
  recorder may not slow the same workload by more than 5% either —
  every flow pays the ``if spans:`` guard.
- ``capacity_changes_per_second`` must reach
  ``REPRO_MIN_CAPACITY_CHURN`` (default 5000): fault injection
  re-levels in-flight flows on every ``set_capacity`` call, so churn
  throughput collapsing means degraded links stall the whole sweep.
- ``epoch_events_per_second`` must reach
  ``REPRO_MIN_EPOCH_EVENTS`` (default 400000): the batched epoch
  dispatcher drains same-timestamp bursts in bulk; falling below the
  floor means the engine regressed to per-event heap churn.
- ``churn_large_flows_per_second`` must reach
  ``REPRO_MIN_CHURN_LARGE`` (default 1000) and
  ``churn_large_speedup_vs_full`` must reach
  ``REPRO_MIN_CHURN_LARGE_SPEEDUP`` (default 5.0): on the largest
  cluster in the sweep (128 GCDs under ``--smoke``, 512 in the full
  suite) the dirty-set re-level must hold its throughput and its
  margin over the full-component re-solve, else the solver has
  regressed to O(system) churn.
- ``flow_integration_speedup`` must reach
  ``REPRO_MIN_INTEGRATION_SPEEDUP`` (default 1.5): the vectorized
  (or compiled) interval integrator must beat the scalar python
  backend on the mixed long/short-flow workload, else the NumPy
  arrays are pure overhead.
- ``shadow_replay_windows_per_second`` must reach
  ``REPRO_MIN_SHADOW_WINDOWS`` (default 5): the digital-twin shadow
  replayer re-simulates telemetry windows through the sweep runner;
  falling below the floor means replaying a day of telemetry would
  take longer than recording it.
- ``serve_requests_per_second`` must reach ``REPRO_MIN_SERVE_RPS``
  (default 5) and ``serve_whatif_p99_ms`` must stay at or below
  ``REPRO_MAX_SERVE_P99_MS`` (default 60000): the warm wave of the
  serve load test is pure shared-store dedup, so its sustained rate
  collapsing (or its p99 blowing past a minute) means the service is
  re-simulating, serializing on a lock, or starving its job queue.

With ``--baseline`` (a previously committed report), throughput
headlines may not regress by more than ``REPRO_MAX_PERF_REGRESSION``
(default 0.05 = 5%) relative to the baseline:

- ``events_per_second``
- ``incremental_flows_per_second``

The baseline comparison is skipped when ``meta.platform`` differs —
numbers from a different machine are not comparable — or when the
baseline file is missing/unreadable.

Thresholds are environment-overridable so a noisy runner can be
loosened without editing the workflow.
"""

from __future__ import annotations

import json
import os
import sys

#: Headline throughput keys compared against a baseline report.
BASELINE_KEYS = (
    "events_per_second",
    "incremental_flows_per_second",
    "capacity_changes_per_second",
    "epoch_events_per_second",
    "churn_large_flows_per_second",
    "shadow_replay_windows_per_second",
)


def check(report: dict) -> list[str]:
    """Return a list of failure messages (empty = pass)."""
    failures: list[str] = []
    headline = report.get("headline", {})
    parallel = report.get("results", {}).get("sweep_parallel", {})

    min_parallel = float(os.environ.get("REPRO_MIN_PARALLEL_SPEEDUP", "1.5"))
    jobs = parallel.get("jobs", 1)
    fallbacks = parallel.get("parallel_fallbacks", 0)
    if not parallel:
        print("skip: sweep_parallel not in report (partial --only run)")
    elif jobs < 2 or fallbacks:
        print(
            f"skip: sweep_parallel check (jobs={jobs}, "
            f"fallbacks={fallbacks}) — no parallel run to judge"
        )
    else:
        speedup = headline.get("sweep_parallel_speedup", 0.0)
        if speedup < min_parallel:
            failures.append(
                f"sweep_parallel_speedup {speedup:.2f} < {min_parallel:.2f} "
                f"(jobs={jobs})"
            )
        else:
            print(
                f"ok: sweep_parallel_speedup {speedup:.2f} >= "
                f"{min_parallel:.2f} (jobs={jobs})"
            )

    min_cache = float(os.environ.get("REPRO_MIN_CACHE_SPEEDUP", "2.0"))
    cache_speedup = headline.get("cache_hit_speedup")
    if cache_speedup is None:
        print("skip: cache_hit_speedup not in report (partial --only run)")
    elif cache_speedup < min_cache:
        failures.append(
            f"cache_hit_speedup {cache_speedup:.2f} < {min_cache:.2f}"
        )
    else:
        print(f"ok: cache_hit_speedup {cache_speedup:.2f} >= {min_cache:.2f}")

    max_overhead = float(os.environ.get("REPRO_MAX_METRICS_OVERHEAD", "0.05"))
    overhead = headline.get("metrics_disabled_overhead")
    if overhead is None:
        print("skip: metrics_disabled_overhead not in report (old schema)")
    elif overhead > max_overhead:
        failures.append(
            f"metrics_disabled_overhead {overhead:.1%} > {max_overhead:.1%}"
        )
    else:
        print(
            f"ok: metrics_disabled_overhead {overhead:.1%} <= "
            f"{max_overhead:.1%}"
        )

    max_span_overhead = float(
        os.environ.get("REPRO_MAX_SPANS_OVERHEAD", "0.05")
    )
    span_overhead = headline.get("spans_disabled_overhead")
    if span_overhead is None:
        print("skip: spans_disabled_overhead not in report (old schema)")
    elif span_overhead > max_span_overhead:
        failures.append(
            f"spans_disabled_overhead {span_overhead:.1%} > "
            f"{max_span_overhead:.1%}"
        )
    else:
        print(
            f"ok: spans_disabled_overhead {span_overhead:.1%} <= "
            f"{max_span_overhead:.1%}"
        )

    min_churn = float(os.environ.get("REPRO_MIN_CAPACITY_CHURN", "5000"))
    churn = headline.get("capacity_changes_per_second")
    if churn is None:
        print("skip: capacity_changes_per_second not in report (old schema)")
    elif churn < min_churn:
        failures.append(
            f"capacity_changes_per_second {churn:,.0f} < {min_churn:,.0f}"
        )
    else:
        print(
            f"ok: capacity_changes_per_second {churn:,.0f} >= "
            f"{min_churn:,.0f}"
        )

    min_epoch = float(os.environ.get("REPRO_MIN_EPOCH_EVENTS", "400000"))
    epoch_rate = headline.get("epoch_events_per_second")
    if epoch_rate is None:
        print("skip: epoch_events_per_second not in report (old schema)")
    elif epoch_rate < min_epoch:
        failures.append(
            f"epoch_events_per_second {epoch_rate:,.0f} < {min_epoch:,.0f}"
        )
    else:
        print(
            f"ok: epoch_events_per_second {epoch_rate:,.0f} >= "
            f"{min_epoch:,.0f}"
        )

    min_churn_large = float(os.environ.get("REPRO_MIN_CHURN_LARGE", "1000"))
    churn_large = headline.get("churn_large_flows_per_second")
    if churn_large is None:
        print("skip: churn_large_flows_per_second not in report (old schema)")
    elif churn_large < min_churn_large:
        failures.append(
            f"churn_large_flows_per_second {churn_large:,.0f} < "
            f"{min_churn_large:,.0f}"
        )
    else:
        print(
            f"ok: churn_large_flows_per_second {churn_large:,.0f} >= "
            f"{min_churn_large:,.0f}"
        )

    min_large_speedup = float(
        os.environ.get("REPRO_MIN_CHURN_LARGE_SPEEDUP", "5.0")
    )
    large_speedup = headline.get("churn_large_speedup_vs_full")
    if large_speedup is None:
        print("skip: churn_large_speedup_vs_full not in report (old schema)")
    elif large_speedup < min_large_speedup:
        failures.append(
            f"churn_large_speedup_vs_full {large_speedup:.2f} < "
            f"{min_large_speedup:.2f}"
        )
    else:
        print(
            f"ok: churn_large_speedup_vs_full {large_speedup:.2f} >= "
            f"{min_large_speedup:.2f}"
        )

    min_integration = float(
        os.environ.get("REPRO_MIN_INTEGRATION_SPEEDUP", "1.5")
    )
    integration = headline.get("flow_integration_speedup")
    fastest = (
        report.get("results", {})
        .get("flow_integration", {})
        .get("fastest_backend")
    )
    if integration is None:
        print("skip: flow_integration_speedup not in report (old schema)")
    elif fastest == "python":
        # No accelerated backend ran (numpy unavailable) — nothing to
        # compare the scalar loop against.
        print("skip: flow_integration check (only python backend ran)")
    elif integration < min_integration:
        failures.append(
            f"flow_integration_speedup {integration:.2f} < "
            f"{min_integration:.2f}"
        )
    else:
        print(
            f"ok: flow_integration_speedup {integration:.2f} >= "
            f"{min_integration:.2f}"
        )

    min_shadow = float(os.environ.get("REPRO_MIN_SHADOW_WINDOWS", "5"))
    shadow_rate = headline.get("shadow_replay_windows_per_second")
    if shadow_rate is None:
        print(
            "skip: shadow_replay_windows_per_second not in report "
            "(old schema)"
        )
    elif shadow_rate < min_shadow:
        failures.append(
            f"shadow_replay_windows_per_second {shadow_rate:,.1f} < "
            f"{min_shadow:,.1f}"
        )
    else:
        print(
            f"ok: shadow_replay_windows_per_second {shadow_rate:,.1f} >= "
            f"{min_shadow:,.1f}"
        )

    min_serve_rps = float(os.environ.get("REPRO_MIN_SERVE_RPS", "5"))
    serve_rps = headline.get("serve_requests_per_second")
    if serve_rps is None:
        print("skip: serve_requests_per_second not in report (old schema)")
    elif serve_rps < min_serve_rps:
        failures.append(
            f"serve_requests_per_second {serve_rps:,.1f} < "
            f"{min_serve_rps:,.1f}"
        )
    else:
        print(
            f"ok: serve_requests_per_second {serve_rps:,.1f} >= "
            f"{min_serve_rps:,.1f}"
        )

    max_serve_p99 = float(os.environ.get("REPRO_MAX_SERVE_P99_MS", "60000"))
    serve_p99 = headline.get("serve_whatif_p99_ms")
    if serve_p99 is None:
        print("skip: serve_whatif_p99_ms not in report (old schema)")
    elif serve_p99 > max_serve_p99:
        failures.append(
            f"serve_whatif_p99_ms {serve_p99:,.0f} > {max_serve_p99:,.0f}"
        )
    else:
        print(
            f"ok: serve_whatif_p99_ms {serve_p99:,.0f} <= "
            f"{max_serve_p99:,.0f}"
        )

    return failures


def check_baseline(report: dict, baseline: dict) -> list[str]:
    """Compare throughput headlines against a baseline report."""
    platform_now = report.get("meta", {}).get("platform")
    platform_base = baseline.get("meta", {}).get("platform")
    if platform_now != platform_base:
        print(
            f"skip: baseline comparison (platform {platform_base!r} != "
            f"{platform_now!r}) — numbers not comparable across machines"
        )
        return []
    if report.get("smoke") != baseline.get("smoke"):
        print("skip: baseline comparison (smoke flag differs)")
        return []

    tolerance = float(os.environ.get("REPRO_MAX_PERF_REGRESSION", "0.05"))
    failures: list[str] = []
    headline = report.get("headline", {})
    base_headline = baseline.get("headline", {})
    for key in BASELINE_KEYS:
        now = headline.get(key)
        base = base_headline.get(key)
        if now is None or not base:
            print(f"skip: baseline {key} (missing from report or baseline)")
            continue
        floor = base * (1.0 - tolerance)
        if now < floor:
            failures.append(
                f"{key} {now:,.0f} < {floor:,.0f} "
                f"(baseline {base:,.0f} - {tolerance:.0%})"
            )
        else:
            print(
                f"ok: {key} {now:,.0f} >= {floor:,.0f} "
                f"(baseline {base:,.0f} - {tolerance:.0%})"
            )
    return failures


def _load(path: str) -> dict | None:
    try:
        with open(path) as handle:
            return json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"warning: cannot read {path}: {exc}", file=sys.stderr)
        return None


def main(argv: list[str]) -> int:
    args = list(argv[1:])
    baseline_path: str | None = None
    if "--baseline" in args:
        at = args.index("--baseline")
        try:
            baseline_path = args[at + 1]
        except IndexError:
            print("error: --baseline needs a path", file=sys.stderr)
            return 2
        del args[at : at + 2]
    if len(args) != 1:
        print(__doc__, file=sys.stderr)
        return 2
    report = _load(args[0])
    if report is None:
        return 2
    schema = report.get("schema", "")
    if not schema.startswith("repro-bench-core/"):
        print(f"error: unrecognized report schema {schema!r}", file=sys.stderr)
        return 2
    failures = check(report)
    if baseline_path is not None:
        baseline = _load(baseline_path)
        if baseline is None:
            print("skip: baseline comparison (baseline unreadable)")
        else:
            failures.extend(check_baseline(report, baseline))
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))

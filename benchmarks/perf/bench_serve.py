"""Standalone load-test harness for ``repro serve``.

Usage::

    PYTHONPATH=src python benchmarks/perf/bench_serve.py \
        [--clients 200] [--tenants 8] [--workers 4] [--smoke] \
        [-o SERVE_REPORT.json]

Stands up a real service on an ephemeral port and runs the three-phase
load test from :mod:`repro.serve.loadtest`: a barrier-released cold
wave of concurrent what-if submissions, the identical warm wave (which
must be served entirely from the shared result store, bit-identically),
and an over-quota burst (which must be throttled with 429 +
``Retry-After``).  Prints the latency/throughput summary and exits
non-zero if any acceptance property fails.

The same numbers land in ``BENCH_core.json`` via ``repro perf`` (the
``serve`` section); this harness exists for iterating on the service
without re-running the whole suite.
"""

from __future__ import annotations

import argparse
import json
import sys


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--clients", type=int, default=200)
    parser.add_argument("--tenants", type=int, default=8)
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--quota-rate", type=float, default=50.0)
    parser.add_argument("--quota-burst", type=float, default=64.0)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="scaled-down run (48 clients) for CI smoke",
    )
    parser.add_argument("-o", "--output", help="write the JSON report here")
    args = parser.parse_args(argv)

    from repro.errors import BenchmarkError
    from repro.serve.loadtest import run_load_test

    clients = 48 if args.smoke else args.clients
    try:
        report = run_load_test(
            clients=clients,
            tenants=args.tenants,
            workers=args.workers,
            quota_rate=args.quota_rate,
            quota_burst=args.quota_burst,
        )
    except BenchmarkError as exc:
        print(f"FAIL: {exc}", file=sys.stderr)
        return 1

    for phase in ("cold", "warm"):
        block = report[phase]
        print(
            f"{phase:>5}: {block['requests_per_second']:>8.1f} req/s  "
            f"p50 {block['p50_ms']:>8.1f} ms  "
            f"p95 {block['p95_ms']:>8.1f} ms  "
            f"p99 {block['p99_ms']:>8.1f} ms  "
            f"({clients} clients / {report['tenants']} tenants)"
        )
    burst = report["burst"]
    print(
        f"burst: {burst['rejected']}/{burst['sent']} rejected with 429 "
        f"(retry-after seen: {burst['retry_after_seen']})"
    )
    print(
        f"store: {report['store_entries']} entries; warm misses "
        f"{report['warm_cache_misses']}, identical "
        f"{report['warm_identical']}"
    )
    if args.output:
        with open(args.output, "w") as handle:
            json.dump(report, handle, indent=2)
            handle.write("\n")
        print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

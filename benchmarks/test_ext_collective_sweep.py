"""Extension study: collective latency across message sizes.

The paper fixes collectives at 1 MiB (Fig. 11/12).  This study sweeps
the message size for allreduce on all eight GCDs and locates the
MPI/RCCL crossover: MPI's lean eager path wins tiny messages, RCCL's
launch overhead amortizes and its ring wins from tens of KiB up.
"""

import pytest

from repro.bench_suites.osu import osu_collective_latency
from repro.bench_suites.rccl_tests import rccl_collective_latency
from repro.units import KiB, MiB, to_us


def test_allreduce_size_sweep(benchmark):
    sizes = [1 * KiB, 16 * KiB, 128 * KiB, 1 * MiB, 16 * MiB]

    def run():
        table = {}
        for size in sizes:
            mpi = osu_collective_latency("allreduce", 8, message_bytes=size)
            rccl = rccl_collective_latency("allreduce", 8, message_bytes=size)
            table[size] = (mpi, rccl)
        return table

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\nallreduce on 8 GCDs (us):")
    print(f"{'size':>10s} {'MPI':>10s} {'RCCL':>10s}  winner")
    for size, (mpi, rccl) in table.items():
        winner = "RCCL" if rccl < mpi else "MPI"
        print(
            f"{size:>10d} {to_us(mpi):>10.1f} {to_us(rccl):>10.1f}  {winner}"
        )

    # The paper's operating point: RCCL wins at 1 MiB.
    assert table[1 * MiB][1] < table[1 * MiB][0]
    # Bandwidth-bound regime: the ring's advantage grows with size.
    mpi_16m, rccl_16m = table[16 * MiB]
    assert rccl_16m < 0.8 * mpi_16m
    # Both implementations scale sanely: latency increases with size.
    mpi_values = [table[s][0] for s in sizes]
    rccl_values = [table[s][1] for s in sizes]
    assert mpi_values == sorted(mpi_values)
    assert rccl_values == sorted(rccl_values)

"""Regenerates Figure 6: p2pBandwidthLatencyTest matrices.

Acceptance (paper §V-A): shortest paths ≤ 2 hops; latency window
8.7-18.2 us with the single-link/sub-10, same-GPU 10.5-10.8 and
detour ~18 us classes; exactly two bandwidth tiers (37-38, 50 GB/s).
"""

import pytest

from repro.core.analysis import cluster_tiers
from repro.units import to_gbps, to_us


def test_figure_6(run_artifact):
    result = run_artifact("fig06")

    hops = {(m.meta["src"], m.meta["dst"]): m.value for m in result.series(panel="a")}
    assert max(hops.values()) == 2

    latency = {
        (m.meta["src"], m.meta["dst"]): m.value for m in result.series(panel="b")
    }
    values_us = [to_us(v) for v in latency.values()]
    assert min(values_us) == pytest.approx(8.7, abs=0.05)
    assert max(values_us) <= 18.2
    for pair in ((1, 7), (7, 1), (3, 5), (5, 3)):
        assert 17.8 <= to_us(latency[pair]) <= 18.2
    for base in (0, 2, 4, 6):
        assert 10.5 <= to_us(latency[(base, base + 1)]) <= 10.8

    bandwidth = [m.value for m in result.series(panel="c")]
    tiers = cluster_tiers([to_gbps(v) for v in bandwidth])
    assert len(tiers) == 2
    low, high = sorted(t.center for t in tiers)
    assert 37 <= low <= 38 and high == pytest.approx(50, abs=0.5)

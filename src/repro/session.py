"""``repro.Session`` — the one-object front door to the simulator.

Standing up a simulated experiment used to take a four-object
constructor dance::

    topology = frontier_node()
    node = HardwareNode(topology, calibration, trace=True)
    env = SimEnvironment(xnack_enabled=True)
    hip = HipRuntime(node, env)

duplicated (with slight variations) across every example, benchmark
suite and figure driver.  :class:`Session` wires the whole stack —
topology preset, :class:`~repro.hardware.node.HardwareNode`,
:class:`~repro.config.SimEnvironment`,
:class:`~repro.hip.runtime.HipRuntime`, tracer, and the incremental
fair-share solver — behind a single context manager::

    import repro

    with repro.Session(topology="mi250x", trace=True) as s:
        a = s.hip.malloc(1 << 30, device=0)
        b = s.hip.malloc(1 << 30, device=1)
        s.run(s.hip.memcpy_peer(b, 1, a, 0))
        print(s.now, s.tracer.timeline())

Sessions are cheap: one per measurement run keeps runs isolated and
deterministic, exactly like the bare objects did.
"""

from __future__ import annotations

import warnings
from typing import Any, Callable, Generator, Sequence

from .config import SimEnvironment
from .configs import ObsConfig, RunnerConfig
from .core.calibration import CalibrationProfile
from .errors import ConfigurationError
from .hardware.node import HardwareNode
from .hip.runtime import HipRuntime
from .memory.coherence import CoherencePolicy
from .topology.node import NodeTopology
from .topology.presets import (
    dense_hive_node,
    frontier_node,
    mi250x_cluster,
    single_gpu_node,
)

#: Named topology presets accepted by ``Session(topology=...)``.
TOPOLOGY_PRESETS: dict[str, Callable[[], NodeTopology]] = {
    "frontier": frontier_node,
    "frontier-mi250x": frontier_node,
    "mi250x": frontier_node,  # the paper's system — the default
    "single": single_gpu_node,
    "single-mi250x": single_gpu_node,
    "dense-hive": dense_hive_node,
    "mi250x-cluster": mi250x_cluster,  # 4 frontier nodes on NIC rails
}

#: Parametric preset prefix: ``mi250x-cluster-<N>`` builds an N-node
#: cluster (``mi250x-cluster-16`` → 128 GCDs).
_CLUSTER_PREFIX = "mi250x-cluster-"

#: File extensions that mark a topology string as a file path rather
#: than a preset name (``repro-topology/1`` documents).
_TOPOLOGY_FILE_SUFFIXES = (".json", ".yaml", ".yml")


def _looks_like_topology_file(spec: str) -> bool:
    import os

    if spec.lower().endswith(_TOPOLOGY_FILE_SUFFIXES):
        return True
    return os.sep in spec or (os.altsep is not None and os.altsep in spec)


def resolve_topology(topology: "str | NodeTopology | None") -> NodeTopology:
    """Turn a topology spec into a :class:`NodeTopology`.

    Accepts a preset name (``"mi250x"``, ``"mi250x-cluster-<N>"``), a
    path to a ``repro-topology/1`` file (anything ending in
    ``.json``/``.yaml``/``.yml`` or containing a path separator), an
    already-built :class:`NodeTopology`, or ``None`` — which adopts an
    ambient :func:`repro.topology.context.install` topology when one is
    active and otherwise builds the paper's Fig. 1 node.
    """
    if topology is None:
        from .topology.context import active as active_topology

        ambient = active_topology()
        return ambient if ambient is not None else frontier_node()
    if isinstance(topology, NodeTopology):
        return topology
    if isinstance(topology, str):
        if _looks_like_topology_file(topology):
            from .topology.schema import load_topology

            return load_topology(topology)
        key = topology.strip().lower()
        if key.startswith(_CLUSTER_PREFIX):
            suffix = key[len(_CLUSTER_PREFIX):]
            if not suffix.isdigit() or int(suffix) < 2:
                raise ConfigurationError(
                    f"bad cluster preset {topology!r}: expected "
                    f"{_CLUSTER_PREFIX}<nodes> with nodes >= 2"
                )
            return mi250x_cluster(nodes=int(suffix))
        factory = TOPOLOGY_PRESETS.get(key)
        if factory is None:
            known = ", ".join(sorted(TOPOLOGY_PRESETS))
            raise ConfigurationError(
                f"unknown topology preset {topology!r} "
                f"(known: {known}, plus {_CLUSTER_PREFIX}<nodes> "
                f"and topology files ending in "
                f"{'/'.join(_TOPOLOGY_FILE_SUFFIXES)})"
            )
        return factory()
    raise ConfigurationError(
        f"topology must be a preset name, file path or NodeTopology, "
        f"got {topology!r}"
    )


def _fold_flat_obs_kwargs(
    obs: ObsConfig | None,
    *,
    trace: bool | None,
    trace_capacity: int | None,
    metrics: Any,
    metrics_capacity: int | None,
    spans: Any,
) -> ObsConfig:
    """Merge the pre-v1 flat observation kwargs into an ObsConfig.

    Each flat kwarg earns a :class:`DeprecationWarning`; combining the
    two styles is an error (silently preferring one would hide a bug at
    the call site).
    """
    passed = {
        name: value
        for name, value in (
            ("trace", trace),
            ("trace_capacity", trace_capacity),
            ("metrics", metrics),
            ("metrics_capacity", metrics_capacity),
            ("spans", spans),
        )
        if value is not None
    }
    if not passed:
        return obs if obs is not None else ObsConfig()
    if obs is not None:
        raise ConfigurationError(
            "pass either obs=ObsConfig(...) or the deprecated flat kwargs, "
            f"not both: {sorted(passed)}"
        )
    spelling = ", ".join(f"{name}=..." for name in sorted(passed))
    warnings.warn(
        f"Session({spelling}) is deprecated; use "
        f"Session(obs=ObsConfig({spelling})) — see docs/migration.md",
        DeprecationWarning,
        stacklevel=3,
    )
    return ObsConfig(
        trace=bool(trace),
        trace_capacity=trace_capacity,
        metrics=metrics,
        metrics_capacity=metrics_capacity,
        spans=spans,
    )


def _resolve_telemetry(telemetry: Any):
    """Coerce ``Session(telemetry=...)`` into a TelemetryStream."""
    if telemetry is None:
        return None
    from .twin.schema import TelemetryStream, load_telemetry

    if isinstance(telemetry, TelemetryStream):
        return telemetry
    if isinstance(telemetry, (str, bytes)) or hasattr(telemetry, "__fspath__"):
        return load_telemetry(telemetry)
    raise ConfigurationError(
        f"telemetry must be a TelemetryStream or a JSONL file path, "
        f"got {telemetry!r}"
    )


class Session:
    """One fully-wired simulated machine plus its software stack.

    Parameters
    ----------
    topology:
        Preset name (``"mi250x"``, ``"frontier"``, ``"single"``,
        ``"dense-hive"``), a :class:`NodeTopology`, or ``None`` for the
        paper's Fig. 1 node.
    calibration:
        Measurement-derived constants; defaults to the MI250X profile.
    env:
        A :class:`SimEnvironment`, or ``None`` to build one from
        ``**env_flags`` (e.g. ``xnack_enabled=True``,
        ``sdma_enabled=False``) — the simulated counterparts of
        ``HSA_XNACK`` / ``HSA_ENABLE_SDMA`` / …
    backend:
        Flow-integration backend: ``"python"``, ``"vectorized"``
        (default), or ``"compiled"`` (numba; degrades automatically
        when unavailable).  All backends are bit-identical — see
        :mod:`repro.sim.backends`.  ``None`` consults the
        ``REPRO_BACKEND`` environment variable.
    obs:
        An :class:`~repro.configs.ObsConfig` grouping the tracer,
        metrics, and span settings.  ``None`` means observe nothing
        (near-zero cost).
    runner:
        A :class:`~repro.configs.RunnerConfig` providing the defaults
        for :meth:`runner` (jobs, cache, captures).
    coherence:
        Optional :class:`CoherencePolicy` override for the HIP layer.
    faults:
        A :class:`~repro.faults.FaultScenario` to inject into this
        session's node (timed link degradations/failures, SDMA stalls,
        page-migration storms).  ``None`` (the default) adopts an
        ambient :func:`repro.faults.install` context if one is active;
        pass an *empty* scenario to shield a session from the ambient
        one.
    rccl_algorithm:
        Default collective algorithm for communicators built via
        :meth:`rccl_communicator` — ``"ring"``, ``"tree"``,
        ``"double_binary_tree"``, ``"hierarchical_ring"`` or ``"auto"``
        (topology-aware selection).  ``None`` (the default) defers to
        an ambient :func:`repro.rccl.install_algorithm` context, then
        to the paper-faithful ring.
    telemetry:
        A machine telemetry stream for digital-twin shadow mode — a
        :class:`~repro.twin.TelemetryStream` or the path of a
        ``repro-telemetry/1`` JSONL file.  Stored for :meth:`shadow`
        and :meth:`calibrate`; it does not change how the session
        simulates.
    trace, trace_capacity, metrics, metrics_capacity, spans:
        .. deprecated:: 0.7
            The pre-v1 flat spellings of ``obs=ObsConfig(...)``.
            Still honoured (with a :class:`DeprecationWarning`); see
            ``docs/migration.md``.
    """

    def __init__(
        self,
        topology: str | NodeTopology | None = None,
        *,
        calibration: CalibrationProfile | None = None,
        env: SimEnvironment | None = None,
        backend: str | None = None,
        obs: ObsConfig | None = None,
        runner: RunnerConfig | None = None,
        coherence: CoherencePolicy | None = None,
        faults: Any = None,
        rccl_algorithm: str | None = None,
        telemetry: Any = None,
        trace: bool | None = None,
        trace_capacity: int | None = None,
        metrics: Any = None,
        metrics_capacity: int | None = None,
        spans: Any = None,
        **env_flags: Any,
    ) -> None:
        if env is not None and env_flags:
            raise ConfigurationError(
                "pass either env= or environment keyword flags, not both: "
                f"{sorted(env_flags)}"
            )
        obs = _fold_flat_obs_kwargs(
            obs,
            trace=trace,
            trace_capacity=trace_capacity,
            metrics=metrics,
            metrics_capacity=metrics_capacity,
            spans=spans,
        )
        self.obs = obs
        self.runner_config = runner if runner is not None else RunnerConfig()
        if rccl_algorithm is not None:
            from .rccl.algorithms import check_algorithm

            check_algorithm(rccl_algorithm)
        self.rccl_algorithm = rccl_algorithm
        self.telemetry = _resolve_telemetry(telemetry)
        self.topology = resolve_topology(topology)
        if env is None:
            try:
                env = SimEnvironment(**env_flags)
            except TypeError as exc:
                raise ConfigurationError(
                    f"unknown environment flag(s) {sorted(env_flags)}: {exc}"
                ) from exc
        self.env = env
        self.node = HardwareNode(
            self.topology,
            calibration,
            trace=obs.trace,
            trace_capacity=obs.trace_capacity,
            metrics=obs.metrics,
            metrics_capacity=obs.metrics_capacity,
            spans=obs.spans,
            faults=faults,
            backend=backend,
        )
        self.hip = HipRuntime(self.node, self.env, coherence=coherence)
        self._closed = False

    @property
    def backend(self) -> str:
        """The flow-integration backend actually in effect."""
        return self.node.network.backend

    # -- context management --------------------------------------------------

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        self.close()

    def close(self) -> None:
        """Drain outstanding simulated work (idempotent)."""
        if self._closed:
            return
        self._closed = True
        self.node.engine.run()

    # -- convenience accessors -----------------------------------------------

    @property
    def engine(self):
        """The deterministic DES engine."""
        return self.node.engine

    @property
    def network(self):
        """The fluid-flow network."""
        return self.node.network

    @property
    def tracer(self):
        """The session's tracer (enabled iff ``trace=True``)."""
        return self.node.tracer

    @property
    def calibration(self) -> CalibrationProfile:
        """The calibration profile in effect."""
        return self.node.calibration

    @property
    def now(self) -> float:
        """Current simulated time (seconds)."""
        return self.node.engine.now

    @property
    def num_gcds(self) -> int:
        """Number of GCDs on the simulated node."""
        return self.node.num_gcds

    # -- drivers ----------------------------------------------------------------

    def run(self, process: Generator, name: str = "") -> Any:
        """Drive a simulation process to completion; returns its value.

        Solver work counters reset at each run boundary, so
        :meth:`stats` and :meth:`metrics` report the numbers of the
        most recent run instead of accumulating across reused sessions
        (``repro perf`` reuses one session for repeated measurements).
        """
        self.node.network.solver.stats.reset()
        return self.node.engine.run_process(process, name)

    def run_all(self) -> float:
        """Drain the event queue; returns the final simulated time.

        Resets solver work counters at the boundary, like :meth:`run`.
        """
        self.node.network.solver.stats.reset()
        return self.node.engine.run()

    # -- stack factories ---------------------------------------------------------

    def mpi_world(
        self, rank_gcds: Sequence[int] | None = None, *, retry: Any = None
    ):
        """A GPU-aware MPI world on this session's node.

        ``retry`` is an optional :class:`~repro.faults.RetryPolicy`
        governing transfer retries when a link fails mid-message.
        """
        from .mpi.comm import MpiWorld

        return MpiWorld(self.node, self.env, rank_gcds=rank_gcds, retry=retry)

    def rccl_communicator(self, gcds: Sequence[int] | None = None, **kwargs: Any):
        """An RCCL communicator over (a subset of) this node's GCDs.

        Accepts ``retry=`` (a :class:`~repro.faults.RetryPolicy`) to
        rebuild the ring and retry steps when a link fails
        mid-collective, and ``algorithm=`` to pick a collective
        algorithm (defaults to the session's ``rccl_algorithm``).
        """
        from .rccl.communicator import RcclCommunicator

        if "algorithm" not in kwargs and self.rccl_algorithm is not None:
            kwargs["algorithm"] = self.rccl_algorithm
        return RcclCommunicator(self.node, gcds, env=self.env, **kwargs)

    def runner(
        self,
        jobs: int | str | None = None,
        *,
        use_cache: bool | None = None,
        cache_dir: str | None = None,
        faults: Any = None,
        topology: "str | NodeTopology | None" = None,
        algorithm: str | None = None,
    ):
        """A :class:`~repro.runner.SweepRunner` for fan-out sweeps.

        Arguments left unset fall back to the session's
        :class:`~repro.configs.RunnerConfig` (``runner=`` at
        construction).  The runner spawns a *fresh* session per sim
        point (that is what keeps points independent), so this is a
        factory hanging off the front-door object, not a view of this
        session's node.  Pass ``faults=`` (a
        :class:`~repro.faults.FaultScenario`) for a fault-sensitivity
        sweep, ``topology=`` (a preset name, topology file path or
        :class:`NodeTopology`) to drive every point on that topology,
        or ``algorithm=`` to select the points' collective algorithm;
        this session's own scenario/topology do not propagate
        automatically.
        """
        from .runner import SweepRunner

        config = self.runner_config
        if jobs is None:
            jobs = config.jobs
        if use_cache is None:
            use_cache = config.cache
        if cache_dir is None:
            cache_dir = config.cache_dir
        return SweepRunner(
            jobs,
            use_cache=use_cache,
            cache_dir=cache_dir,
            capture_metrics=config.capture_metrics,
            capture_spans=config.capture_spans,
            faults=faults,
            topology=resolve_topology(topology) if topology is not None else None,
            algorithm=algorithm,
        )

    # -- digital twin -----------------------------------------------------------

    def _twin_stream(self, telemetry: Any):
        stream = (
            _resolve_telemetry(telemetry) if telemetry is not None else self.telemetry
        )
        if stream is None:
            raise ConfigurationError(
                "no telemetry: pass telemetry= here or at Session construction"
            )
        return stream

    def shadow(
        self,
        telemetry: Any = None,
        *,
        window: float | None = None,
        alert_threshold: float | None = None,
        runner: Any = None,
        metrics: Any = None,
    ):
        """Shadow-replay telemetry against this session's configuration.

        Re-simulates the stream (the session's own from
        ``telemetry=`` at construction, or the one passed here) under
        this session's topology and calibration, and returns the
        :class:`~repro.twin.ShadowReport` drift ledger.  ``window``
        partitions the replay into event-time windows; ``runner``
        routes the per-window grids through a
        :class:`~repro.runner.SweepRunner` (caching, spans, faults);
        ``metrics`` receives per-link/tier/interface ``drift/...``
        time series.
        """
        from .twin.replay import DEFAULT_ALERT_THRESHOLD, shadow_replay

        return shadow_replay(
            self._twin_stream(telemetry),
            topology=self.topology,
            calibration=self.node.calibration,
            window=window,
            alert_threshold=(
                alert_threshold
                if alert_threshold is not None
                else DEFAULT_ALERT_THRESHOLD
            ),
            runner=runner,
            metrics=metrics,
        )

    def calibrate(self, telemetry: Any = None, **kwargs: Any):
        """Fit calibration constants to telemetry on this topology.

        Starts from this session's profile and returns the
        :class:`~repro.twin.CalibrationFit`; keyword arguments flow
        through to :func:`repro.twin.fit_calibration` (``fields=``,
        ``max_passes=``, …).  The session itself is unchanged — build
        a new one with ``calibration=fit.profile`` to adopt the fit.
        """
        from .twin.calibrate import fit_calibration

        return fit_calibration(
            self._twin_stream(telemetry),
            topology=self.topology,
            base=self.node.calibration,
            **kwargs,
        )

    # -- introspection ----------------------------------------------------------

    def stats(self) -> dict[str, Any]:
        """Engine + solver work counters (see ``docs/modeling.md``)."""
        stats: dict[str, Any] = {"sim_time": self.node.engine.now}
        stats.update(self.node.engine.stats())
        stats.update(self.node.network.solver.stats.as_dict())
        stats["trace_records"] = len(self.node.tracer)
        stats["spans"] = len(self.node.spans)
        return stats

    def metrics(self) -> dict[str, Any]:
        """Snapshot of the session's metrics registry.

        Empty sections unless the session was built with
        ``metrics=True`` (or a shared registry).  See
        :mod:`repro.obs.metrics` for the schema.
        """
        self.node.network.solver.stats.publish(self.node.metrics)
        return self.node.metrics.snapshot()

    def spans(self) -> list[dict[str, Any]]:
        """Causal spans recorded so far, as JSON-able dicts.

        Empty unless the session was built with ``spans=True`` (or a
        shared recorder).  See :mod:`repro.obs.spans` for the schema.
        """
        return self.node.spans.as_dicts()

    def critical_path(self):
        """Critical path over this session's span DAG.

        Returns a :class:`~repro.obs.attribution.CriticalPath`.
        """
        from .obs.attribution import critical_path

        return critical_path(self.spans())

    def explain(self, *, top: int = 10) -> str:
        """Ranked blame breakdown of this session's critical path."""
        from .obs.attribution import explain_spans

        return explain_spans(self.spans(), top=top)

    def export_trace(
        self, path: str | None = None, **provenance_extra: Any
    ) -> dict[str, Any]:
        """Chrome-trace payload of this session's timeline.

        Combines the tracer's records, counter tracks from the metrics
        registry, span slices with causality flow-arrows (when span
        recording is on), and provenance (calibration/topology
        fingerprints, package version, git SHA).  With ``path``, also
        writes the validated JSON file.
        """
        from . import obs

        payload = obs.build_chrome_trace(
            self.node.tracer.records(),
            metrics=self.node.metrics,
            spans=self.spans() if self.node.spans else None,
            provenance=obs.build_provenance(
                calibration=self.node.calibration,
                topology=self.topology,
                extra=provenance_extra,
            ),
        )
        if path is not None:
            obs.write_chrome_trace(path, payload)
        return payload

    def describe(self) -> str:
        """Topology plus calibration summary text."""
        return self.node.describe()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "closed" if self._closed else f"t={self.node.engine.now:.3g}s"
        return f"<Session {self.topology.name!r} {state}>"

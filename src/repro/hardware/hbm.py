"""HBM2e stack model.

Each GCD owns 64 GB of HBM2e with a 1.6 TB/s peak (paper §II).  The
paper's local-memory reference point is the STREAM copy kernel at
1400 GB/s — 87 % of peak (§V-B) — which calibrates the achievable
streaming efficiency.

The stack is represented as a single flow-network channel whose
capacity is the *achievable* streaming bandwidth; a STREAM copy of
``S`` bytes pushes ``2S`` bytes (read + write) through it, so the
reported STREAM bandwidth ``2S/t`` lands exactly on the calibrated
value.  Capacity accounting (allocation sizes) is tracked here too so
out-of-memory conditions surface like real ``hipErrorOutOfMemory``.
"""

from __future__ import annotations

from typing import Hashable

from ..core.calibration import CalibrationProfile
from ..errors import AllocationError
from ..sim.flow import FlowNetwork
from ..topology.node import GcdInfo


class HbmStack:
    """One GCD's HBM: a bandwidth channel plus a capacity ledger."""

    def __init__(
        self,
        gcd: GcdInfo,
        calibration: CalibrationProfile,
        network: FlowNetwork,
    ) -> None:
        self.gcd_index = gcd.index
        self.capacity_bytes = gcd.hbm_bytes
        self.peak_bandwidth = gcd.hbm_peak_bw
        self.stream_bandwidth = calibration.hbm_stream_bw(gcd.hbm_peak_bw)
        self._allocated = 0
        self.channel: Hashable = ("hbm", gcd.index)
        network.add_channel(self.channel, self.stream_bandwidth)

    @property
    def allocated_bytes(self) -> int:
        """Bytes currently reserved on this stack."""
        return self._allocated

    @property
    def free_bytes(self) -> int:
        """Remaining capacity of this stack."""
        return self.capacity_bytes - self._allocated

    def reserve(self, size: int) -> None:
        """Account for an allocation; raises on exhaustion."""
        if size < 0:
            raise AllocationError("allocation size must be non-negative")
        if self._allocated + size > self.capacity_bytes:
            raise AllocationError(
                f"GCD {self.gcd_index} HBM exhausted: "
                f"{self._allocated + size} > {self.capacity_bytes} bytes"
            )
        self._allocated += size

    def release(self, size: int) -> None:
        """Return bytes to the ledger; over-release raises."""
        if size < 0 or size > self._allocated:
            raise AllocationError(
                f"GCD {self.gcd_index}: releasing {size} bytes of "
                f"{self._allocated} allocated"
            )
        self._allocated -= size

"""EPYC socket model: DRAM per NUMA domain, socket fabric, IF ports.

Three CPU-side resources shape the paper's CPU-GPU results:

- **DRAM channels** (204.8 GB/s socket-wide, 96 ns latency — §IV):
  modeled as one channel per NUMA domain.  They never bind for a
  single GCD (28.3 GB/s ≪ 51.2 GB/s), which is *why* the paper finds
  no NUMA-placement sensitivity (§IV-B).
- **Socket fabric**: the on-die interconnect crossed when a buffer's
  NUMA domain differs from the GCD's attached domain.  Its capacity is
  deliberately generous — "much higher inter-NUMA bandwidth, compared
  to the bandwidth over the interconnect" (§IV-B).
- **NUMA IF ports**: each domain fronts the Infinity Fabric links of
  one GPU package (two GCDs).  The port saturates around a single
  GCD's bidirectional streaming throughput, which is the mechanism
  behind Fig. 4 (same-GPU dual-GCD does not scale) and Fig. 5 (eight
  GCDs no better than four).  The port is a *single* channel summing
  both directions, matching the observed behaviour where even
  opposite-direction traffic of the sibling GCD fails to add.
"""

from __future__ import annotations

from typing import Hashable

from ..core.calibration import CalibrationProfile
from ..errors import TopologyError
from ..sim.flow import FlowNetwork
from ..topology.node import NodeTopology


class CpuSocket:
    """CPU-side channels and affinity queries."""

    def __init__(
        self,
        topology: NodeTopology,
        calibration: CalibrationProfile,
        network: FlowNetwork,
    ) -> None:
        self.topology = topology
        self._calibration = calibration
        self.dram_latency = calibration.dram_latency
        self.socket_channel: Hashable = ("socket",)
        network.add_channel(self.socket_channel, calibration.socket_fabric_bw)
        self._dram_channels: dict[int, Hashable] = {}
        self._port_channels: dict[int, Hashable] = {}
        for numa in topology.numa_domains():
            dram = ("dram", numa.index)
            port = ("numaport", numa.index)
            network.add_channel(dram, calibration.dram_bw_per_numa)
            network.add_channel(port, calibration.numa_ifport_bw)
            self._dram_channels[numa.index] = dram
            self._port_channels[numa.index] = port

    def dram_channel(self, numa_index: int) -> Hashable:
        """DRAM channel id of a NUMA domain."""
        try:
            return self._dram_channels[numa_index]
        except KeyError:
            raise TopologyError(f"no NUMA domain {numa_index}") from None

    def port_channel(self, numa_index: int) -> Hashable:
        """Infinity Fabric port channel id of a NUMA domain."""
        try:
            return self._port_channels[numa_index]
        except KeyError:
            raise TopologyError(f"no NUMA domain {numa_index}") from None

    def host_side_channels(
        self, buffer_numa: int, gcd_index: int
    ) -> list[Hashable]:
        """CPU-side channels a CPU↔GCD transfer crosses.

        Always the GCD's NUMA port and the buffer's DRAM channel; plus
        the socket fabric when buffer and GCD live on different
        domains.  This is the code path CommScope's NUMA-to-GPU
        benchmark exercises: the extra socket hop exists but never
        binds, reproducing the paper's "no degradation" finding.
        """
        gcd_numa = self.topology.numa_of_gcd(gcd_index)
        channels: list[Hashable] = [
            self.port_channel(gcd_numa),
            self.dram_channel(buffer_numa),
        ]
        if buffer_numa != gcd_numa:
            channels.append(self.socket_channel)
        return channels

    def host_memcpy_channels(self, src_numa: int, dst_numa: int) -> list[Hashable]:
        """Channels for a host→host copy (pageable staging)."""
        channels: list[Hashable] = [self.dram_channel(src_numa)]
        if dst_numa != src_numa:
            channels.append(self.dram_channel(dst_numa))
            channels.append(self.socket_channel)
        return channels

    @property
    def total_dram_bandwidth(self) -> float:
        """Socket-wide DRAM bandwidth (204.8 GB/s on the testbed)."""
        return self._calibration.dram_bw_per_numa * len(self._dram_channels)

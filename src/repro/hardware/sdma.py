"""SDMA copy-engine model.

``hipMemcpy``-family transfers are executed by System DMA engines
rather than by compute kernels.  The paper's key finding about them
(§V-A2): they are tuned for PCIe-4.0 x16 and cannot drive more than
≈ 50 GB/s no matter how wide the underlying Infinity Fabric bundle is
— producing the counter-intuitive Fig. 6c matrix with only two
bandwidth tiers (37–38 GB/s on single links, 50 GB/s elsewhere)
instead of the theoretical three.

Each GCD gets one ingress and one egress engine channel (MI250X
hardware dedicates separate SDMA queues per direction), so a
bidirectional pair of copies does not halve each other, but two
same-direction copies on one GCD share an engine — both effects are
observable in the p2pBandwidthLatencyTest full-matrix mode.
"""

from __future__ import annotations

from typing import Hashable

from ..core.calibration import CalibrationProfile
from ..sim.flow import FlowNetwork
from ..topology.link import LinkTier
from ..topology.routing import Route

#: Rate efficiency of a copy redirected to the opposite-direction
#: engine while its own engine is stalled (fault injection).  The
#: queues are direction-tuned, so the fallback path pays a modeled
#: penalty on top of now sharing the other direction's engine.
SDMA_FALLBACK_EFFICIENCY = 0.7


class SdmaEngines:
    """The SDMA engine pair of one GCD."""

    def __init__(
        self,
        gcd_index: int,
        calibration: CalibrationProfile,
        network: FlowNetwork,
    ) -> None:
        self.gcd_index = gcd_index
        self._calibration = calibration
        self.ingress_channel: Hashable = ("sdma", gcd_index, "in")
        self.egress_channel: Hashable = ("sdma", gcd_index, "out")
        throughput = calibration.sdma_engine_throughput
        network.add_channel(self.ingress_channel, throughput)
        network.add_channel(self.egress_channel, throughput)
        self._stalled = {"in": False, "out": False}

    def engine_channel(self, *, outbound: bool) -> Hashable:
        """Engine channel for a copy leaving (or entering) this GCD."""
        return self.egress_channel if outbound else self.ingress_channel

    # -- fault injection -----------------------------------------------------

    def stall(self, *, outbound: bool) -> None:
        """Mark one engine stalled (``SdmaStall`` fault event)."""
        self._stalled["out" if outbound else "in"] = True

    def clear_stall(self, *, outbound: bool) -> None:
        """Clear a stall; subsequent copies plan on their own engine."""
        self._stalled["out" if outbound else "in"] = False

    def is_stalled(self, *, outbound: bool) -> bool:
        """Whether the given direction's engine is currently stalled."""
        return self._stalled["out" if outbound else "in"]

    def plan_engine(self, *, outbound: bool) -> "tuple[Hashable, float]":
        """Stall-aware engine selection: ``(channel, efficiency)``.

        Healthy engines plan on themselves at full efficiency.  A copy
        whose engine is stalled falls back to the opposite-direction
        engine at :data:`SDMA_FALLBACK_EFFICIENCY` (and now contends
        with that direction's traffic); with both engines stalled the
        copy limps along its own engine at the squared penalty.
        """
        direction = "out" if outbound else "in"
        if not self._stalled[direction]:
            return self.engine_channel(outbound=outbound), 1.0
        if not self._stalled["out" if direction == "in" else "in"]:
            return (
                self.engine_channel(outbound=not outbound),
                SDMA_FALLBACK_EFFICIENCY,
            )
        return (
            self.engine_channel(outbound=outbound),
            SDMA_FALLBACK_EFFICIENCY * SDMA_FALLBACK_EFFICIENCY,
        )

    def rate_cap_for_route(self, route: Route) -> float:
        """Protocol-efficiency cap for an SDMA copy along ``route``.

        The binding tier is the narrowest link of the path; the cap is
        ``min(engine, efficiency × bottleneck)`` per
        :meth:`CalibrationProfile.sdma_cap_for_tier`.
        """
        if route.is_local:
            # Device-local hipMemcpy (D2D same GCD): engine-bound.
            return self._calibration.sdma_engine_throughput
        bottleneck = min(route.links, key=lambda l: l.capacity_per_direction)
        return self._calibration.sdma_cap_for_tier(bottleneck.tier)

    def copy_latency(self, route: Route, pair_jitter: float = 0.0) -> float:
        """Small-transfer latency of an engine copy along ``route``.

        This is the Fig. 6b model: base + per-extra-hop + tier-fanout
        setup, evaluated on the bandwidth-maximizing route the runtime
        actually programs.
        """
        if route.is_local:
            return self._calibration.p2p_latency_base
        direct_tier: LinkTier | None = (
            route.links[0].tier if route.num_hops == 1 else None
        )
        return self._calibration.p2p_latency(
            route.num_hops, direct_tier, pair_jitter
        )

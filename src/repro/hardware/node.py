"""The assembled hardware node: devices + channels + routes.

:class:`HardwareNode` is the root simulation object.  It owns the DES
engine and flow network, instantiates every device model from a
:class:`~repro.topology.node.NodeTopology`, registers all channels,
and provides the route/channel primitives the runtime layers (HIP,
MPI, RCCL) compose their transfers from.

One :class:`HardwareNode` == one simulated machine.  Benchmarks create
a fresh node per measurement run, so runs are fully isolated and
deterministic.
"""

from __future__ import annotations

import math
import warnings
from typing import Hashable, Iterable, Sequence

from ..core.calibration import CalibrationProfile, DEFAULT_CALIBRATION
from ..errors import TopologyError
from ..obs.capture import active as active_capture
from ..obs.metrics import MetricsRegistry, resolve_metrics
from ..obs.spans import SpanRecorder, resolve_spans
from ..sim.engine import SimEngine
from ..sim.flow import Flow, FlowNetwork
from ..sim.trace import Tracer
from ..topology.link import LinkEndpoint, LinkTier
from ..topology.node import NodeTopology
from ..topology.presets import frontier_node
from ..topology.routing import Route, RoutingPolicy, route_between
from .cpu import CpuSocket
from .gcd import GcdDevice
from .xgmi import channels_for_route, link_channel, register_link_channels


class HardwareNode:
    """A live simulated multi-GPU node."""

    def __init__(
        self,
        topology: NodeTopology | None = None,
        calibration: CalibrationProfile | None = None,
        *,
        engine: SimEngine | None = None,
        trace: bool = False,
        trace_capacity: int | None = None,
        metrics: "MetricsRegistry | bool | None" = None,
        metrics_capacity: int | None = None,
        spans: "SpanRecorder | bool | None" = None,
        faults: "object | None" = None,
        backend: str | None = None,
    ) -> None:
        # Topology: explicit argument wins; otherwise an ambient
        # topology.context.install() (entered by `--topology FILE` runs
        # and sweep workers) donates its file-defined topology, falling
        # back to the paper's Fig. 1 node.
        if topology is None:
            from ..topology.context import active as active_topology

            topology = active_topology()
        self.topology = topology if topology is not None else frontier_node()
        self.calibration = (
            calibration if calibration is not None else DEFAULT_CALIBRATION
        )
        # Observation plumbing.  Explicit arguments win; otherwise an
        # ambient obs.capture() context (installed by `repro trace` /
        # `--metrics`) donates its shared registry, tracer, and span
        # recorder, so measurement code that builds its own nodes gets
        # observed without signature changes.
        ambient = active_capture()
        tracer: Tracer | None = None
        if metrics is None and ambient is not None:
            self.metrics = ambient.metrics
            ambient.adoptions += 1
            if not trace and ambient.tracer.enabled:
                tracer = ambient.tracer
        else:
            self.metrics = resolve_metrics(metrics, sample_capacity=metrics_capacity)
        if spans is None and ambient is not None:
            self.spans = ambient.spans
        else:
            self.spans = resolve_spans(spans)
        self.engine = engine if engine is not None else SimEngine(metrics=self.metrics)
        self.network = FlowNetwork(
            self.engine, metrics=self.metrics, spans=self.spans, backend=backend
        )
        self.tracer = (
            tracer
            if tracer is not None
            else Tracer(enabled=trace, capacity=trace_capacity)
        )

        register_link_channels(self.network, self.topology.links())
        self.cpu = CpuSocket(self.topology, self.calibration, self.network)
        self.gcds: dict[int, GcdDevice] = {
            info.index: GcdDevice(info, self.calibration, self.network)
            for info in self.topology.gcds()
        }
        self._route_cache: dict[
            tuple[LinkEndpoint, LinkEndpoint, RoutingPolicy, frozenset[str]],
            Route,
        ] = {}

        # Fault injection.  Explicit argument wins; otherwise an ambient
        # faults.install() context (entered by `repro inject` and by
        # fault-sensitivity sweep workers) donates its scenario, so
        # measurement code that builds its own nodes gets faulted
        # without signature changes.
        self._failed_links: set[str] = set()
        self.faults = None
        if faults is None:
            from ..faults.context import active as active_faults

            faults = active_faults()
        if faults:
            from ..faults.injector import FaultInjector

            self.faults = FaultInjector(self, faults)
            self.faults.arm()

    # -- accessors -----------------------------------------------------------

    @property
    def num_gcds(self) -> int:
        """Number of GCDs on this node."""
        return self.topology.num_gcds

    def gcd(self, index: int) -> GcdDevice:
        """The live device object of a GCD index."""
        try:
            return self.gcds[index]
        except KeyError:
            raise TopologyError(f"no GCD {index} on this node") from None

    @property
    def now(self) -> float:
        """Current simulated time (seconds)."""
        return self.engine.now

    # -- link health (fault injection) ---------------------------------------

    def failed_links(self) -> frozenset[str]:
        """Names of links currently failed (capacity 0 both ways).

        The RCCL layer consults this to rebuild rings around dead
        links; empty on a healthy node.
        """
        return frozenset(self._failed_links)

    def mark_link_failed(self, link_name: str) -> None:
        """Record a link as failed (called by the fault injector)."""
        self._failed_links.add(link_name)

    def mark_link_restored(self, link_name: str) -> None:
        """Record a link as healed (called by the fault injector)."""
        self._failed_links.discard(link_name)

    # -- routing -----------------------------------------------------------------

    def route(
        self,
        src: LinkEndpoint,
        dst: LinkEndpoint,
        policy: RoutingPolicy = RoutingPolicy.BANDWIDTH_MAX,
    ) -> Route:
        """Cached route lookup, avoiding currently-failed links.

        Routes are static per topology *and link-health state*: the
        set of failed links is part of the cache key, so routes
        computed while a link is down detour around it and the
        original routes come back once it heals.
        """
        failed = frozenset(self._failed_links)
        key = (src, dst, policy, failed)
        cached = self._route_cache.get(key)
        if cached is None:
            cached = route_between(
                self.topology, src, dst, policy, avoid=failed or None
            )
            self._route_cache[key] = cached
        return cached

    def gcd_route(
        self,
        src_gcd: int,
        dst_gcd: int,
        policy: RoutingPolicy = RoutingPolicy.BANDWIDTH_MAX,
    ) -> Route:
        """Route between two GCDs under a policy (cached)."""
        return self.route(
            LinkEndpoint.gcd(src_gcd), LinkEndpoint.gcd(dst_gcd), policy
        )

    def cpu_link_route(self, gcd_index: int, *, to_gcd: bool) -> Route:
        """The one-hop route over a GCD's own CPU link.

        Buffer NUMA placement is handled separately via
        :meth:`CpuSocket.host_side_channels`; the Infinity Fabric hop
        is always the GCD's own link (the socket fabric carries any
        cross-NUMA leg).
        """
        numa = LinkEndpoint.numa(self.topology.numa_of_gcd(gcd_index))
        gcd = LinkEndpoint.gcd(gcd_index)
        if to_gcd:
            return self.route(numa, gcd)
        return self.route(gcd, numa)

    def bottleneck_tier(self, route: Route) -> LinkTier:
        """Tier of the narrowest link along a non-local route."""
        if route.is_local:
            raise TopologyError("local route has no bottleneck link")
        return min(route.links, key=lambda l: l.capacity_per_direction).tier

    # -- channel composition ----------------------------------------------------

    def fabric_channels(self, route: Route) -> list[Hashable]:
        """Directional link channels for a route (delegates to xgmi)."""
        return channels_for_route(route)

    def host_to_gcd_channels(
        self, buffer_numa: int, gcd_index: int
    ) -> list[Hashable]:
        """All channels of a host→GCD data path (excluding engines)."""
        route = self.cpu_link_route(gcd_index, to_gcd=True)
        return (
            self.cpu.host_side_channels(buffer_numa, gcd_index)
            + self.fabric_channels(route)
            + [self.gcd(gcd_index).hbm.channel]
        )

    def gcd_to_host_channels(
        self, gcd_index: int, buffer_numa: int
    ) -> list[Hashable]:
        """All channels of a GCD→host data path (excluding engines)."""
        route = self.cpu_link_route(gcd_index, to_gcd=False)
        return (
            [self.gcd(gcd_index).hbm.channel]
            + self.fabric_channels(route)
            + self.cpu.host_side_channels(buffer_numa, gcd_index)
        )

    def gcd_to_gcd_channels(
        self,
        src_gcd: int,
        dst_gcd: int,
        policy: RoutingPolicy = RoutingPolicy.BANDWIDTH_MAX,
    ) -> list[Hashable]:
        """All channels of a GCD→GCD data path (excluding engines)."""
        route = self.gcd_route(src_gcd, dst_gcd, policy)
        channels: list[Hashable] = [self.gcd(src_gcd).hbm.channel]
        channels.extend(self.fabric_channels(route))
        if dst_gcd != src_gcd:
            channels.append(self.gcd(dst_gcd).hbm.channel)
        return channels

    # -- flow helpers --------------------------------------------------------------

    def start_flow(
        self,
        channels: Iterable[Hashable],
        size: float,
        *,
        cap: float = math.inf,
        label: str = "",
        span: "object" = None,
    ) -> Flow:
        """Start a flow on the node's network; returns it live."""
        return self.network.transfer(channels, size, cap=cap, label=label, span=span)

    def run_all(self) -> float:
        """Drain the event queue; returns the final simulated time."""
        return self.engine.run()

    def describe(self) -> str:
        """Topology plus calibration summary text."""
        return "\n".join(
            [
                self.topology.describe(),
                self.calibration.describe(),
            ]
        )


def frontier_hardware(
    *,
    calibration: CalibrationProfile | None = None,
    trace: bool = False,
) -> HardwareNode:
    """Convenience: a fresh Fig. 1 node with default calibration.

    .. deprecated:: 0.2
        Use :class:`repro.Session` — it wires the node, environment,
        HIP runtime and tracer together in one object.
    """
    warnings.warn(
        "frontier_hardware() is deprecated; use repro.Session(topology='mi250x')",
        DeprecationWarning,
        stacklevel=2,
    )
    return HardwareNode(frontier_node(), calibration, trace=trace)

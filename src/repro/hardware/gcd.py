"""One Graphics Compute Die as a live simulation object.

A :class:`GcdDevice` bundles the per-die resources — HBM stack, cache
hierarchy, SDMA engine pair — and carries the static
:class:`~repro.topology.node.GcdInfo`.  The HIP runtime layer holds one
of these per physical device; kernels and copies acquire channels and
caps through it.
"""

from __future__ import annotations

from ..core.calibration import CalibrationProfile
from ..sim.flow import FlowNetwork
from ..topology.node import GcdInfo
from .cache import CacheHierarchy
from .hbm import HbmStack
from .sdma import SdmaEngines


class GcdDevice:
    """Live per-GCD hardware state."""

    def __init__(
        self,
        info: GcdInfo,
        calibration: CalibrationProfile,
        network: FlowNetwork,
    ) -> None:
        self.info = info
        self.index = info.index
        self.hbm = HbmStack(info, calibration, network)
        self.cache = CacheHierarchy(info, calibration)
        self.sdma = SdmaEngines(info.index, calibration, network)
        self._calibration = calibration
        self._peer_access: set[int] = set()

    # -- peer access registry (hipDeviceEnablePeerAccess) -----------------

    def enable_peer_access(self, peer_index: int) -> bool:
        """Enable direct access to a peer; returns False if already on."""
        if peer_index == self.index:
            return False
        if peer_index in self._peer_access:
            return False
        self._peer_access.add(peer_index)
        return True

    def disable_peer_access(self, peer_index: int) -> bool:
        """Disable a peer mapping; returns False if it was off."""
        if peer_index in self._peer_access:
            self._peer_access.remove(peer_index)
            return True
        return False

    def can_access_peer(self, peer_index: int) -> bool:
        """Whether kernels on this die may touch the peer's memory."""
        return peer_index == self.index or peer_index in self._peer_access

    @property
    def peer_set(self) -> frozenset[int]:
        """Frozen set of peers with access enabled."""
        return frozenset(self._peer_access)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<GcdDevice {self.index} pkg{self.info.gpu_package} "
            f"numa{self.info.numa_domain}>"
        )

"""Hardware device models.

These modules turn the static :mod:`repro.topology` description into
live simulation resources:

- :mod:`repro.hardware.xgmi` — directional channel naming for links.
- :mod:`repro.hardware.hbm` — HBM2e stack model per GCD.
- :mod:`repro.hardware.cache` — GPU cache hierarchy (L2 + 32 MB LLC).
- :mod:`repro.hardware.sdma` — SDMA copy engines.
- :mod:`repro.hardware.cpu` — EPYC socket: DRAM per NUMA domain,
  socket fabric, Infinity Fabric NUMA ports.
- :mod:`repro.hardware.gcd` — one Graphics Compute Die.
- :mod:`repro.hardware.node` — the assembled :class:`HardwareNode`,
  the object every runtime layer (HIP/MPI/RCCL) runs against.
"""

from .xgmi import link_channel, channels_for_route
from .hbm import HbmStack
from .cache import CacheHierarchy, AccessClass
from .sdma import SdmaEngines
from .cpu import CpuSocket
from .gcd import GcdDevice
from .node import HardwareNode

__all__ = [
    "link_channel",
    "channels_for_route",
    "HbmStack",
    "CacheHierarchy",
    "AccessClass",
    "SdmaEngines",
    "CpuSocket",
    "GcdDevice",
    "HardwareNode",
]

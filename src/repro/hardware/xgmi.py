"""xGMI protocol details and directional channel naming.

Each topology :class:`~repro.topology.link.Link` is full duplex: its
two directions are independent 50 GB/s (or 36 GB/s) channels, which is
why the paper writes "50+50 GB/s".  The flow network therefore gets
*two* channels per link.  This module owns the naming convention and
the route→channel translation used by every transfer path in the
simulator.

It also carries the raw protocol parameters from §II-A (16 bits per
transaction at 25 GT/s) for documentation and for the protocol-level
sanity checks in the test suite.
"""

from __future__ import annotations

from typing import Hashable, Iterable

from ..errors import TopologyError
from ..topology.link import Link, LinkEndpoint
from ..topology.routing import Route

#: xGMI signalling parameters (paper §II-A).
TRANSACTION_BITS = 16
TRANSFER_RATE_GT = 25.0  # giga-transfers per second


def protocol_peak_bandwidth() -> float:
    """Peak bytes/s of one xGMI link from first principles.

    16 bit × 25 GT/s = 50 GB/s, matching
    :data:`repro.topology.link.XGMI_LINK_BW`.
    """
    return TRANSACTION_BITS / 8 * TRANSFER_RATE_GT * 1e9


def link_channel(link: Link, src: LinkEndpoint, dst: LinkEndpoint) -> Hashable:
    """Channel id for traversing ``link`` in the ``src``→``dst`` direction.

    The id embeds the link name and a canonical direction tag (``fwd``
    = from the lexicographically smaller endpoint), so both traversal
    orders of the same physical direction map to the same channel.
    """
    if not link.connects(src, dst):
        raise TopologyError(
            f"link {link.name} does not connect {src} and {dst}"
        )
    lo, hi = sorted((link.a, link.b))
    direction = "fwd" if (src, dst) == (lo, hi) else "rev"
    return ("link", link.name, direction)


def both_channels(link: Link) -> tuple[Hashable, Hashable]:
    """The (fwd, rev) channel ids of a link."""
    lo, hi = sorted((link.a, link.b))
    return (link_channel(link, lo, hi), link_channel(link, hi, lo))


def channels_for_route(route: Route) -> list[Hashable]:
    """Directional link channels crossed when moving bytes along ``route``.

    Local routes (zero hops) return an empty list: such transfers are
    constrained only by memory-side channels and flow caps.
    """
    return [
        link_channel(link, src, dst) for src, dst, link in route.hop_pairs()
    ]


def reverse_channels_for_route(route: Route) -> list[Hashable]:
    """Channels for the opposite direction (responses, write-backs)."""
    return [
        link_channel(link, dst, src) for src, dst, link in route.hop_pairs()
    ]


def register_link_channels(network, links: Iterable[Link]) -> None:
    """Add both directional channels of every link to a flow network."""
    for link in links:
        for channel in both_channels(link):
            network.add_channel(channel, link.capacity_per_direction)

"""GPU cache hierarchy model.

Two cache-related mechanisms matter for the paper's measurements:

1. **Coherent memory bypasses GPU caches** (§II-C): "On MI250X, to
   achieve this effect, GPU-side caching is disabled for coherent
   memory.  Therefore, each access to data located in remote coherent
   memory generates traffic over the CPU-GPU interconnect."  The
   :class:`AccessClass` returned by :meth:`CacheHierarchy.classify`
   records whether an access stream is cacheable at all.

2. **The 32 MB last-level cache** (§IV-A): zero-copy managed traffic
   tracks pinned-memcpy bandwidth up to 32 MB working sets and falls
   behind beyond — modeled as a working-set-dependent hit fraction
   that boosts the effective link efficiency below the LLC size.

The model is deliberately coarse (streaming kernels have no temporal
reuse, so a full set-associative simulation would add nothing the
measurements can see) but it is a real object with real bookkeeping,
so cache-sensitivity studies can refine it.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..core.calibration import CalibrationProfile
from ..topology.node import GcdInfo


class AccessClass(enum.Enum):
    """How an access stream interacts with the GPU cache hierarchy."""

    LOCAL_CACHED = "local_cached"        #: local HBM, normal caching
    REMOTE_CACHEABLE = "remote_cacheable"  #: remote, non-coherent → cacheable
    REMOTE_UNCACHED = "remote_uncached"    #: remote, coherent → cache bypass


@dataclass(frozen=True)
class CacheLevels:
    """Static cache sizes of one GCD (paper §II)."""

    l1_vector_bytes: int = 16 * 1024
    l1_scalar_bytes: int = 16 * 1024
    l2_bytes: int = 8 * 2**20
    llc_bytes: int = 32 * 2**20


class CacheHierarchy:
    """Per-GCD cache behaviour for streaming access patterns."""

    def __init__(self, gcd: GcdInfo, calibration: CalibrationProfile) -> None:
        self.gcd_index = gcd.index
        self.levels = CacheLevels(
            l2_bytes=gcd.l2_bytes, llc_bytes=calibration.llc_bytes
        )
        self._calibration = calibration

    def classify(self, *, local: bool, coherent: bool) -> AccessClass:
        """Access class for a buffer given its location and coherence."""
        if local:
            return AccessClass.LOCAL_CACHED
        if coherent:
            return AccessClass.REMOTE_UNCACHED
        return AccessClass.REMOTE_CACHEABLE

    def fits_llc(self, working_set_bytes: int) -> bool:
        """Whether a working set is LLC-resident (the Fig. 3 crossover)."""
        return working_set_bytes <= self.levels.llc_bytes

    def llc_boost_applies(
        self, working_set_bytes: int, access: AccessClass
    ) -> bool:
        """Whether the LLC raises effective remote-access efficiency.

        Only cache-bypassing *coherent* streams are excluded; for those
        every access goes to the fabric regardless of size.
        """
        if access is AccessClass.REMOTE_UNCACHED:
            return False
        return self.fits_llc(working_set_bytes)

    def streaming_hit_fraction(
        self, working_set_bytes: int, access: AccessClass
    ) -> float:
        """Fraction of a second streaming pass served from cache.

        A single streaming pass over data larger than the LLC has no
        reuse; a pass over LLC-resident data can be fully absorbed on
        re-reference.  Used by the ablation benchmarks; the core
        figure reproductions only need :meth:`llc_boost_applies`.
        """
        if working_set_bytes <= 0:
            return 1.0
        if access is AccessClass.REMOTE_UNCACHED:
            return 0.0
        if working_set_bytes <= self.levels.llc_bytes:
            return 1.0
        # Partial residency: the resident prefix still hits.
        return self.levels.llc_bytes / working_set_bytes

"""``repro.api`` — the versioned v1 surface of the simulator.

Everything a measurement script, figure driver, or service needs,
re-exported from one module with one import::

    from repro.api import Session, ObsConfig, RunnerConfig

    with Session("mi250x", obs=ObsConfig(trace=True, spans=True)) as s:
        src = s.hip.malloc(1 << 30, device=0)
        dst = s.hip.malloc(1 << 30, device=4)
        s.run(s.hip.memcpy_peer(dst, 4, src, 0))
        print(s.explain())

The surface is grouped by role:

**Front door** — :class:`Session` (one fully wired simulated machine),
:class:`ObsConfig` / :class:`RunnerConfig` (grouped construction
options), :data:`TOPOLOGY_PRESETS` / :func:`resolve_topology`.

**Topology as data** — :func:`load_topology` / :func:`dump_topology`
(the versioned ``repro-topology/1`` JSON/YAML schema, round-trip
fingerprint-identical with the code presets), :func:`install_topology`
(ambient topology context).

**Collective algorithms** — :data:`RCCL_ALGORITHMS`,
:func:`select_algorithm` (RCCL-style topology-aware choice),
:func:`install_algorithm` (ambient default for ``--algorithm`` runs).

**Sweeps** — :class:`SweepRunner`, :class:`SimPoint`,
:class:`ResultCache`.

**Fault injection** — :class:`FaultScenario` and its event types,
:class:`RetryPolicy`, :func:`install`.

**Observability** — :func:`capture` (ambient observation),
:class:`MetricsRegistry`, :class:`SpanRecorder`,
:func:`critical_path` / :func:`explain_spans` / :func:`blame_ranking`
(attribution), :func:`collect_report` / :func:`write_report`
(artifact reports), :func:`build_chrome_trace` /
:func:`write_chrome_trace` (Perfetto export).

**Digital twin** — :func:`load_telemetry` / :class:`TelemetryStream`
(the versioned ``repro-telemetry/1`` JSONL schema),
:func:`shadow_replay` (windowed replay with a per-link drift ledger),
:func:`fit_calibration` (the auto-calibrator),
:func:`synthesize_telemetry` (hardware-free streams from any figure
artifact), :func:`load_profile` / :func:`dump_profile` (fitted
``repro-calibration/1`` profiles with provenance).

**Backends** — :func:`resolve_backend` / :func:`compiled_available`
(the flow-integration hot-loop implementations; all bit-identical).

Compatibility contract: within one :data:`API_VERSION`, names exported
here only gain parameters (keyword-only, defaulted) and never change
semantics; anything else in ``repro.*`` is internal layering that may
move between minor versions.  The pre-v1 flat ``Session`` kwargs
(``trace=``, ``metrics=``, ``spans=``, …) keep working with a
:class:`DeprecationWarning` — ``docs/migration.md`` has the mapping.
"""

from __future__ import annotations

from ..config import SimEnvironment
from ..configs import ObsConfig, RunnerConfig
from ..core.calibration import (
    CalibrationProfile,
    DEFAULT_CALIBRATION,
    dump_profile,
    load_profile,
)
from ..faults import (
    FaultScenario,
    LinkDegrade,
    LinkFail,
    PageMigrationStorm,
    RetryPolicy,
    SdmaStall,
    install,
)
from ..obs import (
    MetricsRegistry,
    SpanRecorder,
    blame_ranking,
    build_chrome_trace,
    capture,
    collect_report,
    critical_path,
    explain_spans,
    merge_snapshots,
    trace_experiment,
    write_chrome_trace,
    write_report,
)
from ..rccl import (
    RCCL_ALGORITHMS,
    install_algorithm,
    select_algorithm,
)
from ..runner import ResultCache, SimPoint, SweepRunner
from ..session import Session, TOPOLOGY_PRESETS, resolve_topology
from ..sim.backends import compiled_available, resolve_backend
from ..topology import (
    TOPOLOGY_SCHEMA,
    dump_topology,
    install_topology,
    load_topology,
    topology_from_json,
    topology_to_json,
)
from ..twin import (
    TelemetryStream,
    fit_calibration,
    load_telemetry,
    shadow_replay,
    synthesize_telemetry,
)

#: The version of this surface (bumped only on breaking changes).
API_VERSION = 1

__all__ = [
    "API_VERSION",
    # front door
    "Session",
    "ObsConfig",
    "RunnerConfig",
    "SimEnvironment",
    "CalibrationProfile",
    "DEFAULT_CALIBRATION",
    "TOPOLOGY_PRESETS",
    "resolve_topology",
    # topology as data
    "TOPOLOGY_SCHEMA",
    "load_topology",
    "dump_topology",
    "topology_from_json",
    "topology_to_json",
    "install_topology",
    # collective algorithms
    "RCCL_ALGORITHMS",
    "select_algorithm",
    "install_algorithm",
    # sweeps
    "SweepRunner",
    "SimPoint",
    "ResultCache",
    # fault injection
    "FaultScenario",
    "LinkDegrade",
    "LinkFail",
    "SdmaStall",
    "PageMigrationStorm",
    "RetryPolicy",
    "install",
    # observability
    "capture",
    "trace_experiment",
    "MetricsRegistry",
    "SpanRecorder",
    "merge_snapshots",
    "critical_path",
    "explain_spans",
    "blame_ranking",
    "collect_report",
    "write_report",
    "build_chrome_trace",
    "write_chrome_trace",
    # digital twin
    "TelemetryStream",
    "load_telemetry",
    "shadow_replay",
    "fit_calibration",
    "synthesize_telemetry",
    "load_profile",
    "dump_profile",
    # backends
    "resolve_backend",
    "compiled_available",
]

"""Grouped configuration objects for the ``repro.api`` v1 surface.

Five PRs of features left :class:`~repro.session.Session` and
:class:`~repro.runner.SweepRunner` with a sprawl of flat keyword
arguments (``trace``, ``trace_capacity``, ``metrics``,
``metrics_capacity``, ``spans``, ``jobs``, ``use_cache``, …).  The v1
API groups them into two small dataclasses:

- :class:`ObsConfig` — what to observe (tracer, metrics, spans).
- :class:`RunnerConfig` — how to fan out (jobs, cache, captures).

The old flat kwargs still work everywhere but raise
:class:`DeprecationWarning`; see ``docs/migration.md`` for the
old → new mapping.  These classes live in their own dependency-free
module so ``repro.api``, ``repro.session`` and ``repro.runner`` can
all import them without cycles.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any


@dataclass(frozen=True)
class ObsConfig:
    """What a :class:`~repro.session.Session` observes.

    Parameters mirror the observability stack one-to-one:

    trace:
        Enable the timeline tracer.
    trace_capacity:
        Optional tracer ring-buffer bound (newest records win).
    metrics:
        ``True`` for a fresh enabled
        :class:`~repro.obs.metrics.MetricsRegistry`, an existing
        registry to share across sessions, or ``False``/``None`` for
        the near-zero-cost null registry.
    metrics_capacity:
        Per-series sample-ring bound for a ``metrics=True`` registry.
    spans:
        ``True`` for a fresh :class:`~repro.obs.spans.SpanRecorder`
        (causal spans + bottleneck attribution), an existing recorder,
        or ``False``/``None`` for disabled.
    """

    trace: bool = False
    trace_capacity: int | None = None
    metrics: Any = None
    metrics_capacity: int | None = None
    spans: Any = None

    @property
    def enabled(self) -> bool:
        """Whether any observation channel is on."""
        return bool(self.trace or self.metrics or self.spans)


@dataclass(frozen=True)
class RunnerConfig:
    """How a :class:`~repro.runner.SweepRunner` fans out.

    jobs:
        Worker processes — an int, ``"auto"``, or ``None`` for serial.
    cache:
        Reuse content-addressed results from previous runs.
    cache_dir:
        Cache location override (defaults to the user cache dir).
    capture_metrics:
        Collect each point's metrics snapshot into its result record.
    capture_spans:
        Collect each point's causal spans into its result record.
    """

    jobs: int | str | None = None
    cache: bool = True
    cache_dir: str | None = None
    capture_metrics: bool = False
    capture_spans: bool = False

"""Simulated GPU-aware MPI (Cray-MPICH-like).

The paper's MPI experiments (§V-C, §VI) run one MPI process per GCD
with ``MPICH_GPU_SUPPORT_ENABLED=1``.  This package reproduces that
stack on the simulator:

- :mod:`repro.mpi.comm` — the world/communicator: rank processes,
  message matching, barriers.
- :mod:`repro.mpi.p2p` — point-to-point transport.  Device-to-device
  messages take the GPU-aware path: SDMA engines when
  ``HSA_ENABLE_SDMA=1`` (sub-50 GB/s, Fig. 10) or blit copy kernels
  when disabled (≈ 13 % below a direct copy kernel).
- :mod:`repro.mpi.gpu_aware` — IPC handle exchange and mapping-
  overhead accounting (the §VI "memory mapping overhead").
- :mod:`repro.mpi.collectives` — Reduce, Broadcast, AllReduce,
  ReduceScatter, AllGather with MPICH-style algorithms (binomial
  trees, recursive doubling, ring, pairwise exchange), executed as
  genuine distributed rank processes over the simulated fabric.
"""

from .comm import MpiWorld, RankContext, Request
from .p2p import TransportModel
from .gpu_aware import IpcMapCache
from .collectives import (
    broadcast,
    reduce,
    allreduce,
    reduce_scatter,
    allgather,
    COLLECTIVES,
)

__all__ = [
    "MpiWorld",
    "RankContext",
    "Request",
    "TransportModel",
    "IpcMapCache",
    "broadcast",
    "reduce",
    "allreduce",
    "reduce_scatter",
    "allgather",
    "COLLECTIVES",
]

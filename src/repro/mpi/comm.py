"""MPI world, rank contexts and message matching.

:class:`MpiWorld` spawns one simulated process per rank, each bound to
a GCD (as the paper's OSU runs bind one rank per GPU) and owning its
own :class:`~repro.hip.runtime.HipRuntime` view of the shared node —
separate virtual address spaces, exactly like real processes, which is
what makes the IPC-mapping overhead (§VI) a real cost here.

Message semantics are MPICH-like:

- *eager* below the threshold: the send proceeds without waiting for
  the receiver (payload parked in a system buffer);
- *rendezvous* above: the payload flow starts only once both sides
  have posted, after an RTS/CTS handshake.

Matching is (source, tag) FIFO per destination.
"""

from __future__ import annotations

import warnings
from collections import deque
from typing import Any, Callable, Generator, Optional, Sequence

from ..config import SimEnvironment
from ..errors import LinkDownError, MpiError
from ..faults.retry import NO_RETRY, RetryPolicy
from ..hardware.node import HardwareNode
from ..hip.runtime import HipRuntime
from ..memory.buffer import Buffer
from ..sim.engine import Event
from .gpu_aware import IpcMapCache
from .p2p import TransportModel


class Request:
    """Non-blocking operation handle (MPI_Request)."""

    __slots__ = ("event",)

    def __init__(self, event: Event) -> None:
        self.event = event

    @property
    def complete(self) -> bool:
        """Whether the operation has finished."""
        return self.event.processed

    def wait(self) -> Generator:
        """DES process: block until the operation completes.

        A failed operation (retry budget exhausted on a dead link)
        raises its failure here — both when the wait blocks (the engine
        throws at the yield) and when the failure already landed.
        """
        if not self.event.processed:
            yield self.event
        elif self.event.failure is not None:
            raise self.event.failure


class _SendRecord:
    __slots__ = ("src_rank", "buffer", "nbytes", "request_event", "posted_at")

    def __init__(
        self, src_rank: int, buffer: Buffer, nbytes: int, event: Event, now: float
    ) -> None:
        self.src_rank = src_rank
        self.buffer = buffer
        self.nbytes = nbytes
        self.request_event = event
        self.posted_at = now


class _RecvRecord:
    __slots__ = ("dst_rank", "buffer", "nbytes", "request_event")

    def __init__(
        self, dst_rank: int, buffer: Buffer, nbytes: int, event: Event
    ) -> None:
        self.dst_rank = dst_rank
        self.buffer = buffer
        self.nbytes = nbytes
        self.request_event = event


class MpiWorld:
    """A set of ranks over one simulated node."""

    def __init__(
        self,
        node: HardwareNode | None = None,
        env: SimEnvironment | None = None,
        *,
        rank_gcds: Sequence[int] | None = None,
        retry: RetryPolicy | None = None,
    ) -> None:
        if node is None:
            warnings.warn(
                "MpiWorld() with an implicit node is deprecated; "
                "use repro.Session (session.mpi_world()) instead",
                DeprecationWarning,
                stacklevel=2,
            )
        self.node = node if node is not None else HardwareNode()
        self.env = env if env is not None else SimEnvironment()
        if rank_gcds is None:
            rank_gcds = [g.index for g in self.node.topology.gcds()]
        if not rank_gcds:
            raise MpiError("world needs at least one rank")
        self.rank_gcds = tuple(rank_gcds)
        self.size = len(self.rank_gcds)
        self.retry = retry if retry is not None else NO_RETRY
        self.transport = TransportModel(self.node, self.env)
        self._calibration = self.node.calibration
        self._ipc_caches = [IpcMapCache(self._calibration) for _ in range(self.size)]
        self._runtimes: list[HipRuntime] = []
        for gcd in self.rank_gcds:
            runtime = HipRuntime(self.node, self.env)
            runtime.set_device(gcd)
            self._runtimes.append(runtime)
        # Matching state: keyed by (src, dst, tag).
        self._pending_sends: dict[tuple[int, int, int], deque[_SendRecord]] = {}
        self._pending_recvs: dict[tuple[int, int, int], deque[_RecvRecord]] = {}
        # Per-connection serialization: one in-flight payload per ordered
        # rank pair, like a real MPI virtual channel.  Without this, a
        # window of Isends would stripe one logical stream across the
        # fabric several times and report super-engine bandwidth.
        self._connection_tail: dict[tuple[int, int], Event] = {}
        # Barrier state.
        self._barrier_waiting = 0
        self._barrier_event: Event | None = None

    @property
    def engine(self):
        """The node's DES engine."""
        return self.node.engine

    def context(self, rank: int) -> "RankContext":
        """The :class:`RankContext` of one rank."""
        if not 0 <= rank < self.size:
            raise MpiError(f"rank {rank} outside world of size {self.size}")
        return RankContext(self, rank)

    # -- message matching ----------------------------------------------------

    def post_send(
        self, src_rank: int, dst_rank: int, tag: int, buffer: Buffer, nbytes: int
    ) -> Request:
        """Post a send; matches a pending recv or queues."""
        if not 0 <= dst_rank < self.size:
            raise MpiError(f"send to invalid rank {dst_rank}")
        event = self.engine.event()
        record = _SendRecord(src_rank, buffer, nbytes, event, self.engine.now)
        key = (src_rank, dst_rank, tag)
        recvs = self._pending_recvs.get(key)
        if recvs:
            recv = recvs.popleft()
            self._start_transfer(record, recv, dst_rank, tag)
        else:
            self._pending_sends.setdefault(key, deque()).append(record)
        return Request(event)

    def post_recv(
        self, dst_rank: int, src_rank: int, tag: int, buffer: Buffer, nbytes: int
    ) -> Request:
        """Post a receive; matches a pending send or queues."""
        if not 0 <= src_rank < self.size:
            raise MpiError(f"recv from invalid rank {src_rank}")
        event = self.engine.event()
        record = _RecvRecord(dst_rank, buffer, nbytes, event)
        key = (src_rank, dst_rank, tag)
        sends = self._pending_sends.get(key)
        if sends:
            send = sends.popleft()
            self._start_transfer(send, record, dst_rank, tag)
        else:
            self._pending_recvs.setdefault(key, deque()).append(record)
        return Request(event)

    def _start_transfer(
        self, send: _SendRecord, recv: _RecvRecord, dst_rank: int, tag: int
    ) -> None:
        if recv.nbytes < send.nbytes:
            raise MpiError(
                f"message truncation: sent {send.nbytes}, recv buffer "
                f"{recv.nbytes} (tag {tag})"
            )
        nbytes = send.nbytes
        connection = (send.src_rank, dst_rank)
        previous_tail = self._connection_tail.get(connection)
        done = self.engine.event()
        self._connection_tail[connection] = done

        def transfer() -> Generator:
            if previous_tail is not None and not previous_tail.processed:
                yield previous_tail
            spans = self.node.spans
            span = (
                spans.begin(
                    "mpi",
                    f"mpi:{send.src_rank}->{dst_rank}",
                    start=self.engine.now,
                    bytes=nbytes,
                    src=send.src_rank,
                    dst=dst_rank,
                    tag=tag,
                )
                if spans
                else None
            )
            # Host-side costs: matching overhead, GPU-pointer handling,
            # rendezvous handshake for large messages.
            cost = self._calibration.mpi_message_overhead
            if self.transport.needs_gpu_pointer_handling(send.buffer, recv.buffer):
                cost += self._ipc_caches[send.src_rank].cost_for_transfer(
                    send.buffer.address, dst_rank
                )
            cost += self.transport.rendezvous_handshake_latency(nbytes)
            yield self.engine.timeout(cost)
            # Payload, under the world's retry policy: a LinkDownError
            # (the fault injector zeroed a link mid-flight, or the
            # planned route crosses a dead link) costs one attempt and
            # an exponential backoff; the plan is recomputed on every
            # attempt, so a healed link lets the retry through.
            policy = self.retry
            attempt = 1
            while True:
                try:
                    yield from self.transport.execute(
                        send.buffer,
                        recv.buffer,
                        nbytes,
                        label=f"mpi:{send.src_rank}->{dst_rank}",
                        span=span,
                    )
                    break
                except LinkDownError as exc:
                    if not policy.allows_retry(attempt):
                        failure = MpiError(
                            f"mpi transfer {send.src_rank}->{dst_rank} "
                            f"(tag {tag}, {nbytes} bytes) failed after "
                            f"{attempt} attempt(s): {exc}"
                        )
                        failure.__cause__ = exc
                        if self.node.metrics:
                            self.node.metrics.counter(
                                "mpi/transfer_failures"
                            ).inc()
                        if span is not None:
                            spans.finish(span, self.engine.now)
                        send.request_event.fail(failure)
                        recv.request_event.fail(failure)
                        # The connection tail still resolves: later
                        # transfers on this rank pair proceed (and fail
                        # on their own if the link is still dead).
                        done.succeed(None)
                        return
                    if self.node.metrics:
                        self.node.metrics.counter("mpi/retries").inc()
                    delay = policy.delay(attempt)
                    attempt += 1
                    if delay > 0:
                        yield self.engine.timeout(delay)
            if span is not None:
                spans.finish(span, self.engine.now)
            send.request_event.succeed(nbytes)
            recv.request_event.succeed(nbytes)
            done.succeed(None)

        self.engine.process(transfer(), name=f"mpi-xfer-{send.src_rank}-{dst_rank}")

    # -- barrier -----------------------------------------------------------------

    def barrier_arrive(self) -> Event:
        """Register arrival; the returned event fires when all arrive."""
        if self._barrier_event is None:
            self._barrier_event = self.engine.event()
        event = self._barrier_event
        self._barrier_waiting += 1
        if self._barrier_waiting == self.size:
            self._barrier_waiting = 0
            self._barrier_event = None
            # Dissemination barrier: ceil(log2 n) rounds of host messages.
            rounds = max(1, (self.size - 1).bit_length())
            delay = rounds * self._calibration.mpi_message_overhead
            self.engine.call_after(delay, event.succeed, None)
        return event

    # -- program driver -----------------------------------------------------------

    def run(
        self, rank_main: Callable[["RankContext"], Generator]
    ) -> list[Any]:
        """SPMD launch: run ``rank_main`` on every rank, return values."""
        processes = []
        for rank in range(self.size):
            ctx = self.context(rank)
            processes.append(
                self.engine.process(rank_main(ctx), name=f"rank{rank}")
            )
        self.engine.run()
        results: list[Any] = []
        for rank, process in enumerate(processes):
            if not process.triggered:
                raise MpiError(f"rank {rank} deadlocked")
            if process.failure is not None:
                raise process.failure
            results.append(process.value)
        return results


class RankContext:
    """One rank's view of the world (its ``MPI_COMM_WORLD``)."""

    def __init__(self, world: MpiWorld, rank: int) -> None:
        self.world = world
        self.rank = rank
        self.size = world.size
        self.gcd = world.rank_gcds[rank]
        self.hip = world._runtimes[rank]
        self._collective_seq = 0

    def next_collective_tag(self) -> int:
        """A fresh tag for one collective invocation.

        All ranks call collectives in the same order (SPMD), so the
        per-rank counters agree; distinct invocations get distinct
        tags and cannot cross-match when ranks drift.
        """
        self._collective_seq += 1
        return 0x1000 + self._collective_seq

    @property
    def engine(self):
        """The shared DES engine."""
        return self.world.engine

    @property
    def now(self) -> float:
        """Current simulated time (seconds)."""
        return self.world.engine.now

    # -- point-to-point -------------------------------------------------------

    def isend(
        self, buffer: Buffer, dst: int, tag: int = 0, nbytes: int | None = None
    ) -> Request:
        """``MPI_Isend``."""
        if nbytes is None:
            nbytes = buffer.size
        return self.world.post_send(self.rank, dst, tag, buffer, nbytes)

    def irecv(
        self, buffer: Buffer, src: int, tag: int = 0, nbytes: int | None = None
    ) -> Request:
        """``MPI_Irecv``."""
        if nbytes is None:
            nbytes = buffer.size
        return self.world.post_recv(self.rank, src, tag, buffer, nbytes)

    def send(
        self, buffer: Buffer, dst: int, tag: int = 0, nbytes: int | None = None
    ) -> Generator:
        """``MPI_Send`` (blocking)."""
        request = self.isend(buffer, dst, tag, nbytes)
        yield from request.wait()

    def recv(
        self, buffer: Buffer, src: int, tag: int = 0, nbytes: int | None = None
    ) -> Generator:
        """``MPI_Recv`` (blocking)."""
        request = self.irecv(buffer, src, tag, nbytes)
        yield from request.wait()

    def sendrecv(
        self,
        send_buffer: Buffer,
        dst: int,
        recv_buffer: Buffer,
        src: int,
        tag: int = 0,
        nbytes: int | None = None,
    ) -> Generator:
        """``MPI_Sendrecv``: both directions concurrently."""
        send_req = self.isend(send_buffer, dst, tag, nbytes)
        recv_req = self.irecv(recv_buffer, src, tag, nbytes)
        yield self.engine.all_of([send_req.event, recv_req.event])

    def barrier(self) -> Generator:
        """``MPI_Barrier``."""
        event = self.world.barrier_arrive()
        if not event.processed:
            yield event

"""Point-to-point transport model.

Given a matched (send, recv) pair, :class:`TransportModel` decides the
data path and produces the flows:

- **device → device, GPU-aware, SDMA enabled** — the default Cray
  MPICH path the paper measures first in Fig. 10: an SDMA engine copy
  over the bandwidth-maximizing route, capped like ``hipMemcpyPeer``
  (≤ 50 GB/s; 37–38 GB/s across single links).
- **device → device, GPU-aware, SDMA disabled** — a blit copy kernel:
  scales with the link bundle but pays the MPI protocol overhead,
  ≈ 13 % below the raw direct copy kernel (Fig. 10's middle bars).
- **host ↔ device** — staged over the CPU link SDMA path.
- **host ↔ host** — shared-memory copy through DRAM channels.

Host-side per-message costs (matching, rendezvous, GPU pointer
handling) are charged by the communicator before the flow starts.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator, Hashable

from ..config import SimEnvironment
from ..errors import MpiError
from ..memory.buffer import Buffer, MemoryKind
from ..topology.link import LinkTier

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..hardware.node import HardwareNode


def _buffer_device(buffer: Buffer) -> int | None:
    """Physical GCD of a buffer, or None for host memory."""
    location = buffer.residency(0)
    return location.index if location.is_device else None


class TransportModel:
    """Chooses channels, caps and costs for one message."""

    def __init__(self, node: "HardwareNode", env: SimEnvironment) -> None:
        self.node = node
        self.env = env
        self._calibration = node.calibration

    def plan(
        self, src: Buffer, dst: Buffer, nbytes: int
    ) -> tuple[list[Hashable], float]:
        """(channels, rate cap) for the payload flow."""
        src_dev = _buffer_device(src)
        dst_dev = _buffer_device(dst)
        if src_dev is not None and dst_dev is not None:
            return self._device_device(src_dev, dst_dev)
        if src_dev is None and dst_dev is None:
            channels = self.node.cpu.host_memcpy_channels(
                src.home.index, dst.home.index
            )
            return channels, self._calibration.host_memcpy_rate
        if src_dev is not None:
            if not self.env.mpich_gpu_support:
                raise MpiError(
                    "device buffer passed to MPI without "
                    "MPICH_GPU_SUPPORT_ENABLED=1"
                )
            channels = self.node.gcd_to_host_channels(src_dev, dst.home.index)
            engine, efficiency = self.node.gcd(src_dev).sdma.plan_engine(
                outbound=True
            )
            channels.append(engine)
            cap = self._calibration.sdma_cap_for_tier(LinkTier.CPU)
            return channels, cap * efficiency
        assert dst_dev is not None
        if not self.env.mpich_gpu_support:
            raise MpiError(
                "device buffer passed to MPI without MPICH_GPU_SUPPORT_ENABLED=1"
            )
        channels = self.node.host_to_gcd_channels(src.home.index, dst_dev)
        engine, efficiency = self.node.gcd(dst_dev).sdma.plan_engine(
            outbound=False
        )
        channels.append(engine)
        cap = self._calibration.sdma_cap_for_tier(LinkTier.CPU)
        return channels, cap * efficiency

    def _device_device(
        self, src_dev: int, dst_dev: int
    ) -> tuple[list[Hashable], float]:
        if not self.env.mpich_gpu_support:
            raise MpiError(
                "device buffers require MPICH_GPU_SUPPORT_ENABLED=1"
            )
        if src_dev == dst_dev:
            return (
                [self.node.gcd(src_dev).hbm.channel],
                self._calibration.sdma_engine_throughput,
            )
        route = self.node.gcd_route(src_dev, dst_dev)
        channels = self.node.gcd_to_gcd_channels(src_dev, dst_dev)
        if self.env.sdma_enabled:
            sdma = self.node.gcd(src_dev).sdma
            engine, efficiency = sdma.plan_engine(outbound=True)
            channels.append(engine)
            cap = sdma.rate_cap_for_route(route) * efficiency
        else:
            tier = self.node.bottleneck_tier(route)
            direct = self._calibration.kernel_remote_cap(
                tier, bidirectional=False
            )
            cap = self._calibration.mpi_protocol_efficiency * direct
        return channels, cap

    def needs_gpu_pointer_handling(self, src: Buffer, dst: Buffer) -> bool:
        """Whether either side is a device buffer (IPC mapping applies)."""
        return (
            src.kind is MemoryKind.DEVICE
            or dst.kind is MemoryKind.DEVICE
            or _buffer_device(src) is not None
            or _buffer_device(dst) is not None
        )

    def rendezvous_handshake_latency(self, nbytes: int) -> float:
        """Extra handshake latency for rendezvous-protocol messages."""
        if nbytes <= self._calibration.mpi_eager_threshold:
            return 0.0
        # RTS/CTS over shared memory: two host-side message overheads.
        return 2 * self._calibration.mpi_message_overhead

    def execute(
        self,
        src: Buffer,
        dst: Buffer,
        nbytes: int,
        *,
        label: str = "",
        span: "object" = None,
    ) -> Generator:
        """DES process: run the payload flow (host costs already paid)."""
        if nbytes < 0 or nbytes > src.size or nbytes > dst.size:
            raise MpiError(
                f"message of {nbytes} bytes exceeds a buffer "
                f"(src {src.size}, dst {dst.size})"
            )
        if nbytes == 0:
            return
        channels, cap = self.plan(src, dst, nbytes)
        flow = self.node.start_flow(
            channels, nbytes, cap=cap, label=label or "mpi-msg", span=span
        )
        yield flow.done
        dst.copy_payload_from(src, nbytes)

"""MPI collective algorithms (paper §VI).

Five collectives, the ones the paper measures with the OSU suite:
Reduce, Broadcast, AllReduce, ReduceScatter, AllGather.  Algorithms
follow MPICH's choices for intra-node communicators:

==============  ==========================================
collective       algorithm
==============  ==========================================
Broadcast        binomial tree
Reduce           binomial tree (commutative reduction)
AllReduce        recursive doubling (power-of-two ranks),
                 reduce + broadcast otherwise
ReduceScatter    pairwise exchange
AllGather        ring
==============  ==========================================

Each is a *distributed* implementation: every rank runs its own
process and communicates only through isend/recv over the simulated
fabric, so contention, link tiers and IPC-mapping overheads all shape
the resulting latencies — that is what makes Fig. 11 come out with
RCCL ahead of MPI everywhere except Broadcast.
"""

from .broadcast import broadcast
from .reduce import reduce
from .allreduce import allreduce
from .reduce_scatter import reduce_scatter
from .allgather import allgather
from .alltoall import alltoall

#: Name → implementation registry used by the OSU-style harness.
#: (alltoall is an extension; the paper measures the first five.)
COLLECTIVES = {
    "reduce": reduce,
    "broadcast": broadcast,
    "allreduce": allreduce,
    "reduce_scatter": reduce_scatter,
    "allgather": allgather,
    "alltoall": alltoall,
}

__all__ = [
    "broadcast",
    "reduce",
    "allreduce",
    "reduce_scatter",
    "allgather",
    "alltoall",
    "COLLECTIVES",
]

"""Binomial-tree broadcast (MPI_Bcast).

The MPICH binomial tree: in round ``k`` (mask ``2^k``), every rank
that already holds the data forwards it to the rank ``mask`` away (in
root-relative numbering).  ``ceil(log2 n)`` rounds of full-message
sends — the reason MPI broadcast *beats* RCCL's serialized ring
forwarding at the paper's 1 MiB size (Fig. 11b).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator

from ...memory.buffer import Buffer
from .algorithms import check_collective_args

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..comm import RankContext


def broadcast(
    ctx: "RankContext",
    buffer: Buffer,
    nbytes: int | None = None,
    root: int = 0,
) -> Generator:
    """Distributed binomial broadcast; call from every rank."""
    if nbytes is None:
        nbytes = buffer.size
    check_collective_args(ctx, nbytes, root)
    tag = ctx.next_collective_tag()
    size, rank = ctx.size, ctx.rank
    if size == 1:
        return
    relative = (rank - root) % size

    # Receive phase: find the bit that identifies our parent.
    mask = 1
    while mask < size:
        if relative & mask:
            parent = ((relative & ~mask) + root) % size
            yield from ctx.recv(buffer, parent, tag, nbytes)
            break
        mask <<= 1
    else:
        mask = 1 << (size - 1).bit_length()

    # Send phase: forward to children below our bit.  MPICH issues
    # these as *blocking* sends in a loop, so a parent's children are
    # served sequentially rather than contending for its copy engine.
    mask >>= 1
    while mask > 0:
        if relative + mask < size:
            child = (relative + mask + root) % size
            yield from ctx.send(buffer, child, tag, nbytes)
        mask >>= 1

"""AllReduce (MPI_Allreduce).

Recursive doubling for power-of-two communicators: ``log2 n`` rounds
of full-message pairwise exchange, each followed by a local GPU
combine.  Non-power-of-two communicators (the 3/5/6/7-partner points
of Fig. 11) fall back to reduce + broadcast, as MPICH does for the
general case.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator

from ...memory.buffer import Buffer
from .algorithms import (
    alloc_scratch,
    check_collective_args,
    is_power_of_two,
    local_reduce,
)
from .broadcast import broadcast
from .reduce import reduce

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..comm import RankContext


def allreduce(
    ctx: "RankContext",
    sendbuf: Buffer,
    recvbuf: Buffer,
    nbytes: int | None = None,
) -> Generator:
    """Distributed allreduce; call from every rank."""
    if nbytes is None:
        nbytes = min(sendbuf.size, recvbuf.size)
    check_collective_args(ctx, nbytes)
    size, rank = ctx.size, ctx.rank
    if size == 1:
        return
    if not is_power_of_two(size):
        yield from reduce(ctx, sendbuf, recvbuf, nbytes, root=0)
        yield from broadcast(ctx, recvbuf, nbytes, root=0)
        return

    tag = ctx.next_collective_tag()
    scratch = alloc_scratch(ctx, nbytes, f"allreduce-scratch-r{rank}")
    # Accumulator starts as this rank's contribution.
    recvbuf.copy_payload_from(sendbuf, nbytes)
    try:
        mask = 1
        while mask < size:
            partner = rank ^ mask
            # Exchange current accumulators.
            yield from ctx.sendrecv(recvbuf, partner, scratch, partner, tag, nbytes)
            yield from local_reduce(ctx, nbytes, recvbuf, scratch)
            mask <<= 1
    finally:
        ctx.hip.free(scratch)

"""Binomial-tree reduce (MPI_Reduce, commutative op).

Mirror image of the broadcast tree: leaves send first, interior ranks
receive, combine on the GPU, and forward the partial result toward
the root.  ``ceil(log2 n)`` rounds of full-message traffic plus one
local reduction per received message.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator

from ...memory.buffer import Buffer
from .algorithms import alloc_scratch, check_collective_args, local_reduce

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..comm import RankContext


def reduce(
    ctx: "RankContext",
    sendbuf: Buffer,
    recvbuf: Buffer,
    nbytes: int | None = None,
    root: int = 0,
) -> Generator:
    """Distributed binomial reduce; call from every rank.

    ``recvbuf`` is used as the accumulator on every rank (MPICH does
    the same with its temporary); only the root's result is meaningful.
    """
    if nbytes is None:
        nbytes = min(sendbuf.size, recvbuf.size)
    check_collective_args(ctx, nbytes, root)
    tag = ctx.next_collective_tag()
    size, rank = ctx.size, ctx.rank
    if size == 1:
        return
    relative = (rank - root) % size
    scratch = alloc_scratch(ctx, nbytes, f"reduce-scratch-r{rank}")
    # The accumulator starts as this rank's contribution (MPICH copies
    # sendbuf into its temporary before the tree; the copy cost is
    # folded into the per-message reduction kernels charged below).
    recvbuf.copy_payload_from(sendbuf, nbytes)
    try:
        mask = 1
        while mask < size:
            if relative & mask:
                parent = ((relative & ~mask) + root) % size
                yield from ctx.send(recvbuf, parent, tag, nbytes)
                break
            source_rel = relative | mask
            if source_rel < size:
                source = (source_rel + root) % size
                yield from ctx.recv(scratch, source, tag, nbytes)
                # Combine incoming partial with our accumulator.
                yield from local_reduce(ctx, nbytes, recvbuf, scratch)
            mask <<= 1
    finally:
        ctx.hip.free(scratch)

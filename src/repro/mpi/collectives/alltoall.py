"""Alltoall (MPI_Alltoall) — extension beyond the paper's five.

Pairwise-exchange algorithm (MPICH's long-message choice): ``n-1``
steps; at step ``s`` every rank exchanges its block with rank
``rank XOR s`` when n is a power of two, else with ``(rank ± s) mod
n``.  Total traffic per rank: ``(n-1)/n × nbytes`` each way.

Used by the transpose application model
(:mod:`repro.apps.transpose`); the paper itself does not measure
alltoall, so no figure depends on this.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator

from ...errors import MpiError
from ...memory.buffer import Buffer
from .algorithms import check_collective_args, chunk_sizes, is_power_of_two

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..comm import RankContext


def alltoall(
    ctx: "RankContext",
    sendbuf: Buffer,
    recvbuf: Buffer,
    nbytes: int | None = None,
) -> Generator:
    """Distributed pairwise alltoall; ``nbytes`` is the total per-rank
    send volume (each peer receives ``nbytes / n``)."""
    if nbytes is None:
        nbytes = sendbuf.size
    check_collective_args(ctx, nbytes)
    size, rank = ctx.size, ctx.rank
    chunks = chunk_sizes(nbytes, size)
    if sendbuf.size < nbytes or recvbuf.size < nbytes:
        raise MpiError("alltoall buffers smaller than the message")
    if size == 1:
        return
    tag = ctx.next_collective_tag()
    for step in range(1, size):
        if is_power_of_two(size):
            partner = rank ^ step
        else:
            partner = (rank + step) % size
        send_req = ctx.isend(sendbuf, partner, tag, chunks[partner])
        recv_source = partner if is_power_of_two(size) else (rank - step) % size
        recv_req = ctx.irecv(recvbuf, recv_source, tag, chunks[rank])
        yield ctx.engine.all_of([send_req.event, recv_req.event])

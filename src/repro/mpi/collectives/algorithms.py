"""Shared helpers for the collective algorithms."""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator

from ...errors import MpiError
from ...memory.buffer import Buffer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..comm import RankContext


def check_collective_args(ctx: "RankContext", nbytes: int, root: int = 0) -> None:
    """Validate message size and root for a collective call."""
    if nbytes <= 0:
        raise MpiError("collective message size must be positive")
    if not 0 <= root < ctx.size:
        raise MpiError(f"root {root} outside communicator of size {ctx.size}")


def local_reduce(
    ctx: "RankContext",
    nbytes: int,
    accumulator: Buffer | None = None,
    operand: Buffer | None = None,
) -> Generator:
    """Cost of combining two device operands elementwise on the GPU.

    One kernel launch plus three HBM streams (two reads, one write) at
    the achievable HBM rate — microseconds at the paper's 1 MiB sizes,
    but charged for fidelity.

    When ``accumulator``/``operand`` are given and materialized
    (functional payload mode), performs the actual elementwise sum
    (uint8 wrap-around) so collective results can be checked
    numerically.  The payload work adds no simulated time beyond the
    kernel cost already charged.
    """
    calibration = ctx.world.node.calibration
    hbm_rate = ctx.world.node.gcd(ctx.gcd).hbm.stream_bandwidth
    cost = calibration.kernel_launch_overhead + 3 * nbytes / hbm_rate
    yield ctx.engine.timeout(cost)
    if (
        accumulator is not None
        and operand is not None
        and (accumulator.has_data or operand.has_data)
    ):
        acc = accumulator.ensure_data()
        op = operand.ensure_data()
        acc[:nbytes] += op[:nbytes]


def alloc_scratch(ctx: "RankContext", nbytes: int, label: str) -> Buffer:
    """Device scratch buffer on the rank's GCD."""
    return ctx.hip.malloc(nbytes, device=None, label=label)


def is_power_of_two(n: int) -> bool:
    """True for positive powers of two."""
    return n > 0 and (n & (n - 1)) == 0


def chunk_sizes(total: int, parts: int) -> list[int]:
    """Split ``total`` bytes into ``parts`` nearly equal chunks."""
    if parts <= 0:
        raise MpiError("chunk split needs at least one part")
    base, extra = divmod(total, parts)
    return [base + (1 if i < extra else 0) for i in range(parts)]

"""ReduceScatter (MPI_Reduce_scatter_block).

Pairwise-exchange algorithm (MPICH's choice for long messages and
commutative ops): ``n-1`` steps; at step ``s`` every rank sends the
chunk destined for rank ``(rank+s) mod n`` and receives its own chunk
contribution from ``(rank-s) mod n``, combining as it goes.  Total
traffic per rank: ``(n-1)/n × nbytes``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator

from ...errors import MpiError
from ...memory.buffer import Buffer
from .algorithms import (
    alloc_scratch,
    check_collective_args,
    chunk_sizes,
    local_reduce,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..comm import RankContext


def reduce_scatter(
    ctx: "RankContext",
    sendbuf: Buffer,
    recvbuf: Buffer,
    nbytes: int | None = None,
) -> Generator:
    """Distributed reduce-scatter; ``nbytes`` is the *total* message.

    Each rank ends with its ``nbytes/n`` chunk; ``recvbuf`` must hold
    at least one chunk.
    """
    if nbytes is None:
        nbytes = sendbuf.size
    check_collective_args(ctx, nbytes)
    size, rank = ctx.size, ctx.rank
    chunks = chunk_sizes(nbytes, size)
    if recvbuf.size < max(chunks):
        raise MpiError(
            f"reduce_scatter recv buffer of {recvbuf.size} bytes cannot "
            f"hold a {max(chunks)}-byte chunk"
        )
    if size == 1:
        return
    tag = ctx.next_collective_tag()
    scratch = alloc_scratch(ctx, max(chunks), f"rs-scratch-r{rank}")
    try:
        for step in range(1, size):
            dst = (rank + step) % size
            src = (rank - step) % size
            send_chunk = chunks[dst]
            recv_chunk = chunks[rank]
            send_req = ctx.isend(sendbuf, dst, tag, send_chunk)
            recv_req = ctx.irecv(scratch, src, tag, recv_chunk)
            yield ctx.engine.all_of([send_req.event, recv_req.event])
            yield from local_reduce(ctx, recv_chunk, recvbuf, scratch)
    finally:
        ctx.hip.free(scratch)

"""AllGather (MPI_Allgather).

Ring algorithm (MPICH's long-message choice): ``n-1`` steps; at each
step every rank forwards the chunk it received in the previous step to
its right neighbour while receiving a new chunk from its left
neighbour.  Total traffic per rank: ``(n-1)/n × nbytes``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator

from ...errors import MpiError
from ...memory.buffer import Buffer
from .algorithms import check_collective_args, chunk_sizes

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..comm import RankContext


def allgather(
    ctx: "RankContext",
    sendbuf: Buffer,
    recvbuf: Buffer,
    nbytes: int | None = None,
) -> Generator:
    """Distributed ring allgather; ``nbytes`` is the *total* result.

    ``sendbuf`` holds this rank's ``nbytes/n`` contribution; ``recvbuf``
    collects the full ``nbytes``.
    """
    if nbytes is None:
        nbytes = recvbuf.size
    check_collective_args(ctx, nbytes)
    size, rank = ctx.size, ctx.rank
    chunks = chunk_sizes(nbytes, size)
    if sendbuf.size < max(chunks):
        raise MpiError("allgather send buffer smaller than one chunk")
    if recvbuf.size < nbytes:
        raise MpiError("allgather recv buffer smaller than the result")
    if size == 1:
        return
    tag = ctx.next_collective_tag()
    right = (rank + 1) % size
    left = (rank - 1) % size
    for step in range(size - 1):
        # Chunk we forward this step originated at (rank - step) mod n.
        send_origin = (rank - step) % size
        recv_origin = (rank - step - 1) % size
        send_req = ctx.isend(recvbuf if step else sendbuf, right, tag, chunks[send_origin])
        recv_req = ctx.irecv(recvbuf, left, tag, chunks[recv_origin])
        yield ctx.engine.all_of([send_req.event, recv_req.event])

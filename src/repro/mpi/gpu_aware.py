"""GPU-aware transport support: IPC handle mapping.

To move a device buffer between two MPI processes on one node, the
GPU-aware MPICH path exchanges a HIP IPC memory handle and maps the
peer's allocation into the local virtual address space.  The paper
(§VI) attributes MPI's collective-latency disadvantage versus RCCL to
exactly this: "extra overhead is needed to exchange and map HIP
pointers into each process' virtual memory space".

The cache models that cost structure: the *first* transfer touching a
given (buffer, peer-rank) pair pays the full map cost; later reuses
pay a small registration-lookup cost.  OSU-style benchmarks with
warm-up iterations therefore amortize the big cost but keep paying the
lookup on every message — which is what keeps MPI collectives above
RCCL in Fig. 11.
"""

from __future__ import annotations

from ..core.calibration import CalibrationProfile
from ..units import us

#: Registration-cache lookup + attribute-query cost per GPU-buffer
#: message (paid every time; calibrated with Fig. 11's MPI-vs-RCCL gap).
GPU_POINTER_LOOKUP = us(6.0)


class IpcMapCache:
    """Tracks which (buffer address, peer rank) pairs are mapped."""

    def __init__(self, calibration: CalibrationProfile) -> None:
        self._calibration = calibration
        self._mapped: set[tuple[int, int]] = set()
        self.map_events = 0
        self.lookup_events = 0

    def cost_for_transfer(self, buffer_address: int, peer_rank: int) -> float:
        """Host-side cost to make a device buffer usable with a peer."""
        key = (buffer_address, peer_rank)
        self.lookup_events += 1
        if key not in self._mapped:
            self._mapped.add(key)
            self.map_events += 1
            return self._calibration.mpi_ipc_map_overhead + GPU_POINTER_LOOKUP
        return GPU_POINTER_LOOKUP

    def invalidate(self, buffer_address: int) -> None:
        """Drop all mappings of a freed buffer."""
        self._mapped = {
            key for key in self._mapped if key[0] != buffer_address
        }

    @property
    def num_mapped(self) -> int:
        """Count of live (buffer, peer) mappings."""
        return len(self._mapped)

"""A miniature ``hipify-perl``: CUDA→HIP source translation.

The paper ports Nvidia's p2pBandwidthLatencyTest to HIP with AMD's
``hipify`` tool (§II-B, §III).  This module implements the subset of
that translation the ported benchmarks need — the API-name and type
mapping plus the ``<<<...>>>`` kernel-launch rewrite — so the
repository can demonstrate the same porting flow on benchmark sources.

Like the real tool, translation is purely lexical: identifiers are
replaced on word boundaries, launches are rewritten to
``hipLaunchKernelGGL``, and anything unrecognized is reported rather
than silently altered.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

#: CUDA → HIP identifier map (the subset used by the paper's tools).
API_MAP: dict[str, str] = {
    # runtime & device management
    "cudaError_t": "hipError_t",
    "cudaSuccess": "hipSuccess",
    "cudaGetErrorString": "hipGetErrorString",
    "cudaGetDeviceCount": "hipGetDeviceCount",
    "cudaSetDevice": "hipSetDevice",
    "cudaGetDevice": "hipGetDevice",
    "cudaDeviceProp": "hipDeviceProp_t",
    "cudaGetDeviceProperties": "hipGetDeviceProperties",
    "cudaDeviceSynchronize": "hipDeviceSynchronize",
    "cudaDeviceReset": "hipDeviceReset",
    # memory
    "cudaMalloc": "hipMalloc",
    "cudaMallocHost": "hipHostMalloc",
    "cudaHostAlloc": "hipHostMalloc",
    "cudaMallocManaged": "hipMallocManaged",
    "cudaFree": "hipFree",
    "cudaFreeHost": "hipHostFree",
    "cudaMemcpy": "hipMemcpy",
    "cudaMemcpyAsync": "hipMemcpyAsync",
    "cudaMemcpyPeer": "hipMemcpyPeer",
    "cudaMemcpyPeerAsync": "hipMemcpyPeerAsync",
    "cudaMemcpyHostToDevice": "hipMemcpyHostToDevice",
    "cudaMemcpyDeviceToHost": "hipMemcpyDeviceToHost",
    "cudaMemcpyDeviceToDevice": "hipMemcpyDeviceToDevice",
    "cudaMemcpyDefault": "hipMemcpyDefault",
    "cudaMemset": "hipMemset",
    "cudaMemPrefetchAsync": "hipMemPrefetchAsync",
    # peer access
    "cudaDeviceCanAccessPeer": "hipDeviceCanAccessPeer",
    "cudaDeviceEnablePeerAccess": "hipDeviceEnablePeerAccess",
    "cudaDeviceDisablePeerAccess": "hipDeviceDisablePeerAccess",
    # streams & events
    "cudaStream_t": "hipStream_t",
    "cudaStreamCreate": "hipStreamCreate",
    "cudaStreamCreateWithFlags": "hipStreamCreateWithFlags",
    "cudaStreamDestroy": "hipStreamDestroy",
    "cudaStreamSynchronize": "hipStreamSynchronize",
    "cudaStreamNonBlocking": "hipStreamNonBlocking",
    "cudaEvent_t": "hipEvent_t",
    "cudaEventCreate": "hipEventCreate",
    "cudaEventDestroy": "hipEventDestroy",
    "cudaEventRecord": "hipEventRecord",
    "cudaEventSynchronize": "hipEventSynchronize",
    "cudaEventElapsedTime": "hipEventElapsedTime",
    # headers
    "cuda_runtime.h": "hip/hip_runtime.h",
    "cuda.h": "hip/hip_runtime.h",
}

_LAUNCH_RE = re.compile(
    r"(?P<kernel>[A-Za-z_]\w*)\s*<<<\s*(?P<grid>[^,>]+)\s*,\s*"
    r"(?P<block>[^,>]+?)\s*(?:,\s*(?P<shmem>[^,>]+?)\s*)?"
    r"(?:,\s*(?P<stream>[^>]+?)\s*)?>>>\s*\((?P<args>[^;]*)\)",
)

_UNKNOWN_CUDA_RE = re.compile(r"\bcuda[A-Za-z_]\w*\b")


@dataclass
class HipifyResult:
    """Outcome of translating one source text."""

    source: str
    translated: str
    replacements: dict[str, int] = field(default_factory=dict)
    kernel_launches: int = 0
    unresolved: list[str] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        """True when nothing CUDA-flavoured survived the translation."""
        return not self.unresolved

    def summary(self) -> str:
        """Human-readable translation summary with warnings."""
        lines = [
            f"hipify: {sum(self.replacements.values())} replacement(s), "
            f"{self.kernel_launches} kernel launch(es) rewritten"
        ]
        for name, count in sorted(self.replacements.items()):
            lines.append(f"  {name} -> {API_MAP[name]} x{count}")
        if self.unresolved:
            lines.append(
                "  WARNING unresolved CUDA identifiers: "
                + ", ".join(sorted(set(self.unresolved)))
            )
        return "\n".join(lines)


def _rewrite_launch(match: re.Match) -> str:
    kernel = match.group("kernel")
    grid = match.group("grid").strip()
    block = match.group("block").strip()
    shmem = (match.group("shmem") or "0").strip()
    stream = (match.group("stream") or "0").strip()
    args = match.group("args").strip()
    call = f"hipLaunchKernelGGL({kernel}, {grid}, {block}, {shmem}, {stream}"
    if args:
        call += f", {args}"
    return call + ")"


def hipify_source(source: str) -> HipifyResult:
    """Translate CUDA source text to HIP.

    Returns a :class:`HipifyResult` with the translated text, the
    per-identifier replacement counts, and any CUDA identifiers that
    had no mapping (left untouched, reported for manual porting — the
    behaviour of the real tool).
    """
    result = HipifyResult(source=source, translated=source)
    text = source

    text, launches = _LAUNCH_RE.subn(_rewrite_launch, text)
    result.kernel_launches = launches

    for cuda_name in sorted(API_MAP, key=len, reverse=True):
        pattern = re.compile(rf"(?<![\w.]){re.escape(cuda_name)}(?!\w)")
        text, count = pattern.subn(API_MAP[cuda_name], text)
        if count:
            result.replacements[cuda_name] = count

    result.unresolved = _UNKNOWN_CUDA_RE.findall(text)
    result.translated = text
    return result

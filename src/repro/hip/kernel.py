"""GPU kernel cost models: STREAM-style kernels with zero-copy access.

Kernels are the second data-movement interface the paper studies
(Table II's "GPU kernel" rows): instead of SDMA engines, compute units
issue loads/stores directly, and remote addresses travel over Infinity
Fabric as *zero-copy* traffic.  The performance regimes (paper §IV-A,
§V-B):

- local HBM streaming at 87 % of the 1.6 TB/s peak;
- unidirectional remote streaming at high link efficiency;
- bidirectional remote streaming (copy kernels with both operands
  remote) at 43–44 % of the theoretical *bidirectional* peak per
  Fig. 9 — request/response interference between the two directions;
- managed memory with XNACK: fault-and-migrate first (2.8 GB/s
  effective), then local-speed access.

A kernel here is a DES process producing the right set of flows and a
launch overhead; its duration is governed by the slowest flow.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Generator, Hashable, Iterable

from ..config import SimEnvironment
from ..errors import CoherenceError, PeerAccessError
from ..memory.buffer import Buffer, Location, MemoryKind
from ..memory.coherence import CoherencePolicy
from ..memory.pages import MigrationEngine
from ..topology.link import LinkTier

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..hardware.node import HardwareNode


class KernelApi:
    """Kernel launch interface of the simulated runtime."""

    def __init__(
        self,
        node: "HardwareNode",
        env: SimEnvironment,
        coherence: CoherencePolicy | None = None,
    ) -> None:
        self.node = node
        self.env = env
        self.coherence = coherence if coherence is not None else CoherencePolicy()
        self.migration = MigrationEngine(node)

    # -- residency & access planning ------------------------------------------

    def _effective_residency(
        self, device_index: int, buffer: Buffer, nbytes: int
    ) -> tuple[Location, bool]:
        """Where accesses to ``buffer`` will be served from, and whether
        an XNACK migration must run first."""
        buffer.check_live()
        if buffer.kind is MemoryKind.PAGEABLE:
            raise CoherenceError(
                "pageable (malloc) memory is not GPU-accessible; use "
                "pinned, managed, or an explicit hipMemcpy"
            )
        if buffer.kind is MemoryKind.DEVICE:
            home = buffer.home
            if home.index != device_index:
                if not self.node.gcd(device_index).can_access_peer(home.index):
                    raise PeerAccessError(
                        f"GCD {device_index} accessing GCD {home.index} memory "
                        "without hipDeviceEnablePeerAccess"
                    )
            return home, False
        if buffer.kind is MemoryKind.MANAGED:
            if self.env.xnack_enabled:
                return Location.gcd(device_index), True
            return buffer.residency(0), False
        # Pinned host memory: zero-copy at its NUMA home.
        return buffer.home, False

    def _flow_plan(
        self,
        device_index: int,
        location: Location,
        nbytes: int,
        *,
        is_read: bool,
        bidirectional: bool,
        working_set: int,
        cacheable: bool,
    ) -> tuple[list[Hashable], float]:
        """(channels, cap) for streaming ``nbytes`` to/from ``location``."""
        if location.is_device and location.index == device_index:
            return [self.node.gcd(device_index).hbm.channel], math.inf
        if location.is_host:
            if is_read:
                channels = self.node.host_to_gcd_channels(
                    location.index, device_index
                )
            else:
                channels = self.node.gcd_to_host_channels(
                    device_index, location.index
                )
            cap = self.node.calibration.kernel_remote_cap(
                LinkTier.CPU,
                bidirectional=bidirectional,
                working_set=working_set,
                cacheable=cacheable,
            )
            return channels, cap
        # Remote GCD.
        if is_read:
            channels = self.node.gcd_to_gcd_channels(location.index, device_index)
            route = self.node.gcd_route(location.index, device_index)
        else:
            channels = self.node.gcd_to_gcd_channels(device_index, location.index)
            route = self.node.gcd_route(device_index, location.index)
        tier = self.node.bottleneck_tier(route)
        cap = self.node.calibration.kernel_remote_cap(
            tier, bidirectional=bidirectional, working_set=working_set
        )
        return channels, cap

    # -- kernels --------------------------------------------------------------------

    def _launch(
        self,
        device_index: int,
        reads: Iterable[tuple[Buffer, int]],
        writes: Iterable[tuple[Buffer, int]],
        *,
        label: str,
    ) -> Generator:
        """Generic streaming kernel: byte volumes per operand.

        The kernel is *bidirectional* if at least one read operand and
        one write operand are remote — both fabric directions then
        carry payload concurrently.
        """
        reads = list(reads)
        writes = list(writes)
        engine = self.node.engine
        start = engine.now
        spans = self.node.spans
        span = (
            spans.begin("kernel", label, start=start, device=device_index)
            if spans
            else None
        )
        yield engine.timeout(self.node.calibration.kernel_launch_overhead)

        plans: list[tuple[Buffer, Location, int, bool]] = []
        migrations = []
        for is_read, operands in ((True, reads), (False, writes)):
            for buffer, volume in operands:
                location, needs_migration = self._effective_residency(
                    device_index, buffer, volume
                )
                if needs_migration:
                    migrations.append((buffer, volume))
                plans.append((buffer, location, volume, is_read))

        # XNACK migrations run first (faults happen at first touch).
        for buffer, volume in migrations:
            yield from self.migration.migrate_for_access(
                buffer,
                0,
                min(volume, buffer.size),
                device_index,
                xnack_enabled=self.env.xnack_enabled,
                parent_span=span,
            )

        remote_reads = any(
            not (loc.is_device and loc.index == device_index)
            for _b, loc, _v, r in plans
            if r
        )
        remote_writes = any(
            not (loc.is_device and loc.index == device_index)
            for _b, loc, _v, r in plans
            if not r
        )
        bidirectional = remote_reads and remote_writes

        working_set = sum(volume for _b, _loc, volume, _r in plans)
        flows = []
        for buffer, location, volume, is_read in plans:
            if volume == 0:
                continue
            channels, cap = self._flow_plan(
                device_index,
                location,
                volume,
                is_read=is_read,
                bidirectional=bidirectional,
                working_set=working_set,
                cacheable=self.coherence.gpu_cacheable(buffer),
            )
            flows.append(
                self.node.start_flow(
                    channels,
                    volume,
                    cap=cap,
                    label=f"{label}:{'r' if is_read else 'w'}@{location}",
                    span=span,
                )
            )
        if flows:
            yield engine.all_of([flow.done for flow in flows])
        if span is not None:
            spans.finish(span, engine.now)
        tracer = self.node.tracer
        if tracer.enabled:
            tracer.record(
                start, engine.now, "kernel", label, device=device_index
            )
        metrics = self.node.metrics
        if metrics:
            metrics.counter("hip/kernel_launches").inc()
            metrics.counter(f"hip/kernel_launches/gcd{device_index}").inc()

    def stream_copy(
        self,
        device_index: int,
        dst: Buffer,
        src: Buffer,
        nbytes: int | None = None,
    ) -> Generator:
        """STREAM copy kernel ``b[i] = a[i]`` (the paper's workhorse)."""
        if nbytes is None:
            nbytes = min(src.size, dst.size)
        yield from self._launch(
            device_index,
            reads=[(src, nbytes)],
            writes=[(dst, nbytes)],
            label="stream_copy",
        )
        dst.copy_payload_from(src, nbytes)

    def stream_triad(
        self,
        device_index: int,
        dst: Buffer,
        src_a: Buffer,
        src_b: Buffer,
        nbytes: int | None = None,
    ) -> Generator:
        """STREAM triad ``a[i] = b[i] + s*c[i]``."""
        if nbytes is None:
            nbytes = min(dst.size, src_a.size, src_b.size)
        yield from self._launch(
            device_index,
            reads=[(src_a, nbytes), (src_b, nbytes)],
            writes=[(dst, nbytes)],
            label="stream_triad",
        )
        if dst.has_data or src_a.has_data or src_b.has_data:
            # Functional mode: a[i] = b[i] + c[i] on the byte view
            # (scalar s = 1; uint8 wrap-around semantics).
            a = src_a.ensure_data()
            b = src_b.ensure_data()
            dst.ensure_data()[:nbytes] = a[:nbytes] + b[:nbytes]

    def init_array(
        self, device_index: int, dst: Buffer, nbytes: int | None = None
    ) -> Generator:
        """Write-only initialisation kernel (Listing 1's init_array)."""
        if nbytes is None:
            nbytes = dst.size
        yield from self._launch(
            device_index, reads=[], writes=[(dst, nbytes)], label="init_array"
        )
        if dst.has_data:
            dst.ensure_data()[:nbytes] = 1

    def read_sum(
        self, device_index: int, src: Buffer, nbytes: int | None = None
    ) -> Generator:
        """Read-only reduction kernel (unidirectional remote regime)."""
        if nbytes is None:
            nbytes = src.size
        yield from self._launch(
            device_index, reads=[(src, nbytes)], writes=[], label="read_sum"
        )
        if src.has_data:
            return int(src.ensure_data()[:nbytes].sum())
        return None

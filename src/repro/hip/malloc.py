"""Allocation APIs: hipMalloc, hipHostMalloc, hipMallocManaged, malloc.

Implements the Table I allocation landscape against the simulated
address space, including the NUMA placement behaviour of §IV-B
(pinned memory lands on the active GPU's NUMA node unless the user
overrides it).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from ..errors import AllocationError
from ..memory.allocator import AddressSpace
from ..memory.buffer import Buffer, Location, MemoryKind
from ..memory.placement import ClosestNumaPolicy, PlacementPolicy
from ..topology.numa import NumaMap
from .enums import HostMallocFlags

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..hardware.node import HardwareNode


class AllocApi:
    """Allocation interface of the simulated runtime."""

    def __init__(self, node: "HardwareNode", address_space: AddressSpace) -> None:
        self.node = node
        self.space = address_space
        self.numa_map = NumaMap.from_topology(node.topology)
        self.default_policy: PlacementPolicy = ClosestNumaPolicy()

    # -- device memory -----------------------------------------------------

    def malloc(self, device_index: int, size: int, *, label: str = "") -> Buffer:
        """``hipMalloc``: device HBM on ``device_index``."""
        hbm = self.node.gcd(device_index).hbm
        return self.space.allocate(
            size,
            MemoryKind.DEVICE,
            Location.gcd(device_index),
            owner_device=device_index,
            label=label or f"hipMalloc@gcd{device_index}",
            reserve=hbm.reserve,
        )

    # -- host memory ------------------------------------------------------------

    def host_malloc(
        self,
        active_device: int,
        size: int,
        flags: HostMallocFlags = HostMallocFlags.DEFAULT,
        *,
        policy: Optional[PlacementPolicy] = None,
        label: str = "",
    ) -> Buffer:
        """``hipHostMalloc``: pinned host memory.

        Coherent unless ``NON_COHERENT`` is passed (Table I).  NUMA
        placement follows the active device unless ``NUMA_USER`` (and a
        policy) overrides it.
        """
        if (
            HostMallocFlags.COHERENT in flags
            and HostMallocFlags.NON_COHERENT in flags
        ):
            raise AllocationError(
                "hipHostMallocCoherent and hipHostMallocNonCoherent are exclusive"
            )
        kind = (
            MemoryKind.PINNED_NONCOHERENT
            if HostMallocFlags.NON_COHERENT in flags
            else MemoryKind.PINNED_COHERENT
        )
        if HostMallocFlags.NUMA_USER in flags and policy is not None:
            chosen = policy
        elif HostMallocFlags.NUMA_USER in flags:
            raise AllocationError("hipHostMallocNumaUser requires a NUMA policy")
        else:
            chosen = self.default_policy
        numa = chosen.numa_for(active_gcd=active_device, numa_map=self.numa_map)
        return self.space.allocate(
            size,
            kind,
            Location.host(numa),
            owner_device=active_device,
            label=label or f"hipHostMalloc@numa{numa}",
        )

    def pageable_malloc(
        self, size: int, *, numa_index: int = 0, label: str = ""
    ) -> Buffer:
        """Plain ``malloc``: pageable memory, first-touch NUMA placement."""
        self.node.topology.numa_domain(numa_index)  # validate
        return self.space.allocate(
            size,
            MemoryKind.PAGEABLE,
            Location.host(numa_index),
            label=label or f"malloc@numa{numa_index}",
        )

    def malloc_managed(
        self, active_device: int, size: int, *, label: str = ""
    ) -> Buffer:
        """``hipMallocManaged``: unified memory, host-resident initially.

        HIP first-touches managed memory on the host; pages migrate (or
        are accessed zero-copy) per the XNACK configuration.
        """
        numa = self.numa_map.default_host_numa_for(active_device)
        return self.space.allocate(
            size,
            MemoryKind.MANAGED,
            Location.host(numa),
            owner_device=active_device,
            label=label or f"hipMallocManaged@numa{numa}",
        )

    def register_host_buffer(self, buffer: Buffer) -> Buffer:
        """``hipHostRegister``: pin an existing pageable allocation.

        Returns a pinned-view of the same storage (same address/size);
        models the numa_alloc_onnode + hipHostRegister path of §IV-B.
        """
        buffer.check_live()
        if buffer.kind is not MemoryKind.PAGEABLE:
            raise AllocationError("hipHostRegister expects pageable memory")
        # Re-type in place: registration pins the existing pages.
        object.__setattr__  # no-op reference; Buffer uses __slots__, not frozen
        new = Buffer(
            buffer.address,
            buffer.size,
            MemoryKind.PINNED_COHERENT,
            buffer.home,
            owner_device=buffer.owner_device,
            label=buffer.label + "+registered",
        )
        # Swap the registry entry so resolve() sees the pinned view.
        self.space._buffers[buffer.address] = new  # noqa: SLF001 - deliberate
        return new

    # -- free -----------------------------------------------------------------------

    def free(self, buffer: Buffer) -> None:
        """``hipFree`` / ``hipHostFree`` / ``free``."""
        release = None
        if buffer.kind is MemoryKind.DEVICE:
            release = self.node.gcd(buffer.home.index).hbm.release
        self.space.free(buffer, release=release)

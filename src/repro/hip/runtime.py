"""The HIP runtime facade.

:class:`HipRuntime` composes the allocation, copy, kernel and peer
APIs into one object with HIP-shaped methods, adds device management
(including ``HIP_VISIBLE_DEVICES`` logical→physical mapping), streams,
events and synchronisation.

Device ordinals accepted by this class are **logical** — they pass
through the environment's visibility mask, exactly like the real
runtime (§IV-C uses this to place the multi-GCD STREAM benchmark).
All internal layers work with physical GCD indices.
"""

from __future__ import annotations

import warnings
from typing import Any, Generator, Optional

from ..config import SimEnvironment
from ..errors import ConfigurationError, InvalidDeviceError
from ..hardware.node import HardwareNode
from ..memory.allocator import AddressSpace
from ..memory.buffer import Buffer
from ..memory.coherence import CoherencePolicy
from ..memory.pages import MigrationEngine
from ..memory.placement import PlacementPolicy
from ..sim.engine import Event
from .enums import HostMallocFlags, MemcpyKind
from .event import HipEvent
from .kernel import KernelApi
from .malloc import AllocApi
from .memcpy import CopyApi
from .peer import PeerApi
from .stream import Stream


class HipRuntime:
    """A process's view of the HIP runtime on one simulated node."""

    def __init__(
        self,
        node: HardwareNode | None = None,
        env: SimEnvironment | None = None,
        *,
        coherence: CoherencePolicy | None = None,
    ) -> None:
        if node is None:
            warnings.warn(
                "HipRuntime() with an implicit node is deprecated; "
                "use repro.Session (session.hip) instead",
                DeprecationWarning,
                stacklevel=2,
            )
        self.node = node if node is not None else HardwareNode()
        self.env = env if env is not None else SimEnvironment()
        self.coherence = coherence if coherence is not None else CoherencePolicy()
        self.space = AddressSpace(page_size=self.node.calibration.page_size)
        self.alloc_api = AllocApi(self.node, self.space)
        self.copy_api = CopyApi(self.node, self.env)
        self.kernel_api = KernelApi(self.node, self.env, self.coherence)
        self.peer_api = PeerApi(self.node)
        self.migration = MigrationEngine(self.node)
        self._current_device = 0
        self._null_streams: dict[int, Stream] = {}
        self._user_streams: dict[int, list[Stream]] = {}

    # -- device management ------------------------------------------------

    @property
    def engine(self):
        """The node's DES engine."""
        return self.node.engine

    @property
    def now(self) -> float:
        """Current simulated time (seconds)."""
        return self.node.engine.now

    def device_count(self) -> int:
        """``hipGetDeviceCount`` under the visibility mask."""
        return self.env.num_visible_devices(self.node.num_gcds)

    def _physical(self, logical: Optional[int] = None) -> int:
        if logical is None:
            logical = self._current_device
        try:
            return self.env.map_logical_device(logical, self.node.num_gcds)
        except ConfigurationError as exc:
            # Only the runtime's own "bad ordinal / not visible"
            # rejection maps to hipErrorInvalidDevice; unexpected
            # failures (e.g. AttributeError from a malformed
            # environment) must propagate unmasked.
            raise InvalidDeviceError(str(exc)) from exc

    def set_device(self, logical: int) -> None:
        """``hipSetDevice``."""
        self._physical(logical)  # validate
        self._current_device = logical

    def get_device(self) -> int:
        """``hipGetDevice`` (logical ordinal)."""
        return self._current_device

    def physical_device(self, logical: Optional[int] = None) -> int:
        """The physical GCD index behind a logical ordinal."""
        return self._physical(logical)

    # -- allocation ----------------------------------------------------------

    def malloc(self, size: int, *, device: Optional[int] = None, label: str = "") -> Buffer:
        """``hipMalloc`` on the current (or given) device."""
        return self.alloc_api.malloc(self._physical(device), size, label=label)

    def host_malloc(
        self,
        size: int,
        flags: HostMallocFlags = HostMallocFlags.DEFAULT,
        *,
        device: Optional[int] = None,
        policy: Optional[PlacementPolicy] = None,
        label: str = "",
    ) -> Buffer:
        """``hipHostMalloc``: pinned host memory (coherent by default)."""
        return self.alloc_api.host_malloc(
            self._physical(device), size, flags, policy=policy, label=label
        )

    def malloc_managed(
        self, size: int, *, device: Optional[int] = None, label: str = ""
    ) -> Buffer:
        """``hipMallocManaged``: unified memory, host-first residency."""
        return self.alloc_api.malloc_managed(
            self._physical(device), size, label=label
        )

    def pageable_malloc(
        self, size: int, *, numa_index: int = 0, label: str = ""
    ) -> Buffer:
        """Plain ``malloc``: pageable host memory."""
        return self.alloc_api.pageable_malloc(size, numa_index=numa_index, label=label)

    def free(self, buffer: Buffer) -> None:
        """``hipFree``/``hipHostFree``: release an allocation."""
        self.alloc_api.free(buffer)

    # -- streams & events ---------------------------------------------------------

    def null_stream(self, device: Optional[int] = None) -> Stream:
        """The device's legacy default stream (created lazily)."""
        physical = self._physical(device)
        stream = self._null_streams.get(physical)
        if stream is None:
            stream = Stream(self.engine, physical, name=f"null@gcd{physical}")
            self._null_streams[physical] = stream
        return stream

    def stream_create(self, *, device: Optional[int] = None) -> Stream:
        """``hipStreamCreate`` on the current (or given) device."""
        physical = self._physical(device)
        stream = Stream(self.engine, physical)
        self._user_streams.setdefault(physical, []).append(stream)
        return stream

    def stream_destroy(self, stream: Stream) -> None:
        """``hipStreamDestroy``; pending work still drains."""
        stream.destroy()

    def event_create(self, name: str = "") -> HipEvent:
        """``hipEventCreate``."""
        return HipEvent(self.engine, name=name)

    def device_synchronize(self, device: Optional[int] = None) -> Generator:
        """``hipDeviceSynchronize``: drain every stream of the device."""
        physical = self._physical(device)
        tails = []
        null = self._null_streams.get(physical)
        if null is not None:
            tails.append(null.tail_event)
        for stream in self._user_streams.get(physical, []):
            tails.append(stream.tail_event)
        pending = [t for t in tails if not t.processed]
        if pending:
            yield self.engine.all_of(pending)

    # -- copies -------------------------------------------------------------------------

    def memcpy(
        self,
        dst: Buffer,
        src: Buffer,
        nbytes: int | None = None,
        kind: MemcpyKind = MemcpyKind.DEFAULT,
    ) -> Generator:
        """Blocking ``hipMemcpy`` (DES process; drive with ``yield from``)."""
        yield from self.copy_api.memcpy(dst, src, nbytes, kind)

    def memcpy_async(
        self,
        dst: Buffer,
        src: Buffer,
        nbytes: int | None = None,
        kind: MemcpyKind = MemcpyKind.DEFAULT,
        stream: Optional[Stream] = None,
    ) -> Event:
        """``hipMemcpyAsync``: enqueue on a stream, return its event."""
        if stream is None:
            stream = self.null_stream()
        return self.copy_api.memcpy_async(dst, src, nbytes, kind, stream)

    def memcpy_peer(
        self,
        dst: Buffer,
        dst_device: int,
        src: Buffer,
        src_device: int,
        nbytes: int | None = None,
    ) -> Generator:
        """Blocking ``hipMemcpyPeer`` over the bandwidth-max route."""
        yield from self.copy_api.memcpy_peer(
            dst, self._physical(dst_device), src, self._physical(src_device), nbytes
        )

    def memcpy_peer_async(
        self,
        dst: Buffer,
        dst_device: int,
        src: Buffer,
        src_device: int,
        nbytes: int | None = None,
        stream: Optional[Stream] = None,
    ) -> Event:
        """``hipMemcpyPeerAsync`` (the Fig. 6b operation)."""
        if stream is None:
            stream = self.null_stream()
        return self.copy_api.memcpy_peer_async(
            dst,
            self._physical(dst_device),
            src,
            self._physical(src_device),
            nbytes,
            stream,
        )

    # -- kernels ------------------------------------------------------------------------

    def launch_stream_copy(
        self,
        dst: Buffer,
        src: Buffer,
        nbytes: int | None = None,
        *,
        device: Optional[int] = None,
        stream: Optional[Stream] = None,
    ) -> Event:
        """Launch the STREAM copy kernel (async, like a real launch)."""
        physical = self._physical(device)
        if stream is None:
            stream = self.null_stream(device)
        return stream.enqueue(
            lambda: self.kernel_api.stream_copy(physical, dst, src, nbytes),
            label="stream_copy",
        )

    def launch_stream_triad(
        self,
        dst: Buffer,
        src_a: Buffer,
        src_b: Buffer,
        nbytes: int | None = None,
        *,
        device: Optional[int] = None,
        stream: Optional[Stream] = None,
    ) -> Event:
        """Launch the STREAM triad kernel (async)."""
        physical = self._physical(device)
        if stream is None:
            stream = self.null_stream(device)
        return stream.enqueue(
            lambda: self.kernel_api.stream_triad(physical, dst, src_a, src_b, nbytes),
            label="stream_triad",
        )

    def launch_init_array(
        self,
        dst: Buffer,
        nbytes: int | None = None,
        *,
        device: Optional[int] = None,
        stream: Optional[Stream] = None,
    ) -> Event:
        """Launch the write-only init kernel of Listing 1 (async)."""
        physical = self._physical(device)
        if stream is None:
            stream = self.null_stream(device)
        return stream.enqueue(
            lambda: self.kernel_api.init_array(physical, dst, nbytes),
            label="init_array",
        )

    def launch_read_sum(
        self,
        src: Buffer,
        nbytes: int | None = None,
        *,
        device: Optional[int] = None,
        stream: Optional[Stream] = None,
    ) -> Event:
        """Launch the read-only reduction kernel (async)."""
        physical = self._physical(device)
        if stream is None:
            stream = self.null_stream(device)
        return stream.enqueue(
            lambda: self.kernel_api.read_sum(physical, src, nbytes),
            label="read_sum",
        )

    # -- peer access ----------------------------------------------------------------------

    def can_access_peer(self, device: int, peer: int) -> bool:
        """``hipDeviceCanAccessPeer``."""
        return self.peer_api.can_access_peer(
            self._physical(device), self._physical(peer)
        )

    def enable_peer_access(self, peer: int, *, device: Optional[int] = None) -> None:
        """``hipDeviceEnablePeerAccess`` for the current device."""
        self.peer_api.enable_peer_access(
            self._physical(device), self._physical(peer)
        )

    def enable_all_peer_access(self) -> int:
        """Enable peer access between every pair (benchmark setup)."""
        return self.peer_api.enable_all_pairs()

    # -- managed-memory helpers --------------------------------------------------------------

    def mem_prefetch(self, buffer: Buffer, device: Optional[int] = None) -> Generator:
        """``hipMemPrefetchAsync`` + sync: bulk-migrate managed memory."""
        from ..memory.buffer import Location

        target = Location.gcd(self._physical(device))
        yield from self.migration.prefetch(buffer, target)

    # -- driver -----------------------------------------------------------------------------------

    def run(self, process: Generator, name: str = "") -> Any:
        """Drive a simulation process to completion; returns its value."""
        return self.engine.run_process(process, name)

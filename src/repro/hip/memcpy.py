"""Explicit data movement: hipMemcpy / hipMemcpyPeer and friends.

The engine-based copy paths the paper measures:

- **Host↔device hipMemcpy** uses an SDMA engine; from pinned memory it
  peaks at 28.3 GB/s (Fig. 3).  Pageable memory is staged through a
  pinned bounce buffer with "non-predictable paging operations"
  producing the varying Fig. 3 curve.
- **hipMemcpyPeer** programs an SDMA engine over the
  *bandwidth-maximizing* route; the engine cap (not the link) is the
  bottleneck, producing the two-tier Fig. 6c matrix and the 75/50/25 %
  utilization of Fig. 7.  ``HSA_ENABLE_PEER_SDMA=0`` switches to a
  blit copy kernel that can drive wide links (§V-A2).
- Small-transfer latency follows the Fig. 6b model implemented in
  :meth:`repro.hardware.sdma.SdmaEngines.copy_latency`.
"""

from __future__ import annotations

import hashlib
import math
from typing import TYPE_CHECKING, Generator, Hashable

from ..config import SimEnvironment
from ..errors import HipError
from ..memory.buffer import Buffer, Location, MemoryKind
from ..sim.engine import Event
from ..topology.link import LinkTier
from .enums import MemcpyKind
from .stream import Stream

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..hardware.node import HardwareNode


def pair_jitter(src_index: int, dst_index: int) -> float:
    """Deterministic per-pair jitter in [0, 1) for the latency matrix.

    Derived from a stable hash so the Fig. 6b matrix is identical
    across runs and machines.
    """
    digest = hashlib.md5(f"p2p:{src_index}->{dst_index}".encode()).digest()
    return int.from_bytes(digest[:4], "big") / 2**32


def pageable_variation(nbytes: int) -> float:
    """Deterministic multiplicative variation for pageable copies.

    Models the paper's "non-predictable paging operations" as a
    size-keyed factor in [1 - jitter, 1]; deterministic per size so
    sweeps are reproducible.
    """
    digest = hashlib.md5(f"pageable:{nbytes}".encode()).digest()
    return int.from_bytes(digest[:4], "big") / 2**32


class CopyApi:
    """hipMemcpy-family implementation."""

    def __init__(self, node: "HardwareNode", env: SimEnvironment) -> None:
        self.node = node
        self.env = env
        self._calibration = node.calibration

    # -- kind resolution ----------------------------------------------------

    @staticmethod
    def resolve_kind(dst: Buffer, src: Buffer) -> MemcpyKind:
        """hipMemcpyDefault resolution from buffer homes."""
        src_dev = src.kind is MemoryKind.DEVICE or (
            src.kind is MemoryKind.MANAGED and src.residency(0).is_device
        )
        dst_dev = dst.kind is MemoryKind.DEVICE or (
            dst.kind is MemoryKind.MANAGED and dst.residency(0).is_device
        )
        if src_dev and dst_dev:
            return MemcpyKind.DEVICE_TO_DEVICE
        if src_dev:
            return MemcpyKind.DEVICE_TO_HOST
        if dst_dev:
            return MemcpyKind.HOST_TO_DEVICE
        return MemcpyKind.HOST_TO_HOST

    # -- rate/channel planning ------------------------------------------------

    def _pageable_cap(self, nbytes: int) -> float:
        base = self._calibration.pageable_efficiency * LinkTier.CPU.peak_unidirectional
        jitter = self._calibration.pageable_jitter * pageable_variation(nbytes)
        return base * (1.0 - jitter)

    def _h2d_plan(
        self, dst: Buffer, src: Buffer, nbytes: int
    ) -> tuple[list[Hashable], float]:
        device = dst.residency(0).index if dst.residency(0).is_device else None
        if device is None:
            raise HipError(
                "hipErrorInvalidValue", "H2D copy with non-device destination"
            )
        numa = src.home.index
        channels = self.node.host_to_gcd_channels(numa, device)
        engine, efficiency = self.node.gcd(device).sdma.plan_engine(
            outbound=False
        )
        channels.append(engine)
        if src.kind is MemoryKind.PAGEABLE:
            cap = self._pageable_cap(nbytes)
            channels.append(self.node.cpu.dram_channel(numa))  # staging reads
        else:
            cap = self._calibration.sdma_cap_for_tier(LinkTier.CPU)
        return channels, cap * efficiency

    def _d2h_plan(
        self, dst: Buffer, src: Buffer, nbytes: int
    ) -> tuple[list[Hashable], float]:
        device = src.residency(0).index if src.residency(0).is_device else None
        if device is None:
            raise HipError(
                "hipErrorInvalidValue", "D2H copy with non-device source"
            )
        numa = dst.home.index
        channels = self.node.gcd_to_host_channels(device, numa)
        engine, efficiency = self.node.gcd(device).sdma.plan_engine(
            outbound=True
        )
        channels.append(engine)
        if dst.kind is MemoryKind.PAGEABLE:
            cap = self._pageable_cap(nbytes)
        else:
            cap = self._calibration.sdma_cap_for_tier(LinkTier.CPU)
        return channels, cap * efficiency

    def _h2h_plan(
        self, dst: Buffer, src: Buffer, nbytes: int
    ) -> tuple[list[Hashable], float]:
        channels = self.node.cpu.host_memcpy_channels(src.home.index, dst.home.index)
        return channels, self._calibration.host_memcpy_rate

    def _d2d_plan(
        self, dst: Buffer, src: Buffer, nbytes: int
    ) -> tuple[list[Hashable], float]:
        src_loc, dst_loc = src.residency(0), dst.residency(0)
        if src_loc.index == dst_loc.index:
            channels = [self.node.gcd(src_loc.index).hbm.channel]
            return channels, self._calibration.sdma_engine_throughput
        return self._peer_plan(dst_loc.index, src_loc.index)

    def _peer_plan(
        self, dst_device: int, src_device: int
    ) -> tuple[list[Hashable], float]:
        route = self.node.gcd_route(src_device, dst_device)
        channels = self.node.gcd_to_gcd_channels(src_device, dst_device)
        if self._peer_sdma_active:
            sdma = self.node.gcd(src_device).sdma
            engine, efficiency = sdma.plan_engine(outbound=True)
            channels.append(engine)
            cap = sdma.rate_cap_for_route(route) * efficiency
        else:
            tier = self.node.bottleneck_tier(route)
            cap = self._calibration.kernel_remote_cap(tier, bidirectional=False)
        return channels, cap

    @property
    def _peer_sdma_active(self) -> bool:
        return self.env.sdma_enabled and self.env.peer_sdma_enabled

    # -- synchronous operations (DES processes) -----------------------------------

    def memcpy(
        self,
        dst: Buffer,
        src: Buffer,
        nbytes: int | None = None,
        kind: MemcpyKind = MemcpyKind.DEFAULT,
    ) -> Generator:
        """Blocking hipMemcpy: host latency + engine transfer."""
        dst.check_live()
        src.check_live()
        if nbytes is None:
            nbytes = min(dst.size, src.size)
        if nbytes < 0 or nbytes > src.size or nbytes > dst.size:
            raise HipError(
                "hipErrorInvalidValue",
                f"copy of {nbytes} bytes exceeds a buffer",
            )
        if kind is MemcpyKind.DEFAULT:
            kind = self.resolve_kind(dst, src)
        start = self.node.engine.now
        spans = self.node.spans
        span = (
            spans.begin(
                "memcpy", f"memcpy:{kind.value}", start=start, bytes=nbytes
            )
            if spans
            else None
        )
        yield self.node.engine.timeout(self._calibration.memcpy_host_latency)
        if nbytes > 0:
            channels, cap = self._plan_for_kind(kind, dst, src, nbytes)
            flow = self.node.start_flow(
                channels, nbytes, cap=cap, label=f"memcpy:{kind.value}", span=span
            )
            yield flow.done
            dst.copy_payload_from(src, nbytes)
        if span is not None:
            spans.finish(span, self.node.engine.now)
        tracer = self.node.tracer
        if tracer.enabled:
            tracer.record(
                start, self.node.engine.now, "memcpy", kind.value, bytes=nbytes
            )
        metrics = self.node.metrics
        if metrics:
            metrics.counter(f"hip/memcpy/{kind.value}").inc()
            metrics.counter(f"hip/memcpy/{kind.value}/bytes").inc(nbytes)

    def _plan_for_kind(
        self, kind: MemcpyKind, dst: Buffer, src: Buffer, nbytes: int
    ) -> tuple[list[Hashable], float]:
        if kind is MemcpyKind.HOST_TO_DEVICE:
            return self._h2d_plan(dst, src, nbytes)
        if kind is MemcpyKind.DEVICE_TO_HOST:
            return self._d2h_plan(dst, src, nbytes)
        if kind is MemcpyKind.HOST_TO_HOST:
            return self._h2h_plan(dst, src, nbytes)
        if kind is MemcpyKind.DEVICE_TO_DEVICE:
            return self._d2d_plan(dst, src, nbytes)
        raise HipError("hipErrorInvalidValue", f"bad memcpy kind {kind!r}")

    def memcpy_peer(
        self,
        dst: Buffer,
        dst_device: int,
        src: Buffer,
        src_device: int,
        nbytes: int | None = None,
    ) -> Generator:
        """Blocking hipMemcpyPeer along the bandwidth-maximizing route."""
        yield from self._peer_transfer(dst, dst_device, src, src_device, nbytes)

    def _peer_transfer(
        self,
        dst: Buffer,
        dst_device: int,
        src: Buffer,
        src_device: int,
        nbytes: int | None,
    ) -> Generator:
        dst.check_live()
        src.check_live()
        if nbytes is None:
            nbytes = min(dst.size, src.size)
        if nbytes < 0 or nbytes > src.size or nbytes > dst.size:
            raise HipError(
                "hipErrorInvalidValue",
                f"peer copy of {nbytes} bytes exceeds a buffer",
            )
        start = self.node.engine.now
        spans = self.node.spans
        span = (
            spans.begin(
                "memcpy",
                f"memcpy_peer:{src_device}->{dst_device}",
                start=start,
                bytes=nbytes,
                src=src_device,
                dst=dst_device,
            )
            if spans
            else None
        )
        if src_device == dst_device:
            yield self.node.engine.timeout(self._calibration.p2p_latency_base)
            if nbytes > 0:
                flow = self.node.start_flow(
                    [self.node.gcd(src_device).hbm.channel],
                    nbytes,
                    cap=self._calibration.sdma_engine_throughput,
                    label="memcpy_peer:local",
                    span=span,
                )
                yield flow.done
                dst.copy_payload_from(src, nbytes)
            if span is not None:
                spans.finish(span, self.node.engine.now)
            return
        route = self.node.gcd_route(src_device, dst_device)
        jitter = pair_jitter(src_device, dst_device)
        if self._peer_sdma_active:
            latency = self.node.gcd(src_device).sdma.copy_latency(route, jitter)
        else:
            latency = (
                self._calibration.kernel_launch_overhead
                + self._calibration.p2p_latency_base
            )
        yield self.node.engine.timeout(latency)
        if nbytes > 0:
            channels, cap = self._peer_plan(dst_device, src_device)
            flow = self.node.start_flow(
                channels,
                nbytes,
                cap=cap,
                label=f"memcpy_peer:{src_device}->{dst_device}",
                span=span,
            )
            yield flow.done
            dst.copy_payload_from(src, nbytes)
        if span is not None:
            spans.finish(span, self.node.engine.now)
        tracer = self.node.tracer
        if tracer.enabled:
            tracer.record(
                start,
                self.node.engine.now,
                "memcpy",
                f"peer:{src_device}->{dst_device}",
                bytes=nbytes,
                route=route.describe(),
            )
        metrics = self.node.metrics
        if metrics:
            metrics.counter("hip/memcpy/peer").inc()
            metrics.counter("hip/memcpy/peer/bytes").inc(nbytes)

    # -- async variants -------------------------------------------------------------

    def memcpy_async(
        self,
        dst: Buffer,
        src: Buffer,
        nbytes: int | None,
        kind: MemcpyKind,
        stream: Stream,
    ) -> Event:
        """hipMemcpyAsync: enqueue on a stream, return completion event."""

        def operation() -> Generator:
            # The stream pays the device-side cost; host-side latency is
            # the (cheap) enqueue, paid by the caller synchronously.
            d, s, n, k = dst, src, nbytes, kind
            d.check_live()
            s.check_live()
            count = min(d.size, s.size) if n is None else n
            if k is MemcpyKind.DEFAULT:
                k = self.resolve_kind(d, s)
            if count > 0:
                spans = self.node.spans
                span = (
                    spans.begin(
                        "memcpy",
                        f"memcpyAsync:{k.value}",
                        start=self.node.engine.now,
                        bytes=count,
                    )
                    if spans
                    else None
                )
                channels, cap = self._plan_for_kind(k, d, s, count)
                flow = self.node.start_flow(
                    channels, count, cap=cap, label=f"memcpyAsync:{k.value}", span=span
                )
                yield flow.done
                d.copy_payload_from(s, count)
                if span is not None:
                    spans.finish(span, self.node.engine.now)

        return stream.enqueue(operation, label="memcpyAsync")

    def memcpy_peer_async(
        self,
        dst: Buffer,
        dst_device: int,
        src: Buffer,
        src_device: int,
        nbytes: int | None,
        stream: Stream,
    ) -> Event:
        """hipMemcpyPeerAsync — the operation Fig. 6b times with events."""

        def operation() -> Generator:
            yield from self._peer_transfer(dst, dst_device, src, src_device, nbytes)

        return stream.enqueue(operation, label="memcpyPeerAsync")

"""Simulated HIP runtime.

This package mirrors the HIP C API surface the paper's benchmarks use,
as a Python API over the simulated :class:`~repro.hardware.node.
HardwareNode`:

========================  =============================================
HIP                        here
========================  =============================================
``hipSetDevice``           :meth:`HipRuntime.set_device`
``hipMalloc``              :meth:`HipRuntime.malloc`
``hipHostMalloc``          :meth:`HipRuntime.host_malloc`
``hipMallocManaged``       :meth:`HipRuntime.malloc_managed`
``malloc`` (pageable)      :meth:`HipRuntime.pageable_malloc`
``hipMemcpy``              :meth:`HipRuntime.memcpy` (DES process)
``hipMemcpyAsync``         :meth:`HipRuntime.memcpy_async`
``hipMemcpyPeer``          :meth:`HipRuntime.memcpy_peer`
``hipMemcpyPeerAsync``     :meth:`HipRuntime.memcpy_peer_async`
``hipDeviceEnablePeerAccess``  :meth:`HipRuntime.enable_peer_access`
``hipDeviceSynchronize``   :meth:`HipRuntime.device_synchronize`
``hipStreamCreate``        :meth:`HipRuntime.stream_create`
``hipEventRecord`` etc.    :class:`repro.hip.event.HipEvent`
kernel launch              :mod:`repro.hip.kernel`
========================  =============================================

Synchronous calls are DES *processes*: invoke them from a simulation
process with ``yield from`` (or drive them with
:meth:`HipRuntime.run`).  Async calls enqueue onto a
:class:`~repro.hip.stream.Stream` and return immediately.
"""

from .enums import MemcpyKind, HostMallocFlags
from .stream import Stream
from .event import HipEvent
from .runtime import HipRuntime

__all__ = [
    "MemcpyKind",
    "HostMallocFlags",
    "Stream",
    "HipEvent",
    "HipRuntime",
]

"""HIP streams: in-order work queues on the DES engine.

A :class:`Stream` serializes the operations enqueued on it, exactly
like a HIP stream: each operation starts when the previous one
completes.  Operations are DES process factories (callables returning
generators), so any runtime operation — copies, kernels, event
records — can be enqueued uniformly.

Every device owns a *null stream* (the legacy default stream);
``hipDeviceSynchronize`` waits for the tails of all of a device's
streams.
"""

from __future__ import annotations

import itertools
from typing import Callable, Generator

from ..errors import StreamError
from ..sim.engine import Event, SimEngine

_stream_ids = itertools.count()

OperationFactory = Callable[[], Generator]


class Stream:
    """An in-order queue of simulated GPU operations."""

    def __init__(self, engine: SimEngine, device_index: int, *, name: str = "") -> None:
        self.engine = engine
        self.device_index = device_index
        self.stream_id = next(_stream_ids)
        self.name = name or f"stream{self.stream_id}"
        self._destroyed = False
        # The tail event: triggered when the most recently enqueued
        # operation has completed.  Starts pre-triggered (empty queue).
        self._tail: Event = engine.event()
        self._tail.succeed(None)
        self._depth = 0

    @property
    def destroyed(self) -> bool:
        """Whether ``destroy()`` was called."""
        return self._destroyed

    @property
    def pending_operations(self) -> int:
        """Operations enqueued but not yet completed."""
        return self._depth

    def _check_live(self) -> None:
        if self._destroyed:
            raise StreamError(f"operation on destroyed stream {self.name!r}")

    def enqueue(self, operation: OperationFactory, *, label: str = "") -> Event:
        """Enqueue an operation; returns its completion event."""
        self._check_live()
        previous_tail = self._tail
        done = self.engine.event()
        self._tail = done
        self._depth += 1

        def runner() -> Generator:
            yield previous_tail
            result = yield from operation()
            self._depth -= 1
            done.succeed(result)

        self.engine.process(runner(), name=f"{self.name}:{label or 'op'}")
        return done

    def synchronize(self) -> Generator:
        """DES process: wait until all enqueued work has completed."""
        self._check_live()
        tail = self._tail
        if not tail.processed:
            yield tail

    @property
    def tail_event(self) -> Event:
        """Completion event of the most recently enqueued operation."""
        return self._tail

    def destroy(self) -> None:
        """Destroy the stream.  Pending work still drains (HIP semantics:
        hipStreamDestroy waits asynchronously), but new enqueues fail."""
        self._check_live()
        self._destroyed = True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Stream {self.name} dev{self.device_index} depth={self._depth}>"

"""HIP enum mirrors used by the simulated runtime."""

from __future__ import annotations

import enum


class MemcpyKind(enum.Enum):
    """``hipMemcpyKind``."""

    HOST_TO_HOST = "hipMemcpyHostToHost"
    HOST_TO_DEVICE = "hipMemcpyHostToDevice"
    DEVICE_TO_HOST = "hipMemcpyDeviceToHost"
    DEVICE_TO_DEVICE = "hipMemcpyDeviceToDevice"
    DEFAULT = "hipMemcpyDefault"


class HostMallocFlags(enum.Flag):
    """``hipHostMalloc`` flags relevant to the paper (Table I).

    ``COHERENT`` is the default behaviour when no flag is given —
    "In HIP, by default, host-pinned memory is marked as coherent."
    ``NUMA_USER`` defers NUMA placement to the caller's policy
    (§IV-B).
    """

    DEFAULT = 0
    COHERENT = enum.auto()
    NON_COHERENT = enum.auto()
    NUMA_USER = enum.auto()


class DeviceAttribute(enum.Enum):
    """Subset of ``hipDeviceAttribute_t`` used by benchmarks."""

    MULTIPROCESSOR_COUNT = "hipDeviceAttributeMultiprocessorCount"
    L2_CACHE_SIZE = "hipDeviceAttributeL2CacheSize"
    TOTAL_GLOBAL_MEM = "hipDeviceAttributeTotalGlobalMem"
    MEMORY_BUS_PEAK = "memoryBusPeakBandwidth"  # simulator extension

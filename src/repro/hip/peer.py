"""Peer access management: hipDeviceCanAccessPeer / EnablePeerAccess.

On the MI250X node every GCD can reach every other over the fabric, so
``hipDeviceCanAccessPeer`` is uniformly true; what the API actually
gates is *kernel-level* direct access to a peer's ``hipMalloc`` memory
(the Fig. 8 experiments call it before launching copy kernels).
``hipMemcpyPeer`` works without it, as on real hardware.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..errors import PeerAccessError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..hardware.node import HardwareNode


class PeerApi:
    """Peer-access interface of the simulated runtime."""

    def __init__(self, node: "HardwareNode") -> None:
        self.node = node

    def can_access_peer(self, device_index: int, peer_index: int) -> bool:
        """``hipDeviceCanAccessPeer``: fabric reachability."""
        self.node.gcd(device_index)
        self.node.gcd(peer_index)
        return device_index != peer_index

    def enable_peer_access(self, device_index: int, peer_index: int) -> None:
        """``hipDeviceEnablePeerAccess``; errors if already enabled."""
        if device_index == peer_index:
            raise PeerAccessError("a device cannot peer with itself")
        if not self.node.gcd(device_index).enable_peer_access(peer_index):
            raise PeerAccessError(
                f"peer access {device_index}->{peer_index} already enabled "
                "(hipErrorPeerAccessAlreadyEnabled)"
            )

    def disable_peer_access(self, device_index: int, peer_index: int) -> None:
        """``hipDeviceDisablePeerAccess``; errors if not enabled."""
        if not self.node.gcd(device_index).disable_peer_access(peer_index):
            raise PeerAccessError(
                f"peer access {device_index}->{peer_index} was not enabled"
            )

    def enable_all_pairs(self) -> int:
        """Enable peer access between every GCD pair (benchmark setup).

        Returns the number of (ordered) pairs enabled.
        """
        enabled = 0
        indices = [g.index for g in self.node.topology.gcds()]
        for a in indices:
            for b in indices:
                if a != b and self.node.gcd(a).enable_peer_access(b):
                    enabled += 1
        return enabled

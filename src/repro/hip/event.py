"""HIP events for GPU-side timing.

The paper times ``hipMemcpyPeerAsync`` with the HIP Event API
(§V-A1): record an event before and after the operation on the same
stream, synchronize, and read the elapsed time.  :class:`HipEvent`
reproduces those semantics on the simulated clock — including the
rule that an event's timestamp is taken when the *stream* reaches it,
not when the host records it.
"""

from __future__ import annotations

import itertools
from typing import Generator

from ..errors import HipError
from ..sim.engine import SimEngine
from .stream import Stream

_event_ids = itertools.count()


class HipEvent:
    """``hipEvent_t`` equivalent."""

    def __init__(self, engine: SimEngine, *, name: str = "") -> None:
        self.engine = engine
        self.event_id = next(_event_ids)
        self.name = name or f"hipEvent{self.event_id}"
        self._timestamp: float | None = None
        self._pending = None  # completion Event of the recording marker

    @property
    def recorded(self) -> bool:
        """Whether the stream has reached the most recent record marker."""
        return self._timestamp is not None

    @property
    def timestamp(self) -> float:
        """Simulated time at which the stream reached the marker."""
        if self._timestamp is None:
            raise HipError(
                "hipErrorNotReady", f"event {self.name} not yet reached"
            )
        return self._timestamp

    def record(self, stream: Stream) -> None:
        """Enqueue a timestamp marker onto ``stream`` (hipEventRecord)."""
        self._timestamp = None

        def marker() -> Generator:
            self._timestamp = self.engine.now
            return
            yield  # pragma: no cover - makes this a generator

        self._pending = stream.enqueue(marker, label=self.name)

    def synchronize(self) -> Generator:
        """DES process: wait until the marker has executed."""
        if self._pending is None:
            raise HipError(
                "hipErrorInvalidHandle", f"event {self.name} never recorded"
            )
        if not self._pending.processed:
            yield self._pending

    def elapsed_since(self, start: "HipEvent") -> float:
        """Seconds between two reached events (hipEventElapsedTime)."""
        return self.timestamp - start.timestamp

"""Parameter sweeps.

The benchmark suites sweep transfer sizes (CommScope: 4 KiB–1 GiB,
peer tests: 256 B–8 GiB), device counts (1–8 GCDs) and partner counts
(2–8).  :class:`SizeSweep` and friends centralize those grids so every
figure uses exactly the ranges the paper states.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Iterator, Mapping, Sequence

from ..errors import BenchmarkError
from ..units import GiB, KiB, MiB, pow2_sizes


@dataclass(frozen=True)
class SizeSweep:
    """A power-of-two transfer-size grid."""

    start: int
    stop: int

    def __post_init__(self) -> None:
        if self.start <= 0 or self.stop < self.start:
            raise BenchmarkError(
                f"invalid sweep [{self.start}, {self.stop}]"
            )

    def sizes(self) -> list[int]:
        """The power-of-two sizes of this sweep, ascending."""
        return list(pow2_sizes(self.start, self.stop))

    def __iter__(self) -> Iterator[int]:
        return iter(self.sizes())

    def __len__(self) -> int:
        return len(self.sizes())


#: CommScope host-to-device sweep (paper §IV-A: "4 KB to 1 GB").
COMM_SCOPE_H2D = SizeSweep(4 * KiB, 1 * GiB)
#: CommScope peer-to-peer sweep (paper §V-A2: "256 bytes to 8 GB").
COMM_SCOPE_P2P = SizeSweep(256, 8 * GiB)
#: STREAM direct-access sweep (paper §V-B: "up to 8 GB").
STREAM_REMOTE = SizeSweep(1 * MiB, 8 * GiB)
#: OSU collective message size (paper Fig. 11/12: 1 MiB).
OSU_COLLECTIVE_BYTES = 1 * MiB
#: OSU point-to-point bandwidth message (paper Fig. 10: 1 GiB).
OSU_P2P_BYTES = 1 * GiB
#: Multi-GPU STREAM buffer size (paper §IV-C: N = 8 GB).  The
#: simulator's fluid model is size-invariant above the ramp, so the
#: default benchmark config uses 1 GiB per buffer for speed; the
#: figure driver accepts the paper's full 8 GB too.
MULTI_GPU_STREAM_BYTES = 1 * GiB
#: Partner counts for collective experiments (paper Fig. 11/12: 2–8).
PARTNER_COUNTS = tuple(range(2, 9))
#: GCD counts for the CPU-GPU scaling experiment (paper Fig. 5).
SCALING_GCD_COUNTS = (1, 2, 4, 8)


def grid(**axes: Sequence[Any]) -> Iterator[Mapping[str, Any]]:
    """Cartesian sweep over named axes.

    >>> list(grid(a=[1, 2], b=["x"]))
    [{'a': 1, 'b': 'x'}, {'a': 2, 'b': 'x'}]
    """
    if not axes:
        raise BenchmarkError("grid needs at least one axis")
    names = sorted(axes)
    for values in itertools.product(*(axes[n] for n in names)):
        yield dict(zip(names, values))

"""Calibration profile: the empirical constants of the performance model.

The simulator is mechanistic — links, engines, routes, fair sharing —
but mechanisms need efficiency constants, and those come from the
measurements the paper reports *in its text*.  Every field below cites
the statement it was calibrated to.  Changing a constant changes the
corresponding figure reproduction and nothing else; the benchmark
assertions in ``benchmarks/`` pin the shapes, so a mis-calibration is
caught immediately.

Units follow the paper: bandwidths in bytes/s with 1 GB/s = 1e9 B/s,
latencies in seconds.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Mapping

from ..errors import CalibrationError
from ..topology.link import LinkTier
from ..units import GiB, KiB, MiB, gbps, us


@dataclass(frozen=True)
class CalibrationProfile:
    """All empirical constants, with paper provenance.

    Construct via :meth:`default` (MI250X / ROCm 5.7 values) and adjust
    with :meth:`with_` for what-if studies.
    """

    # --- SDMA copy engines (paper §V-A2) --------------------------------
    #: Peak throughput of one SDMA engine.  "the SDMA engines [...] are
    #: tuned for PCIe-4.0 x16, and cannot utilize the full bandwidth of
    #: GPU-GPU Infinity Fabric" — measured plateau is 50 GB/s on dual
    #: and quad links (Fig. 6c / Fig. 7).
    sdma_engine_throughput: float = gbps(50.0)
    #: SDMA protocol efficiency on an xGMI link: 37–38 GB/s on a single
    #: 50 GB/s link (Fig. 6c) → ≈ 75.5 %.
    sdma_xgmi_efficiency: float = 0.755
    #: SDMA protocol efficiency on the CPU link: 28.3 GB/s of 36 GB/s
    #: (Fig. 2/3, pinned hipMemcpy) → ≈ 78.6 %.
    sdma_cpu_link_efficiency: float = 0.786

    # --- hipMemcpyPeer latency model (Fig. 6b) ----------------------------
    #: Lowest observed p2p latency: 8.7 µs (single-link pairs).
    p2p_latency_base: float = us(8.7)
    #: Added latency per hop beyond the first on the bandwidth-maximizing
    #: route; calibrated so the 3-hop pairs 1-7/3-5 land in the reported
    #: 17.8–18.2 µs window.
    p2p_latency_per_extra_hop: float = us(4.55)
    #: Engine-fanout setup cost of *direct* (one-hop) copies, by bundle
    #: tier: striping across a wider bundle costs more queue setup.
    #: Same-GPU quad pairs measure 10.5–10.8 µs, single-link pairs
    #: < 10 µs, so single carries no setup cost.  Routed (multi-hop)
    #: copies pay per-hop forwarding instead, not fanout setup.
    p2p_latency_tier_setup: Mapping[str, float] = field(
        default_factory=lambda: {
            "single": us(0.0),
            "dual": us(1.4),
            "quad": us(1.8),
            "cpu": us(1.0),
        }
    )
    #: Deterministic per-pair jitter amplitude (the matrix in Fig. 6b is
    #: not perfectly flat within a class); keeps values inside the
    #: reported class ranges (quad band width is 0.3 µs).
    p2p_latency_jitter: float = us(0.3)

    # --- GPU kernel direct (zero-copy) access ------------------------------
    #: Local HBM STREAM copy efficiency: 1400 GB/s of 1.6 TB/s (§V-B).
    hbm_stream_efficiency: float = 0.875
    #: Unidirectional kernel remote access over xGMI, fraction of the
    #: bottleneck link's per-direction peak.  Calibrated with Fig. 10's
    #: relation (SDMA-off MPI ≈ direct − 10–15 %, direct ≈ available
    #: bandwidth on single links).
    kernel_xgmi_uni_efficiency: float = 0.88
    #: Bidirectional kernel remote streaming, per direction: Fig. 9
    #: reports 43–44 % of the theoretical bidirectional peak for all
    #: three tiers.
    kernel_xgmi_bidir_efficiency: float = 0.435
    #: Unidirectional kernel zero-copy over the CPU link: 25.5 GB/s of
    #: 36 GB/s (Fig. 3, managed zero-copy) → ≈ 70.8 %.
    kernel_cpu_uni_efficiency: float = 0.708
    #: Below the 32 MB last-level cache, zero-copy tracks pinned-memcpy
    #: behaviour (Fig. 3): efficiency rises to the pinned value.
    kernel_cpu_cached_efficiency: float = 0.786
    #: The "32 MB L3 GPU cache" the paper invokes for the crossover.
    llc_bytes: int = 32 * MiB
    #: Kernel launch overhead (HIP, back-to-back launch+sync).
    kernel_launch_overhead: float = us(2.2)

    # --- CPU side (paper §II, §IV) -------------------------------------------
    #: DDR4 bandwidth of the socket (204.8 GB/s) split over 4 domains.
    dram_bw_per_numa: float = gbps(204.8 / 4)
    #: DDR memory latency (96 ns).
    dram_latency: float = 96e-9
    #: Socket-internal inter-NUMA fabric capacity; "much higher [...]
    #: compared to the bandwidth over the interconnect" (§IV-B) — high
    #: enough never to bind for CPU-GPU traffic.
    socket_fabric_bw: float = gbps(160.0)
    #: Aggregate Infinity Fabric port capacity of one NUMA domain (both
    #: directions summed).  "each NUMA domain on the CPU handling two
    #: Infinity Fabric links" (§IV-C): two same-domain GCDs do not
    #: outperform one (Fig. 4), so the port saturates at ≈ one GCD's
    #: bidirectional streaming throughput.
    numa_ifport_bw: float = gbps(45.0)

    # --- pageable-memory hipMemcpy (Fig. 3) -----------------------------------
    #: Peak efficiency of pageable (malloc) hipMemcpy relative to the
    #: CPU link: below pinned, "varying results when increasing the
    #: transfer size [...] non-predictable paging operations".
    pageable_efficiency: float = 0.62
    #: Relative amplitude of the deterministic size-dependent variation.
    pageable_jitter: float = 0.18
    #: Staging chunk for the pinned bounce buffer.
    pageable_chunk_bytes: int = 4 * MiB

    # --- managed memory / XNACK page migration (Fig. 3) -------------------------
    #: Migration granule.  ROCm migrates at small-page granularity; the
    #: observed 2.8 GB/s effective bandwidth is fault-overhead-bound.
    page_size: int = 4 * KiB
    #: Per-fault service time (GPU interrupt, driver, page-table
    #: update).  4 KiB / (1.32 µs + 4 KiB/28.3 GB/s) ≈ 2.8 GB/s — the
    #: paper's page-migration bandwidth.
    xnack_fault_service: float = us(1.32)
    #: Faults the driver can batch-service concurrently (prefetch-like
    #: coalescing for sequential access is modeled separately).
    xnack_fault_concurrency: int = 1

    #: Host-side single-threaded memcpy rate (pageable staging copies,
    #: hipMemcpyHostToHost).  A Zen 3 core streams ~12 GB/s per thread.
    host_memcpy_rate: float = gbps(12.0)

    # --- memcpy call overheads --------------------------------------------------
    #: Host-side latency of a hipMemcpy H2D/D2H call (driver + doorbell).
    memcpy_host_latency: float = us(10.0)
    #: Latency of an async enqueue (returns immediately; cost on stream).
    memcpy_async_enqueue: float = us(1.5)

    # --- MPI layer (paper §V-C, §VI) ----------------------------------------------
    #: GPU-aware MPI bandwidth relative to a direct copy kernel when
    #: SDMA is disabled: "10–15 % lower bandwidth than the direct
    #: peer-to-peer copy kernel" (Fig. 10) → factor 0.87.
    mpi_protocol_efficiency: float = 0.87
    #: One-time cost to exchange + map an IPC handle for a device
    #: buffer into the peer process (§VI: "memory mapping overhead").
    mpi_ipc_map_overhead: float = us(45.0)
    #: Per-message host-side MPI overhead (matching, progress engine,
    #: GPU-stream synchronisation in the Cray MPICH GPU pipeline).
    mpi_message_overhead: float = us(3.0)
    #: Rendezvous threshold: messages above switch to rendezvous.
    mpi_eager_threshold: int = 8 * KiB

    # --- RCCL layer (paper §VI) --------------------------------------------------------
    #: Per-ring-step launch/synchronisation overhead of the RCCL
    #: persistent kernel.  Calibrated so a two-rank single-pass ring
    #: collective at 1 MiB sits near (slightly above) the 17.4 µs
    #: analytical bound of §VI.
    rccl_step_overhead: float = us(3.6)
    #: Base one-time launch overhead per collective call (persistent
    #: kernel launch + cross-rank semaphore setup).
    rccl_launch_overhead: float = us(11.0)
    #: Pipeline chunk size for ring collectives.
    rccl_chunk_bytes: int = 128 * KiB
    #: Extra per-step latency of a *relayed* ring segment (a segment
    #: between GCDs with no direct link, routed through an intermediate
    #: die).  RCCL's greedy ring search produces such segments for some
    #: rank subsets — notably 7 of 8 GCDs — and none for the full node,
    #: which is the mechanism behind Fig. 12's 7→8 latency drop.
    rccl_relay_penalty: float = us(2.4)
    #: Bandwidth efficiency of a relayed ring segment relative to the
    #: direct kernel rate: the ring FIFO's flow control sustains fewer
    #: outstanding requests over the doubled round-trip.
    rccl_relay_efficiency: float = 0.7
    #: Bandwidth efficiency of RCCL's low-latency (LL) protocol, which
    #: interleaves a flag word with every data word — 50 % of the
    #: payload bandwidth.  RCCL picks LL for the single-producer
    #: Broadcast at the paper's 1 MiB size, which is why MPI's binomial
    #: tree beats RCCL broadcast (Fig. 11b) while RCCL wins every other
    #: collective.
    rccl_ll_efficiency: float = 0.5

    # --- misc -----------------------------------------------------------------------------
    #: Granularity floor for bandwidth ramps: fixed per-call latencies
    #: dominate below a few MiB, giving the Fig. 3/7 ramp shapes.
    min_transfer_bytes: int = 1

    # -------------------------------------------------------------------------

    def __post_init__(self) -> None:
        for name, lo, hi in (
            ("sdma_xgmi_efficiency", 0.0, 1.0),
            ("sdma_cpu_link_efficiency", 0.0, 1.0),
            ("hbm_stream_efficiency", 0.0, 1.0),
            ("kernel_xgmi_uni_efficiency", 0.0, 1.0),
            ("kernel_xgmi_bidir_efficiency", 0.0, 1.0),
            ("kernel_cpu_uni_efficiency", 0.0, 1.0),
            ("kernel_cpu_cached_efficiency", 0.0, 1.0),
            ("pageable_efficiency", 0.0, 1.0),
            ("mpi_protocol_efficiency", 0.0, 1.0),
        ):
            value = getattr(self, name)
            if not (lo < value <= hi):
                raise CalibrationError(f"{name}={value} outside ({lo}, {hi}]")
        for name in (
            "sdma_engine_throughput",
            "p2p_latency_base",
            "dram_bw_per_numa",
            "socket_fabric_bw",
            "numa_ifport_bw",
            "xnack_fault_service",
            "rccl_step_overhead",
        ):
            if getattr(self, name) <= 0:
                raise CalibrationError(f"{name} must be positive")
        if self.page_size <= 0 or self.page_size & (self.page_size - 1):
            raise CalibrationError("page_size must be a positive power of two")
        if self.llc_bytes <= 0:
            raise CalibrationError("llc_bytes must be positive")

    @classmethod
    def default(cls) -> "CalibrationProfile":
        """MI250X / ROCm 5.7 profile — the paper's testbed."""
        return cls()

    def with_(self, **changes: object) -> "CalibrationProfile":
        """Copy of the profile with the given fields replaced."""
        return replace(self, **changes)  # type: ignore[arg-type]

    def fingerprint(self) -> str:
        """Stable content hash over every calibration constant.

        Floats are hashed via :meth:`float.hex`, so any change to any
        constant — however small — yields a different fingerprint.
        The result cache (:mod:`repro.runner`) folds this into its
        point keys, which is how perturbing one constant invalidates
        exactly the simulation points that used this profile.
        """
        import dataclasses
        import hashlib

        def encode(value: object) -> str:
            if isinstance(value, float):
                return value.hex()
            if isinstance(value, Mapping):
                inner = ",".join(
                    f"{key}={encode(value[key])}" for key in sorted(value)
                )
                return "{" + inner + "}"
            return repr(value)

        parts = [
            f"{field_.name}={encode(getattr(self, field_.name))}"
            for field_ in dataclasses.fields(self)
        ]
        return hashlib.sha256("\n".join(parts).encode()).hexdigest()

    # -- derived rates ------------------------------------------------------

    def sdma_cap_for_tier(self, tier: LinkTier) -> float:
        """Rate cap of an SDMA copy whose bottleneck link has ``tier``.

        ``min(engine throughput, protocol efficiency × link peak)``:
        reproduces the 37–38 / 50 / 50 GB/s tiers of Fig. 6c and the
        28.3 GB/s pinned H2D peak of Fig. 3.
        """
        if tier is LinkTier.CPU:
            protocol = self.sdma_cpu_link_efficiency
        else:
            protocol = self.sdma_xgmi_efficiency
        return min(
            self.sdma_engine_throughput, protocol * tier.peak_unidirectional
        )

    def kernel_remote_cap(
        self,
        tier: LinkTier,
        *,
        bidirectional: bool,
        working_set: int | None = None,
        cacheable: bool = False,
    ) -> float:
        """Per-direction rate cap for kernel (zero-copy) remote access.

        ``bidirectional`` selects the Fig. 8/9 regime (43–44 % of peak
        per direction) versus the Fig. 10 direct-copy regime.

        ``cacheable`` marks accesses the GPU may cache.  Coherent
        memory on MI250X is *never* cacheable (§II-C), so on the
        default profile the LLC boost below never fires for
        pinned/managed zero-copy — their ceiling stays at 25.5 GB/s
        while pinned hipMemcpy reaches 28.3 GB/s, reproducing Fig. 3's
        separation at large sizes.  A cache-coherent-fabric what-if
        (MI300A-style) can pass ``cacheable=True``: LLC-resident
        working sets then stream at the engine-level efficiency.
        """
        if tier is LinkTier.CPU:
            eff = self.kernel_cpu_uni_efficiency
            if (
                cacheable
                and not bidirectional
                and working_set is not None
                and working_set <= self.llc_bytes
            ):
                eff = self.kernel_cpu_cached_efficiency
            return eff * tier.peak_unidirectional
        eff = (
            self.kernel_xgmi_bidir_efficiency
            if bidirectional
            else self.kernel_xgmi_uni_efficiency
        )
        return eff * tier.peak_unidirectional

    def hbm_stream_bw(self, hbm_peak: float) -> float:
        """Achievable STREAM bandwidth of local HBM (read+write counted)."""
        return self.hbm_stream_efficiency * hbm_peak

    def page_migration_bw(self, link_rate: float | None = None) -> float:
        """Effective page-migration bandwidth (the 2.8 GB/s of Fig. 3)."""
        rate = link_rate if link_rate is not None else self.sdma_cap_for_tier(LinkTier.CPU)
        per_page = self.xnack_fault_service + self.page_size / rate
        return self.page_size / per_page

    def p2p_latency(
        self, num_hops: int, direct_tier: LinkTier | None, pair_jitter: float = 0.0
    ) -> float:
        """hipMemcpyPeer small-transfer latency along a routed path.

        ``direct_tier`` is the bundle tier for one-hop copies (fanout
        setup applies) and must be ``None`` for routed multi-hop copies
        (per-hop forwarding applies instead).  ``pair_jitter`` ∈ [0, 1)
        scales the deterministic jitter term.
        """
        if num_hops < 1:
            raise CalibrationError("p2p latency needs at least one hop")
        if (num_hops == 1) != (direct_tier is not None):
            raise CalibrationError(
                "direct_tier must be given exactly for one-hop copies"
            )
        setup = 0.0
        if direct_tier is not None:
            tier_key = direct_tier.name.lower()
            try:
                setup = self.p2p_latency_tier_setup[tier_key]
            except KeyError:
                raise CalibrationError(
                    f"no tier setup cost for {tier_key!r}"
                ) from None
        if not 0.0 <= pair_jitter < 1.0:
            raise CalibrationError("pair_jitter must be in [0, 1)")
        return (
            self.p2p_latency_base
            + setup
            + (num_hops - 1) * self.p2p_latency_per_extra_hop
            + pair_jitter * self.p2p_latency_jitter
        )

    def describe(self) -> str:
        """Multi-line summary of the key calibrated rates."""
        lines = ["CalibrationProfile (MI250X / ROCm 5.7 defaults):"]
        lines.append(
            f"  SDMA: engine {self.sdma_engine_throughput/1e9:.0f} GB/s, "
            f"xGMI eff {self.sdma_xgmi_efficiency:.1%}, "
            f"CPU-link eff {self.sdma_cpu_link_efficiency:.1%}"
        )
        lines.append(
            f"  kernel access: xGMI uni {self.kernel_xgmi_uni_efficiency:.1%} "
            f"/ bidir {self.kernel_xgmi_bidir_efficiency:.1%}/dir, "
            f"CPU uni {self.kernel_cpu_uni_efficiency:.1%}"
        )
        lines.append(
            f"  HBM STREAM eff {self.hbm_stream_efficiency:.1%}; "
            f"LLC {self.llc_bytes // MiB} MiB"
        )
        lines.append(
            f"  page migration: {self.page_migration_bw()/1e9:.2f} GB/s "
            f"({self.page_size // KiB} KiB pages, "
            f"{self.xnack_fault_service*1e6:.2f} us/fault)"
        )
        lines.append(
            f"  NUMA IF port {self.numa_ifport_bw/1e9:.0f} GB/s; "
            f"DRAM {self.dram_bw_per_numa*4/1e9:.1f} GB/s socket"
        )
        return "\n".join(lines)


#: Shared default profile.  Immutable, so sharing is safe.
DEFAULT_CALIBRATION = CalibrationProfile.default()


# -- profile serialization --------------------------------------------------

#: Schema tag of serialized calibration profiles.
CALIBRATION_SCHEMA = "repro-calibration/1"

_PROFILE_FIELDS = {"schema", "fingerprint", "provenance", "constants"}
_PROVENANCE_FIELDS = {
    "source",
    "telemetry",
    "telemetry_fingerprint",
    "fitted_fields",
    "initial_rms",
    "final_rms",
    "evaluations",
}


def profile_to_json(
    profile: CalibrationProfile,
    *,
    provenance: Mapping[str, object] | None = None,
) -> dict:
    """Serialize a profile (every constant) plus optional provenance.

    ``provenance`` records where the constants came from — ``source``
    is ``"default"`` for the built-in MI250X profile or
    ``"fitted-from-telemetry"`` for an auto-calibrated one, in which
    case the telemetry fingerprint and residual summary ride along so
    reports can show *why* the model predicts what it predicts.
    """
    import dataclasses

    constants: dict[str, object] = {}
    for field_ in dataclasses.fields(profile):
        value = getattr(profile, field_.name)
        if isinstance(value, Mapping):
            value = {key: value[key] for key in sorted(value)}
        constants[field_.name] = value
    entry: dict[str, object] = {
        "schema": CALIBRATION_SCHEMA,
        "fingerprint": profile.fingerprint(),
        "constants": constants,
    }
    if provenance is not None:
        unknown = set(provenance) - _PROVENANCE_FIELDS
        if unknown:
            raise CalibrationError(
                f"unknown provenance field(s): {', '.join(sorted(unknown))}"
            )
        entry["provenance"] = dict(provenance)
    return entry


def profile_from_json(entry: object) -> tuple[CalibrationProfile, dict]:
    """Parse a serialized profile; returns ``(profile, provenance)``.

    Validation is strict (unknown keys rejected, schema tag required)
    and the stored fingerprint must match the reconstructed profile's,
    so a hand-edited constant that forgot to drop the fingerprint is
    caught instead of silently keying the result cache wrong.
    """
    import dataclasses

    if not isinstance(entry, Mapping):
        raise CalibrationError(
            f"calibration profile must be a JSON object, got {type(entry).__name__}"
        )
    unknown = set(entry) - _PROFILE_FIELDS
    if unknown:
        raise CalibrationError(
            f"unknown calibration profile field(s): {', '.join(sorted(unknown))}"
        )
    schema = entry.get("schema")
    if schema != CALIBRATION_SCHEMA:
        raise CalibrationError(
            f"unsupported calibration schema {schema!r} "
            f"(expected {CALIBRATION_SCHEMA!r})"
        )
    constants = entry.get("constants")
    if not isinstance(constants, Mapping):
        raise CalibrationError("calibration profile needs a 'constants' object")
    known = {field_.name for field_ in dataclasses.fields(CalibrationProfile)}
    unknown = set(constants) - known
    if unknown:
        raise CalibrationError(
            f"unknown calibration constant(s): {', '.join(sorted(unknown))}"
        )
    profile = CalibrationProfile(**dict(constants))
    declared = entry.get("fingerprint")
    if declared is not None and declared != profile.fingerprint():
        raise CalibrationError(
            "calibration fingerprint mismatch: profile constants were "
            "edited without refreshing (or removing) the stored fingerprint"
        )
    provenance = entry.get("provenance", {})
    if not isinstance(provenance, Mapping):
        raise CalibrationError("calibration provenance must be a JSON object")
    unknown = set(provenance) - _PROVENANCE_FIELDS
    if unknown:
        raise CalibrationError(
            f"unknown provenance field(s): {', '.join(sorted(unknown))}"
        )
    return profile, dict(provenance)


def dump_profile(
    profile: CalibrationProfile,
    path: object,
    *,
    provenance: Mapping[str, object] | None = None,
) -> None:
    """Write a profile as pretty-printed JSON to ``path``."""
    import json
    import pathlib

    text = json.dumps(
        profile_to_json(profile, provenance=provenance), indent=2, sort_keys=True
    )
    pathlib.Path(path).write_text(text + "\n", encoding="utf-8")


def load_profile(path: object) -> tuple[CalibrationProfile, dict]:
    """Load a profile written by :func:`dump_profile`."""
    import json
    import pathlib

    try:
        entry = json.loads(pathlib.Path(path).read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise CalibrationError(f"calibration profile is not valid JSON: {exc}")
    return profile_from_json(entry)

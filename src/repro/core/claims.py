"""The paper's quantitative claims as a machine-readable registry.

Every claim the reproduction is accountable to, with its source
section, the artifact that exhibits it, and the test that asserts it.
``python -m repro claims`` prints this table; the test suite checks
that every referenced artifact and test exists, so the registry cannot
drift from the code.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class PaperClaim:
    """One quantitative statement from the paper."""

    claim_id: str
    section: str
    statement: str
    artifact: str  # figure/table id exhibiting it
    test: str  # test node asserting it


CLAIMS: tuple[PaperClaim, ...] = (
    PaperClaim(
        "pinned-peak",
        "§IV-A",
        "Maximum H2D bandwidth of 28.3 GB/s with explicit transfer from pinned memory",
        "fig02",
        "tests/integration/test_paper_findings.py::TestSectionIV_CpuGpu::test_pinned_peak_28_3",
    ),
    PaperClaim(
        "zerocopy-peak",
        "§IV-A",
        "Managed zero-copy access achieves a highest bandwidth of 25.5 GB/s",
        "fig02",
        "tests/integration/test_paper_findings.py::TestSectionIV_CpuGpu::test_managed_zerocopy_peak_25_5",
    ),
    PaperClaim(
        "migration-rate",
        "§IV-A",
        "Managed memory with page migration only achieved 2.8 GB/s",
        "fig02",
        "tests/integration/test_paper_findings.py::TestSectionIV_CpuGpu::test_page_migration_2_8",
    ),
    PaperClaim(
        "llc-crossover",
        "§IV-A",
        "Zero-copy approximates pinned up to 32 MB, after which pinned reaches higher values",
        "fig03",
        "tests/integration/test_paper_findings.py::TestSectionIV_CpuGpu::test_zerocopy_tracks_pinned_up_to_32mb",
    ),
    PaperClaim(
        "numa-insensitive",
        "§IV-B",
        "No bandwidth degradation for non-optimal NUMA node / GCD combinations",
        "fig03",
        "tests/integration/test_paper_findings.py::TestSectionIV_CpuGpu::test_numa_placement_no_degradation",
    ),
    PaperClaim(
        "same-gpu-flat",
        "§IV-C",
        "Two GCDs of the same GPU provide no bandwidth improvement over a single GCD",
        "fig04",
        "tests/integration/test_paper_findings.py::TestSectionIV_CpuGpu::test_fig4_same_gpu_does_not_scale",
    ),
    PaperClaim(
        "eight-equals-four",
        "§IV-C",
        "Eight GCDs do not improve aggregated bandwidth compared to four",
        "fig05",
        "tests/integration/test_paper_findings.py::TestSectionIV_CpuGpu::test_fig5_eight_equals_four",
    ),
    PaperClaim(
        "two-hop-mesh",
        "§V-A1",
        "The shortest path between any two GCDs never exceeds two hops",
        "fig06",
        "tests/topology/test_routing.py::TestShortestPath::test_fig6a_two_hop_maximum",
    ),
    PaperClaim(
        "latency-window",
        "§V-A1",
        "Peer-to-peer latency varies within 8.7-18.2 us",
        "fig06",
        "tests/integration/test_paper_findings.py::TestSectionV_PeerToPeer::test_fig6b_latency_window",
    ),
    PaperClaim(
        "single-link-fast",
        "§V-A1",
        "Exactly the single-link pairs 0-2, 1-3, 1-5, 3-7, 4-6, 5-7 are below 10 us",
        "fig06",
        "tests/integration/test_paper_findings.py::TestSectionV_PeerToPeer::test_fig6b_single_link_pairs_below_10",
    ),
    PaperClaim(
        "detour-outliers",
        "§V-A1",
        "Pairs 1-7 and 3-5 are 17.8-18.2 us outliers: hipMemcpyPeer takes the bandwidth-maximizing 3-hop route",
        "fig06",
        "tests/integration/test_paper_findings.py::TestSectionV_PeerToPeer::test_fig6b_detour_outliers",
    ),
    PaperClaim(
        "sdma-two-tiers",
        "§V-A2",
        "Peer bandwidth shows two values (50 and 37-38 GB/s), not the theoretical three tiers",
        "fig06",
        "tests/integration/test_paper_findings.py::TestSectionV_PeerToPeer::test_fig6c_two_bandwidth_tiers",
    ),
    PaperClaim(
        "link-utilization",
        "§V-A2",
        "hipMemcpyPeer utilization is 75 % / 50 % / 25 % of single/dual/quad links",
        "fig07",
        "tests/integration/test_paper_findings.py::TestSectionV_PeerToPeer::test_fig7_utilization_75_50_25",
    ),
    PaperClaim(
        "hbm-reference",
        "§V-B",
        "Local STREAM copy reaches 1400 GB/s — 87 % of the 1.6 TB/s HBM peak",
        "fig08",
        "tests/integration/test_paper_findings.py::TestSectionV_PeerToPeer::test_local_stream_1400",
    ),
    PaperClaim(
        "kernel-43-44",
        "§V-B",
        "Direct kernel access achieves 43-44 % of theoretical peak on all three link tiers",
        "fig09",
        "tests/integration/test_paper_findings.py::TestSectionV_PeerToPeer::test_fig9_three_tiers_at_43_44_percent",
    ),
    PaperClaim(
        "mpi-sdma-cap",
        "§V-C",
        "SDMA-enabled MPI stays at/below 50 GB/s — 50 % of a dual and 25 % of a quad link",
        "fig10",
        "tests/integration/test_paper_findings.py::TestSectionV_PeerToPeer::test_fig10_sdma_caps_mpi_below_50",
    ),
    PaperClaim(
        "mpi-overhead",
        "§V-C",
        "SDMA-disabled MPI is 10-15 % below the direct peer-to-peer copy kernel",
        "fig10",
        "tests/integration/test_paper_findings.py::TestSectionV_PeerToPeer::test_fig10_sdma_off_10_15_below_direct",
    ),
    PaperClaim(
        "non-neighbor-parity",
        "§V-C",
        "Transfers to non-neighbor GCDs match same-bottleneck neighbors",
        "fig10",
        "tests/integration/test_paper_findings.py::TestSectionV_PeerToPeer::test_fig10_non_neighbors_match_neighbors",
    ),
    PaperClaim(
        "rccl-beats-mpi",
        "§VI",
        "RCCL is more efficient than MPI for all tested collectives except broadcast",
        "fig11",
        "tests/integration/test_paper_findings.py::TestSectionVI_Collectives::test_rccl_beats_mpi_except_broadcast",
    ),
    PaperClaim(
        "two-thread-bound",
        "§VI",
        "Two-thread all-to-all collectives come close to the 17.4 us analytical bound",
        "fig12",
        "tests/integration/test_paper_findings.py::TestSectionVI_Collectives::test_two_thread_all_to_all_near_bound",
    ),
    PaperClaim(
        "seven-eight-drop",
        "§VI",
        "Reduce, Broadcast and AllReduce latency drops from 7 to 8 threads",
        "fig12",
        "tests/integration/test_paper_findings.py::TestSectionVI_Collectives::test_seven_to_eight_drop",
    ),
)


def format_claims() -> str:
    """The claims table rendered as aligned text."""
    lines = []
    for claim in CLAIMS:
        lines.append(f"[{claim.claim_id}] ({claim.section}, {claim.artifact})")
        lines.append(f"    {claim.statement}")
        lines.append(f"    asserted by: {claim.test}")
    lines.append(f"{len(CLAIMS)} claims tracked")
    return "\n".join(lines)

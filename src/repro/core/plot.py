"""ASCII plotting for terminal reports.

The environment has no plotting stack, and the paper's figures are
log-x bandwidth curves, grouped bars and matrices — all of which
render fine as text.  These helpers are used by the CLI's ``--plot``
mode and the examples; the core reports stay tabular.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

from ..errors import BenchmarkError

#: Glyph ramp for heat shading, light to dark.
_SHADES = " .:-=+*#%@"


def ascii_series(
    xs: Sequence[float],
    series: Mapping[str, Sequence[float]],
    *,
    width: int = 64,
    height: int = 16,
    log_x: bool = True,
    y_label: str = "",
) -> str:
    """Multi-series scatter/line chart with one glyph per series.

    ``xs`` is shared by all series (missing points: pass ``nan``).
    X is log-scaled by default — the paper's size sweeps span 4 KiB to
    8 GiB.
    """
    if not xs or not series:
        raise BenchmarkError("ascii_series needs data")
    for name, values in series.items():
        if len(values) != len(xs):
            raise BenchmarkError(f"series {name!r} length mismatch")
    glyphs = "ox+*sd^v"
    if len(series) > len(glyphs):
        raise BenchmarkError(f"at most {len(glyphs)} series supported")

    def x_pos(x: float) -> int:
        if log_x:
            lo, hi = math.log(min(xs)), math.log(max(xs))
            value = math.log(x)
        else:
            lo, hi = min(xs), max(xs)
            value = x
        if hi == lo:
            return 0
        return round((value - lo) / (hi - lo) * (width - 1))

    finite = [
        v
        for values in series.values()
        for v in values
        if not math.isnan(v)
    ]
    if not finite:
        raise BenchmarkError("no finite values to plot")
    y_max = max(finite)
    y_min = min(0.0, min(finite))

    def y_pos(y: float) -> int:
        if y_max == y_min:
            return height - 1
        return round((y - y_min) / (y_max - y_min) * (height - 1))

    grid = [[" "] * width for _ in range(height)]
    for glyph, (name, values) in zip(glyphs, series.items()):
        for x, y in zip(xs, values):
            if math.isnan(y):
                continue
            row = height - 1 - y_pos(y)
            grid[row][x_pos(x)] = glyph

    lines = []
    if y_label:
        lines.append(f"{y_label} (max {y_max:.4g})")
    for index, row in enumerate(grid):
        marker = f"{y_max:9.3g} |" if index == 0 else (
            f"{y_min:9.3g} |" if index == height - 1 else "          |"
        )
        lines.append(marker + "".join(row))
    lines.append("          +" + "-" * width)
    lines.append(
        f"           {min(xs):.3g}"
        + " " * max(1, width - 20)
        + f"{max(xs):.3g}"
        + ("  (log x)" if log_x else "")
    )
    legend = "  ".join(
        f"{glyph}={name}" for glyph, name in zip(glyphs, series.keys())
    )
    lines.append("           " + legend)
    return "\n".join(lines)


def ascii_bars(
    rows: Mapping[str, float],
    *,
    width: int = 48,
    unit_scale: float = 1e9,
    unit: str = "GB/s",
) -> str:
    """Horizontal bar chart (the Fig. 2/9-style summaries)."""
    if not rows:
        raise BenchmarkError("ascii_bars needs data")
    peak = max(rows.values())
    if peak <= 0:
        raise BenchmarkError("bar values must include a positive maximum")
    label_width = max(len(label) for label in rows)
    lines = []
    for label, value in rows.items():
        bar = "#" * max(1, round(value / peak * width)) if value > 0 else ""
        lines.append(
            f"{label:<{label_width}s} |{bar:<{width}s}| "
            f"{value / unit_scale:8.2f} {unit}"
        )
    return "\n".join(lines)


def ascii_heatmap(
    values: Mapping[tuple[int, int], float],
    *,
    invert: bool = False,
) -> str:
    """Shaded GCD×GCD matrix (Fig. 6-style), darker = larger.

    ``invert=True`` makes darker = smaller (useful for latency, where
    small is good and should stand out lightly).
    """
    if not values:
        raise BenchmarkError("ascii_heatmap needs data")
    indices = sorted({i for pair in values for i in pair})
    lo = min(values.values())
    hi = max(values.values())
    span = hi - lo

    def shade(value: float) -> str:
        fraction = 0.0 if span == 0 else (value - lo) / span
        if invert:
            fraction = 1.0 - fraction
        index = min(len(_SHADES) - 1, int(fraction * (len(_SHADES) - 1) + 0.5))
        return _SHADES[index]

    lines = ["    " + " ".join(f"{d}" for d in indices)]
    for src in indices:
        cells = []
        for dst in indices:
            if (src, dst) in values:
                cells.append(shade(values[(src, dst)]))
            else:
                cells.append("·")
        lines.append(f"  {src} " + " ".join(cells))
    lines.append(f"  scale: {lo:.3g} '{_SHADES[0]}' .. {hi:.3g} '{_SHADES[-1]}'")
    return "\n".join(lines)

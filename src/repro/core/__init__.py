"""The paper's primary contribution: the test & evaluation methodology.

- :mod:`repro.core.calibration` — every empirical constant of the
  performance model, each traced to the paper statement it reproduces.
- :mod:`repro.core.bounds` — theoretical peaks and the collective
  latency lower bounds of §VI.
- :mod:`repro.core.experiment` / :mod:`repro.core.sweep` — experiment
  descriptions, runners and parameter sweeps.
- :mod:`repro.core.analysis` — utilization ratios, bandwidth-tier
  clustering, outlier detection.
- :mod:`repro.core.report` — paper-style tables and series.
- :mod:`repro.core.registry` — Tables I and II as data.
- :mod:`repro.core.methodology` — the three-step methodology driver.
"""

from .calibration import CalibrationProfile, DEFAULT_CALIBRATION

__all__ = ["CalibrationProfile", "DEFAULT_CALIBRATION"]

"""Theoretical peaks and analytical bounds (paper §II-A, §VI).

Everything the paper compares measurements against:

- link-tier peak bandwidths (50/100/200 GB/s per direction GCD-GCD,
  36 GB/s per direction CPU-GCD);
- aggregate CPU-GPU bandwidth for a GCD placement (Fig. 4/5's
  "theoretical bandwidth" line);
- HBM peak (1.6 TB/s per GCD);
- the collective latency lower bounds of §VI: single-round
  collectives ≥ min p2p latency (8.7 µs), dual-round ≥ twice that
  (17.4 µs).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..errors import BenchmarkError
from ..topology.link import LinkTier
from ..topology.node import NodeTopology
from ..topology.routing import bandwidth_maximizing_path
from .calibration import CalibrationProfile, DEFAULT_CALIBRATION

#: Collectives with one communication pass (§VI).
SINGLE_ROUND_COLLECTIVES = frozenset({"reduce", "broadcast"})
#: Collectives with two communication passes (§VI).
DUAL_ROUND_COLLECTIVES = frozenset({"allreduce", "reduce_scatter", "allgather"})


def link_peak_unidirectional(tier: LinkTier) -> float:
    """Per-direction peak of a link tier (bytes/s)."""
    return tier.peak_unidirectional


def link_peak_bidirectional(tier: LinkTier) -> float:
    """Bidirectional peak of a link tier (bytes/s)."""
    return tier.peak_bidirectional


def pair_peak_unidirectional(topology: NodeTopology, src: int, dst: int) -> float:
    """Peak achievable per-direction bandwidth between two GCDs.

    The bottleneck link capacity of the bandwidth-maximizing route —
    the reference line of Fig. 6c / Fig. 10.
    """
    if src == dst:
        return topology.gcd(src).hbm_peak_bw
    return bandwidth_maximizing_path(topology, src, dst).bottleneck_capacity


def cpu_gpu_peak_bidirectional(
    topology: NodeTopology, placement: Sequence[int]
) -> float:
    """Theoretical total bidirectional CPU-GPU bandwidth of a placement.

    Each selected GCD contributes its own 36+36 GB/s CPU link — the
    reference line of Fig. 4 and Fig. 5 (which is *not* reachable when
    GCDs share a NUMA port; that is the measured finding).
    """
    if not placement:
        raise BenchmarkError("placement must select at least one GCD")
    total = 0.0
    for gcd in placement:
        total += topology.cpu_link_of_gcd(gcd).capacity_bidirectional
    return total


def hbm_peak(topology: NodeTopology, gcd_index: int) -> float:
    """HBM2e peak of one GCD (1.6 TB/s)."""
    return topology.gcd(gcd_index).hbm_peak_bw


@dataclass(frozen=True)
class CollectiveLatencyBound:
    """The §VI analytical lower bound for a collective."""

    collective: str
    rounds: int
    bound: float

    def describe(self) -> str:
        """One-line rendering of the bound (used in Fig. 12 notes)."""
        return (
            f"{self.collective}: ≥ {self.bound * 1e6:.1f} us "
            f"({self.rounds} round(s))"
        )


def min_p2p_latency(calibration: CalibrationProfile = DEFAULT_CALIBRATION) -> float:
    """Lowest GCD-GCD latency in the Fig. 6b matrix (8.7 µs)."""
    return calibration.p2p_latency_base


def collective_latency_bound(
    collective: str,
    calibration: CalibrationProfile = DEFAULT_CALIBRATION,
) -> CollectiveLatencyBound:
    """§VI: single-round ≥ 8.7 µs, dual-round ≥ 17.4 µs."""
    name = collective.lower()
    if name in SINGLE_ROUND_COLLECTIVES:
        rounds = 1
    elif name in DUAL_ROUND_COLLECTIVES:
        rounds = 2
    else:
        raise BenchmarkError(f"unknown collective {collective!r}")
    base = min_p2p_latency(calibration)
    return CollectiveLatencyBound(name, rounds, rounds * base)


def utilization(measured: float, theoretical: float) -> float:
    """Measured/theoretical ratio, as the paper's percentage labels."""
    if theoretical <= 0:
        raise BenchmarkError("theoretical peak must be positive")
    if measured < 0:
        raise BenchmarkError("measured value must be non-negative")
    return measured / theoretical

"""Experiment abstractions: descriptions, results, and the runner.

The paper's methodology (§III) is a structured sweep over
(link, interface, allocation, size) combinations.  These classes give
that structure a machine-readable form: an :class:`Experiment` binds a
measurement function to its metadata (which paper artifact it
reproduces, what the parameters were), and an :class:`ExperimentResult`
carries the series plus provenance, ready for the report layer and for
EXPERIMENTS.md.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Sequence

from ..errors import BenchmarkError


@dataclass(frozen=True)
class Measurement:
    """A single measured point.

    ``x`` is the swept coordinate (transfer size, GCD count, partner
    count…); ``value`` the measured quantity; ``unit`` its unit
    (``"GB/s"`` or ``"us"``); ``meta`` free-form labels (interface,
    placement, target GCD…).
    """

    x: float
    value: float
    unit: str
    meta: Mapping[str, Any] = field(default_factory=dict)


@dataclass
class ExperimentResult:
    """All measurements of one experiment run."""

    experiment_id: str
    title: str
    measurements: list[Measurement] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)
    wall_seconds: float = 0.0

    def add(
        self, x: float, value: float, unit: str, **meta: Any
    ) -> Measurement:
        """Record one measurement and return it."""
        m = Measurement(x, value, unit, meta)
        self.measurements.append(m)
        return m

    def note(self, text: str) -> None:
        """Attach a free-form annotation to the result."""
        self.notes.append(text)

    def series(self, **filters: Any) -> list[Measurement]:
        """Measurements whose meta matches all ``filters``."""
        out = []
        for m in self.measurements:
            if all(m.meta.get(k) == v for k, v in filters.items()):
                out.append(m)
        return out

    def values(self, **filters: Any) -> list[float]:
        """Measured values whose meta matches the filters."""
        return [m.value for m in self.series(**filters)]

    def xs(self, **filters: Any) -> list[float]:
        """Swept coordinates whose meta matches the filters."""
        return [m.x for m in self.series(**filters)]

    def peak(self, **filters: Any) -> Measurement:
        """Highest-valued measurement matching the filters."""
        candidates = self.series(**filters)
        if not candidates:
            raise BenchmarkError(
                f"no measurements match {filters!r} in {self.experiment_id}"
            )
        return max(candidates, key=lambda m: m.value)

    def labels(self, key: str) -> list[Any]:
        """Distinct meta values for ``key``, in first-seen order."""
        seen: list[Any] = []
        for m in self.measurements:
            if key in m.meta and m.meta[key] not in seen:
                seen.append(m.meta[key])
        return seen

    def canonical(self) -> tuple:
        """Order-sensitive, wall-clock-free view for exact comparison.

        Two runs of the same deterministic experiment — serial,
        parallel, or replayed from the result cache — must compare
        equal under this view; only ``wall_seconds`` (host timing) is
        excluded.
        """
        return (
            self.experiment_id,
            self.title,
            tuple(
                (m.x, m.value, m.unit, tuple(sorted(m.meta.items())))
                for m in self.measurements
            ),
            tuple(self.notes),
        )

    def __len__(self) -> int:
        return len(self.measurements)


@dataclass(frozen=True)
class Experiment:
    """A reproducible experiment bound to a paper artifact."""

    experiment_id: str  # e.g. "fig03"
    title: str
    paper_artifact: str  # e.g. "Figure 3"
    runner: Callable[..., ExperimentResult]
    default_params: Mapping[str, Any] = field(default_factory=dict)

    def run(self, **overrides: Any) -> ExperimentResult:
        """Execute the runner with defaults merged under overrides."""
        params = dict(self.default_params)
        params.update(overrides)
        started = time.perf_counter()
        result = self.runner(**params)
        result.wall_seconds = time.perf_counter() - started
        if result.experiment_id != self.experiment_id:
            raise BenchmarkError(
                f"runner returned id {result.experiment_id!r}, "
                f"expected {self.experiment_id!r}"
            )
        return result


class ExperimentSuite:
    """Registry of experiments keyed by id (the per-figure drivers)."""

    def __init__(self) -> None:
        self._experiments: dict[str, Experiment] = {}

    def register(self, experiment: Experiment) -> Experiment:
        """Add an experiment; duplicate ids are rejected."""
        if experiment.experiment_id in self._experiments:
            raise BenchmarkError(
                f"duplicate experiment id {experiment.experiment_id!r}"
            )
        self._experiments[experiment.experiment_id] = experiment
        return experiment

    def get(self, experiment_id: str) -> Experiment:
        """Look up an experiment by id."""
        try:
            return self._experiments[experiment_id]
        except KeyError:
            raise BenchmarkError(
                f"unknown experiment {experiment_id!r}; known: "
                f"{sorted(self._experiments)}"
            ) from None

    def ids(self) -> Sequence[str]:
        """Sorted registered experiment ids."""
        return sorted(self._experiments)

    def run_all(self, **overrides: Any) -> dict[str, ExperimentResult]:
        """Run every experiment; returns ``{id: result}``."""
        return {eid: self.get(eid).run(**overrides) for eid in self.ids()}

    def __len__(self) -> int:
        return len(self._experiments)

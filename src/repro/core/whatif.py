"""What-if scenarios: named variants of the node for ablation studies.

Each scenario returns a ``(topology, calibration, description)``
triple that the benchmark suites accept, isolating exactly one design
parameter of the system.  The ablation benchmarks in
``benchmarks/test_ablations.py`` run the affected experiment under the
baseline and the variant and report the delta — quantifying the design
choices DESIGN.md calls out.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..errors import BenchmarkError
from ..topology.node import NodeTopology
from ..topology.presets import dense_hive_node, frontier_node
from ..units import gbps, us
from .calibration import CalibrationProfile, DEFAULT_CALIBRATION


@dataclass(frozen=True)
class Scenario:
    """One named what-if configuration."""

    name: str
    topology: NodeTopology
    calibration: CalibrationProfile
    description: str


def baseline() -> Scenario:
    """The paper's testbed: Fig. 1 topology, MI250X calibration."""
    return Scenario(
        "baseline",
        frontier_node(),
        DEFAULT_CALIBRATION,
        "Fig. 1 MI250X node, ROCm 5.7 calibration",
    )


def unconstrained_sdma() -> Scenario:
    """SDMA engines able to drive full link bundles.

    Isolates the paper's central §V-A2 finding: with the PCIe-4-tuned
    engine cap removed, hipMemcpyPeer would show the three theoretical
    bandwidth tiers instead of two.
    """
    calibration = DEFAULT_CALIBRATION.with_(
        sdma_engine_throughput=gbps(200.0)
    )
    return Scenario(
        "unconstrained-sdma",
        frontier_node(),
        calibration,
        "SDMA engine cap lifted to 200 GB/s (hypothetical)",
    )


def double_numa_ports() -> Scenario:
    """NUMA IF ports with twice the capacity.

    Isolates the Fig. 4 mechanism: with 90 GB/s ports, both GCDs of a
    package can stream concurrently and the same-GPU placement scales.
    """
    calibration = DEFAULT_CALIBRATION.with_(numa_ifport_bw=gbps(90.0))
    return Scenario(
        "double-numa-ports",
        frontier_node(),
        calibration,
        "NUMA IF port capacity doubled to 90 GB/s (hypothetical)",
    )


def fast_fault_handling() -> Scenario:
    """XNACK fault service in half the time.

    Sensitivity of the 2.8 GB/s page-migration plateau to driver
    fault-handling latency.
    """
    calibration = DEFAULT_CALIBRATION.with_(
        xnack_fault_service=us(0.66)
    )
    return Scenario(
        "fast-fault-handling",
        frontier_node(),
        calibration,
        "XNACK fault service halved to 0.66 us (hypothetical driver)",
    )


def large_migration_pages() -> Scenario:
    """2 MiB migration granules instead of 4 KiB.

    The other lever on migration bandwidth: amortizing one fault over
    a huge page pushes the fault-bound rate toward the link rate.
    """
    calibration = DEFAULT_CALIBRATION.with_(page_size=2 * 2**20)
    return Scenario(
        "large-migration-pages",
        frontier_node(),
        calibration,
        "2 MiB migration granule (THP-style)",
    )


def dense_fabric() -> Scenario:
    """Fully-connected GCD mesh (single link per non-package pair)."""
    return Scenario(
        "dense-fabric",
        dense_hive_node(),
        DEFAULT_CALIBRATION,
        "hypothetical all-to-all single-link mesh",
    )


SCENARIOS: dict[str, Callable[[], Scenario]] = {
    "baseline": baseline,
    "unconstrained-sdma": unconstrained_sdma,
    "double-numa-ports": double_numa_ports,
    "fast-fault-handling": fast_fault_handling,
    "large-migration-pages": large_migration_pages,
    "dense-fabric": dense_fabric,
}


def get_scenario(name: str) -> Scenario:
    """Construct a scenario by name; unknown names raise."""
    try:
        factory = SCENARIOS[name]
    except KeyError:
        raise BenchmarkError(
            f"unknown scenario {name!r}; known: {sorted(SCENARIOS)}"
        ) from None
    return factory()

"""System validation: the paper's intended artifact use.

"Our test and evaluation method serves as a base for validating memory
and communication strategies on a system" (abstract).  This module
packages that: :func:`validate_node` runs quick probes of every
data-movement interface on a node and checks each against the
*expectation derived from the node's own calibration* — not against
the paper's numbers — so it works unchanged on what-if scenarios
(:mod:`repro.core.whatif`) and custom topologies.

A failed check means the measured behaviour disagrees with the
configured capability: on real hardware that is a misconfiguration
(wrong XNACK build, SDMA setting, NUMA binding); in the simulator it
flags a modelling regression.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

from ..runner import SimPoint, SweepRunner, execute_points
from ..topology.link import LinkTier
from ..topology.node import NodeTopology
from ..topology.context import resolve_default as resolve_default_topology
from ..units import GiB, MiB, to_gbps, to_us
from .calibration import CalibrationProfile, DEFAULT_CALIBRATION


@dataclass(frozen=True)
class CheckResult:
    """Outcome of one validation probe."""

    check_id: str
    passed: bool
    observed: float
    expected: float
    unit: str
    detail: str = ""

    def format(self) -> str:
        """One PASS/FAIL report line."""
        status = "PASS" if self.passed else "FAIL"
        line = (
            f"[{status}] {self.check_id:32s} observed "
            f"{self.observed:10.2f} {self.unit}, expected "
            f"{self.expected:10.2f} {self.unit}"
        )
        if self.detail:
            line += f"  ({self.detail})"
        return line

    def as_dict(self) -> dict:
        """Machine-readable form (``repro validate --json``)."""
        return {
            "check_id": self.check_id,
            "passed": self.passed,
            "observed": self.observed,
            "expected": self.expected,
            "unit": self.unit,
            "detail": self.detail,
        }


@dataclass
class ValidationReport:
    """All check results of one validation run."""

    results: list[CheckResult] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        """True when every check passed."""
        return all(result.passed for result in self.results)

    @property
    def failures(self) -> list[CheckResult]:
        """The failed checks, in run order."""
        return [result for result in self.results if not result.passed]

    def text(self) -> str:
        """Full report: one line per check plus a tally."""
        lines = [result.format() for result in self.results]
        lines.append(
            f"{sum(r.passed for r in self.results)}/{len(self.results)} "
            "checks passed"
        )
        return "\n".join(lines)

    def as_dict(self) -> dict:
        """Machine-readable form (``repro validate --json``)."""
        return {
            "passed": self.passed,
            "checks": [result.as_dict() for result in self.results],
            "total": len(self.results),
            "failed": len(self.failures),
        }


def _within(observed: float, expected: float, rel_tol: float) -> bool:
    if expected == 0:
        return observed == 0
    return abs(observed - expected) <= rel_tol * abs(expected)


def validation_points(
    topology: NodeTopology | None = None,
    calibration: CalibrationProfile | None = None,
    *,
    probe_bytes: int = 512 * MiB,
) -> list[SimPoint]:
    """The validation battery decomposed into independent sim points.

    Probe order matches :func:`validate_node`'s report order: the three
    H2D interfaces, the multi-GCD scaling probes, three probes per
    GCD0 neighbor (SDMA, kernel zero-copy, latency), then local HBM.
    """
    topology = resolve_default_topology(topology)
    if calibration is None:
        calibration = DEFAULT_CALIBRATION
    points = [
        SimPoint.make(
            "validate",
            "h2d/pinned_memcpy",
            "repro.bench_suites.comm_scope:measure_h2d",
            interface="pinned_memcpy",
            size=probe_bytes,
            topology=topology,
            calibration=calibration,
        ),
        SimPoint.make(
            "validate",
            "h2d/managed_zerocopy",
            "repro.bench_suites.comm_scope:measure_h2d",
            interface="managed_zerocopy",
            size=probe_bytes,
            topology=topology,
            calibration=calibration,
        ),
        SimPoint.make(
            "validate",
            "h2d/managed_migration",
            "repro.bench_suites.comm_scope:measure_h2d",
            interface="managed_migration",
            size=min(probe_bytes, 256 * MiB),
            topology=topology,
            calibration=calibration,
        ),
        SimPoint.make(
            "validate",
            "scaling/one",
            "repro.bench_suites.stream:multi_gpu_cpu_stream",
            placement=(0,),
            size=probe_bytes,
            topology=topology,
            calibration=calibration,
        ),
    ]
    sibling = topology.package_peer(0)
    if sibling is not None:
        points.append(
            SimPoint.make(
                "validate",
                "scaling/same_gpu",
                "repro.bench_suites.stream:multi_gpu_cpu_stream",
                placement=(0, sibling),
                size=probe_bytes,
                topology=topology,
                calibration=calibration,
            )
        )
    for dst in topology.gcd_neighbors(0):
        points.append(
            SimPoint.make(
                "validate",
                f"p2p/sdma/0-{dst}",
                "repro.bench_suites.p2p_matrix:measure_pair_bandwidth",
                src_gcd=0,
                dst_gcd=dst,
                size=probe_bytes,
                topology=topology,
                calibration=calibration,
            )
        )
        points.append(
            SimPoint.make(
                "validate",
                f"p2p/kernel/0-{dst}",
                "repro.bench_suites.stream:remote_stream_copy",
                executor_gcd=0,
                data_gcd=dst,
                size=probe_bytes,
                topology=topology,
                calibration=calibration,
            )
        )
        points.append(
            SimPoint.make(
                "validate",
                f"p2p/latency/0-{dst}",
                "repro.bench_suites.p2p_matrix:measure_pair_latency",
                src_gcd=0,
                dst_gcd=dst,
                topology=topology,
                calibration=calibration,
            )
        )
    points.append(
        SimPoint.make(
            "validate",
            "local/hbm_stream",
            "repro.bench_suites.stream:local_stream_copy",
            gcd=0,
            size=min(probe_bytes, 1 * GiB),
            topology=topology,
            calibration=calibration,
        )
    )
    return points


def validate_node(
    topology: NodeTopology | None = None,
    calibration: CalibrationProfile | None = None,
    *,
    rel_tol: float = 0.05,
    probe_bytes: int = 512 * MiB,
    runner: SweepRunner | None = None,
) -> ValidationReport:
    """Run the validation battery; returns a :class:`ValidationReport`.

    Each check's *expected* value is computed from the calibration
    profile and topology, so the battery validates mechanism ↔
    configuration consistency rather than specific magnitudes.  With a
    ``runner``, the probes fan out through its cache/worker pool and
    the report is assembled from outputs in probe order.
    """
    topology = resolve_default_topology(topology)
    if calibration is None:
        calibration = DEFAULT_CALIBRATION
    points = validation_points(
        topology, calibration, probe_bytes=probe_bytes
    )
    outputs = iter(execute_points(points, runner))
    report = ValidationReport()

    def check(
        check_id: str,
        observed: float,
        expected: float,
        unit: str,
        *,
        tol: float = rel_tol,
        detail: str = "",
    ) -> None:
        report.results.append(
            CheckResult(
                check_id,
                _within(observed, expected, tol),
                observed,
                expected,
                unit,
                detail,
            )
        )

    # --- CPU-GPU interfaces -------------------------------------------------
    pinned = next(outputs)
    check(
        "h2d.pinned_memcpy",
        to_gbps(pinned),
        to_gbps(calibration.sdma_cap_for_tier(LinkTier.CPU)),
        "GB/s",
        detail="SDMA engine over the CPU link",
    )

    zerocopy = next(outputs)
    check(
        "h2d.managed_zerocopy",
        to_gbps(zerocopy),
        to_gbps(
            calibration.kernel_remote_cap(LinkTier.CPU, bidirectional=False)
        ),
        "GB/s",
        detail="kernel zero-copy over the CPU link",
    )

    migration = next(outputs)
    check(
        "h2d.managed_migration",
        to_gbps(migration),
        to_gbps(calibration.page_migration_bw()),
        "GB/s",
        detail="XNACK fault-bound page migration",
    )

    # --- multi-GCD scaling ----------------------------------------------------
    one = next(outputs)
    gcd0 = topology.gcd(0)
    sibling = topology.package_peer(0)
    if sibling is not None:
        same = next(outputs)
        check(
            "scaling.same_gpu_flat",
            to_gbps(same),
            to_gbps(one),
            "GB/s",
            detail="both GCDs share one NUMA IF port",
        )

    # --- GPU-GPU interfaces ------------------------------------------------------
    neighbors = topology.gcd_neighbors(0)
    for dst in neighbors:
        tier = topology.peer_tier(0, dst)
        assert tier is not None
        sdma = next(outputs)
        check(
            f"p2p.sdma.gcd0->{dst}",
            to_gbps(sdma),
            to_gbps(calibration.sdma_cap_for_tier(tier)),
            "GB/s",
            detail=f"{tier.name.lower()} link, engine-capped",
        )
        kernel = next(outputs)
        check(
            f"p2p.kernel_bidir.gcd0<->{dst}",
            to_gbps(kernel),
            to_gbps(
                2
                * calibration.kernel_remote_cap(tier, bidirectional=True)
            ),
            "GB/s",
            detail=f"{tier.name.lower()} link, zero-copy both directions",
        )
        latency = next(outputs)
        from ..hip.memcpy import pair_jitter

        expected_latency = calibration.p2p_latency(
            1, tier, pair_jitter(0, dst)
        )
        check(
            f"p2p.latency.gcd0->{dst}",
            to_us(latency),
            to_us(expected_latency),
            "us",
            tol=0.02,
            detail="hipMemcpyPeerAsync, event-timed",
        )

    # --- local memory ----------------------------------------------------------------
    local = next(outputs)
    check(
        "local.hbm_stream",
        to_gbps(local),
        to_gbps(calibration.hbm_stream_bw(gcd0.hbm_peak_bw)),
        "GB/s",
        detail="STREAM copy in local HBM",
    )

    return report

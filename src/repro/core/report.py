"""Paper-style rendering of experiment results.

Turns :class:`~repro.core.experiment.ExperimentResult` objects into
the rows/series/matrices the paper prints: bandwidth-vs-size series
(Fig. 3/7/8), GCD×GCD matrices (Fig. 6), grouped bars (Fig. 4/5/9/10),
and collective latency tables (Fig. 11/12).  Plain text, aligned — the
benchmark harness pipes these to stdout so a run reads like the
paper's evaluation section.
"""

from __future__ import annotations

from typing import Any, Callable, Mapping, Sequence

import numpy as np

from ..errors import BenchmarkError
from ..units import format_size, to_gbps, to_us
from .experiment import ExperimentResult


def _fmt_cell(value: float, width: int = 7, digits: int = 1) -> str:
    return f"{value:{width}.{digits}f}"


def series_table(
    result: ExperimentResult,
    *,
    series_key: str,
    x_formatter: Callable[[float], str] = lambda x: format_size(int(x)),
    value_scale: float = 1e9,
    value_unit: str = "GB/s",
) -> str:
    """Multi-series table: one row per x, one column per series label."""
    labels = result.labels(series_key)
    if not labels:
        raise BenchmarkError(f"no series labelled by {series_key!r}")
    xs = sorted({m.x for m in result.measurements})
    header = f"{'size':>10s} " + " ".join(f"{str(l):>14s}" for l in labels)
    lines = [f"# {result.title} [{value_unit}]", header]
    for x in xs:
        cells = []
        for label in labels:
            points = [
                m
                for m in result.measurements
                if m.x == x and m.meta.get(series_key) == label
            ]
            if points:
                cells.append(f"{points[0].value / value_scale:14.2f}")
            else:
                cells.append(f"{'-':>14s}")
        lines.append(f"{x_formatter(x):>10s} " + " ".join(cells))
    return "\n".join(lines)


def matrix_table(
    values: Mapping[tuple[int, int], float],
    *,
    title: str,
    scale: float = 1.0,
    unit: str = "",
    diagonal: str = "-",
    digits: int = 1,
) -> str:
    """GCD×GCD matrix, like Fig. 6's three panels."""
    if not values:
        raise BenchmarkError("empty matrix")
    indices = sorted({i for pair in values for i in pair})
    width = max(7, digits + 5)
    header = "src\\dst " + " ".join(f"{d:>{width}d}" for d in indices)
    lines = [f"# {title}" + (f" [{unit}]" if unit else ""), header]
    for src in indices:
        cells = []
        for dst in indices:
            if src == dst and (src, dst) not in values:
                cells.append(f"{diagonal:>{width}s}")
            else:
                cells.append(_fmt_cell(values[(src, dst)] / scale, width, digits))
        lines.append(f"{src:>7d} " + " ".join(cells))
    return "\n".join(lines)


def bar_table(
    rows: Sequence[tuple[str, float]],
    *,
    title: str,
    scale: float = 1e9,
    unit: str = "GB/s",
    reference: Mapping[str, float] | None = None,
) -> str:
    """Grouped-bar stand-in: label, value, optional % of reference."""
    lines = [f"# {title} [{unit}]"]
    for label, value in rows:
        line = f"{label:32s} {value / scale:10.2f}"
        if reference and label in reference:
            ratio = value / reference[label]
            line += f"   ({ratio:6.1%} of {reference[label] / scale:.1f})"
        lines.append(line)
    return "\n".join(lines)


def latency_table(
    result: ExperimentResult,
    *,
    row_key: str = "partners",
    col_key: str = "library",
) -> str:
    """Collective latency grid: partners × library, in µs."""
    rows = sorted({m.meta[row_key] for m in result.measurements})
    cols = result.labels(col_key)
    header = f"{row_key:>10s} " + " ".join(f"{str(c):>12s}" for c in cols)
    lines = [f"# {result.title} [us]", header]
    for row in rows:
        cells = []
        for col in cols:
            points = [
                m
                for m in result.measurements
                if m.meta.get(row_key) == row and m.meta.get(col_key) == col
            ]
            if points:
                cells.append(f"{to_us(points[0].value):12.1f}")
            else:
                cells.append(f"{'-':>12s}")
        lines.append(f"{row!s:>10s} " + " ".join(cells))
    return "\n".join(lines)


def peak_summary(result: ExperimentResult, series_key: str) -> str:
    """One line per series: its peak value (the Fig. 2/3 boxes)."""
    lines = [f"# {result.title} — peaks"]
    for label in result.labels(series_key):
        peak = result.peak(**{series_key: label})
        lines.append(
            f"{str(label):28s} {to_gbps(peak.value):8.2f} GB/s "
            f"at {format_size(int(peak.x))}"
        )
    return "\n".join(lines)


def comparison_summary(
    title: str, entries: Mapping[str, Any]
) -> str:
    """Key-value summary block for EXPERIMENTS.md snippets."""
    width = max(len(k) for k in entries) if entries else 0
    lines = [f"# {title}"]
    for key, value in entries.items():
        lines.append(f"{key:<{width}s} : {value}")
    return "\n".join(lines)


def geometric_summary(values: Sequence[float]) -> dict[str, float]:
    """min/max/mean/gmean summary of a series."""
    if not values:
        raise BenchmarkError("empty series")
    arr = np.asarray(values, dtype=float)
    out = {
        "min": float(arr.min()),
        "max": float(arr.max()),
        "mean": float(arr.mean()),
    }
    if (arr > 0).all():
        out["gmean"] = float(np.exp(np.log(arr).mean()))
    return out

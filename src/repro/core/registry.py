"""Tables I and II of the paper as machine-readable registries.

Table I enumerates the HIP memory-allocation methods and their data-
movement strategies; Table II maps each evaluated link/category to the
benchmark, allocation and movement interface used.  Keeping them as
data lets the harness print them (`benchmarks/test_tab01/02`) and lets
tests assert that every registry row is actually implemented by the
simulator (the registry ↔ implementation cross-checks in
``tests/core/test_registry.py``).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..memory.buffer import MemoryKind


@dataclass(frozen=True)
class MemoryApiRow:
    """One row of Table I."""

    memory: str
    data_movement: str  # explicit | zero-copy | implicit
    coherent: bool
    allocation_api: str
    movement_api: str
    kind: MemoryKind
    xnack: bool | None = None  # None: not applicable


#: Table I, verbatim structure.
TABLE_I: tuple[MemoryApiRow, ...] = (
    MemoryApiRow(
        memory="Pinned",
        data_movement="explicit",
        coherent=False,
        allocation_api="hipHostMalloc(flag=hipHostMallocNonCoherent)",
        movement_api="hipMemcpy(Async)",
        kind=MemoryKind.PINNED_NONCOHERENT,
    ),
    MemoryApiRow(
        memory="Pageable",
        data_movement="explicit",
        coherent=False,
        allocation_api="malloc",
        movement_api="hipMemcpy",
        kind=MemoryKind.PAGEABLE,
    ),
    MemoryApiRow(
        memory="Pinned",
        data_movement="zero-copy",
        coherent=True,
        allocation_api="hipHostMalloc([flag=hipHostMallocCoherent])",
        movement_api="(GPU kernel access)",
        kind=MemoryKind.PINNED_COHERENT,
    ),
    MemoryApiRow(
        memory="Unified",
        data_movement="zero-copy",
        coherent=True,
        allocation_api="hipMallocManaged(); HSA_XNACK=0",
        movement_api="(GPU kernel access)",
        kind=MemoryKind.MANAGED,
        xnack=False,
    ),
    MemoryApiRow(
        memory="Unified",
        data_movement="implicit",
        coherent=True,
        allocation_api="hipMallocManaged(); HSA_XNACK=1",
        movement_api="(page migration)",
        kind=MemoryKind.MANAGED,
        xnack=True,
    ),
)


@dataclass(frozen=True)
class BenchmarkRow:
    """One row of Table II."""

    link: str  # "CPU-GPU" | "GPU-GPU"
    category: str
    benchmark: str
    allocation: str
    data_movement: str
    suite_module: str  # repro module implementing it


#: Table II, verbatim structure, with implementation pointers.
TABLE_II: tuple[BenchmarkRow, ...] = (
    BenchmarkRow(
        "CPU-GPU",
        "Local GPU memory",
        "STREAM (Copy)",
        "hipMalloc",
        "local access (GPU kernel)",
        "repro.bench_suites.stream",
    ),
    BenchmarkRow(
        "CPU-GPU",
        "CPU-GPU",
        "CommScope",
        "pageable (malloc)",
        "hipMemcpy",
        "repro.bench_suites.comm_scope",
    ),
    BenchmarkRow(
        "CPU-GPU",
        "CPU-GPU",
        "CommScope",
        "pinned (hipHostMalloc)",
        "hipMemcpy",
        "repro.bench_suites.comm_scope",
    ),
    BenchmarkRow(
        "CPU-GPU",
        "CPU-GPU",
        "CommScope",
        "managed (hipMallocManaged)",
        "zero-copy (GPU kernel)",
        "repro.bench_suites.comm_scope",
    ),
    BenchmarkRow(
        "CPU-GPU",
        "CPU-GPU",
        "CommScope",
        "managed (hipMallocManaged)",
        "page migration (XNACK)",
        "repro.bench_suites.comm_scope",
    ),
    BenchmarkRow(
        "CPU-GPU",
        "CPU-GPU",
        "STREAM (copy)",
        "pinned (hipHostMalloc)",
        "zero-copy (GPU kernel)",
        "repro.bench_suites.stream",
    ),
    BenchmarkRow(
        "GPU-GPU",
        "GPU peer-to-peer",
        "CommScope",
        "hipMalloc",
        "hipMemcpyPeer",
        "repro.bench_suites.comm_scope",
    ),
    BenchmarkRow(
        "GPU-GPU",
        "GPU peer-to-peer",
        "p2pBandwidthLatencyTest",
        "hipMalloc",
        "hipMemcpyPeer",
        "repro.bench_suites.p2p_matrix",
    ),
    BenchmarkRow(
        "GPU-GPU",
        "GPU peer-to-peer",
        "STREAM (copy)",
        "hipMalloc",
        "zero-copy (GPU kernel)",
        "repro.bench_suites.stream",
    ),
    BenchmarkRow(
        "GPU-GPU",
        "MPI GPU point-to-point",
        "OSU micro-benchmarks",
        "hipMalloc",
        "MPI_ISend, MPI_Recv",
        "repro.bench_suites.osu",
    ),
    BenchmarkRow(
        "GPU-GPU",
        "MPI GPU Collectives",
        "OSU micro-benchmarks",
        "hipMalloc",
        "MPI collectives",
        "repro.bench_suites.osu",
    ),
    BenchmarkRow(
        "GPU-GPU",
        "GPU Collectives",
        "RCCL-tests",
        "hipMalloc",
        "RCCL collectives",
        "repro.bench_suites.rccl_tests",
    ),
)


def format_table_i() -> str:
    """Table I rendered as aligned text."""
    lines = [
        "# Table I: Memory allocation methods in HIP (CPU-side)",
        f"{'Memory':10s} {'Movement':10s} {'Coherent':8s} "
        f"{'Allocation API':48s} {'Movement API':20s}",
    ]
    for row in TABLE_I:
        lines.append(
            f"{row.memory:10s} {row.data_movement:10s} "
            f"{('yes' if row.coherent else 'no'):8s} "
            f"{row.allocation_api:48s} {row.movement_api:20s}"
        )
    return "\n".join(lines)


def format_table_ii() -> str:
    """Table II rendered as aligned text."""
    lines = [
        "# Table II: Evaluated memory types, benchmarks and interfaces",
        f"{'Link':8s} {'Category':24s} {'Benchmark':26s} "
        f"{'Allocation':30s} {'Data movement':28s}",
    ]
    for row in TABLE_II:
        lines.append(
            f"{row.link:8s} {row.category:24s} {row.benchmark:26s} "
            f"{row.allocation:30s} {row.data_movement:28s}"
        )
    return "\n".join(lines)

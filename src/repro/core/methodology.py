"""The three-step testing methodology (paper §III).

The paper's contribution is a *methodology*: characterize CPU-GPU data
movement first, then GPU-GPU point-to-point, then multi-GPU
collectives, comparing every interface against the theoretical
capability of the link it uses.  :class:`Methodology` packages that
pipeline so a user can point it at a topology/calibration (their
"system") and get the full validation report — the intended use of
the paper's artifact on new machines.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from ..errors import BenchmarkError
from .experiment import ExperimentResult

#: The three steps and the artifacts each reproduces.
STEPS: dict[str, tuple[str, ...]] = {
    "cpu_gpu": ("fig02", "fig03", "fig04", "fig05"),
    "gpu_p2p": ("fig06", "fig07", "fig08", "fig09", "fig10"),
    "collectives": ("fig11", "fig12"),
}


@dataclass
class MethodologyReport:
    """Results of a full methodology run."""

    results: dict[str, ExperimentResult] = field(default_factory=dict)
    reports: dict[str, str] = field(default_factory=dict)

    def text(self) -> str:
        """Assembled multi-step report text."""
        blocks = []
        for step, artifact_ids in STEPS.items():
            blocks.append(f"{'=' * 60}\nSTEP {step}\n{'=' * 60}")
            for artifact_id in artifact_ids:
                if artifact_id in self.reports:
                    blocks.append(self.reports[artifact_id])
        return "\n\n".join(blocks)


class Methodology:
    """Runs the three-step evaluation end to end."""

    def __init__(self, steps: Sequence[str] | None = None) -> None:
        if steps is None:
            steps = list(STEPS)
        unknown = set(steps) - set(STEPS)
        if unknown:
            raise BenchmarkError(f"unknown methodology steps: {sorted(unknown)}")
        self.steps = list(steps)

    def artifact_ids(self) -> list[str]:
        """Artifact ids covered by the selected steps, in order."""
        ids: list[str] = []
        for step in self.steps:
            ids.extend(STEPS[step])
        return ids

    def run(self, *, runner: object | None = None, **params: object) -> MethodologyReport:
        # Imported here: the figures package imports bench_suites which
        # import core — a top-level import would be circular.
        """Run every selected artifact driver; returns the report.

        With a ``runner`` (:class:`~repro.runner.SweepRunner`), all
        artifacts flatten into one point grid so cached points are
        shared and workers stay busy across artifact boundaries.
        """
        from .. import figures

        report = MethodologyReport()
        if runner is not None:
            results = runner.run_many(self.artifact_ids(), **params)
            for artifact_id, result in results.items():
                report.results[artifact_id] = result
                report.reports[artifact_id] = figures.report(
                    artifact_id, result
                )
            return report
        for artifact_id in self.artifact_ids():
            result, text = figures.run_and_report(artifact_id, **params)
            report.results[artifact_id] = result
            report.reports[artifact_id] = text
        return report

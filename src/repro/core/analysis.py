"""Analysis utilities: tier clustering, outliers, utilization tables.

The paper's narrative repeatedly reduces a matrix or series to a few
statements: "two values of bandwidth: 50 GB/s and 37–38 GB/s",
"four outliers within 17.8–18.2 µs", "43–44 % of theoretical".  These
helpers compute those statements from raw results so the benchmark
harness can assert them mechanically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from ..errors import BenchmarkError


@dataclass(frozen=True)
class Tier:
    """A cluster of near-equal measurements."""

    center: float
    members: tuple[int, ...]  # indices into the input sequence

    @property
    def count(self) -> int:
        """Number of measurements in this tier."""
        return len(self.members)


def cluster_tiers(
    values: Sequence[float], *, rel_gap: float = 0.12
) -> list[Tier]:
    """Group values into tiers separated by relative gaps > ``rel_gap``.

    Sorts values and cuts where consecutive values differ by more than
    ``rel_gap`` of the larger one.  Returns tiers in ascending order of
    center.  This is how "two bandwidth tiers" (Fig. 6c) and "three
    bandwidth tiers" (Fig. 8) are detected.
    """
    if not values:
        raise BenchmarkError("cannot cluster an empty sequence")
    if any(v < 0 for v in values):
        raise BenchmarkError("tier clustering expects non-negative values")
    order = np.argsort(values)
    sorted_values = np.asarray(values, dtype=float)[order]
    groups: list[list[int]] = [[int(order[0])]]
    for prev, idx in zip(sorted_values[:-1], range(1, len(order))):
        current = sorted_values[idx]
        if prev > 0 and (current - prev) / max(current, prev) > rel_gap:
            groups.append([])
        groups[-1].append(int(order[idx]))
    tiers = []
    values_arr = np.asarray(values, dtype=float)
    for group in groups:
        tiers.append(Tier(float(values_arr[group].mean()), tuple(group)))
    return tiers


def detect_outliers_iqr(
    values: Sequence[float], *, factor: float = 1.5
) -> list[int]:
    """Indices of IQR outliers (the Fig. 6b latency outliers)."""
    if len(values) < 4:
        return []
    arr = np.asarray(values, dtype=float)
    q1, q3 = np.percentile(arr, [25, 75])
    iqr = q3 - q1
    lo, hi = q1 - factor * iqr, q3 + factor * iqr
    return [i for i, v in enumerate(arr) if v < lo or v > hi]


def value_range(values: Sequence[float]) -> tuple[float, float]:
    """``(min, max)`` of a non-empty series."""
    if not values:
        raise BenchmarkError("empty sequence has no range")
    return (min(values), max(values))


@dataclass(frozen=True)
class UtilizationRow:
    """One row of a measured-vs-theoretical comparison."""

    label: str
    measured: float
    theoretical: float

    @property
    def ratio(self) -> float:
        """Measured / theoretical fraction."""
        return self.measured / self.theoretical

    def format(self, unit_scale: float = 1e9, unit: str = "GB/s") -> str:
        """One aligned report line with the percentage label."""
        return (
            f"{self.label:24s} {self.measured / unit_scale:8.1f} {unit}  "
            f"of {self.theoretical / unit_scale:8.1f} {unit}  "
            f"({self.ratio:6.1%})"
        )


def utilization_table(
    rows: Mapping[str, tuple[float, float]]
) -> list[UtilizationRow]:
    """Build utilization rows from {label: (measured, theoretical)}."""
    table = []
    for label, (measured, theoretical) in rows.items():
        if theoretical <= 0:
            raise BenchmarkError(f"row {label!r}: theoretical must be positive")
        table.append(UtilizationRow(label, measured, theoretical))
    return table


def crossover_size(
    sizes: Sequence[int],
    series_a: Sequence[float],
    series_b: Sequence[float],
) -> int | None:
    """First size where series A pulls ahead of series B for good.

    Used for the Fig. 3 pinned-vs-managed crossover at the 32 MB LLC:
    returns the smallest size after which ``a > b`` at every point, or
    ``None`` if A never stays ahead.
    """
    if not (len(sizes) == len(series_a) == len(series_b)):
        raise BenchmarkError("crossover inputs must be equal length")
    for start in range(len(sizes)):
        if all(a > b for a, b in zip(series_a[start:], series_b[start:])):
            return sizes[start]
    return None


def scaling_efficiency(
    baseline: float, scaled: float, scale_factor: int
) -> float:
    """Parallel efficiency of a scaled measurement vs a baseline."""
    if baseline <= 0 or scale_factor <= 0:
        raise BenchmarkError("baseline and scale factor must be positive")
    return scaled / (baseline * scale_factor)

"""Load-test harness for the simulation service.

Stands up a real :class:`~repro.serve.http.ReproServer` on an
ephemeral port and hammers it the way production traffic would:

1. **cold wave** — ``clients`` threads (default 200) release from a
   barrier simultaneously, each submitting one what-if query drawn
   from a small pool of distinct questions (scenario validations and
   artifact runs under algorithm overrides) and following the job's
   NDJSON event stream to completion;
2. **warm wave** — the exact same submissions again: every point is
   already in the shared result store, so the wave measures the
   service's dedup fast path (the harness *asserts* zero cache misses
   and bit-identical results);
3. **quota burst** — one tenant fires well past its token bucket and
   the harness asserts the service answered 429 with ``Retry-After``.

Latency is measured submit→done per request; the warm wave's p50/p95/
p99 and sustained request rate are the headline numbers recorded in
``BENCH_core.json`` and guarded by ``check_bench.py``.
"""

from __future__ import annotations

import json
import tempfile
import threading
import time
from typing import Any

from ..errors import BenchmarkError
from .client import ServeClient
from .http import create_server
from .service import ServiceConfig, SimService

#: What-if question pool the waves cycle through (distinct queries →
#: distinct cache keys, so the cold wave does real work while the warm
#: wave must be pure dedup).
_QUERIES: tuple[dict[str, Any], ...] = (
    {"scenario": "baseline"},
    {"scenario": "unconstrained-sdma"},
    {"scenario": "double-numa-ports"},
    {"scenario": "dense-fabric"},
    {"artifact": "fig01"},
    {"artifact": "fig02"},
    {"artifact": "fig04"},
    {"artifact": "fig09"},
    {"artifact": "fig11", "algorithm": "ring"},
    {"artifact": "fig11", "algorithm": "tree"},
    {"artifact": "fig11", "algorithm": "double_binary_tree"},
    {"artifact": "fig12", "algorithm": "ring"},
)


def _percentile_ms(samples: "list[float]", fraction: float) -> float:
    if not samples:
        return 0.0
    ordered = sorted(samples)
    rank = max(0, min(len(ordered) - 1, int(fraction * len(ordered))))
    return ordered[rank] * 1e3


def _strip_volatile(value: Any) -> Any:
    """Drop host-timing/accounting keys so results compare by content."""
    if isinstance(value, dict):
        return {
            k: _strip_volatile(v)
            for k, v in value.items()
            if k not in {"runner", "wall_seconds", "latency_seconds"}
        }
    if isinstance(value, list):
        return [_strip_volatile(v) for v in value]
    return value


def _await_result(client: ServeClient, job_id: str) -> dict[str, Any]:
    """Follow the event stream to completion, then fetch the record."""
    for event in client.events(job_id):
        if event["event"] in ("done", "failed"):
            break
    record = client.job(job_id)
    if record["state"] != "done":
        raise BenchmarkError(
            f"load-test job {job_id} ended {record['state']}: "
            f"{record.get('error')}"
        )
    return record


def _wave(
    base_url: str, submissions: "list[tuple[str, dict[str, Any]]]"
) -> "tuple[list[float], list[dict[str, Any]]]":
    """Fire all submissions concurrently; returns (latencies, records)."""
    barrier = threading.Barrier(len(submissions))
    latencies: "list[float]" = [0.0] * len(submissions)
    records: "list[dict[str, Any]]" = [{}] * len(submissions)
    failures: "list[BaseException]" = []

    def one(index: int, tenant: str, payload: dict[str, Any]) -> None:
        client = ServeClient(base_url, tenant=tenant, timeout=600.0)
        try:
            barrier.wait(timeout=120.0)
            started = time.perf_counter()
            job_id = client.submit("whatif", payload)
            records[index] = _await_result(client, job_id)
            latencies[index] = time.perf_counter() - started
        except BaseException as exc:  # noqa: BLE001 - surfaced below
            failures.append(exc)

    threads = [
        threading.Thread(target=one, args=(i, tenant, payload), daemon=True)
        for i, (tenant, payload) in enumerate(submissions)
    ]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - started
    if failures:
        raise BenchmarkError(
            f"{len(failures)} load-test request(s) failed; first: "
            f"{failures[0]!r}"
        ) from failures[0]
    return latencies, records + [{"wall": wall}]


def run_load_test(
    *,
    clients: int = 200,
    tenants: int = 8,
    workers: int = 4,
    quota_rate: float = 50.0,
    quota_burst: float = 64.0,
    cache_dir: "str | None" = None,
    host: str = "127.0.0.1",
) -> dict[str, Any]:
    """Run the three-phase load test; returns the report dictionary.

    Raises :class:`BenchmarkError` when any acceptance property fails:
    a request errors, the warm wave misses the cache or changes a
    result, or the over-quota burst is not throttled with 429s.
    """
    if clients < tenants:
        raise ValueError("need at least one client per tenant")
    owned_tmp = None
    if cache_dir is None:
        owned_tmp = tempfile.TemporaryDirectory(prefix="repro-serve-bench-")
        cache_dir = owned_tmp.name
    config = ServiceConfig(
        workers=workers,
        queue_capacity=max(64, clients * 2),
        quota_rate=quota_rate,
        quota_burst=quota_burst,
        cache_dir=cache_dir,
    )
    service = SimService(config)
    server = create_server(service, host=host, port=0)
    accept_thread = threading.Thread(target=server.serve_forever, daemon=True)
    accept_thread.start()
    base_url = f"http://{server.server_address[0]}:{server.server_address[1]}"
    try:
        submissions = [
            (f"tenant-{i % tenants}", dict(_QUERIES[i % len(_QUERIES)]))
            for i in range(clients)
        ]
        cold_latencies, cold_records = _wave(base_url, submissions)
        cold_wall = cold_records.pop()["wall"]
        warm_latencies, warm_records = _wave(base_url, submissions)
        warm_wall = warm_records.pop()["wall"]

        # Cross-client dedup: the warm wave may not execute anything,
        # and must serve results identical to the cold wave's.
        warm_misses = sum(
            r["result"].get("runner", {}).get("cache_misses", 0)
            for r in warm_records
        )
        identical = all(
            json.dumps(_strip_volatile(c["result"]), sort_keys=True, default=str)
            == json.dumps(_strip_volatile(w["result"]), sort_keys=True, default=str)
            for c, w in zip(cold_records, warm_records)
        )
        if warm_misses:
            raise BenchmarkError(
                f"warm wave missed the shared cache {warm_misses} time(s); "
                "cross-client dedup is broken"
            )
        if not identical:
            raise BenchmarkError(
                "warm resubmission changed a result; the store is not "
                "serving deterministic replays"
            )

        # Backpressure: one tenant fires far past its burst allowance.
        burst_sent = int(quota_burst * 2.5)
        burster = ServeClient(base_url, tenant="burster", timeout=600.0)
        accepted: "list[str]" = []
        rejected = 0
        retry_after_seen = False
        for _ in range(burst_sent):
            try:
                accepted.append(burster.submit("whatif", {"artifact": "fig01"}))
            except BenchmarkError as exc:
                status = getattr(exc, "status", None)
                if status != 429:
                    raise
                rejected += 1
                if getattr(exc, "retry_after", None):
                    retry_after_seen = True
        if rejected == 0 or not retry_after_seen:
            raise BenchmarkError(
                f"over-quota burst of {burst_sent} was not throttled "
                f"({rejected} rejections)"
            )
        for job_id in accepted:
            _await_result(burster, job_id)

        stats = service.stats()
        report = {
            "clients": clients,
            "tenants": tenants,
            "workers": workers,
            "unique_queries": len(_QUERIES),
            "cold": {
                "wall_seconds": cold_wall,
                "requests_per_second": clients / cold_wall,
                "p50_ms": _percentile_ms(cold_latencies, 0.50),
                "p95_ms": _percentile_ms(cold_latencies, 0.95),
                "p99_ms": _percentile_ms(cold_latencies, 0.99),
            },
            "warm": {
                "wall_seconds": warm_wall,
                "requests_per_second": clients / warm_wall,
                "p50_ms": _percentile_ms(warm_latencies, 0.50),
                "p95_ms": _percentile_ms(warm_latencies, 0.95),
                "p99_ms": _percentile_ms(warm_latencies, 0.99),
            },
            # Headline keys (flat, for BENCH_core.json / check_bench).
            "serve_requests_per_second": clients / warm_wall,
            "serve_whatif_p99_ms": _percentile_ms(warm_latencies, 0.99),
            "warm_cache_misses": warm_misses,
            "warm_identical": identical,
            "burst": {
                "sent": burst_sent,
                "accepted": len(accepted),
                "rejected": rejected,
                "retry_after_seen": retry_after_seen,
            },
            "store_entries": stats.get("store", {}).get("entries", 0),
        }
        return report
    finally:
        server.shutdown()
        server.server_close()
        service.drain()
        if owned_tmp is not None:
            owned_tmp.cleanup()

"""Stdlib HTTP frontend of the simulation service.

``ThreadingHTTPServer`` + ``BaseHTTPRequestHandler`` — no third-party
web framework, matching the repo's stdlib-only dependency policy (the
same gating philosophy as PyYAML: optional niceties degrade, core
paths never require them).

Endpoints (all JSON unless noted)::

    POST /v1/run      {"artifact": "fig06", "params": {...}}
    POST /v1/sweep    {"artifacts": ["fig02", "fig03"], ...}
    POST /v1/whatif   {"scenario": "dense-fabric"} |
                      {"artifact": "fig11", "algorithm": "tree", ...}
    POST /v1/shadow   {"telemetry": "<JSONL>"} | {"records": [...]}
    GET  /v1/jobs/<id>            job status + result when done
    GET  /v1/jobs/<id>/events     NDJSON lifecycle stream (tails until
                                  the job finishes)
    GET  /v1/health               liveness + drain state
    GET  /v1/stats                queue depth, latency percentiles, store
    GET  /v1/metrics              MetricsRegistry snapshot

Status mapping: validation failures → 400, quota/queue backpressure →
429 with ``Retry-After``, draining → 503, unknown job/route → 404.
Submissions answer 202 with the job id; clients poll or stream events.

The tenant is taken from the ``X-Repro-Tenant`` header (or a
``"tenant"`` body field); omitted requests share the configured
default tenant's bucket.
"""

from __future__ import annotations

import json
import signal
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any

from .jobs import QueueFullError
from .service import (
    BadRequestError,
    QuotaExceededError,
    ServiceDrainingError,
    SimService,
)

#: Bound on accepted request bodies (inline telemetry streams are the
#: largest legitimate payload; anything bigger is a client bug).
MAX_BODY_BYTES = 32 * 1024 * 1024

#: Retry-After suggested when the queue (not a quota) is the limiter.
QUEUE_RETRY_AFTER = 1.0


def _encode(payload: Any) -> bytes:
    return json.dumps(payload, default=str).encode("utf-8") + b"\n"


class ServeHandler(BaseHTTPRequestHandler):
    """Routes one connection's requests into the :class:`SimService`."""

    protocol_version = "HTTP/1.1"
    server_version = "repro-serve"

    # The service is attached to the server object (one per process);
    # handlers are constructed per connection by the stdlib.
    @property
    def service(self) -> SimService:
        """The :class:`SimService` the owning server dispatches into."""
        return self.server.service  # type: ignore[attr-defined]

    def log_message(self, format: str, *args: Any) -> None:
        """Log to stderr only when the server was marked ``verbose``."""
        if getattr(self.server, "verbose", False):  # pragma: no cover
            super().log_message(format, *args)

    # -- responses ------------------------------------------------------

    def _respond(
        self,
        status: int,
        payload: Any,
        *,
        headers: "dict[str, str] | None" = None,
    ) -> None:
        body = _encode(payload)
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _error(
        self,
        status: int,
        message: str,
        *,
        retry_after: float | None = None,
    ) -> None:
        headers = {}
        if retry_after is not None:
            # Retry-After is delta-seconds; round up so a client that
            # honors it lands after the bucket refills.
            headers["Retry-After"] = str(max(1, int(retry_after + 0.999)))
        self._respond(status, {"error": message}, headers=headers)

    # -- POST: submissions ---------------------------------------------

    def do_POST(self) -> None:  # noqa: N802 - stdlib handler API
        """``POST /v1/<kind>`` — validate, admit, and enqueue a job."""
        parts = [p for p in self.path.split("?")[0].split("/") if p]
        if len(parts) != 2 or parts[0] != "v1":
            self._error(404, f"no such endpoint: POST {self.path}")
            return
        kind = parts[1]
        try:
            length = int(self.headers.get("Content-Length") or 0)
        except ValueError:
            self._error(400, "bad Content-Length")
            return
        if length > MAX_BODY_BYTES:
            self._error(413, f"body over {MAX_BODY_BYTES} bytes")
            return
        raw = self.rfile.read(length) if length else b"{}"
        try:
            payload = json.loads(raw.decode("utf-8") or "{}")
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            self._error(400, f"request body is not valid JSON: {exc}")
            return
        if not isinstance(payload, dict):
            self._error(400, "request body must be a JSON object")
            return
        tenant = self.headers.get("X-Repro-Tenant")
        try:
            job = self.service.submit(kind, payload, tenant=tenant)
        except QuotaExceededError as exc:
            self._error(429, str(exc), retry_after=exc.retry_after)
            return
        except QueueFullError as exc:
            self._error(429, str(exc), retry_after=QUEUE_RETRY_AFTER)
            return
        except ServiceDrainingError as exc:
            self._error(503, str(exc))
            return
        except BadRequestError as exc:
            self._error(400, str(exc))
            return
        self._respond(
            202,
            {
                "job": job.as_dict(include_result=False),
                "links": {
                    "self": f"/v1/jobs/{job.id}",
                    "events": f"/v1/jobs/{job.id}/events",
                },
            },
        )

    # -- GET: lookup / streams ------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - stdlib handler API
        """``GET`` job records, event streams, health, stats, metrics."""
        parts = [p for p in self.path.split("?")[0].split("/") if p]
        if len(parts) >= 2 and parts[0] == "v1":
            if parts[1] == "health" and len(parts) == 2:
                self._respond(
                    200,
                    {
                        "status": (
                            "draining" if self.service.draining else "ok"
                        ),
                        "version": _version(),
                        "queue_depth": self.service.queue.depth,
                        "in_flight": self.service.queue.in_flight,
                    },
                )
                return
            if parts[1] == "stats" and len(parts) == 2:
                self._respond(200, self.service.stats())
                return
            if parts[1] == "metrics" and len(parts) == 2:
                self._respond(200, self.service.metrics.snapshot())
                return
            if parts[1] == "jobs" and len(parts) in (3, 4):
                job = self.service.job(parts[2])
                if job is None:
                    self._error(404, f"no such job: {parts[2]}")
                    return
                if len(parts) == 3:
                    self._respond(200, job.as_dict())
                    return
                if parts[3] == "events":
                    self._stream_events(job)
                    return
        self._error(404, f"no such endpoint: GET {self.path}")

    def _stream_events(self, job: Any) -> None:
        """NDJSON event tail: replay the log, follow until terminal.

        The response length is unknowable up front, so the stream is
        sent with ``Connection: close`` (the HTTP/1.0-style framing
        every client understands) instead of chunked encoding.
        """
        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        self.send_header("Cache-Control", "no-store")
        self.send_header("Connection", "close")
        self.end_headers()
        self.close_connection = True
        seq = 0
        try:
            while True:
                events = job.events_since(seq)
                for event in events:
                    self.wfile.write(_encode(event))
                self.wfile.flush()
                seq += len(events)
                if job.done and not job.events_since(seq):
                    return
                job.wait_event(seq, timeout=1.0)
        except (BrokenPipeError, ConnectionResetError):
            # The tailing client hung up; nothing to clean up.
            return

    def do_DELETE(self) -> None:  # noqa: N802 - stdlib handler API
        """No deletable resources in v1 — always 404."""
        self._error(404, f"no such endpoint: DELETE {self.path}")


def _version() -> str:
    from .. import __version__

    return __version__


class ReproServer(ThreadingHTTPServer):
    """Threaded HTTP server bound to one :class:`SimService`."""

    daemon_threads = True
    allow_reuse_address = True
    # The stdlib default listen backlog is 5; a barrier-released load
    # wave opens hundreds of connections in the same millisecond and
    # the kernel RSTs the overflow.  512 comfortably covers the
    # acceptance target (200+ concurrent submitters plus their event
    # streams) while staying under typical somaxconn.
    request_queue_size = 512

    def __init__(self, address: tuple[str, int], service: SimService) -> None:
        super().__init__(address, ServeHandler)
        self.service = service
        self.verbose = False


def create_server(
    service: SimService, host: str = "127.0.0.1", port: int = 0
) -> ReproServer:
    """Bind a server (``port=0`` picks an ephemeral port)."""
    return ReproServer((host, port), service)


def serve_forever(
    server: ReproServer,
    *,
    install_signals: bool = True,
) -> None:
    """Run until SIGTERM/SIGINT, then drain gracefully.

    The signal handler flips the service into draining mode (new
    submissions answer 503) and stops the accept loop from a helper
    thread (``shutdown()`` deadlocks when called from the loop's own
    thread); queued jobs then finish before the call returns.
    """
    if install_signals:

        def _begin_shutdown(signum: int, frame: Any) -> None:
            server.service._draining = True
            threading.Thread(target=server.shutdown, daemon=True).start()

        signal.signal(signal.SIGTERM, _begin_shutdown)
        signal.signal(signal.SIGINT, _begin_shutdown)
    try:
        server.serve_forever()
    finally:
        server.service.drain()
        server.server_close()

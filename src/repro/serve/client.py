"""Tiny stdlib client for ``repro serve``.

Backs the ``repro submit`` CLI verb, the load-test harness and the
integration tests; uses :mod:`urllib.request` only, so any machine
that can run the simulator can drive a remote one.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Any, Iterator, Mapping

from ..errors import BenchmarkError


class ServeError(BenchmarkError):
    """A non-2xx response from the service."""

    def __init__(
        self,
        status: int,
        message: str,
        *,
        retry_after: float | None = None,
    ) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.retry_after = retry_after


class JobFailedError(BenchmarkError):
    """The submitted job finished in the ``failed`` state."""


class ServeClient:
    """One tenant's handle on a running simulation service."""

    def __init__(
        self,
        base_url: str,
        *,
        tenant: str | None = None,
        timeout: float = 60.0,
    ) -> None:
        self.base_url = base_url.rstrip("/")
        self.tenant = tenant
        self.timeout = timeout

    # -- transport ------------------------------------------------------

    def _request(
        self,
        method: str,
        path: str,
        payload: "Mapping[str, Any] | None" = None,
    ) -> Any:
        body = None
        headers = {"Accept": "application/json"}
        if payload is not None:
            body = json.dumps(payload, default=str).encode("utf-8")
            headers["Content-Type"] = "application/json"
        if self.tenant is not None:
            headers["X-Repro-Tenant"] = self.tenant
        request = urllib.request.Request(
            self.base_url + path, data=body, headers=headers, method=method
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as resp:
                return json.loads(resp.read().decode("utf-8"))
        except urllib.error.HTTPError as exc:
            retry_after = None
            header = exc.headers.get("Retry-After") if exc.headers else None
            if header is not None:
                try:
                    retry_after = float(header)
                except ValueError:
                    pass
            try:
                detail = json.loads(exc.read().decode("utf-8"))
                message = detail.get("error", str(detail))
            except (ValueError, OSError):
                message = exc.reason or "request failed"
            raise ServeError(
                exc.code, str(message), retry_after=retry_after
            ) from None
        except urllib.error.URLError as exc:
            raise BenchmarkError(
                f"cannot reach {self.base_url}: {exc.reason}"
            ) from None

    # -- submissions ----------------------------------------------------

    def submit(self, kind: str, payload: Mapping[str, Any]) -> str:
        """POST one request; returns the job id."""
        answer = self._request("POST", f"/v1/{kind}", payload)
        return answer["job"]["id"]

    def submit_run(
        self, artifact: str, params: "Mapping[str, Any] | None" = None
    ) -> str:
        """``POST /v1/run`` one artifact; returns the job id."""
        return self.submit("run", {"artifact": artifact, "params": dict(params or {})})

    def submit_sweep(
        self,
        artifacts: "list[str] | tuple[str, ...]",
        params: "Mapping[str, Any] | None" = None,
    ) -> str:
        """``POST /v1/sweep`` several artifacts; returns the job id."""
        return self.submit(
            "sweep",
            {"artifacts": list(artifacts), "params": dict(params or {})},
        )

    def submit_whatif(self, **payload: Any) -> str:
        """``POST /v1/whatif`` (scenario or artifact+overrides); job id."""
        return self.submit("whatif", payload)

    def submit_shadow(self, **payload: Any) -> str:
        """``POST /v1/shadow`` with an inline telemetry stream; job id."""
        return self.submit("shadow", payload)

    # -- lookup ---------------------------------------------------------

    def job(self, job_id: str) -> dict[str, Any]:
        """``GET /v1/jobs/<id>`` — the current job record."""
        return self._request("GET", f"/v1/jobs/{job_id}")

    def wait(
        self,
        job_id: str,
        *,
        timeout: float = 300.0,
        poll: float = 0.05,
    ) -> dict[str, Any]:
        """Poll until the job is terminal; returns its final record.

        Raises :class:`JobFailedError` on a failed job and
        :class:`BenchmarkError` on timeout.
        """
        deadline = time.monotonic() + timeout
        while True:
            record = self.job(job_id)
            if record["state"] == "done":
                return record
            if record["state"] == "failed":
                raise JobFailedError(
                    f"job {job_id} failed: {record.get('error')}"
                )
            if time.monotonic() >= deadline:
                raise BenchmarkError(
                    f"job {job_id} still {record['state']} after {timeout}s"
                )
            time.sleep(poll)

    def events(self, job_id: str) -> Iterator[dict[str, Any]]:
        """Stream the job's NDJSON event tail (blocks until terminal)."""
        request = urllib.request.Request(
            f"{self.base_url}/v1/jobs/{job_id}/events",
            headers=(
                {"X-Repro-Tenant": self.tenant} if self.tenant else {}
            ),
        )
        with urllib.request.urlopen(request, timeout=self.timeout) as resp:
            for line in resp:
                line = line.strip()
                if line:
                    yield json.loads(line.decode("utf-8"))

    # -- service introspection -----------------------------------------

    def health(self) -> dict[str, Any]:
        """``GET /v1/health`` — liveness, version and queue depth."""
        return self._request("GET", "/v1/health")

    def stats(self) -> dict[str, Any]:
        """``GET /v1/stats`` — queue/store/latency aggregates."""
        return self._request("GET", "/v1/stats")

    def metrics(self) -> dict[str, Any]:
        """``GET /v1/metrics`` — the service MetricsRegistry snapshot."""
        return self._request("GET", "/v1/metrics")

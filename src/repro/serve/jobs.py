"""Async job queue of the simulation service.

A :class:`Job` is one accepted request (run/sweep/whatif/shadow)
moving through ``queued → running → done|failed``; every transition
and progress beat is appended to the job's *event log*, which the
``GET /v1/jobs/<id>/events`` NDJSON stream replays and tails.  The
:class:`JobQueue` is a bounded FIFO drained by a small pool of worker
threads — bounded, because an unbounded queue converts overload into
unbounded latency; a full queue is an admission failure
(:class:`QueueFullError` → HTTP 429) the client can retry against.

Jobs execute in *threads*, not processes: each executes through its
own :class:`~repro.runner.SweepRunner` against the shared
content-addressed result store, so concurrent identical queries
deduplicate at the cache and the working set stays warm across
tenants.  The ambient simulation contexts (topology, faults,
algorithm, observation) are ``contextvars`` — per-thread — so
concurrent sessions cannot leak configuration into each other.
"""

from __future__ import annotations

import itertools
import queue
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable

from ..errors import BenchmarkError


class JobState:
    """Lifecycle states (plain strings, JSON-friendly)."""

    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"

    TERMINAL = frozenset({DONE, FAILED})


class QueueFullError(BenchmarkError):
    """The bounded job queue cannot admit another job right now."""

    def __init__(self, depth: int, capacity: int) -> None:
        super().__init__(
            f"job queue is full ({depth}/{capacity} queued); retry shortly"
        )
        self.depth = depth
        self.capacity = capacity


@dataclass
class Job:
    """One accepted request and its full lifecycle record."""

    id: str
    kind: str
    tenant: str
    request: dict[str, Any]
    state: str = JobState.QUEUED
    created: float = field(default_factory=time.time)
    started: float | None = None
    finished: float | None = None
    result: Any = None
    error: str | None = None
    #: Monotonic submit instant, for latency accounting.
    submitted_at: float = field(default_factory=time.perf_counter)
    #: Queue wait + execution, seconds (set when the job finishes).
    latency: float | None = None

    def __post_init__(self) -> None:
        self._condition = threading.Condition()
        self._events: list[dict[str, Any]] = []
        self.add_event("queued", tenant=self.tenant, kind=self.kind)

    # -- events ---------------------------------------------------------

    def add_event(self, event: str, **detail: Any) -> None:
        """Append one event beat and wake any streaming readers."""
        with self._condition:
            self._events.append(
                {
                    "seq": len(self._events),
                    "job": self.id,
                    "event": event,
                    "t": time.time(),
                    **detail,
                }
            )
            self._condition.notify_all()

    def events_since(self, seq: int) -> list[dict[str, Any]]:
        """Events with ``seq >= seq`` (a snapshot, safe to serialize)."""
        with self._condition:
            return [dict(e) for e in self._events[seq:]]

    def wait_event(self, seq: int, timeout: float | None = None) -> bool:
        """Block until an event with ``seq`` exists (or timeout)."""
        with self._condition:
            return self._condition.wait_for(
                lambda: len(self._events) > seq, timeout=timeout
            )

    # -- lifecycle ------------------------------------------------------

    @property
    def done(self) -> bool:
        """True once the job reached a terminal state."""
        return self.state in JobState.TERMINAL

    def wait(self, timeout: float | None = None) -> bool:
        """Block until the job reaches a terminal state."""
        with self._condition:
            return self._condition.wait_for(lambda: self.done, timeout=timeout)

    def mark_running(self) -> None:
        """Transition queued → running (worker picked the job up)."""
        self.state = JobState.RUNNING
        self.started = time.time()
        self.add_event("running")

    def mark_done(self, result: Any) -> None:
        """Record the result and transition to ``done``."""
        self.result = result
        self.finished = time.time()
        self.latency = time.perf_counter() - self.submitted_at
        self.state = JobState.DONE
        self.add_event("done", seconds=self.latency)

    def mark_failed(self, error: BaseException) -> None:
        """Record the failure and transition to ``failed``."""
        self.error = f"{type(error).__name__}: {error}"
        self.finished = time.time()
        self.latency = time.perf_counter() - self.submitted_at
        self.state = JobState.FAILED
        self.add_event("failed", error=self.error)

    # -- serialization --------------------------------------------------

    def as_dict(self, *, include_result: bool = True) -> dict[str, Any]:
        """JSON-able job summary (the ``GET /v1/jobs/<id>`` body)."""
        out: dict[str, Any] = {
            "id": self.id,
            "kind": self.kind,
            "tenant": self.tenant,
            "state": self.state,
            "created": self.created,
            "started": self.started,
            "finished": self.finished,
            "latency_seconds": self.latency,
            "events": len(self._events),
        }
        if self.error is not None:
            out["error"] = self.error
        if include_result and self.state == JobState.DONE:
            out["result"] = self.result
        return out


_SENTINEL: Any = object()


class JobQueue:
    """Bounded FIFO of jobs drained by ``workers`` threads."""

    def __init__(
        self,
        executor: Callable[[Job], Any],
        *,
        workers: int = 4,
        capacity: int = 256,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if capacity < 1:
            raise ValueError(f"queue capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._executor = executor
        self._queue: "queue.Queue[Any]" = queue.Queue()
        self._lock = threading.Lock()
        self._depth = 0
        self._in_flight = 0
        self._closed = False
        self._ids = itertools.count(1)
        self._threads = [
            threading.Thread(
                target=self._worker, name=f"repro-serve-{i}", daemon=True
            )
            for i in range(workers)
        ]
        for thread in self._threads:
            thread.start()

    # -- introspection --------------------------------------------------

    @property
    def depth(self) -> int:
        """Jobs admitted but not yet picked up by a worker."""
        return self._depth

    @property
    def in_flight(self) -> int:
        """Jobs currently executing on a worker thread."""
        return self._in_flight

    def next_id(self) -> str:
        """The next monotonically-increasing job id (``j000001`` …)."""
        return f"j{next(self._ids):06d}"

    # -- submission -----------------------------------------------------

    def submit(self, job: Job) -> Job:
        """Enqueue an already-validated job.

        Raises :class:`QueueFullError` when the bounded queue is at
        capacity — the caller maps that to backpressure (HTTP 429).
        """
        with self._lock:
            if self._closed:
                raise QueueFullError(self._depth, self.capacity)
            if self._depth >= self.capacity:
                raise QueueFullError(self._depth, self.capacity)
            self._depth += 1
        self._queue.put(job)
        return job

    # -- worker loop ----------------------------------------------------

    def _worker(self) -> None:
        while True:
            item = self._queue.get()
            if item is _SENTINEL:
                return
            job: Job = item
            with self._lock:
                self._depth -= 1
                self._in_flight += 1
            try:
                job.mark_running()
                try:
                    job.mark_done(self._executor(job))
                except Exception as exc:  # noqa: BLE001 - job isolation:
                    # one bad request must not take down the worker.
                    job.mark_failed(exc)
            finally:
                with self._lock:
                    self._in_flight -= 1

    # -- shutdown -------------------------------------------------------

    def close(self, *, drain: bool = True) -> None:
        """Stop the workers.

        With ``drain=True`` (graceful shutdown) already-queued jobs
        finish first: each worker eats the queue until it reaches its
        sentinel.  The queue refuses new submissions either way.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
        if not drain:
            # Drop everything still queued; their clients see QUEUED
            # forever, which is why non-drain close is test-only.
            try:
                while True:
                    self._queue.get_nowait()
            except queue.Empty:
                pass
            with self._lock:
                self._depth = 0
        for _ in self._threads:
            self._queue.put(_SENTINEL)
        for thread in self._threads:
            thread.join()

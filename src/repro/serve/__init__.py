"""Simulation-as-a-service: the long-lived ``repro serve`` frontend.

The ROADMAP's production story: one resident simulator process
answering "what does this transfer/collective cost on this fabric?"
for many concurrent clients, with the content-addressed
:class:`~repro.runner.ResultCache` promoted to a shared multi-tenant
result store (identical questions from different tenants deduplicate
for free, because cache keys already cover params + calibration +
topology + faults).

Layers, bottom up:

- :mod:`repro.serve.quota` — per-tenant token buckets;
- :mod:`repro.serve.jobs` — bounded async job queue + worker threads;
- :mod:`repro.serve.service` — validation, admission, dispatch into
  :class:`~repro.runner.SweepRunner`, metrics, graceful drain;
- :mod:`repro.serve.http` — stdlib ``ThreadingHTTPServer`` frontend
  (``POST /v1/{run,sweep,whatif,shadow}``, ``GET /v1/jobs/<id>`` and
  its NDJSON ``/events`` stream, health/stats/metrics);
- :mod:`repro.serve.client` — urllib client (``repro submit``);
- :mod:`repro.serve.loadtest` — the ``bench_serve`` harness.
"""

from .client import JobFailedError, ServeClient, ServeError
from .http import ReproServer, create_server, serve_forever
from .jobs import Job, JobQueue, JobState, QueueFullError
from .loadtest import run_load_test
from .quota import QuotaPolicy, TokenBucket
from .service import (
    BadRequestError,
    KINDS,
    QuotaExceededError,
    ServiceConfig,
    ServiceDrainingError,
    SimService,
)

__all__ = [
    "BadRequestError",
    "Job",
    "JobFailedError",
    "JobQueue",
    "JobState",
    "KINDS",
    "QueueFullError",
    "QuotaExceededError",
    "QuotaPolicy",
    "ReproServer",
    "ServeClient",
    "ServeError",
    "ServiceConfig",
    "ServiceDrainingError",
    "SimService",
    "TokenBucket",
    "create_server",
    "run_load_test",
    "serve_forever",
]

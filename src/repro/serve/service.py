"""The simulation service: validated submissions over the job queue.

:class:`SimService` is the HTTP-free core of ``repro serve`` — the
frontend (:mod:`repro.serve.http`) only parses requests and serializes
responses; everything with behavior lives here so it can be unit
tested without sockets:

- request validation per endpoint kind (unknown artifacts, scenarios
  and telemetry are rejected *before* a job is created);
- per-tenant token-bucket quotas and bounded-queue admission
  (:class:`QuotaExceededError` / :class:`~repro.serve.jobs.QueueFullError`
  → HTTP 429 + ``Retry-After``);
- dispatch into :class:`~repro.runner.SweepRunner` against one shared
  content-addressed result store, so identical queries from different
  tenants deduplicate for free (the cache key already covers params +
  calibration + topology + faults);
- service metrics (queue depth, in-flight jobs, per-endpoint request
  counters and latency) published into an
  :class:`~repro.obs.MetricsRegistry`;
- graceful drain: :meth:`drain` stops admissions and finishes the
  queue, for SIGTERM handling.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Mapping

from ..errors import BenchmarkError
from ..obs.metrics import MetricsRegistry
from ..runner import ResultCache, SweepRunner
from ..runner.runner import available_cpus
from .jobs import Job, JobQueue, JobState, QueueFullError
from .quota import QuotaPolicy

#: Request kinds ↔ the POST /v1/<kind> endpoints.
KINDS = ("run", "sweep", "whatif", "shadow")

#: Tenant names must be short and printable (they key quota buckets
#: and appear in logs/metrics).
_MAX_TENANT = 64

#: Latency samples retained per endpoint for percentile reporting.
_LATENCY_WINDOW = 4096


class QuotaExceededError(BenchmarkError):
    """The tenant's token bucket is empty."""

    def __init__(self, tenant: str, retry_after: float) -> None:
        super().__init__(
            f"tenant {tenant!r} is over quota; retry in {retry_after:.2f}s"
        )
        self.tenant = tenant
        self.retry_after = retry_after


class ServiceDrainingError(BenchmarkError):
    """The service is shutting down and no longer admits jobs."""

    def __init__(self) -> None:
        super().__init__("service is draining; submit to another replica")


class BadRequestError(BenchmarkError):
    """The request body failed validation (HTTP 400)."""


@dataclass
class ServiceConfig:
    """Tunables of one :class:`SimService` instance."""

    #: Job-queue worker threads ("auto" = schedulable CPUs).
    workers: int | str = 4
    #: Bounded-queue admission limit (queued, not in-flight).
    queue_capacity: int = 256
    #: Per-tenant sustained submissions per second.
    quota_rate: float = 50.0
    #: Per-tenant burst ceiling (bucket capacity).
    quota_burst: float = 100.0
    #: Worker processes each job's SweepRunner may use.  The service
    #: already runs jobs concurrently on threads, so per-job pools
    #: default to serial — oversubscription would thrash the CPUs the
    #: job workers share.
    runner_jobs: int = 1
    #: Shared result-store location (None = $REPRO_CACHE_DIR default).
    cache_dir: str | None = None
    #: Disable the shared store entirely (benchmarking cold paths).
    use_cache: bool = True
    #: Tenant assumed when a request names none.
    default_tenant: str = "anonymous"


def _percentile(samples: list[float], fraction: float) -> float:
    """Nearest-rank percentile of an unsorted sample list."""
    if not samples:
        return 0.0
    ordered = sorted(samples)
    rank = max(0, min(len(ordered) - 1, int(fraction * len(ordered))))
    return ordered[rank]


class SimService:
    """Long-lived, multi-tenant front door to the simulator."""

    def __init__(
        self,
        config: ServiceConfig | None = None,
        *,
        metrics: MetricsRegistry | None = None,
        quota: QuotaPolicy | None = None,
    ) -> None:
        self.config = config or ServiceConfig()
        workers = self.config.workers
        if workers == "auto" or workers == 0:
            workers = available_cpus()
        self.metrics = metrics or MetricsRegistry()
        self.quota = quota or QuotaPolicy(
            self.config.quota_rate, self.config.quota_burst
        )
        self._jobs: dict[str, Job] = {}
        self._jobs_lock = threading.Lock()
        self._latency: dict[str, deque[float]] = {
            kind: deque(maxlen=_LATENCY_WINDOW) for kind in KINDS
        }
        self._draining = False
        self.started_at = time.time()
        self.queue = JobQueue(
            self._execute, workers=int(workers), capacity=self.config.queue_capacity
        )

    # -- admission ------------------------------------------------------

    @property
    def draining(self) -> bool:
        """True once a drain started — new submissions are refused."""
        return self._draining

    def _tenant(self, payload: Mapping[str, Any], tenant: str | None) -> str:
        name = tenant or payload.get("tenant") or self.config.default_tenant
        if not isinstance(name, str) or not name.strip():
            raise BadRequestError("tenant must be a non-empty string")
        name = name.strip()
        if len(name) > _MAX_TENANT or not name.isprintable():
            raise BadRequestError(
                f"tenant name must be printable and <= {_MAX_TENANT} chars"
            )
        return name

    def submit(
        self,
        kind: str,
        payload: Mapping[str, Any] | None = None,
        *,
        tenant: str | None = None,
    ) -> Job:
        """Validate, quota-check and enqueue one request.

        Raises :class:`BadRequestError` (400),
        :class:`QuotaExceededError` (429),
        :class:`~repro.serve.jobs.QueueFullError` (429) or
        :class:`ServiceDrainingError` (503).
        """
        if kind not in KINDS:
            raise BadRequestError(
                f"unknown request kind {kind!r} (known: {', '.join(KINDS)})"
            )
        if self._draining:
            raise ServiceDrainingError()
        payload = dict(payload or {})
        tenant_name = self._tenant(payload, tenant)
        request = self._validate(kind, payload)
        retry_after = self.quota.admit(tenant_name)
        if retry_after > 0.0:
            self.metrics.counter("serve/rejected/quota").inc()
            raise QuotaExceededError(tenant_name, retry_after)
        job = Job(
            id=self.queue.next_id(),
            kind=kind,
            tenant=tenant_name,
            request=request,
        )
        with self._jobs_lock:
            self._jobs[job.id] = job
        try:
            self.queue.submit(job)
        except QueueFullError:
            with self._jobs_lock:
                del self._jobs[job.id]
            self.metrics.counter("serve/rejected/queue").inc()
            raise
        self.metrics.counter(f"serve/requests/{kind}").inc()
        self.metrics.gauge("serve/queue_depth").set(self.queue.depth)
        return job

    # -- validation -----------------------------------------------------

    def _validate(self, kind: str, payload: dict[str, Any]) -> dict[str, Any]:
        """Normalize a request body; raises :class:`BadRequestError`."""
        from .. import figures

        payload.pop("tenant", None)
        if kind == "run":
            artifact = payload.get("artifact")
            if not isinstance(artifact, str):
                raise BadRequestError("run requires an 'artifact' string")
            known = figures.all_ids()
            artifact = figures.canonical_id(artifact)
            if artifact not in known:
                raise BadRequestError(
                    f"unknown artifact {payload.get('artifact')!r} "
                    f"(valid: {', '.join(known)})"
                )
            params = payload.get("params") or {}
            if not isinstance(params, Mapping):
                raise BadRequestError("'params' must be an object")
            return {"artifact": artifact, "params": dict(params)}
        if kind == "sweep":
            artifacts = payload.get("artifacts")
            if not isinstance(artifacts, (list, tuple)) or not artifacts:
                raise BadRequestError(
                    "sweep requires a non-empty 'artifacts' list"
                )
            known = figures.all_ids()
            if artifacts == ["all"]:
                resolved = list(known)
            else:
                resolved = [
                    figures.canonical_id(a) if isinstance(a, str) else a
                    for a in artifacts
                ]
                unknown = [a for a in resolved if a not in known]
                if unknown:
                    raise BadRequestError(
                        f"unknown artifact(s): {unknown!r} "
                        f"(valid: {', '.join(known)})"
                    )
            params = payload.get("params") or {}
            if not isinstance(params, Mapping):
                raise BadRequestError("'params' must be an object")
            return {"artifacts": resolved, "params": dict(params)}
        if kind == "whatif":
            return self._validate_whatif(payload)
        # shadow
        text = payload.get("telemetry")
        records = payload.get("records")
        if (text is None) == (records is None):
            raise BadRequestError(
                "shadow requires exactly one of 'telemetry' (JSONL text) "
                "or 'records' (list of record objects)"
            )
        from ..errors import TelemetryError
        from ..twin.schema import loads_telemetry, record_from_json, stream_from_records

        try:
            if text is not None:
                stream = loads_telemetry(str(text))
            else:
                if not isinstance(records, (list, tuple)):
                    raise BadRequestError("'records' must be a list")
                stream = stream_from_records(
                    record_from_json(entry, line=i + 1)
                    for i, entry in enumerate(records)
                )
        except TelemetryError as exc:
            raise BadRequestError(f"bad telemetry: {exc}") from None
        window = payload.get("window")
        if window is not None and (
            not isinstance(window, (int, float)) or window <= 0
        ):
            raise BadRequestError("'window' must be a positive number")
        threshold = payload.get("alert_threshold")
        if threshold is not None and not isinstance(threshold, (int, float)):
            raise BadRequestError("'alert_threshold' must be a number")
        return {
            "stream": stream,
            "window": window,
            "alert_threshold": threshold,
        }

    def _validate_whatif(self, payload: dict[str, Any]) -> dict[str, Any]:
        """A what-if is a scenario validation or an artifact override run.

        - ``{"scenario": NAME}`` answers "does the fabric still behave
          consistently under this design variant?" by running the
          validation battery on the scenario's topology+calibration.
        - ``{"artifact": ID, "topology"/"algorithm": ...}`` answers
          "what does this measurement look like on that fabric /
          collective algorithm?" by running the artifact under ambient
          overrides.
        """
        from .. import figures
        from ..core.whatif import SCENARIOS

        scenario = payload.get("scenario")
        artifact = payload.get("artifact")
        if scenario is None and artifact is None:
            raise BadRequestError(
                "whatif requires 'scenario' and/or 'artifact'"
            )
        request: dict[str, Any] = {}
        if scenario is not None:
            if scenario not in SCENARIOS:
                raise BadRequestError(
                    f"unknown scenario {scenario!r} "
                    f"(valid: {', '.join(sorted(SCENARIOS))})"
                )
            request["scenario"] = scenario
        if artifact is not None:
            known = figures.all_ids()
            resolved = (
                figures.canonical_id(artifact)
                if isinstance(artifact, str)
                else artifact
            )
            if resolved not in known:
                raise BadRequestError(
                    f"unknown artifact {artifact!r} "
                    f"(valid: {', '.join(known)})"
                )
            if scenario is not None:
                raise BadRequestError(
                    "whatif takes 'scenario' or 'artifact', not both "
                    "(scenario variants change the calibration, which "
                    "artifact sweeps pin)"
                )
            topology = payload.get("topology")
            if topology is not None:
                from ..errors import ConfigurationError, TopologyError
                from ..session import resolve_topology

                try:
                    resolve_topology(topology)
                except (OSError, ConfigurationError, TopologyError, ValueError) as exc:
                    raise BadRequestError(f"bad topology: {exc}") from None
            algorithm = payload.get("algorithm")
            if algorithm is not None:
                from ..errors import RcclError
                from ..rccl.algorithms import check_algorithm

                try:
                    check_algorithm(algorithm)
                except RcclError as exc:
                    raise BadRequestError(str(exc)) from None
            params = payload.get("params") or {}
            if not isinstance(params, Mapping):
                raise BadRequestError("'params' must be an object")
            request.update(
                {
                    "artifact": resolved,
                    "topology": topology,
                    "algorithm": algorithm,
                    "params": dict(params),
                }
            )
        return request

    # -- execution ------------------------------------------------------

    def _runner(self, *, topology: Any = None, algorithm: Any = None) -> SweepRunner:
        """A fresh per-job runner over the *shared* result store.

        Each job gets its own :class:`ResultCache` object pointing at
        the one shared directory: the store (and therefore cross-client
        dedup) is shared, while hit/miss accounting stays per job.
        """
        return SweepRunner(
            self.config.runner_jobs,
            use_cache=self.config.use_cache,
            cache_dir=self.config.cache_dir,
            topology=topology,
            algorithm=algorithm,
        )

    def _execute(self, job: Job) -> Any:
        request = job.request
        started = time.perf_counter()
        if job.kind == "run":
            runner = self._runner()
            result = runner.run_experiment(
                request["artifact"], **request["params"]
            )
            payload = self._run_payload(request["artifact"], result, runner)
        elif job.kind == "sweep":
            runner = self._runner()
            results = runner.run_many(
                request["artifacts"], **request["params"]
            )
            payload = {
                "artifacts": request["artifacts"],
                "results": {
                    artifact_id: self._run_payload(artifact_id, result, None)
                    for artifact_id, result in results.items()
                },
                "runner": runner.stats.as_dict(),
            }
        elif job.kind == "whatif":
            payload = self._execute_whatif(job)
        else:  # shadow
            from ..twin.replay import shadow_replay

            runner = self._runner()
            report = shadow_replay(
                request["stream"],
                window=request["window"],
                alert_threshold=(
                    request["alert_threshold"]
                    if request["alert_threshold"] is not None
                    else 0.05
                ),
                runner=runner,
            )
            payload = {
                "shadow": report.as_dict(),
                "runner": runner.stats.as_dict(),
            }
        elapsed = time.perf_counter() - started
        self._latency[job.kind].append(elapsed)
        self.metrics.timeseries(f"serve/latency/{job.kind}").observe(
            time.time() - self.started_at, elapsed
        )
        self.metrics.counter("serve/jobs/done").inc()
        self.metrics.gauge("serve/queue_depth").set(self.queue.depth)
        return payload

    def _execute_whatif(self, job: Job) -> dict[str, Any]:
        request = job.request
        if "scenario" in request:
            from ..core.validation import validate_node
            from ..core.whatif import get_scenario

            scenario = get_scenario(request["scenario"])
            runner = self._runner()
            report = validate_node(
                scenario.topology, scenario.calibration, runner=runner
            )
            return {
                "scenario": scenario.name,
                "description": scenario.description,
                "passed": report.passed,
                "validation": report.as_dict(),
                "runner": runner.stats.as_dict(),
            }
        from ..session import resolve_topology

        topology = (
            resolve_topology(request["topology"])
            if request["topology"] is not None
            else None
        )
        runner = self._runner(
            topology=topology, algorithm=request["algorithm"]
        )
        result = runner.run_experiment(
            request["artifact"], **request["params"]
        )
        payload = self._run_payload(request["artifact"], result, runner)
        payload["topology"] = request["topology"]
        payload["algorithm"] = request["algorithm"]
        return payload

    @staticmethod
    def _run_payload(
        artifact_id: str, result: Any, runner: SweepRunner | None
    ) -> dict[str, Any]:
        from .. import figures

        payload: dict[str, Any] = {
            "artifact": artifact_id,
            "title": result.title,
            "measurements": len(result),
            "wall_seconds": result.wall_seconds,
            "canonical": result.canonical(),
            "report": figures.report(artifact_id, result),
        }
        if runner is not None:
            payload["runner"] = runner.stats.as_dict()
        return payload

    # -- lookup / introspection ----------------------------------------

    def job(self, job_id: str) -> Job | None:
        """Look up one job by id (``None`` when unknown)."""
        with self._jobs_lock:
            return self._jobs.get(job_id)

    def jobs(self) -> list[Job]:
        """A snapshot list of every job the service remembers."""
        with self._jobs_lock:
            return list(self._jobs.values())

    def stats(self) -> dict[str, Any]:
        """Queue/latency/cache overview (the ``GET /v1/stats`` body)."""
        with self._jobs_lock:
            jobs = list(self._jobs.values())
        by_state: dict[str, int] = {}
        for job in jobs:
            by_state[job.state] = by_state.get(job.state, 0) + 1
        latency = {
            kind: {
                "count": len(samples),
                "p50_ms": _percentile(list(samples), 0.50) * 1e3,
                "p95_ms": _percentile(list(samples), 0.95) * 1e3,
                "p99_ms": _percentile(list(samples), 0.99) * 1e3,
            }
            for kind, samples in self._latency.items()
            if samples
        }
        out: dict[str, Any] = {
            "draining": self._draining,
            "queue_depth": self.queue.depth,
            "in_flight": self.queue.in_flight,
            "queue_capacity": self.queue.capacity,
            "jobs": by_state,
            "tenants": self.quota.tenants(),
            "latency": latency,
            "uptime_seconds": time.time() - self.started_at,
        }
        if self.config.use_cache:
            store = ResultCache(self.config.cache_dir)
            out["store"] = {
                "directory": str(store.directory),
                "entries": store.entry_count(),
                "bytes": store.total_bytes(),
            }
        return out

    # -- shutdown -------------------------------------------------------

    def drain(self) -> None:
        """Graceful shutdown: refuse new jobs, finish the queue."""
        self._draining = True
        self.queue.close(drain=True)

    def close(self) -> None:
        """Immediate shutdown (tests): drop queued jobs."""
        self._draining = True
        self.queue.close(drain=False)

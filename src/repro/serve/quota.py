"""Per-tenant token-bucket admission quotas.

Every tenant of a :class:`~repro.serve.service.SimService` owns one
:class:`TokenBucket`: a submission spends a token, tokens refill at
``rate`` per second up to a ``burst`` ceiling.  An empty bucket means
the request is rejected *before* it touches the job queue, with a
``retry_after`` hint of how long until the next token accrues — the
HTTP layer turns that into ``429`` + ``Retry-After``.

The policy is deliberately tiny and deterministic: a pluggable
``clock`` (defaults to ``time.monotonic``) makes quota behavior unit
testable without sleeping, and all state lives behind one lock so the
threaded HTTP frontend can consult it concurrently.
"""

from __future__ import annotations

import threading
import time
from typing import Callable


class TokenBucket:
    """One tenant's refillable submission allowance."""

    __slots__ = ("rate", "burst", "tokens", "updated")

    def __init__(self, rate: float, burst: float, *, now: float) -> None:
        if rate <= 0:
            raise ValueError(f"quota rate must be > 0, got {rate}")
        if burst < 1:
            raise ValueError(f"quota burst must be >= 1, got {burst}")
        self.rate = float(rate)
        self.burst = float(burst)
        self.tokens = float(burst)
        self.updated = now

    def try_acquire(self, now: float) -> float:
        """Spend one token; ``0.0`` on success, else seconds to retry.

        Refills lazily from the elapsed time since the last call, so
        an idle tenant recovers its full burst without any background
        timer.
        """
        elapsed = max(0.0, now - self.updated)
        self.tokens = min(self.burst, self.tokens + elapsed * self.rate)
        self.updated = now
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return 0.0
        return (1.0 - self.tokens) / self.rate


class QuotaPolicy:
    """Per-tenant token buckets with shared rate/burst defaults."""

    def __init__(
        self,
        rate: float = 50.0,
        burst: float = 100.0,
        *,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.rate = float(rate)
        self.burst = float(burst)
        self._clock = clock
        self._buckets: dict[str, TokenBucket] = {}
        self._lock = threading.Lock()

    def admit(self, tenant: str) -> float:
        """Charge one submission to ``tenant``.

        Returns ``0.0`` when admitted, or the suggested retry delay in
        seconds when the tenant's bucket is empty.
        """
        now = self._clock()
        with self._lock:
            bucket = self._buckets.get(tenant)
            if bucket is None:
                bucket = self._buckets[tenant] = TokenBucket(
                    self.rate, self.burst, now=now
                )
            return bucket.try_acquire(now)

    def tenants(self) -> list[str]:
        """Tenants that have submitted at least once (sorted)."""
        with self._lock:
            return sorted(self._buckets)

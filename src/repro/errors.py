"""Exception hierarchy for the :mod:`repro` package.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch library failures without catching unrelated bugs.
The hierarchy mirrors the subsystems: simulation engine, topology,
memory system, and the HIP/MPI/RCCL runtime layers.  HIP-layer errors
additionally carry a ``hipError_t``-style status code so benchmark code
ported from the C APIs can branch on status the same way the originals
do.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError):
    """An environment/configuration value is invalid or inconsistent."""


class TopologyError(ReproError):
    """The node topology is malformed or a query cannot be satisfied."""


class RoutingError(TopologyError):
    """No route exists between the requested endpoints."""


class SimulationError(ReproError):
    """The discrete-event engine reached an inconsistent state."""


class SchedulingError(SimulationError):
    """An event was scheduled in the past or on a stopped engine."""


class LinkDownError(SimulationError):
    """A transfer crossed (or tried to cross) a failed, zero-capacity link.

    Raised into flows that are in flight when a :class:`~repro.faults`
    ``LinkFail`` event zeroes their channel's capacity, and by new
    transfers that request a dead channel.  The MPI/RCCL retry and
    reroute machinery catches this to fail over; unhandled, it
    propagates like any other simulation failure.
    """


class MemoryError_(ReproError):
    """Base class for memory-system errors.

    Named with a trailing underscore to avoid shadowing the builtin
    :class:`MemoryError`.
    """


class AllocationError(MemoryError_):
    """An allocation could not be satisfied (OOM, bad size, bad device)."""


class InvalidAddressError(MemoryError_):
    """An operation referenced memory outside any live allocation."""


class PageFaultError(MemoryError_):
    """A GPU access faulted and XNACK retry is disabled (fatal fault)."""


class CoherenceError(MemoryError_):
    """An access violated the coherence rules of its allocation."""


class HipError(ReproError):
    """A HIP API call failed.

    Parameters
    ----------
    status:
        Symbolic status name, mirroring ``hipError_t`` enumerators
        (e.g. ``"hipErrorInvalidDevice"``).
    message:
        Human-readable description.
    """

    def __init__(self, status: str, message: str = "") -> None:
        self.status = status
        super().__init__(f"{status}: {message}" if message else status)


class InvalidDeviceError(HipError):
    """Device ordinal out of range for the current visibility mask."""

    def __init__(self, message: str = "") -> None:
        super().__init__("hipErrorInvalidDevice", message)


class PeerAccessError(HipError):
    """Peer access used without being enabled, or enabled twice."""

    def __init__(self, message: str = "") -> None:
        super().__init__("hipErrorPeerAccessNotEnabled", message)


class StreamError(HipError):
    """Invalid stream operation (e.g. use after destroy)."""

    def __init__(self, message: str = "") -> None:
        super().__init__("hipErrorInvalidHandle", message)


class MpiError(ReproError):
    """An MPI-layer operation failed."""


class RcclError(ReproError):
    """An RCCL-layer operation failed."""


class BenchmarkError(ReproError):
    """A benchmark harness was misused or produced inconsistent output."""


class CalibrationError(ReproError):
    """A calibration profile is incomplete or out of its valid range."""


class TelemetryError(ReproError):
    """A telemetry stream is malformed or cannot be replayed."""

"""Buffer objects and memory kinds.

A :class:`Buffer` is the simulator's stand-in for a pointer returned
by an allocation API.  It records what Table I of the paper encodes:
the allocation kind, its coherence, where the bytes physically live
(a :class:`Location`), and — for managed memory — the page table that
lets pages migrate between locations.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from ..errors import AllocationError, InvalidAddressError


@dataclass(frozen=True, order=True)
class Location:
    """A physical memory location: a GCD's HBM or a host NUMA domain."""

    kind: str  # "gcd" | "host"
    index: int

    def __post_init__(self) -> None:
        if self.kind not in ("gcd", "host"):
            raise AllocationError(f"unknown location kind {self.kind!r}")
        if self.index < 0:
            raise AllocationError("location index must be non-negative")

    @classmethod
    def gcd(cls, index: int) -> "Location":
        return cls("gcd", index)

    @classmethod
    def host(cls, numa_index: int) -> "Location":
        return cls("host", numa_index)

    @property
    def is_device(self) -> bool:
        """True for GCD HBM locations."""
        return self.kind == "gcd"

    @property
    def is_host(self) -> bool:
        """True for host NUMA locations."""
        return self.kind == "host"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.kind}{self.index}"


class MemoryKind(enum.Enum):
    """Allocation kinds of Table I (plus plain device memory)."""

    #: ``hipMalloc`` — device HBM, explicit movement.
    DEVICE = "device"
    #: ``hipHostMalloc(hipHostMallocNonCoherent)`` — pinned, explicit.
    PINNED_NONCOHERENT = "pinned_noncoherent"
    #: ``hipHostMalloc()`` default — pinned, coherent, zero-copy capable.
    PINNED_COHERENT = "pinned_coherent"
    #: ``malloc`` — pageable host memory, explicit movement only.
    PAGEABLE = "pageable"
    #: ``hipMallocManaged`` — unified; zero-copy (XNACK=0) or
    #: fault-migrated (XNACK=1).
    MANAGED = "managed"

    @property
    def is_host_kind(self) -> bool:
        """True for host-only allocation kinds."""
        return self in (
            MemoryKind.PINNED_NONCOHERENT,
            MemoryKind.PINNED_COHERENT,
            MemoryKind.PAGEABLE,
        )

    @property
    def is_pinned(self) -> bool:
        """True for the pinned host kinds."""
        return self in (
            MemoryKind.PINNED_NONCOHERENT,
            MemoryKind.PINNED_COHERENT,
        )


class Buffer:
    """A live allocation.

    ``home`` is where the allocation was created; for managed buffers
    the *current* residency is per page (see ``page_table``) and
    ``home`` is the preferred location.  Buffers compare by identity —
    two allocations are never the same buffer.

    **Functional payload mode**: a buffer normally carries no bytes
    (performance simulation only).  Calling :meth:`ensure_data`
    materializes a real ``numpy`` byte array; transfer operations then
    move actual contents alongside the simulated timing, which lets
    tests verify copies and collectives *numerically*.  Payloads are
    lazy and opt-in so large sweeps stay allocation-free.
    """

    __slots__ = (
        "address",
        "size",
        "kind",
        "home",
        "owner_device",
        "page_table",
        "label",
        "_freed",
        "data",
    )

    def __init__(
        self,
        address: int,
        size: int,
        kind: MemoryKind,
        home: Location,
        *,
        owner_device: Optional[int] = None,
        label: str = "",
    ) -> None:
        if size <= 0:
            raise AllocationError("buffer size must be positive")
        if kind is MemoryKind.DEVICE and not home.is_device:
            raise AllocationError("device buffers must live on a GCD")
        if kind.is_host_kind and not home.is_host:
            raise AllocationError(f"{kind.value} buffers must live on the host")
        self.address = address
        self.size = size
        self.kind = kind
        self.home = home
        self.owner_device = owner_device
        self.page_table = None  # set by the allocator for managed buffers
        self.label = label
        self._freed = False
        self.data = None  # materialized by ensure_data()

    # -- functional payload ------------------------------------------------

    def ensure_data(self):
        """Materialize (and return) the buffer's byte payload."""
        import numpy as np

        self.check_live()
        if self.data is None:
            self.data = np.zeros(self.size, dtype=np.uint8)
        return self.data

    @property
    def has_data(self) -> bool:
        """Whether a payload array has been materialized."""
        return self.data is not None

    def copy_payload_from(self, source: "Buffer", nbytes: int) -> None:
        """Move payload bytes if either side is materialized.

        Copying *to* a materialized destination materializes the
        source (reading uninitialized memory yields zeros, like real
        fresh allocations); copying *from* a materialized source
        materializes the destination.  Purely-simulated transfers
        (neither side materialized) remain free.
        """
        if nbytes < 0 or nbytes > self.size or nbytes > source.size:
            raise InvalidAddressError(
                f"payload copy of {nbytes} bytes exceeds a buffer"
            )
        if not (self.has_data or source.has_data):
            return
        src = source.ensure_data()
        dst = self.ensure_data()
        dst[:nbytes] = src[:nbytes]

    # -- state ----------------------------------------------------------

    @property
    def freed(self) -> bool:
        """Whether the buffer has been freed."""
        return self._freed

    def mark_freed(self) -> None:
        """Transition to freed; double frees raise."""
        if self._freed:
            raise InvalidAddressError(f"double free of buffer @{self.address:#x}")
        self._freed = True

    def check_live(self) -> None:
        """Raise on use-after-free."""
        if self._freed:
            raise InvalidAddressError(
                f"use-after-free of buffer @{self.address:#x} ({self.label!r})"
            )

    # -- geometry -----------------------------------------------------------

    @property
    def end_address(self) -> int:
        """One past the last byte of the allocation."""
        return self.address + self.size

    def contains(self, address: int, size: int = 1) -> bool:
        """Whether ``[address, address+size)`` lies inside the buffer."""
        return self.address <= address and address + size <= self.end_address

    def overlaps(self, other: "Buffer") -> bool:
        """Whether two buffers' address ranges intersect."""
        return self.address < other.end_address and other.address < self.end_address

    # -- residency ---------------------------------------------------------------

    def residency(self, offset: int = 0) -> Location:
        """Where the byte at ``offset`` currently lives."""
        self.check_live()
        if not 0 <= offset < self.size:
            raise InvalidAddressError(
                f"offset {offset} outside buffer of {self.size} bytes"
            )
        if self.page_table is not None:
            return self.page_table.location_of(offset)
        return self.home

    @property
    def is_managed(self) -> bool:
        """True for ``hipMallocManaged`` allocations."""
        return self.kind is MemoryKind.MANAGED

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Buffer {self.label or hex(self.address)} {self.kind.value} "
            f"{self.size}B @{self.home}>"
        )

"""Coherence rules (paper §II-C, Table I).

The rules the simulator enforces:

- Pinned host memory is **coherent by default** ("In HIP, by default,
  host-pinned memory is marked as coherent").
- ``hipHostMallocNonCoherent`` opts out; such memory is intended for
  explicit ``hipMemcpy`` staging.
- Managed memory is coherent.
- Device memory (``hipMalloc``) is non-coherent from the host's view;
  peers access it through enabled peer mappings.
- **Coherent ⇒ GPU caching disabled on MI250X**: every GPU access to
  remote coherent memory crosses the fabric.  This is the property
  that makes zero-copy bandwidth *link-efficiency-bound* rather than
  cache-assisted, and it is why the calibrated kernel efficiencies are
  what they are.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import CoherenceError
from .buffer import Buffer, MemoryKind


def is_coherent(kind: MemoryKind) -> bool:
    """Whether an allocation kind is coherent (Table I's third column)."""
    return kind in (
        MemoryKind.PINNED_COHERENT,
        MemoryKind.MANAGED,
    )


def is_gpu_cacheable(kind: MemoryKind, *, mi300_coherent_fabric: bool = False) -> bool:
    """Whether GPU caches may hold lines of this allocation.

    ``mi300_coherent_fabric`` models the paper's note that MI300A's
    cache-coherent interconnect lifts the no-caching restriction; on
    the MI250X profile it stays ``False``.
    """
    if not is_coherent(kind):
        return True
    return mi300_coherent_fabric


@dataclass(frozen=True)
class CoherencePolicy:
    """Per-node coherence configuration.

    ``mi300_coherent_fabric`` is the single knob; everything else
    follows from the allocation kind.
    """

    mi300_coherent_fabric: bool = False

    def gpu_cacheable(self, buffer: Buffer) -> bool:
        """Whether GPU caches may hold this buffer's lines."""
        return is_gpu_cacheable(
            buffer.kind, mi300_coherent_fabric=self.mi300_coherent_fabric
        )

    def validate_cpu_visibility(self, buffer: Buffer) -> None:
        """CPU-side access rules: device memory is not CPU-addressable."""
        if buffer.kind is MemoryKind.DEVICE:
            raise CoherenceError(
                "CPU access to hipMalloc device memory requires an explicit "
                "copy or managed/pinned memory"
            )

    def requires_fabric_roundtrip(self, buffer: Buffer, *, local: bool) -> bool:
        """Whether each GPU access generates interconnect traffic.

        True exactly for remote coherent memory with GPU caching
        disabled — the zero-copy regime of Fig. 3 and Fig. 8.
        """
        if local:
            return False
        return not self.gpu_cacheable(buffer)

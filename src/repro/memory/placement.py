"""NUMA placement policies for host allocations (paper §IV-B).

``hipHostMalloc`` places pinned memory on the NUMA node closest to the
current device by default; ``hipHostMallocNumaUser`` defers to the
caller's NUMA policy; tools like ``numa_alloc_onnode`` +
``hipHostRegister`` pin user-placed memory.  These policies reproduce
those behaviours for the CommScope NUMA-to-GPU benchmark.
"""

from __future__ import annotations

import abc
import itertools

from ..errors import ConfigurationError
from ..topology.numa import NumaMap


class PlacementPolicy(abc.ABC):
    """Chooses the NUMA domain of a new host allocation."""

    @abc.abstractmethod
    def numa_for(self, *, active_gcd: int, numa_map: NumaMap) -> int:
        """NUMA domain for an allocation while ``active_gcd`` is current."""

    def describe(self) -> str:
        """Short human-readable policy name."""
        return type(self).__name__


class ClosestNumaPolicy(PlacementPolicy):
    """HIP's default: the NUMA node attached to the active GPU."""

    def numa_for(self, *, active_gcd: int, numa_map: NumaMap) -> int:
        """The NUMA domain attached to the active GPU."""
        return numa_map.default_host_numa_for(active_gcd)

    def describe(self) -> str:
        """Short human-readable policy name."""
        return "closest (hipHostMalloc default)"


class ExplicitNumaPolicy(PlacementPolicy):
    """User-directed placement (hipHostMallocNumaUser / numa_alloc)."""

    def __init__(self, numa_index: int) -> None:
        if numa_index < 0:
            raise ConfigurationError("NUMA index must be non-negative")
        self.numa_index = numa_index

    def numa_for(self, *, active_gcd: int, numa_map: NumaMap) -> int:
        """The user-chosen NUMA domain (validated)."""
        if self.numa_index >= numa_map.num_numa_domains:
            raise ConfigurationError(
                f"NUMA {self.numa_index} not present "
                f"({numa_map.num_numa_domains} domains)"
            )
        return self.numa_index

    def describe(self) -> str:
        """Short human-readable policy name."""
        return f"explicit NUMA {self.numa_index}"


class InterleavePolicy(PlacementPolicy):
    """Round-robin across domains (numactl --interleave)."""

    def __init__(self) -> None:
        self._counter = itertools.count()

    def numa_for(self, *, active_gcd: int, numa_map: NumaMap) -> int:
        """Next domain in round-robin order."""
        domains = sorted({numa_map.default_host_numa_for(g) for g in range(numa_map.num_gcds)})
        return domains[next(self._counter) % len(domains)]

    def describe(self) -> str:
        """Short human-readable policy name."""
        return "interleave"

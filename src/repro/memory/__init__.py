"""Memory system: allocations, placement, coherence, page migration.

Models §II-C of the paper — the HIP memory-management landscape that
Table I enumerates:

- :mod:`repro.memory.buffer` — buffer objects and memory kinds
  (device, pinned coherent/non-coherent, pageable, managed).
- :mod:`repro.memory.allocator` — a virtual address space with
  non-overlap invariants and per-device accounting.
- :mod:`repro.memory.pages` — page tables and the XNACK
  fault-and-migrate engine behind `hipMallocManaged` + ``HSA_XNACK=1``.
- :mod:`repro.memory.coherence` — the coherent/non-coherent rules,
  including the MI250X "coherent ⇒ GPU caching disabled" behaviour.
- :mod:`repro.memory.placement` — NUMA placement policies for host
  allocations (default-closest, user-directed, interleave).
"""

from .buffer import Buffer, Location, MemoryKind
from .allocator import AddressSpace
from .pages import PageTable, MigrationEngine
from .coherence import CoherencePolicy, is_coherent, is_gpu_cacheable
from .placement import (
    PlacementPolicy,
    ClosestNumaPolicy,
    ExplicitNumaPolicy,
    InterleavePolicy,
)

__all__ = [
    "Buffer",
    "Location",
    "MemoryKind",
    "AddressSpace",
    "PageTable",
    "MigrationEngine",
    "CoherencePolicy",
    "is_coherent",
    "is_gpu_cacheable",
    "PlacementPolicy",
    "ClosestNumaPolicy",
    "ExplicitNumaPolicy",
    "InterleavePolicy",
]

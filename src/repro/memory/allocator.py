"""A virtual address space with allocation bookkeeping.

The simulator hands out :class:`~repro.memory.buffer.Buffer` objects
instead of raw pointers, but it still maintains a real address map:
addresses are unique, page-aligned, non-overlapping, and resolvable
back to their buffer — the invariants the hypothesis suite checks.
Device allocations additionally debit the owning GCD's HBM ledger
through a caller-provided hook, so device OOM surfaces realistically.
"""

from __future__ import annotations

import bisect
from typing import Callable, Iterator, Optional

from ..errors import AllocationError, InvalidAddressError
from .buffer import Buffer, Location, MemoryKind
from .pages import PageTable

#: Allocation alignment; matches the simulator's default page size.
_ALIGNMENT = 4096
#: Base of the simulated unified virtual address space.
_BASE_ADDRESS = 0x7F00_0000_0000


class AddressSpace:
    """The unified virtual address space of one simulated node."""

    def __init__(self, *, page_size: int = _ALIGNMENT) -> None:
        if page_size <= 0 or page_size & (page_size - 1):
            raise AllocationError("page size must be a positive power of two")
        self.page_size = page_size
        self._next_address = _BASE_ADDRESS
        self._buffers: dict[int, Buffer] = {}
        self._sorted_addresses: list[int] = []

    # -- allocation -------------------------------------------------------

    def allocate(
        self,
        size: int,
        kind: MemoryKind,
        home: Location,
        *,
        owner_device: Optional[int] = None,
        label: str = "",
        reserve: Optional[Callable[[int], None]] = None,
    ) -> Buffer:
        """Create a buffer; ``reserve`` debits physical capacity first."""
        if size <= 0:
            raise AllocationError(f"allocation size must be positive, got {size}")
        if reserve is not None:
            reserve(size)
        aligned = -(-size // self.page_size) * self.page_size
        address = self._next_address
        self._next_address += aligned + self.page_size  # guard page
        buffer = Buffer(
            address, size, kind, home, owner_device=owner_device, label=label
        )
        if kind is MemoryKind.MANAGED:
            buffer.page_table = PageTable(size, self.page_size, home)
        self._buffers[address] = buffer
        bisect.insort(self._sorted_addresses, address)
        return buffer

    def free(
        self,
        buffer: Buffer,
        *,
        release: Optional[Callable[[int], None]] = None,
    ) -> None:
        """Free a buffer; ``release`` credits physical capacity back."""
        if buffer.address not in self._buffers:
            raise InvalidAddressError(
                f"freeing unknown buffer @{buffer.address:#x}"
            )
        buffer.mark_freed()
        del self._buffers[buffer.address]
        index = bisect.bisect_left(self._sorted_addresses, buffer.address)
        del self._sorted_addresses[index]
        if release is not None:
            release(buffer.size)

    # -- lookup ---------------------------------------------------------------

    def resolve(self, address: int) -> Buffer:
        """Buffer containing ``address`` (pointer-arithmetic support)."""
        index = bisect.bisect_right(self._sorted_addresses, address) - 1
        if index >= 0:
            buffer = self._buffers[self._sorted_addresses[index]]
            if buffer.contains(address):
                return buffer
        raise InvalidAddressError(f"address {address:#x} is not mapped")

    def live_buffers(self) -> Iterator[Buffer]:
        """Iterate live buffers in address order."""
        for address in self._sorted_addresses:
            yield self._buffers[address]

    @property
    def num_live(self) -> int:
        """Count of live allocations."""
        return len(self._buffers)

    def total_live_bytes(self, kind: MemoryKind | None = None) -> int:
        """Total live bytes, optionally filtered by kind."""
        return sum(
            b.size
            for b in self._buffers.values()
            if kind is None or b.kind is kind
        )

    def check_invariants(self) -> None:
        """Assert the non-overlap invariant (used by property tests)."""
        previous_end = 0
        for address in self._sorted_addresses:
            buffer = self._buffers[address]
            if buffer.address < previous_end:
                raise AllocationError(
                    f"overlapping buffers at {buffer.address:#x}"
                )
            if buffer.address % self.page_size:
                raise AllocationError(
                    f"misaligned buffer at {buffer.address:#x}"
                )
            previous_end = buffer.end_address

"""Page tables and the XNACK fault-and-migrate engine.

Paper §II-C: with ``HSA_XNACK=1``, a GPU access to a managed page that
is not GPU-resident triggers a retryable page fault; the driver
migrates the whole page and the access retries.  "Migration [is]
performed at the page granularity, where an entire page is migrated,
independent of the size of the data being accessed."

Fig. 3 shows the consequence: streaming a large host-resident managed
array from the GPU achieves only ≈ 2.8 GB/s, because each page pays a
fault-service round trip before its (fast) transfer.

Two execution modes are provided:

- **fluid** (default): a contiguous access range migrates as one flow
  whose rate cap is the analytic fault-bound bandwidth
  ``page / (t_fault + page/link_rate)``.  O(1) DES events per access;
  exact for the steady state the benchmarks measure.
- **discrete**: every page is an individual fault event + transfer
  flow.  O(pages) events; used by the unit tests to validate that the
  fluid cap equals the discrete engine's asymptotic rate.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Callable, Generator, Iterable

from ..errors import InvalidAddressError, PageFaultError
from .buffer import Location

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..hardware.node import HardwareNode
    from .buffer import Buffer


class PageTable:
    """Residency map of one managed buffer.

    Pages are fixed-size; the final page may be partial.  Residency is
    tracked per page index; all pages start at the buffer's home
    location (first-touch by the allocating processor, as HIP does).
    """

    def __init__(self, size: int, page_size: int, home: Location) -> None:
        if size <= 0:
            raise InvalidAddressError("page table needs a positive size")
        if page_size <= 0 or page_size & (page_size - 1):
            raise InvalidAddressError("page size must be a positive power of two")
        self.size = size
        self.page_size = page_size
        self.num_pages = -(-size // page_size)
        self._residency: list[Location] = [home] * self.num_pages
        #: Migration counters, for tests and traces.
        self.migrations_in: int = 0
        self.migrations_out: int = 0

    def page_of(self, offset: int) -> int:
        """Page index containing a byte offset."""
        if not 0 <= offset < self.size:
            raise InvalidAddressError(
                f"offset {offset} outside managed range of {self.size} bytes"
            )
        return offset // self.page_size

    def location_of(self, offset: int) -> Location:
        """Current residency of the page holding an offset."""
        return self._residency[self.page_of(offset)]

    def page_location(self, page_index: int) -> Location:
        """Current residency of a page index."""
        try:
            return self._residency[page_index]
        except IndexError:
            raise InvalidAddressError(
                f"page {page_index} outside table of {self.num_pages} pages"
            ) from None

    def pages_in_range(self, offset: int, length: int) -> range:
        """Page indices touched by ``[offset, offset+length)``."""
        if length <= 0:
            raise InvalidAddressError("range length must be positive")
        if offset < 0 or offset + length > self.size:
            raise InvalidAddressError(
                f"range [{offset}, {offset + length}) outside managed buffer"
            )
        return range(offset // self.page_size, (offset + length - 1) // self.page_size + 1)

    def nonresident_pages(
        self, offset: int, length: int, target: Location
    ) -> list[int]:
        """Pages of a range not currently at ``target``."""
        return [
            p
            for p in self.pages_in_range(offset, length)
            if self._residency[p] != target
        ]

    def migrate(self, page_index: int, target: Location) -> None:
        """Move one page to a target location (idempotent)."""
        current = self.page_location(page_index)
        if current == target:
            return
        self._residency[page_index] = target
        if target.is_device:
            self.migrations_in += 1
        else:
            self.migrations_out += 1

    def migrate_range(self, offset: int, length: int, target: Location) -> int:
        """Migrate all pages of a range; returns pages moved."""
        moved = 0
        for page in self.pages_in_range(offset, length):
            if self._residency[page] != target:
                self.migrate(page, target)
                moved += 1
        return moved

    def resident_fraction(self, target: Location) -> float:
        """Fraction of pages currently at a location."""
        at_target = sum(1 for loc in self._residency if loc == target)
        return at_target / self.num_pages

    def page_bytes(self, page_index: int) -> int:
        """Size of a page (the last page may be partial)."""
        self.page_location(page_index)  # bounds check
        start = page_index * self.page_size
        return min(self.page_size, self.size - start)


class MigrationEngine:
    """Executes fault-driven migrations on a :class:`HardwareNode`."""

    def __init__(self, node: "HardwareNode", *, discrete: bool = False) -> None:
        self.node = node
        self.discrete = discrete
        self._calibration = node.calibration

    # -- channel/rate helpers ------------------------------------------------

    def _transfer_channels(self, source: Location, gcd_index: int) -> list:
        if source.is_host:
            return self.node.host_to_gcd_channels(source.index, gcd_index)
        return self.node.gcd_to_gcd_channels(source.index, gcd_index)

    def _link_rate(self, source: Location, gcd_index: int) -> float:
        """Rate at which one page's bytes move once the fault is serviced."""
        from ..topology.link import LinkTier

        if source.is_host:
            return self._calibration.sdma_cap_for_tier(LinkTier.CPU)
        route = self.node.gcd_route(source.index, gcd_index)
        tier = self.node.bottleneck_tier(route)
        return self._calibration.sdma_cap_for_tier(tier)

    def fault_bound_rate(self, source: Location, gcd_index: int) -> float:
        """Analytic fault-limited migration bandwidth (the 2.8 GB/s)."""
        return self._calibration.page_migration_bw(
            self._link_rate(source, gcd_index)
        )

    # -- migration processes ------------------------------------------------------

    def migrate_for_access(
        self,
        buffer: "Buffer",
        offset: int,
        length: int,
        gcd_index: int,
        *,
        xnack_enabled: bool,
        parent_span: "object" = None,
    ) -> Generator:
        """DES process: make ``[offset, offset+length)`` GPU-resident.

        Yields engine events; on completion the page table reflects the
        new residency.  Raises :class:`PageFaultError` when pages are
        non-resident and XNACK is off (a real fatal GPU fault).
        ``parent_span`` links the fault-service span to the kernel that
        triggered the faults.
        """
        table = buffer.page_table
        if table is None:
            raise PageFaultError("buffer has no page table (not managed)")
        target = Location.gcd(gcd_index)
        pending = table.nonresident_pages(offset, length, target)
        if not pending:
            return
        if not xnack_enabled:
            raise PageFaultError(
                f"GPU fault on non-resident managed page (HSA_XNACK=0); "
                f"buffer {buffer.label!r} page {pending[0]}"
            )
        if self.discrete:
            yield from self._migrate_discrete(
                table, pending, target, gcd_index, parent_span=parent_span
            )
        else:
            yield from self._migrate_fluid(
                table, pending, target, gcd_index, parent_span=parent_span
            )

    def _migrate_fluid(
        self,
        table: PageTable,
        pages: list[int],
        target: Location,
        gcd_index: int,
        *,
        parent_span: "object" = None,
    ) -> Generator:
        spans = self.node.spans
        span = (
            spans.begin(
                "fault",
                "migrate-fluid",
                start=self.node.now,
                parent=parent_span,
                pages=len(pages),
                gcd=gcd_index,
            )
            if spans
            else None
        )
        # Group pages by their current source so each group is one flow.
        by_source: dict[Location, list[int]] = {}
        for page in pages:
            by_source.setdefault(table.page_location(page), []).append(page)
        flows = []
        for source, group in by_source.items():
            total = sum(table.page_bytes(p) for p in group)
            cap = self.fault_bound_rate(source, gcd_index)
            flow = self.node.start_flow(
                self._transfer_channels(source, gcd_index),
                total,
                cap=cap,
                label=f"xnack-migrate x{len(group)}",
                span=span,
            )
            flows.append(flow)
        start = self.node.now
        yield self.node.engine.all_of([f.done for f in flows])
        if span is not None:
            spans.finish(span, self.node.now)
        for source, group in by_source.items():
            for page in group:
                table.migrate(page, target)
        tracer = self.node.tracer
        if tracer.enabled:
            tracer.record(
                start,
                self.node.now,
                "fault",
                "migrate-fluid",
                pages=len(pages),
                gcd=gcd_index,
            )
        metrics = self.node.metrics
        if metrics:
            metrics.counter("memory/faults").inc()
            metrics.counter("memory/pages_migrated").inc(len(pages))

    def _migrate_discrete(
        self,
        table: PageTable,
        pages: list[int],
        target: Location,
        gcd_index: int,
        *,
        parent_span: "object" = None,
    ) -> Generator:
        """Page-at-a-time faults, serialized like the real retry loop."""
        start = self.node.now
        spans = self.node.spans
        span = (
            spans.begin(
                "fault",
                "migrate-discrete",
                start=start,
                parent=parent_span,
                pages=len(pages),
                gcd=gcd_index,
            )
            if spans
            else None
        )
        for page in pages:
            source = table.page_location(page)
            # Fault service: interrupt, driver handling, PT update.
            yield self.node.engine.timeout(self._calibration.xnack_fault_service)
            flow = self.node.start_flow(
                self._transfer_channels(source, gcd_index),
                table.page_bytes(page),
                cap=self._link_rate(source, gcd_index),
                label=f"xnack-page{page}",
                span=span,
            )
            yield flow.done
            table.migrate(page, target)
        if span is not None:
            spans.finish(span, self.node.now)
        tracer = self.node.tracer
        if tracer.enabled:
            tracer.record(
                start,
                self.node.now,
                "fault",
                "migrate-discrete",
                pages=len(pages),
                gcd=gcd_index,
            )
        metrics = self.node.metrics
        if metrics:
            # Discrete mode services one fault per page.
            metrics.counter("memory/faults").inc(len(pages))
            metrics.counter("memory/pages_migrated").inc(len(pages))

    def prefetch(
        self, buffer: "Buffer", target: Location
    ) -> Generator:
        """DES process modelling ``hipMemPrefetchAsync``: bulk migration.

        Prefetch skips the fault path entirely, so it runs at SDMA rate
        — the remedy HIP offers for the 2.8 GB/s fault-bound rate.
        """
        table = buffer.page_table
        if table is None:
            raise PageFaultError("prefetch needs a managed buffer")
        by_source: dict[Location, int] = {}
        pages_by_source: dict[Location, list[int]] = {}
        for page in range(table.num_pages):
            source = table.page_location(page)
            if source == target:
                continue
            by_source[source] = by_source.get(source, 0) + table.page_bytes(page)
            pages_by_source.setdefault(source, []).append(page)
        if not by_source:
            return
        flows = []
        for source, total in by_source.items():
            if target.is_device:
                channels = self._transfer_channels(source, target.index)
                cap = self._link_rate(source, target.index)
            elif source.is_device:
                channels = self.node.gcd_to_host_channels(source.index, target.index)
                from ..topology.link import LinkTier

                cap = self._calibration.sdma_cap_for_tier(LinkTier.CPU)
            else:
                channels = self.node.cpu.host_memcpy_channels(
                    source.index, target.index
                )
                cap = math.inf
            flows.append(
                self.node.start_flow(channels, total, cap=cap, label="prefetch")
            )
        yield self.node.engine.all_of([f.done for f in flows])
        for source, group in pages_by_source.items():
            for page in group:
                table.migrate(page, target)

"""Declarative topologies: the ``repro-topology/1`` file schema.

The paper's results hinge on the exact MI250X link topology, but a
topology that only exists as a Python preset cannot express the
machines *around* the paper — MI300A inter-APU systems (Schieffer et
al. 2025), Pearson's bandwidth-heterogeneous MI250X nodes, MGSim-style
multi-GPU boxes.  This module makes topologies data: a versioned
JSON/YAML document that round-trips through
:class:`~repro.topology.node.NodeTopology` with a stable
:meth:`~repro.topology.node.NodeTopology.fingerprint`, so file-defined
topologies key the result cache exactly like preset-defined ones.

JSON schema (``load_topology``/``dump_topology``)::

    {
      "schema": "repro-topology/1",
      "name": "mi250x-node",
      "gcds": [
        {"index": 0, "gpu_package": 0, "numa_domain": 0,
         "hbm_bytes": 64000000000, "hbm_peak_bw": 1.6e12,
         "l2_bytes": 8388608, "compute_units": 110,
         "sdma_engines": 2}
      ],
      "numa_domains": [
        {"index": 0, "dram_bytes": 128000000000,
         "dram_peak_bw": 51.2e9, "dram_latency": 9.6e-08}
      ],
      "links": [
        {"a": "gcd0", "b": "gcd1", "tier": "quad",
         "capacity_per_direction": 200.0e9},
        {"a": "gcd2", "b": "gcd3", "tier": "quad",
         "capacity_gbps": 168.0},
        {"a": "gcd0", "b": "numa0", "tier": "cpu"},
        {"a": "numa0", "b": "numa4", "tier": "nic"}
      ]
    }

Endpoints are spelled like :class:`~repro.topology.link.LinkEndpoint`
strings (``"gcd3"``, ``"numa2"``); tiers are the lowercase
:class:`~repro.topology.link.LinkTier` names (``single``/``dual``/
``quad``/``cpu``/``nic``).  Every per-GCD and per-NUMA hardware field
is optional and defaults to the MI250X values; the dumper writes all
of them so committed files are self-describing.  A link may carry an
optional ``capacity_gbps`` override (GB/s per direction) replacing its
tier's peak for that one edge — how Pearson-style bandwidth
heterogeneity is expressed as data.  Two *informative* fields are
validated against the model rather than stored:
``capacity_per_direction`` on a link must match its effective capacity
(the tier's peak, or the ``capacity_gbps`` override when present), and
``sdma_engines`` on a GCD must be 2 (the in/out engine pair the
hardware model implements).  Unknown keys anywhere are an error — a
typo must not silently change a machine description.

Files ending in ``.yaml``/``.yml`` are parsed with PyYAML when it is
installed; JSON is the portable interchange format and needs nothing.
"""

from __future__ import annotations

import json
import re
from pathlib import Path
from typing import Any, Mapping, Sequence

from ..errors import TopologyError
from .link import Link, LinkEndpoint, LinkTier
from .node import GcdInfo, NodeTopology, NumaDomainInfo

#: Bumped when the canonical topology encoding itself changes.
TOPOLOGY_SCHEMA = "repro-topology/1"

#: SDMA engines per GCD the hardware model implements (one in/out pair).
SDMA_ENGINES_PER_GCD = 2

_ENDPOINT_RE = re.compile(r"^(gcd|numa)(0|[1-9][0-9]*)$")

_GCD_FIELDS = {
    "index",
    "gpu_package",
    "numa_domain",
    "hbm_bytes",
    "hbm_peak_bw",
    "l2_bytes",
    "compute_units",
    "sdma_engines",
}
_NUMA_FIELDS = {"index", "dram_bytes", "dram_peak_bw", "dram_latency"}
_LINK_FIELDS = {"a", "b", "tier", "capacity_per_direction", "capacity_gbps"}
_TOP_FIELDS = {"schema", "name", "gcds", "numa_domains", "links"}


def _require_mapping(value: Any, what: str) -> Mapping[str, Any]:
    if not isinstance(value, Mapping):
        raise TopologyError(f"{what} must be an object, got {value!r}")
    return value


def _reject_unknown(entry: Mapping[str, Any], allowed: set, what: str) -> None:
    unknown = set(entry) - allowed
    if unknown:
        raise TopologyError(f"{what} has unknown fields {sorted(unknown)}")


def _require_int(entry: Mapping[str, Any], key: str, what: str) -> int:
    value = entry[key]
    if not isinstance(value, int) or isinstance(value, bool):
        raise TopologyError(f"{what} field {key!r} must be an integer, got {value!r}")
    return value


def parse_endpoint(spec: str) -> LinkEndpoint:
    """Parse an endpoint string (``"gcd0"``, ``"numa2"``)."""
    if not isinstance(spec, str):
        raise TopologyError(f"endpoint must be a string, got {spec!r}")
    match = _ENDPOINT_RE.match(spec.strip())
    if match is None:
        raise TopologyError(
            f"bad endpoint {spec!r}: expected 'gcd<N>' or 'numa<N>'"
        )
    return LinkEndpoint(match.group(1), int(match.group(2)))


def _gcd_from_json(entry: Any) -> GcdInfo:
    entry = _require_mapping(entry, "gcd entry")
    _reject_unknown(entry, _GCD_FIELDS, "gcd entry")
    for required in ("index", "gpu_package", "numa_domain"):
        if required not in entry:
            raise TopologyError(f"gcd entry is missing {required!r}: {dict(entry)!r}")
    engines = entry.get("sdma_engines", SDMA_ENGINES_PER_GCD)
    if engines != SDMA_ENGINES_PER_GCD:
        raise TopologyError(
            f"gcd {entry['index']}: sdma_engines must be "
            f"{SDMA_ENGINES_PER_GCD} (the in/out engine pair the hardware "
            f"model implements), got {engines!r}"
        )
    kwargs: dict[str, Any] = {
        "index": _require_int(entry, "index", "gcd entry"),
        "gpu_package": _require_int(entry, "gpu_package", "gcd entry"),
        "numa_domain": _require_int(entry, "numa_domain", "gcd entry"),
    }
    for optional in ("hbm_bytes", "l2_bytes", "compute_units"):
        if optional in entry:
            kwargs[optional] = _require_int(entry, optional, "gcd entry")
    if "hbm_peak_bw" in entry:
        kwargs["hbm_peak_bw"] = float(entry["hbm_peak_bw"])
    return GcdInfo(**kwargs)


def _numa_from_json(entry: Any) -> NumaDomainInfo:
    entry = _require_mapping(entry, "numa_domain entry")
    _reject_unknown(entry, _NUMA_FIELDS, "numa_domain entry")
    if "index" not in entry:
        raise TopologyError(f"numa_domain entry is missing 'index': {dict(entry)!r}")
    kwargs: dict[str, Any] = {
        "index": _require_int(entry, "index", "numa_domain entry")
    }
    if "dram_bytes" in entry:
        kwargs["dram_bytes"] = _require_int(entry, "dram_bytes", "numa_domain entry")
    for optional in ("dram_peak_bw", "dram_latency"):
        if optional in entry:
            kwargs[optional] = float(entry[optional])
    return NumaDomainInfo(**kwargs)


def _link_from_json(entry: Any) -> Link:
    entry = _require_mapping(entry, "link entry")
    _reject_unknown(entry, _LINK_FIELDS, "link entry")
    for required in ("a", "b", "tier"):
        if required not in entry:
            raise TopologyError(f"link entry is missing {required!r}: {dict(entry)!r}")
    tier_name = entry["tier"]
    if not isinstance(tier_name, str):
        raise TopologyError(f"link tier must be a string, got {tier_name!r}")
    try:
        tier = LinkTier[tier_name.strip().upper()]
    except KeyError:
        known = ", ".join(t.name.lower() for t in LinkTier)
        raise TopologyError(
            f"unknown link tier {tier_name!r} (known: {known})"
        ) from None
    override = None
    if "capacity_gbps" in entry:
        declared_gbps = entry["capacity_gbps"]
        if isinstance(declared_gbps, bool) or not isinstance(
            declared_gbps, (int, float)
        ):
            raise TopologyError(
                f"link capacity_gbps must be a number, got {declared_gbps!r}"
            )
        if not float(declared_gbps) > 0.0:
            raise TopologyError(
                f"link capacity_gbps must be positive, got {declared_gbps!r}"
            )
        override = float(declared_gbps) * 1e9
    link = Link(
        parse_endpoint(entry["a"]),
        parse_endpoint(entry["b"]),
        tier,
        capacity_override=override,
    )
    if "capacity_per_direction" in entry:
        declared = float(entry["capacity_per_direction"])
        if declared != link.capacity_per_direction:
            raise TopologyError(
                f"link {link.name}: capacity_per_direction {declared!r} "
                f"disagrees with the effective capacity "
                f"({link.capacity_per_direction!r} bytes/s); it is an "
                f"informative field derived from the tier (or the "
                f"capacity_gbps override) in {TOPOLOGY_SCHEMA}"
            )
    return link


def topology_from_json(
    payload: Mapping[str, Any], *, name: str | None = None
) -> NodeTopology:
    """Parse a ``repro-topology/1`` document; raises :class:`TopologyError`.

    ``name`` overrides the document's display name (used by
    :func:`load_topology` to default to the file stem).
    """
    payload = _require_mapping(payload, "topology document")
    _reject_unknown(payload, _TOP_FIELDS, "topology document")
    schema = payload.get("schema")
    if schema != TOPOLOGY_SCHEMA:
        raise TopologyError(
            f"unsupported topology schema {schema!r} "
            f"(this build reads {TOPOLOGY_SCHEMA!r})"
        )
    for section in ("gcds", "numa_domains", "links"):
        if section not in payload:
            raise TopologyError(f"topology document is missing {section!r}")
        if not isinstance(payload[section], Sequence) or isinstance(
            payload[section], (str, bytes)
        ):
            raise TopologyError(f"topology {section!r} must be a list")
    if name is None:
        name = payload.get("name", "custom")
    if not isinstance(name, str) or not name:
        raise TopologyError(f"topology name must be a non-empty string, got {name!r}")
    gcds = [_gcd_from_json(entry) for entry in payload["gcds"]]
    numa_domains = [_numa_from_json(entry) for entry in payload["numa_domains"]]
    links = [_link_from_json(entry) for entry in payload["links"]]
    return NodeTopology(gcds, numa_domains, links, name=name)


def topology_to_json(topology: NodeTopology) -> dict[str, Any]:
    """Render a topology as a ``repro-topology/1`` document.

    Writes every hardware field explicitly (self-describing files) and
    the informative ``capacity_per_direction``/``sdma_engines`` values,
    in deterministic order, so ``dump → load → dump`` is a fixpoint.
    """
    return {
        "schema": TOPOLOGY_SCHEMA,
        "name": topology.name,
        "gcds": [
            {
                "index": gcd.index,
                "gpu_package": gcd.gpu_package,
                "numa_domain": gcd.numa_domain,
                "hbm_bytes": gcd.hbm_bytes,
                "hbm_peak_bw": gcd.hbm_peak_bw,
                "l2_bytes": gcd.l2_bytes,
                "compute_units": gcd.compute_units,
                "sdma_engines": SDMA_ENGINES_PER_GCD,
            }
            for gcd in topology.gcds()
        ],
        "numa_domains": [
            {
                "index": numa.index,
                "dram_bytes": numa.dram_bytes,
                "dram_peak_bw": numa.dram_peak_bw,
                "dram_latency": numa.dram_latency,
            }
            for numa in topology.numa_domains()
        ],
        "links": [_link_to_json(link) for link in topology.links()],
    }


def _link_to_json(link: Link) -> dict[str, Any]:
    entry: dict[str, Any] = {
        "a": str(min(link.a, link.b)),
        "b": str(max(link.a, link.b)),
        "tier": link.tier.name.lower(),
    }
    if link.capacity_override is not None:
        # Written before the informative capacity so readers see the
        # override next to the tier it replaces.
        entry["capacity_gbps"] = link.capacity_override / 1e9
    entry["capacity_per_direction"] = link.capacity_per_direction
    return entry


def _is_yaml_path(path: Path) -> bool:
    return path.suffix.lower() in (".yaml", ".yml")


def _yaml_module():
    try:
        import yaml
    except ImportError:
        raise TopologyError(
            "YAML topology files need PyYAML, which is not installed; "
            "use the JSON form instead"
        ) from None
    return yaml


def load_topology(path: "str | Path") -> NodeTopology:
    """Read a topology from a JSON (or, with PyYAML, YAML) file.

    The display name defaults to the file stem when the document does
    not carry one; the name never enters the fingerprint, so renaming a
    file cannot invalidate cached results.
    """
    path = Path(path)
    try:
        text = path.read_text()
    except OSError as exc:
        raise TopologyError(f"cannot read topology {path}: {exc}") from None
    if _is_yaml_path(path):
        try:
            payload = _yaml_module().safe_load(text)
        except Exception as exc:  # yaml.YAMLError, but PyYAML may be stubbed
            raise TopologyError(f"topology {path} is not valid YAML: {exc}") from None
    else:
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise TopologyError(f"topology {path} is not valid JSON: {exc}") from None
    document = _require_mapping(payload, f"topology document {path}")
    name = document.get("name", path.stem)
    return topology_from_json(document, name=name)


def dump_topology(topology: NodeTopology, path: "str | Path") -> None:
    """Write a topology file (format chosen by the extension)."""
    path = Path(path)
    payload = topology_to_json(topology)
    if _is_yaml_path(path):
        text = _yaml_module().safe_dump(payload, sort_keys=False)
    else:
        text = json.dumps(payload, indent=2) + "\n"
    path.write_text(text)


#: Preset factories exported to ``benchmarks/topologies/`` (file stem →
#: zero-argument factory).  ``mi250x_node`` is the paper's Fig. 1 node
#: under its interchange name; the committed files are regenerated with
#: :func:`export_preset_files` and round-trip-checked in CI.
PRESET_EXPORTS: "dict[str, Any]" = {}


def _register_preset_exports() -> None:
    from .presets import frontier_node, mi250x_cluster, single_gpu_node

    PRESET_EXPORTS.update(
        {
            "mi250x_node": frontier_node,
            "single_mi250x": single_gpu_node,
            "mi250x_cluster_2": lambda: mi250x_cluster(nodes=2),
            "mi250x_cluster_4": lambda: mi250x_cluster(nodes=4),
        }
    )


_register_preset_exports()


def export_preset_files(directory: "str | Path") -> "list[Path]":
    """Write every :data:`PRESET_EXPORTS` preset under ``directory``.

    Returns the written paths.  Used to (re)generate the committed
    ``benchmarks/topologies/*.json`` files; the round-trip (load →
    fingerprint equality with the code preset) is enforced by CI's
    ``benchmarks/ci/check_topologies.py``.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    written = []
    for stem, factory in sorted(PRESET_EXPORTS.items()):
        path = directory / f"{stem}.json"
        dump_topology(factory(), path)
        written.append(path)
    return written

"""Node topology: GCDs, CPU, NUMA domains, and Infinity Fabric links.

This package models Fig. 1 of the paper: a single-socket third-
generation EPYC CPU with four NUMA domains, four MI250X packages (eight
GCDs), and the xGMI/Infinity Fabric link mesh with its three GCD-GCD
bandwidth tiers (single/dual/quad 50+50 GB/s links) plus one CPU link
per GCD (36+36 GB/s).

Public entry points:

- :func:`repro.topology.presets.frontier_node` builds the exact Fig. 1
  topology (also used by LUMI).
- :class:`repro.topology.node.NodeTopology` is the queryable graph.
- :mod:`repro.topology.routing` implements the two routing policies the
  paper contrasts: shortest-path and bandwidth-maximizing.
"""

from .link import (
    Link,
    LinkTier,
    LinkEndpoint,
    XGMI_LINK_BW,
    CPU_LINK_BW,
    NIC_LINK_BW,
)
from .node import NodeTopology, GcdInfo, NumaDomainInfo
from .presets import (
    frontier_node,
    dense_hive_node,
    mi250x_cluster,
    single_gpu_node,
)
from .routing import (
    Route,
    RoutingPolicy,
    shortest_path,
    bandwidth_maximizing_path,
    all_pairs_hops,
    route_between,
)
from .numa import NumaMap, numa_distance_matrix
from .schema import (
    TOPOLOGY_SCHEMA,
    dump_topology,
    export_preset_files,
    load_topology,
    topology_from_json,
    topology_to_json,
)
from .context import active as active_topology, install as install_topology

__all__ = [
    "Link",
    "LinkTier",
    "LinkEndpoint",
    "XGMI_LINK_BW",
    "CPU_LINK_BW",
    "NIC_LINK_BW",
    "NodeTopology",
    "GcdInfo",
    "NumaDomainInfo",
    "frontier_node",
    "dense_hive_node",
    "mi250x_cluster",
    "single_gpu_node",
    "Route",
    "RoutingPolicy",
    "shortest_path",
    "bandwidth_maximizing_path",
    "all_pairs_hops",
    "route_between",
    "NumaMap",
    "numa_distance_matrix",
    "TOPOLOGY_SCHEMA",
    "load_topology",
    "dump_topology",
    "topology_from_json",
    "topology_to_json",
    "export_preset_files",
    "active_topology",
    "install_topology",
]

"""NUMA affinity queries and placement reasoning (paper §IV-B).

The EPYC socket's memory is split into four NUMA domains, each fronting
the Infinity Fabric ports of one MI250X package (two GCDs).  The paper
probes two facts about this layout:

1. ``hipHostMalloc`` places pinned memory on the NUMA node closest to
   the active GPU by default — modeled by
   :meth:`NumaMap.default_host_numa_for`.
2. Deliberately mismatching NUMA node and GCD shows *no* bandwidth
   degradation, because inter-NUMA bandwidth on the socket far exceeds
   the 36 GB/s Infinity Fabric link — modeled by the distance matrix
   and by the CPU-side capacity model in :mod:`repro.hardware.cpu`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from ..errors import TopologyError
from .node import NodeTopology

#: Typical ACPI SLIT-style distances on a single-socket EPYC: 10 local,
#: 12 to any sibling domain in the same socket.
_LOCAL_DISTANCE = 10
_REMOTE_DISTANCE = 12


@dataclass(frozen=True)
class NumaMap:
    """GCD↔NUMA affinity table, as ``rocm-smi --showtoponuma`` reports."""

    gcd_to_numa: tuple[int, ...]

    @classmethod
    def from_topology(cls, topology: NodeTopology) -> "NumaMap":
        return cls(
            tuple(topology.numa_of_gcd(g.index) for g in topology.gcds())
        )

    @property
    def num_gcds(self) -> int:
        """Number of GCDs in the map."""
        return len(self.gcd_to_numa)

    @property
    def num_numa_domains(self) -> int:
        """Number of distinct NUMA domains."""
        return len(set(self.gcd_to_numa))

    def default_host_numa_for(self, gcd_index: int) -> int:
        """NUMA node `hipHostMalloc` targets when ``gcd_index`` is active."""
        try:
            return self.gcd_to_numa[gcd_index]
        except IndexError:
            raise TopologyError(f"no GCD {gcd_index} in NUMA map") from None

    def gcds_of(self, numa_index: int) -> tuple[int, ...]:
        """GCDs attached to a NUMA domain."""
        gcds = tuple(
            g for g, n in enumerate(self.gcd_to_numa) if n == numa_index
        )
        if not gcds:
            raise TopologyError(f"no GCDs attached to NUMA {numa_index}")
        return gcds

    def is_local(self, gcd_index: int, numa_index: int) -> bool:
        """Whether a host buffer on ``numa_index`` is GCD-local."""
        return self.default_host_numa_for(gcd_index) == numa_index

    def as_table(self) -> Mapping[int, int]:
        """``{gcd: numa}`` mapping, the showtoponuma output shape."""
        return dict(enumerate(self.gcd_to_numa))


def numa_distance_matrix(num_domains: int) -> np.ndarray:
    """SLIT-style distance matrix for a single-socket node.

    All off-diagonal distances are equal — the property responsible for
    the paper's finding that NUMA-mismatched placement does not hurt
    CPU→GPU copy bandwidth.
    """
    if num_domains < 1:
        raise TopologyError("need at least one NUMA domain")
    matrix = np.full((num_domains, num_domains), _REMOTE_DISTANCE, dtype=np.int64)
    np.fill_diagonal(matrix, _LOCAL_DISTANCE)
    return matrix


def interleave_placement(
    buffer_index: int, num_domains: int
) -> int:
    """Round-robin NUMA target, modeling ``numactl --interleave``."""
    if num_domains < 1:
        raise TopologyError("need at least one NUMA domain")
    return buffer_index % num_domains


def numa_mismatch_pairs(topology: NodeTopology) -> list[tuple[int, int]]:
    """All (gcd, numa) combinations that are *not* the default affinity.

    These are the combinations CommScope's NUMA-to-GPU benchmark sweeps
    when probing for placement sensitivity (§IV-B).
    """
    numa_map = NumaMap.from_topology(topology)
    pairs: list[tuple[int, int]] = []
    for gcd in range(numa_map.num_gcds):
        for numa in sorted(set(numa_map.gcd_to_numa)):
            if not numa_map.is_local(gcd, numa):
                pairs.append((gcd, numa))
    return pairs


def gcds_per_numa_count(placement: Sequence[int], topology: NodeTopology) -> dict[int, int]:
    """How many of the selected GCDs share each NUMA domain.

    The Fig. 4/5 scaling behaviour is governed by this count: a NUMA
    domain's Infinity Fabric port saturates once one of its GCDs is
    driving traffic, so two selected GCDs on the same domain do not
    scale.
    """
    counts: dict[int, int] = {}
    for gcd in placement:
        numa = topology.numa_of_gcd(gcd)
        counts[numa] = counts.get(numa, 0) + 1
    return counts

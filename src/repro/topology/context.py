"""Ambient default-topology context.

Mirrors :mod:`repro.faults.context`: a module-level slot holds the
topology sessions should build on when no explicit ``topology=``
argument was given.  This is what lets ``repro run fig11 --topology
mi250x_node.json`` reach the sessions that measurement functions build
*internally* (fig06's P2P matrix, fig11's per-collective sessions)
without threading a parameter through every signature.

The context is a :class:`contextvars.ContextVar`, so it is isolated
per thread (and per asyncio task): every ``repro serve`` job thread
can run under its own topology without clobbering its neighbours,
while single-threaded CLI runs behave exactly as a module global
would.  Sweep workers (separate *processes*) re-install it via
:func:`repro.runner.points.execute_point_in_context`, so parallel
sweeps over a file-defined topology behave identically to serial ones;
the topology's fingerprint is folded into each point's cache key by
:class:`~repro.runner.SweepRunner`.
"""

from __future__ import annotations

from contextlib import contextmanager
from contextvars import ContextVar
from typing import Iterator

from .node import NodeTopology

_ACTIVE: "ContextVar[NodeTopology | None]" = ContextVar(
    "repro_ambient_topology", default=None
)


def active() -> "NodeTopology | None":
    """The ambient topology new sessions should build on, if any."""
    return _ACTIVE.get()


@contextmanager
def install(topology: "NodeTopology | None") -> Iterator["NodeTopology | None"]:
    """Make ``topology`` the ambient default for the duration of the block.

    Nests: the previous topology (usually ``None``) is restored on
    exit.  Installing ``None`` explicitly shields inner code from an
    outer context.
    """
    token = _ACTIVE.set(topology)
    try:
        yield topology
    finally:
        _ACTIVE.reset(token)


def resolve_default(topology: "NodeTopology | None" = None) -> NodeTopology:
    """``topology`` if given, else the ambient one, else the Fig. 1 node.

    The standard default-resolution used by measurement functions and
    figure drivers: an explicit argument always wins, an installed
    ambient topology (``--topology`` runs) comes next, and the paper's
    MI250X node is the fallback — so every paper artifact is unchanged
    unless a topology was asked for.
    """
    if topology is not None:
        return topology
    ambient = _ACTIVE.get()
    if ambient is not None:
        return ambient
    from .presets import frontier_node

    return frontier_node()

"""Infinity Fabric link model.

Paper §II-A: each xGMI link operates on 16 bits per transaction at
25 GT/s, i.e. 50 GB/s peak per direction (50+50 GB/s bidirectional).
GCD-GCD connections bundle one, two, or four such links (the paper's
*single*, *dual*, and *quad* tiers), while each GCD additionally has a
single Infinity Fabric link to the host CPU with 36 GB/s per direction.

A :class:`Link` here is one *edge* of the topology graph — i.e. a whole
bundle, with ``width`` physical xGMI links — because that is the
granularity at which routing and bandwidth sharing operate.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Union

from ..errors import TopologyError
from ..units import gbps

#: Peak bandwidth of one xGMI link, one direction (16 bit × 25 GT/s).
XGMI_LINK_BW = gbps(50.0)

#: Peak bandwidth of the CPU-GCD Infinity Fabric link, one direction.
CPU_LINK_BW = gbps(36.0)

#: Peak bandwidth of one inter-node NIC, one direction.  Frontier/LUMI
#: attach one Slingshot-11 NIC (200 Gb/s ≈ 25 GB/s) per NUMA domain.
NIC_LINK_BW = gbps(25.0)


class LinkTier(enum.Enum):
    """Bandwidth tier of a GCD-GCD connection, the CPU tier, or the
    inter-node NIC tier."""

    SINGLE = 1  #: one xGMI link:   50 GB/s per direction
    DUAL = 2    #: two xGMI links: 100 GB/s per direction
    QUAD = 4    #: four xGMI links: 200 GB/s per direction
    CPU = 0     #: CPU-GCD link:    36 GB/s per direction
    NIC = -1    #: inter-node NIC:  25 GB/s per direction

    @property
    def width(self) -> int:
        """Number of physical xGMI links in the bundle (CPU/NIC: 1)."""
        return self.value if self.value > 0 else 1

    @property
    def peak_unidirectional(self) -> float:
        """Peak bytes/s in one direction."""
        if self is LinkTier.CPU:
            return CPU_LINK_BW
        if self is LinkTier.NIC:
            return NIC_LINK_BW
        return self.value * XGMI_LINK_BW

    @property
    def peak_bidirectional(self) -> float:
        """Peak bytes/s summed over both directions."""
        return 2.0 * self.peak_unidirectional

    @classmethod
    def from_width(cls, width: int) -> "LinkTier":
        """Tier for a GCD-GCD bundle of ``width`` xGMI links."""
        try:
            return {1: cls.SINGLE, 2: cls.DUAL, 4: cls.QUAD}[width]
        except KeyError:
            raise TopologyError(
                f"GCD-GCD bundles have width 1, 2 or 4, not {width}"
            ) from None


@dataclass(frozen=True, order=True)
class LinkEndpoint:
    """One end of a link: either a GCD or a CPU NUMA domain port.

    ``kind`` is ``"gcd"`` or ``"numa"``; ``index`` is the GCD index
    (0–7) or the NUMA domain index (0–3).
    """

    kind: str
    index: int

    def __post_init__(self) -> None:
        if self.kind not in ("gcd", "numa"):
            raise TopologyError(f"unknown endpoint kind {self.kind!r}")
        if self.index < 0:
            raise TopologyError("endpoint index must be non-negative")

    @classmethod
    def gcd(cls, index: int) -> "LinkEndpoint":
        return cls("gcd", index)

    @classmethod
    def numa(cls, index: int) -> "LinkEndpoint":
        return cls("numa", index)

    @property
    def is_gcd(self) -> bool:
        """True for GCD endpoints."""
        return self.kind == "gcd"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.kind}{self.index}"


EndpointLike = Union[LinkEndpoint, int]


def as_endpoint(value: EndpointLike) -> LinkEndpoint:
    """Coerce a bare int (GCD index) or endpoint to a :class:`LinkEndpoint`."""
    if isinstance(value, LinkEndpoint):
        return value
    return LinkEndpoint.gcd(int(value))


@dataclass(frozen=True)
class Link:
    """An undirected edge of the node topology.

    Capacity is *per direction*; the two directions of an Infinity
    Fabric link are independent 50 GB/s (or 36 GB/s) channels, which is
    why the paper reports "50+50 GB/s".  The simulator therefore tracks
    flow occupancy per direction (see :mod:`repro.sim.fairshare`).

    ``capacity_override`` replaces the tier's peak per-direction
    bandwidth (bytes/s) for this one edge.  Real MI250X nodes show
    per-link heterogeneity the fixed tier table cannot express
    (Pearson 2023); an override lets a measured or calibrated capacity
    be carried as data while the tier keeps describing the physical
    bundle (width, endpoint rules, routing preferences).
    """

    a: LinkEndpoint
    b: LinkEndpoint
    tier: LinkTier
    capacity_override: float | None = None

    def __post_init__(self) -> None:
        if self.a == self.b:
            raise TopologyError(f"self-link at {self.a}")
        if self.capacity_override is not None:
            override = float(self.capacity_override)
            if not override > 0.0 or override != override or override == float("inf"):
                raise TopologyError(
                    f"link capacity override must be a positive finite "
                    f"bytes/s value, got {self.capacity_override!r}"
                )
            object.__setattr__(self, "capacity_override", override)
        if self.tier is LinkTier.CPU:
            kinds = {self.a.kind, self.b.kind}
            if kinds != {"gcd", "numa"}:
                raise TopologyError(
                    "CPU-tier links must connect a GCD to a NUMA domain"
                )
        elif self.tier is LinkTier.NIC:
            if self.a.kind != "numa" or self.b.kind != "numa":
                raise TopologyError(
                    "NIC-tier links must connect two NUMA domains "
                    "(the per-domain NICs of two nodes)"
                )
        else:
            if not (self.a.is_gcd and self.b.is_gcd):
                raise TopologyError("xGMI-tier links must connect two GCDs")

    @property
    def name(self) -> str:
        """Stable identifier, endpoints in sorted order."""
        lo, hi = sorted((self.a, self.b))
        return f"{lo}-{hi}:{self.tier.name.lower()}"

    @property
    def capacity_per_direction(self) -> float:
        """Peak bytes/s in one direction (override, else tier peak)."""
        if self.capacity_override is not None:
            return self.capacity_override
        return self.tier.peak_unidirectional

    @property
    def capacity_bidirectional(self) -> float:
        """Peak bytes/s summed over both directions."""
        return 2.0 * self.capacity_per_direction

    @property
    def is_cpu_link(self) -> bool:
        """True for CPU-GCD links."""
        return self.tier is LinkTier.CPU

    @property
    def is_nic_link(self) -> bool:
        """True for inter-node NIC links."""
        return self.tier is LinkTier.NIC

    def endpoints(self) -> tuple[LinkEndpoint, LinkEndpoint]:
        """Both endpoints as a tuple."""
        return (self.a, self.b)

    def other(self, endpoint: LinkEndpoint) -> LinkEndpoint:
        """The endpoint opposite ``endpoint``."""
        if endpoint == self.a:
            return self.b
        if endpoint == self.b:
            return self.a
        raise TopologyError(f"{endpoint} is not an endpoint of {self.name}")

    def connects(self, x: EndpointLike, y: EndpointLike) -> bool:
        """Whether the link joins the two given endpoints."""
        ex, ey = as_endpoint(x), as_endpoint(y)
        return {ex, ey} == {self.a, self.b}

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name

    @staticmethod
    def tier_from_name(link_name: str) -> LinkTier:
        """Recover the tier from a :attr:`Link.name` string.

        Link names carry their tier as a suffix (``gcd0-gcd1:quad``),
        so observability code can map a link-channel metric name back
        to the bundle's peak bandwidth without holding the topology.
        """
        _, _, token = link_name.rpartition(":")
        try:
            return LinkTier[token.upper()]
        except KeyError:
            raise TopologyError(
                f"no link tier encoded in {link_name!r}"
            ) from None


def peak_bandwidth_of_channel_name(metric_name: str) -> float | None:
    """Peak bytes/s of a flattened link-channel metric name.

    The flow network registers link directions as
    ``("link", <link name>, "fwd"|"rev")`` channels, which the metrics
    registry flattens to ``link/<link name>/<dir>`` strings.  Returns
    ``None`` for names that are not link channels (SDMA engines, DRAM
    ports, sockets…).
    """
    parts = metric_name.split("/")
    if len(parts) != 3 or parts[0] != "link":
        return None
    try:
        return Link.tier_from_name(parts[1]).peak_unidirectional
    except TopologyError:
        return None

"""Canonical topologies.

:func:`frontier_node` reproduces Fig. 1 of the paper — the node layout
shared by ORNL Frontier and LUMI: four MI250X packages (GCD pairs 0-1,
2-3, 4-5, 6-7 with quad intra-package links), an even-GCD ring
0-2-4-6 alternating single and dual bundles, an odd-GCD ring 1-3-7-5
of single bundles, and one 36 GB/s CPU link per GCD into the NUMA
domain of its package.

The structure is cross-checked against the paper's §II-A narrative:
"Taking GCD0 as an example, it is also directly connected through a
dual link to GCD6 [...] and through a single link to GCD2"; and the
single-link pair list from §V-A1, {0-2, 1-3, 1-5, 3-7, 4-6, 5-7}.
"""

from __future__ import annotations

from ..errors import TopologyError
from .node import GcdInfo, NodeTopology, NodeTopologyBuilder, NumaDomainInfo

#: Paper Fig. 1 GCD-GCD bundles: (gcd_a, gcd_b, xGMI width).
FRONTIER_XGMI_BUNDLES: tuple[tuple[int, int, int], ...] = (
    # quad links: the two dies of each physical MI250X
    (0, 1, 4),
    (2, 3, 4),
    (4, 5, 4),
    (6, 7, 4),
    # dual links: alternate edges of the even-GCD ring
    (0, 6, 2),
    (2, 4, 2),
    # single links: remaining even-ring edges + the odd-GCD ring
    (0, 2, 1),
    (4, 6, 1),
    (1, 3, 1),
    (3, 7, 1),
    (5, 7, 1),
    (1, 5, 1),
)

#: NUMA domain of each GCD (rocm-smi --showtoponuma on Frontier/LUMI):
#: GCDs {0,1}→NUMA 3, {2,3}→NUMA 1, {4,5}→NUMA 0, {6,7}→NUMA 2 — but the
#: paper only relies on the *pairing* (one NUMA per package).  We use
#: the natural package ordering, which preserves every effect studied.
FRONTIER_GCD_NUMA: tuple[int, ...] = (0, 0, 1, 1, 2, 2, 3, 3)

#: The paper's single-link GCD pairs (§V-A1), used in validation tests.
FRONTIER_SINGLE_LINK_PAIRS: frozenset[frozenset[int]] = frozenset(
    frozenset(p) for p in ((0, 2), (1, 3), (1, 5), (3, 7), (4, 6), (5, 7))
)


def frontier_node(*, name: str = "frontier-mi250x") -> NodeTopology:
    """Build the Fig. 1 MI250X node (8 GCDs, 4 packages, 4 NUMA domains)."""
    builder = NodeTopologyBuilder(name)
    for numa in range(4):
        builder.add_numa_domain(NumaDomainInfo(index=numa))
    for gcd in range(8):
        builder.add_gcd(
            GcdInfo(
                index=gcd,
                gpu_package=gcd // 2,
                numa_domain=FRONTIER_GCD_NUMA[gcd],
            )
        )
        builder.connect_cpu(gcd, FRONTIER_GCD_NUMA[gcd])
    for a, b, width in FRONTIER_XGMI_BUNDLES:
        builder.connect_gcds(a, b, width)
    topology = builder.build()
    _check_frontier_invariants(topology)
    return topology


def _check_frontier_invariants(topology: NodeTopology) -> None:
    """Sanity-check the preset against the paper's stated structure."""
    from .link import LinkTier

    census = topology.link_census()
    if census.get(LinkTier.QUAD) != 4:
        raise TopologyError("frontier preset must have 4 quad bundles")
    if census.get(LinkTier.DUAL) != 2:
        raise TopologyError("frontier preset must have 2 dual bundles")
    if census.get(LinkTier.SINGLE) != 6:
        raise TopologyError("frontier preset must have 6 single bundles")
    if census.get(LinkTier.CPU) != 8:
        raise TopologyError("frontier preset must have 8 CPU links")
    singles = {
        frozenset((l.a.index, l.b.index))
        for l in topology.xgmi_links()
        if l.tier is LinkTier.SINGLE
    }
    if singles != set(FRONTIER_SINGLE_LINK_PAIRS):
        raise TopologyError("single-link pairs disagree with paper §V-A1")


def mi250x_cluster(nodes: int = 4, *, name: str | None = None) -> NodeTopology:
    """``nodes`` Fig. 1 frontier nodes bridged by inter-node NIC links.

    Each node replicates the exact frontier layout — GCDs ``8n..8n+7``,
    packages ``4n..4n+3``, NUMA domains ``4n..4n+3``, the Fig. 1 xGMI
    bundles and per-GCD CPU links — and every NUMA domain carries one
    Slingshot-style 25 GB/s NIC into the same-ranked domain of the next
    node, forming four parallel NIC rails around a node ring (the
    Frontier blade wiring, reduced to a ring so the preset stays
    parametric).

    This is the scale-out stage for the solver benchmarks: a ring
    allreduce over the cluster couples all ``8 * nodes`` GCDs into one
    fairshare component, which is exactly the regime where dirty-set
    re-leveling has to beat the full component re-solve.
    """
    # nodes=1 would thread through the ``nodes - 1`` NIC-census special
    # case below and build a degenerate zero-NIC "cluster" that is just
    # a mislabelled frontier node; fail loudly instead.
    if nodes < 2:
        raise TopologyError(
            f"a cluster needs at least two nodes, got {nodes}; "
            "use frontier_node() for a single MI250X node"
        )
    if name is None:
        name = f"mi250x-cluster-{nodes}"
    builder = NodeTopologyBuilder(name)
    for node in range(nodes):
        numa_base = 4 * node
        gcd_base = 8 * node
        for numa in range(4):
            builder.add_numa_domain(NumaDomainInfo(index=numa_base + numa))
        for gcd in range(8):
            builder.add_gcd(
                GcdInfo(
                    index=gcd_base + gcd,
                    gpu_package=4 * node + gcd // 2,
                    numa_domain=numa_base + FRONTIER_GCD_NUMA[gcd],
                )
            )
            builder.connect_cpu(
                gcd_base + gcd, numa_base + FRONTIER_GCD_NUMA[gcd]
            )
        for a, b, width in FRONTIER_XGMI_BUNDLES:
            builder.connect_gcds(gcd_base + a, gcd_base + b, width)
    # NIC ring: rail d joins NUMA domain d of node n to domain d of node
    # n+1.  A two-node ring would duplicate each edge, so stop early.
    ring_edges = nodes if nodes > 2 else nodes - 1
    for node in range(ring_edges):
        peer = (node + 1) % nodes
        for rail in range(4):
            builder.connect_nic(4 * node + rail, 4 * peer + rail)
    topology = builder.build()
    _check_cluster_invariants(topology, nodes)
    return topology


def _check_cluster_invariants(topology: NodeTopology, nodes: int) -> None:
    """Sanity-check the cluster preset: N exact frontier nodes + rails."""
    from .link import LinkTier

    census = topology.link_census()
    expected = {
        LinkTier.QUAD: 4 * nodes,
        LinkTier.DUAL: 2 * nodes,
        LinkTier.SINGLE: 6 * nodes,
        LinkTier.CPU: 8 * nodes,
    }
    # Two-node rings collapse to one edge per rail (the duplicate-edge
    # fix); three nodes and up close the ring.
    expected[LinkTier.NIC] = 4 * (nodes if nodes > 2 else nodes - 1)
    for tier, count in expected.items():
        if census.get(tier) != count:
            raise TopologyError(
                f"cluster preset expected {count} {tier.name.lower()} "
                f"links, found {census.get(tier, 0)}"
            )
    singles = {
        frozenset((l.a.index % 8, l.b.index % 8))
        for l in topology.xgmi_links()
        if l.tier is LinkTier.SINGLE
    }
    if singles != set(FRONTIER_SINGLE_LINK_PAIRS):
        raise TopologyError("cluster single-link pairs disagree with §V-A1")


def single_gpu_node(*, name: str = "single-mi250x") -> NodeTopology:
    """A one-package node: two GCDs joined by a quad bundle.

    Useful for unit tests and for isolating intra-package effects.
    """
    builder = NodeTopologyBuilder(name)
    builder.add_numa_domain(NumaDomainInfo(index=0))
    for gcd in range(2):
        builder.add_gcd(GcdInfo(index=gcd, gpu_package=0, numa_domain=0))
        builder.connect_cpu(gcd, 0)
    builder.connect_gcds(0, 1, 4)
    return builder.build()


def dense_hive_node(
    num_packages: int = 4, *, name: str | None = None
) -> NodeTopology:
    """A hypothetical fully-connected variant for what-if studies.

    Every pair of GCDs on distinct packages gets a single xGMI bundle,
    package pairs keep quad bundles.  Not a real machine; used by the
    ablation benchmarks to show how much the sparse Fig. 1 mesh costs
    relative to an idealised full mesh.
    """
    if num_packages < 1:
        raise TopologyError("need at least one package")
    if name is None:
        name = f"dense-hive-{num_packages}pkg"
    builder = NodeTopologyBuilder(name)
    num_gcds = 2 * num_packages
    num_numa = min(4, num_packages)
    for numa in range(num_numa):
        builder.add_numa_domain(NumaDomainInfo(index=numa))
    for gcd in range(num_gcds):
        numa = (gcd // 2) % num_numa
        builder.add_gcd(GcdInfo(index=gcd, gpu_package=gcd // 2, numa_domain=numa))
        builder.connect_cpu(gcd, numa)
    for a in range(num_gcds):
        for b in range(a + 1, num_gcds):
            if a // 2 == b // 2:
                builder.connect_gcds(a, b, 4)
            else:
                builder.connect_gcds(a, b, 1)
    return builder.build()

"""Routing policies over the Infinity Fabric mesh.

The paper's §V-A observation is that the HIP runtime routes
``hipMemcpyPeer`` traffic along the *bandwidth-maximizing* path rather
than the hop-count-shortest path: GCD pair 1-7 has a two-hop shortest
path (1-3-7 over single links) but is actually served by the three-hop
path 1-0-6-7 whose bottleneck is a dual link — visible both as the
latency outliers in Fig. 6b and as the 50 GB/s bandwidth (not 37) in
Fig. 6c.

This module implements both policies:

- :func:`shortest_path` — fewest hops (Fig. 6a's matrix).
- :func:`bandwidth_maximizing_path` — maximize the bottleneck link
  capacity (widest path); ties broken by fewest hops, then
  lexicographically smallest node sequence, so routing is deterministic.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass
from typing import Iterator, Sequence

import networkx as nx

from ..errors import RoutingError
from .link import EndpointLike, Link, LinkEndpoint, as_endpoint
from .node import NodeTopology


class RoutingPolicy(enum.Enum):
    """Which path-selection rule to apply."""

    SHORTEST = "shortest"
    BANDWIDTH_MAX = "bandwidth_max"


@dataclass(frozen=True)
class Route:
    """A concrete path through the topology.

    ``nodes`` is the endpoint sequence (source first), ``links`` the
    corresponding edges; ``len(links) == len(nodes) - 1``.
    """

    nodes: tuple[LinkEndpoint, ...]
    links: tuple[Link, ...]

    def __post_init__(self) -> None:
        if len(self.nodes) < 1:
            raise RoutingError("route must contain at least one node")
        if len(self.links) != len(self.nodes) - 1:
            raise RoutingError("route links/nodes length mismatch")

    @property
    def source(self) -> LinkEndpoint:
        """First endpoint of the path."""
        return self.nodes[0]

    @property
    def destination(self) -> LinkEndpoint:
        """Last endpoint of the path."""
        return self.nodes[-1]

    @property
    def num_hops(self) -> int:
        """Number of links traversed."""
        return len(self.links)

    @property
    def bottleneck_capacity(self) -> float:
        """Per-direction capacity of the narrowest link on the path."""
        if not self.links:
            return float("inf")
        return min(link.capacity_per_direction for link in self.links)

    @property
    def is_local(self) -> bool:
        """True for zero-hop (same endpoint) routes."""
        return self.num_hops == 0

    def hop_pairs(self) -> Iterator[tuple[LinkEndpoint, LinkEndpoint, Link]]:
        """Yield ``(from, to, link)`` per hop, in path order."""
        for i, link in enumerate(self.links):
            yield self.nodes[i], self.nodes[i + 1], link

    def describe(self) -> str:
        """Dash-joined endpoint sequence."""
        return "-".join(str(n) for n in self.nodes)


def _route_from_nodes(
    topology: NodeTopology, nodes: Sequence[LinkEndpoint]
) -> Route:
    links = tuple(
        topology.require_link(nodes[i], nodes[i + 1])
        for i in range(len(nodes) - 1)
    )
    return Route(tuple(nodes), links)


def _node_sort_key(node: LinkEndpoint) -> tuple[str, int]:
    return (node.kind, node.index)


def shortest_path(
    topology: NodeTopology, src: EndpointLike, dst: EndpointLike
) -> Route:
    """Fewest-hop route; deterministic tie-break (lexicographic)."""
    source, target = as_endpoint(src), as_endpoint(dst)
    if source == target:
        return Route((source,), ())
    graph = topology.graph_view()
    try:
        candidates = nx.all_shortest_paths(graph, source, target)
        best = min(
            candidates, key=lambda path: [_node_sort_key(n) for n in path]
        )
    except (nx.NetworkXNoPath, nx.NodeNotFound):
        raise RoutingError(f"no path from {source} to {target}") from None
    return _route_from_nodes(topology, best)


def bandwidth_maximizing_path(
    topology: NodeTopology,
    src: EndpointLike,
    dst: EndpointLike,
    *,
    max_extra_hops: int = 2,
    avoid: "frozenset[str] | set[str] | None" = None,
) -> Route:
    """Widest path: maximize bottleneck capacity, then minimize hops.

    The search is bounded to ``shortest + max_extra_hops`` hops, which
    matches hardware behaviour: the runtime only considers short
    detours (the observed 1-0-6-7 route is one hop longer than the
    shortest).  Ties on (bottleneck, hops) break lexicographically on
    the node sequence, making the route deterministic and therefore the
    simulated latency matrix reproducible.

    ``avoid`` names links (by :attr:`Link.name`) the route must not
    cross — failed fabric links under fault injection.  Candidate paths
    crossing an avoided link are discarded; when no candidate survives
    within the hop bound, :class:`RoutingError` is raised.
    """
    source, target = as_endpoint(src), as_endpoint(dst)
    if source == target:
        return Route((source,), ())
    graph = topology.graph_view()
    try:
        base_len = nx.shortest_path_length(graph, source, target)
    except (nx.NetworkXNoPath, nx.NodeNotFound):
        raise RoutingError(f"no path from {source} to {target}") from None

    cutoff = base_len + max_extra_hops
    best_key: tuple[float, int, list[tuple[str, int]]] | None = None
    best_nodes: list[LinkEndpoint] | None = None
    for path in nx.all_simple_paths(graph, source, target, cutoff=cutoff):
        hop_links = [
            graph.edges[path[i], path[i + 1]]["link"]
            for i in range(len(path) - 1)
        ]
        if avoid and any(link.name in avoid for link in hop_links):
            continue
        capacity = min(link.capacity_per_direction for link in hop_links)
        key = (-capacity, len(path), [_node_sort_key(n) for n in path])
        if best_key is None or key < best_key:
            best_key = key
            best_nodes = path
    if best_nodes is None:
        raise RoutingError(
            f"no path from {source} to {target} within {cutoff} hops "
            f"avoiding {sorted(avoid or ())}"
        )
    return _route_from_nodes(topology, best_nodes)


def route_between(
    topology: NodeTopology,
    src: EndpointLike,
    dst: EndpointLike,
    policy: RoutingPolicy = RoutingPolicy.BANDWIDTH_MAX,
    *,
    avoid: "frozenset[str] | set[str] | None" = None,
) -> Route:
    """Route under the given policy (bandwidth-max is the HW default).

    ``avoid`` (link names) detours around failed links; it only
    applies to the bandwidth-max policy — the shortest-path matrix is
    a static topology property (Fig. 6a), not a live routing decision.
    """
    if policy is RoutingPolicy.SHORTEST:
        return shortest_path(topology, src, dst)
    if policy is RoutingPolicy.BANDWIDTH_MAX:
        return bandwidth_maximizing_path(topology, src, dst, avoid=avoid)
    raise RoutingError(f"unknown policy {policy!r}")


def all_pairs_hops(topology: NodeTopology) -> dict[tuple[int, int], int]:
    """Shortest-path hop counts between all GCD pairs (Fig. 6a).

    Keys are ordered pairs ``(src, dst)`` including the diagonal (0).
    """
    result: dict[tuple[int, int], int] = {}
    indices = [g.index for g in topology.gcds()]
    for a, b in itertools.product(indices, repeat=2):
        if a == b:
            result[(a, b)] = 0
        else:
            result[(a, b)] = shortest_path(topology, a, b).num_hops
    return result


def all_pairs_routes(
    topology: NodeTopology,
    policy: RoutingPolicy = RoutingPolicy.BANDWIDTH_MAX,
) -> dict[tuple[int, int], Route]:
    """Routes between all distinct GCD pairs under a policy."""
    result: dict[tuple[int, int], Route] = {}
    indices = [g.index for g in topology.gcds()]
    for a, b in itertools.permutations(indices, 2):
        result[(a, b)] = route_between(topology, a, b, policy)
    return result


def detour_pairs(topology: NodeTopology) -> list[tuple[int, int]]:
    """GCD pairs whose bandwidth-max route is longer than shortest.

    On the Frontier topology this returns exactly {(1,7),(7,1),(3,5),
    (5,3)} — the latency outliers of Fig. 6b.
    """
    pairs: list[tuple[int, int]] = []
    indices = [g.index for g in topology.gcds()]
    for a, b in itertools.permutations(indices, 2):
        short = shortest_path(topology, a, b)
        wide = bandwidth_maximizing_path(topology, a, b)
        if wide.num_hops > short.num_hops:
            pairs.append((a, b))
    return pairs

"""The queryable node topology graph.

:class:`NodeTopology` holds the static structure of a compute node:
which GCDs exist, how they pair into physical GPU packages, which NUMA
domain each attaches to, and the Infinity Fabric edges.  It is backed
by a :class:`networkx.Graph` for path queries but exposes a typed API
so the rest of the library never touches raw graph attributes.

The topology is *immutable after construction*: builders assemble it
via :class:`NodeTopologyBuilder` and then freeze.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping, Sequence

import networkx as nx

from ..errors import TopologyError
from .link import (
    EndpointLike,
    Link,
    LinkEndpoint,
    LinkTier,
    as_endpoint,
)


@dataclass(frozen=True)
class GcdInfo:
    """Static description of one Graphics Compute Die (paper §II).

    Defaults match MI250X: 64 GB HBM2e at 1.6 TB/s, 8 MB L2, 110
    compute units per GCD.
    """

    index: int
    gpu_package: int
    numa_domain: int
    hbm_bytes: int = 64 * 10**9
    hbm_peak_bw: float = 1.6e12
    l2_bytes: int = 8 * 2**20
    compute_units: int = 110

    def __post_init__(self) -> None:
        if self.index < 0 or self.gpu_package < 0 or self.numa_domain < 0:
            raise TopologyError("GCD indices must be non-negative")
        if self.hbm_bytes <= 0 or self.hbm_peak_bw <= 0:
            raise TopologyError("GCD memory parameters must be positive")


@dataclass(frozen=True)
class NumaDomainInfo:
    """Static description of one CPU NUMA domain (paper §II, §IV-B).

    The EPYC socket exposes 512 GB DDR4 split across four domains; each
    domain fronts the Infinity Fabric ports of one physical GPU (two
    GCDs).
    """

    index: int
    dram_bytes: int = 128 * 10**9
    dram_peak_bw: float = 204.8e9 / 4
    dram_latency: float = 96e-9

    def __post_init__(self) -> None:
        if self.index < 0:
            raise TopologyError("NUMA index must be non-negative")
        if self.dram_bytes <= 0 or self.dram_peak_bw <= 0:
            raise TopologyError("NUMA memory parameters must be positive")


class NodeTopology:
    """Immutable multi-GPU node topology.

    Use :class:`NodeTopologyBuilder` (or a preset from
    :mod:`repro.topology.presets`) to construct one.
    """

    def __init__(
        self,
        gcds: Sequence[GcdInfo],
        numa_domains: Sequence[NumaDomainInfo],
        links: Sequence[Link],
        *,
        name: str = "custom",
    ) -> None:
        self.name = name
        self._gcds = {g.index: g for g in gcds}
        self._numa = {n.index: n for n in numa_domains}
        if len(self._gcds) != len(gcds):
            raise TopologyError("duplicate GCD index")
        if len(self._numa) != len(numa_domains):
            raise TopologyError("duplicate NUMA index")

        self._links: dict[str, Link] = {}
        self._graph = nx.Graph()
        for endpoint in self._all_endpoints():
            self._graph.add_node(endpoint)
        for link in links:
            self._add_link(link)
        self._validate()

    # -- construction helpers ------------------------------------------

    def _all_endpoints(self) -> Iterator[LinkEndpoint]:
        for index in self._gcds:
            yield LinkEndpoint.gcd(index)
        for index in self._numa:
            yield LinkEndpoint.numa(index)

    def _add_link(self, link: Link) -> None:
        for endpoint in link.endpoints():
            if endpoint not in self._graph:
                raise TopologyError(f"link {link.name} references unknown {endpoint}")
        if link.name in self._links:
            raise TopologyError(f"duplicate link {link.name}")
        if self._graph.has_edge(link.a, link.b):
            raise TopologyError(
                f"parallel connection between {link.a} and {link.b}; "
                "widen the tier instead"
            )
        self._links[link.name] = link
        self._graph.add_edge(link.a, link.b, link=link)

    def _validate(self) -> None:
        for gcd in self._gcds.values():
            if gcd.numa_domain not in self._numa:
                raise TopologyError(
                    f"GCD {gcd.index} references unknown NUMA {gcd.numa_domain}"
                )
        # Every GCD must reach every other endpoint: the paper's data
        # movement analysis presumes a connected fabric.
        if self._gcds and not nx.is_connected(self._graph):
            raise TopologyError("topology graph is not connected")

    # -- basic accessors -------------------------------------------------

    @property
    def num_gcds(self) -> int:
        """Number of GCDs."""
        return len(self._gcds)

    @property
    def num_numa_domains(self) -> int:
        """Number of NUMA domains."""
        return len(self._numa)

    @property
    def num_gpu_packages(self) -> int:
        """Number of physical GPU packages."""
        return len({g.gpu_package for g in self._gcds.values()})

    def gcd(self, index: int) -> GcdInfo:
        """Static info of a GCD index."""
        try:
            return self._gcds[index]
        except KeyError:
            raise TopologyError(f"no GCD {index} in topology {self.name!r}") from None

    def numa_domain(self, index: int) -> NumaDomainInfo:
        """Static info of a NUMA domain index."""
        try:
            return self._numa[index]
        except KeyError:
            raise TopologyError(f"no NUMA domain {index} in {self.name!r}") from None

    def gcds(self) -> Iterator[GcdInfo]:
        """GCDs in index order."""
        return iter(sorted(self._gcds.values(), key=lambda g: g.index))

    def numa_domains(self) -> Iterator[NumaDomainInfo]:
        """NUMA domains in index order."""
        return iter(sorted(self._numa.values(), key=lambda n: n.index))

    def links(self) -> Iterator[Link]:
        """All links, sorted by name."""
        return iter(sorted(self._links.values(), key=lambda l: l.name))

    def xgmi_links(self) -> Iterator[Link]:
        """GCD-GCD links only (excludes CPU and inter-node NIC links)."""
        return (l for l in self.links() if l.a.is_gcd and l.b.is_gcd)

    def cpu_links(self) -> Iterator[Link]:
        """CPU-GCD links only."""
        return (l for l in self.links() if l.is_cpu_link)

    def nic_links(self) -> Iterator[Link]:
        """Inter-node NIC links only (empty on single-node topologies)."""
        return (l for l in self.links() if l.is_nic_link)

    # -- structural queries ----------------------------------------------

    def link_between(self, x: EndpointLike, y: EndpointLike) -> Link | None:
        """The direct link between two endpoints, or ``None``."""
        ex, ey = as_endpoint(x), as_endpoint(y)
        data = self._graph.get_edge_data(ex, ey)
        return None if data is None else data["link"]

    def require_link(self, x: EndpointLike, y: EndpointLike) -> Link:
        """Direct link between two endpoints; raises if absent."""
        link = self.link_between(x, y)
        if link is None:
            raise TopologyError(
                f"no direct link between {as_endpoint(x)} and {as_endpoint(y)}"
            )
        return link

    def neighbors(self, endpoint: EndpointLike) -> list[LinkEndpoint]:
        """Endpoints directly connected to the given one."""
        return sorted(self._graph.neighbors(as_endpoint(endpoint)))

    def gcd_neighbors(self, gcd_index: int) -> list[int]:
        """Indices of GCDs directly connected to ``gcd_index`` via xGMI."""
        return [
            n.index
            for n in self.neighbors(LinkEndpoint.gcd(gcd_index))
            if n.is_gcd
        ]

    def peer_tier(self, a: int, b: int) -> LinkTier | None:
        """Link tier between two GCDs, or ``None`` if not adjacent."""
        link = self.link_between(a, b)
        return None if link is None else link.tier

    def same_package(self, a: int, b: int) -> bool:
        """Whether two GCDs are the two dies of one physical MI250X."""
        return self.gcd(a).gpu_package == self.gcd(b).gpu_package

    def package_peer(self, gcd_index: int) -> int | None:
        """The other GCD on the same physical GPU package, if any."""
        package = self.gcd(gcd_index).gpu_package
        for other in self._gcds.values():
            if other.index != gcd_index and other.gpu_package == package:
                return other.index
        return None

    def numa_of_gcd(self, gcd_index: int) -> int:
        """NUMA domain attached to a GCD (rocm-smi --showtoponuma)."""
        return self.gcd(gcd_index).numa_domain

    def gcds_of_numa(self, numa_index: int) -> list[int]:
        """GCD indices attached to a NUMA domain."""
        self.numa_domain(numa_index)
        return sorted(
            g.index for g in self._gcds.values() if g.numa_domain == numa_index
        )

    def cpu_link_of_gcd(self, gcd_index: int) -> Link:
        """The Infinity Fabric link connecting a GCD to its NUMA port."""
        numa = self.numa_of_gcd(gcd_index)
        return self.require_link(
            LinkEndpoint.gcd(gcd_index), LinkEndpoint.numa(numa)
        )

    def graph(self) -> nx.Graph:
        """A *copy* of the underlying graph, for external analysis."""
        return self._graph.copy()

    def graph_view(self) -> nx.Graph:
        """The live graph (read-only by convention); used by routing."""
        return self._graph

    # -- summaries ---------------------------------------------------------

    def link_census(self) -> Mapping[LinkTier, int]:
        """Count of links per tier — the Fig. 1 inventory."""
        census: dict[LinkTier, int] = {}
        for link in self.links():
            census[link.tier] = census.get(link.tier, 0) + 1
        return census

    def aggregate_cpu_bandwidth(self) -> float:
        """Sum of per-direction CPU-link capacity over all GCDs."""
        return sum(l.capacity_per_direction for l in self.cpu_links())

    def describe(self) -> str:
        """Inventory summary (the Fig. 1 census)."""
        census = self.link_census()
        lines = [
            f"Topology {self.name!r}: {self.num_gcds} GCDs on "
            f"{self.num_gpu_packages} GPU packages, "
            f"{self.num_numa_domains} NUMA domains",
        ]
        for tier in (
            LinkTier.QUAD,
            LinkTier.DUAL,
            LinkTier.SINGLE,
            LinkTier.CPU,
            LinkTier.NIC,
        ):
            if tier in census:
                lines.append(
                    f"  {census[tier]}x {tier.name.lower()} links "
                    f"({tier.peak_unidirectional / 1e9:.0f}+"
                    f"{tier.peak_unidirectional / 1e9:.0f} GB/s)"
                )
        return "\n".join(lines)

    def fingerprint(self) -> str:
        """Stable content hash of the node structure.

        Covers every performance-relevant attribute — GCDs (package,
        NUMA affinity, HBM size/bandwidth, caches, CUs), NUMA domains
        (DRAM size/bandwidth/latency) and the link inventory with tiers
        — but not the cosmetic ``name``.  Two topologies with the same
        fingerprint produce identical simulation results, which is what
        the result cache (:mod:`repro.runner`) keys on.
        """
        import hashlib

        parts: list[str] = []
        for gcd in sorted(self._gcds.values(), key=lambda g: g.index):
            parts.append(
                f"gcd:{gcd.index}:{gcd.gpu_package}:{gcd.numa_domain}:"
                f"{gcd.hbm_bytes}:{float(gcd.hbm_peak_bw).hex()}:"
                f"{gcd.l2_bytes}:{gcd.compute_units}"
            )
        for numa in sorted(self._numa.values(), key=lambda n: n.index):
            parts.append(
                f"numa:{numa.index}:{numa.dram_bytes}:"
                f"{float(numa.dram_peak_bw).hex()}:"
                f"{float(numa.dram_latency).hex()}"
            )
        edges = []
        for link in self.links():
            a, b = sorted((link.a, link.b))
            part = f"link:{a}:{b}:{link.tier.name}"
            # Appended only when set so every pre-override fingerprint
            # (and thus every cached result) stays stable.
            if link.capacity_override is not None:
                part += f":{float(link.capacity_override).hex()}"
            edges.append(part)
        parts.extend(sorted(edges))
        return hashlib.sha256("\n".join(parts).encode()).hexdigest()


class NodeTopologyBuilder:
    """Incremental builder for :class:`NodeTopology`."""

    def __init__(self, name: str = "custom") -> None:
        self.name = name
        self._gcds: list[GcdInfo] = []
        self._numa: list[NumaDomainInfo] = []
        self._links: list[Link] = []

    def add_gcd(self, info: GcdInfo) -> "NodeTopologyBuilder":
        """Register a GCD."""
        self._gcds.append(info)
        return self

    def add_numa_domain(self, info: NumaDomainInfo) -> "NodeTopologyBuilder":
        """Register a NUMA domain."""
        self._numa.append(info)
        return self

    def connect_gcds(
        self,
        a: int,
        b: int,
        width: int,
        *,
        capacity_gbps: float | None = None,
    ) -> "NodeTopologyBuilder":
        """Add a GCD-GCD bundle of ``width`` xGMI links.

        ``capacity_gbps`` overrides the tier's per-direction peak for
        this one edge (Pearson-style bandwidth heterogeneity).
        """
        tier = LinkTier.from_width(width)
        override = None if capacity_gbps is None else float(capacity_gbps) * 1e9
        self._links.append(
            Link(
                LinkEndpoint.gcd(a),
                LinkEndpoint.gcd(b),
                tier,
                capacity_override=override,
            )
        )
        return self

    def connect_cpu(self, gcd: int, numa: int) -> "NodeTopologyBuilder":
        """Add a GCD's CPU link to a NUMA domain port."""
        self._links.append(
            Link(LinkEndpoint.gcd(gcd), LinkEndpoint.numa(numa), LinkTier.CPU)
        )
        return self

    def connect_nic(self, numa_a: int, numa_b: int) -> "NodeTopologyBuilder":
        """Add an inter-node NIC link between two NUMA domain ports."""
        self._links.append(
            Link(
                LinkEndpoint.numa(numa_a),
                LinkEndpoint.numa(numa_b),
                LinkTier.NIC,
            )
        )
        return self

    def build(self) -> NodeTopology:
        """Validate and freeze into a :class:`NodeTopology`."""
        return NodeTopology(self._gcds, self._numa, self._links, name=self.name)
